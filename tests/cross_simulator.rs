//! Cross-simulator validation: every implementation must render the same
//! image as the sequential baseline (the paper's implicit correctness
//! criterion in §IV-C: disagreement means "there must be mistakes in
//! either simulator").

use starsim::image::diff::{compare, images_close};
use starsim::prelude::*;

fn config(size: usize, roi: usize) -> SimConfig {
    SimConfig::new(size, size, roi)
}

#[test]
fn parallel_matches_sequential_across_field_densities() {
    for (n, seed) in [(10usize, 1u64), (200, 2), (2000, 3)] {
        let cat = FieldGenerator::new(128, 128).generate(n, seed);
        let cfg = config(128, 10);
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        assert!(
            images_close(&seq.image, &par.image, 1e-4, 1e-4),
            "{n} stars: parallel diverged from sequential"
        );
    }
}

#[test]
fn parallel_matches_sequential_across_roi_sides() {
    let cat = FieldGenerator::new(128, 128).generate(300, 5);
    for roi in [1usize, 2, 5, 10, 16, 25, 32] {
        let cfg = config(128, roi);
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        assert!(
            images_close(&seq.image, &par.image, 1e-4, 1e-4),
            "ROI {roi}: parallel diverged from sequential"
        );
    }
}

#[test]
fn adaptive_error_is_bounded_by_lut_quantization() {
    let cat = FieldGenerator::new(128, 128)
        .positions(PositionModel::UniformPixelCentred)
        .generate(400, 7);
    let cfg = config(128, 10);
    let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
    let ada = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
    let lut = AdaptiveSimulator::new().build_lut(&cfg).unwrap();
    let bound = lut.brightness().max_relative_error() * 1.5;
    let d = compare(&seq.image, &ada.image, 0.0);
    assert!(
        d.max_rel <= bound,
        "adaptive error {} exceeds LUT bound {bound}",
        d.max_rel
    );
}

#[test]
fn pixel_centric_matches_sequential() {
    let cat = FieldGenerator::new(96, 96).generate(60, 11);
    let cfg = config(96, 10);
    let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
    let pix = PixelCentricSimulator::new().simulate(&cat, &cfg).unwrap();
    assert!(images_close(&seq.image, &pix.image, 1e-4, 1e-4));
}

#[test]
fn multi_gpu_matches_sequential() {
    let cat = FieldGenerator::new(128, 128).generate(500, 13);
    let cfg = config(128, 10);
    let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
    let mg = MultiGpuSimulator::new(3).simulate(&cat, &cfg).unwrap();
    assert!(images_close(&seq.image, &mg.image, 1e-4, 1e-4));
}

#[test]
fn all_simulators_conserve_total_flux() {
    // Interior stars with a generous ROI: every simulator must deposit the
    // same total energy (brightness × in-ROI PSF mass), star order and
    // parallel schedule notwithstanding.
    let stars: Vec<Star> = (0..50)
        .map(|i| {
            Star::new(
                30.0 + (i % 8) as f32 * 9.0,
                30.0 + (i / 8) as f32 * 10.0,
                2.0 + (i % 12) as f32,
            )
        })
        .collect();
    let cat = StarCatalog::from_stars(stars);
    let cfg = config(128, 14);
    let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
    let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
    let total = |img: &ImageF32| -> f64 { img.data().iter().map(|&v| v as f64).sum() };
    let ts = total(&seq.image);
    let tp = total(&par.image);
    assert!(
        ((ts - tp) / ts).abs() < 1e-5,
        "flux mismatch: sequential {ts} vs parallel {tp}"
    );
}

#[test]
fn integrated_psf_variant_agrees_between_simulators() {
    // The extension PSF must round-trip through the GPU path too.
    let cat = FieldGenerator::new(96, 96).generate(150, 17);
    let mut cfg = config(96, 10);
    cfg.psf = starsim::sim::PsfKind::Integrated;
    let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
    let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
    assert!(images_close(&seq.image, &par.image, 1e-4, 1e-4));
}

#[test]
fn moffat_and_smeared_psf_variants_agree_between_simulators() {
    let cat = FieldGenerator::new(96, 96).generate(120, 19);
    for psf in [
        starsim::sim::PsfKind::Moffat { beta: 2.5 },
        starsim::sim::PsfKind::Smeared {
            length: 4.0,
            angle: 0.6,
        },
    ] {
        let mut cfg = config(96, 12);
        cfg.psf = psf;
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        assert!(
            images_close(&seq.image, &par.image, 1e-4, 1e-4),
            "{psf:?} variant diverged between simulators"
        );
        let ada = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        // The LUT path supports any PSF model too (it is just a table of
        // evaluations); quantization bound still applies.
        assert!(ada.image.data().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn deterministic_across_runs_and_workers() {
    let cat = FieldGenerator::new(96, 96).generate(200, 23);
    let cfg = config(96, 10);
    let a = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
    let b = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
    // Counter-level determinism is exact; pixel values agree to tolerance
    // (atomic accumulation order may differ between runs).
    assert_eq!(
        a.profile.kernels[0].counters, b.profile.kernels[0].counters,
        "counters must be deterministic"
    );
    assert!(images_close(&a.image, &b.image, 1e-6, 1e-6));
    assert_eq!(a.kernel_time_s(), b.kernel_time_s());
}
