//! IO round trips across crates: simulate → encode → decode → compare, and
//! catalogue text round trips through the simulators.

use starsim::image::io::bmp::{read_bmp_gray8, write_bmp};
use starsim::image::io::pgm::{read_pgm, write_pgm16, write_pgm8};
use starsim::image::{to_gray16, to_gray8};
use starsim::prelude::*;

fn render() -> (SimulationReport, GrayMap) {
    let cat = FieldGenerator::new(96, 96).generate(60, 31);
    let cfg = SimConfig::new(96, 96, 10);
    let report = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
    let map = GrayMap::auto(&report.image);
    (report, map)
}

#[test]
fn bmp_roundtrip_preserves_gray_levels() {
    let (report, map) = render();
    let mut buf = Vec::new();
    write_bmp(&mut buf, &report.image, map).unwrap();
    let (w, h, gray) = read_bmp_gray8(&mut &buf[..]).unwrap();
    assert_eq!((w, h), (96, 96));
    assert_eq!(gray, to_gray8(&report.image, map));
    // The star image is not black: some pixel saturates to 255.
    assert!(gray.contains(&255));
}

#[test]
fn pgm8_roundtrip_preserves_gray_levels() {
    let (report, map) = render();
    let mut buf = Vec::new();
    write_pgm8(&mut buf, &report.image, map).unwrap();
    let pgm = read_pgm(&mut &buf[..]).unwrap();
    assert_eq!((pgm.width, pgm.height, pgm.maxval), (96, 96, 255));
    let expect: Vec<u16> = to_gray8(&report.image, map)
        .iter()
        .map(|&v| v as u16)
        .collect();
    assert_eq!(pgm.samples, expect);
}

#[test]
fn pgm16_roundtrip_preserves_depth() {
    let (report, map) = render();
    let mut buf = Vec::new();
    write_pgm16(&mut buf, &report.image, map).unwrap();
    let pgm = read_pgm(&mut &buf[..]).unwrap();
    assert_eq!(pgm.maxval, 65535);
    assert_eq!(pgm.samples, to_gray16(&report.image, map));
    // 16-bit must resolve faint PSF wings that 8-bit crushes to zero.
    let gray8 = to_gray8(&report.image, map);
    let crushed = gray8
        .iter()
        .zip(&pgm.samples)
        .filter(|&(&g8, &g16)| g8 == 0 && g16 > 0)
        .count();
    assert!(crushed > 0, "expected 16-bit to resolve sub-8-bit wings");
}

#[test]
fn catalog_text_roundtrip_renders_identically() {
    let cat = FieldGenerator::new(96, 96).generate(80, 37);
    let mut text = Vec::new();
    cat.write_text(&mut text).unwrap();
    let back = StarCatalog::read_text(&text[..]).unwrap();
    assert_eq!(back, cat);

    let cfg = SimConfig::new(96, 96, 10);
    let a = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
    let b = SequentialSimulator::new().simulate(&back, &cfg).unwrap();
    assert_eq!(
        a.image, b.image,
        "round-tripped catalogue must render identically"
    );
}
