//! Streaked-frame analysis across crates: render slew-smeared stars with
//! the extension PSF and recover the streak geometry with blob labeling —
//! what an attitude system does to *measure* its own slew rate from a
//! blurred frame (the paper's reference [9] use case).

use starsim::image::label_blobs;
use starsim::prelude::*;
use starsim::sim::PsfKind;

#[test]
fn streak_orientation_and_elongation_recovered() {
    let angle = 35.0f32.to_radians();
    let length = 8.0f32;
    let stars = StarCatalog::from_stars(vec![
        Star::new(40.0, 40.0, 2.0),
        Star::new(100.0, 60.0, 3.0),
        Star::new(60.0, 110.0, 2.5),
    ]);
    let mut cfg = SimConfig::new(160, 160, 20);
    cfg.sigma = 1.2;
    cfg.psf = PsfKind::Smeared { length, angle };
    let report = SequentialSimulator::new().simulate(&stars, &cfg).unwrap();

    let blobs = label_blobs(&report.image, 1e-3, 5);
    assert_eq!(blobs.len(), 3, "each streak is one blob");
    for b in &blobs {
        assert!(
            b.elongation() > 1.8,
            "streaked star should be elongated, got {}",
            b.elongation()
        );
        let da = (b.orientation - angle).abs();
        assert!(
            da < 0.1,
            "blob orientation {:.3} vs slew angle {angle:.3}",
            b.orientation
        );
    }
}

#[test]
fn static_stars_are_round_blobs() {
    let stars = StarCatalog::from_stars(vec![Star::new(64.0, 64.0, 2.0)]);
    let cfg = SimConfig::new(128, 128, 14);
    let report = SequentialSimulator::new().simulate(&stars, &cfg).unwrap();
    let blobs = label_blobs(&report.image, 1e-3, 5);
    assert_eq!(blobs.len(), 1);
    assert!(
        blobs[0].elongation() < 1.2,
        "static star should be round, got {}",
        blobs[0].elongation()
    );
}

#[test]
fn blob_centroid_matches_detect_stars_for_static_fields() {
    // Two extraction paths agree on round stars.
    let stars =
        StarCatalog::from_stars(vec![Star::new(30.0, 30.0, 2.0), Star::new(90.0, 80.0, 3.0)]);
    let cfg = SimConfig::new(128, 128, 12);
    let report = ParallelSimulator::new().simulate(&stars, &cfg).unwrap();
    let blobs = label_blobs(&report.image, 1e-3, 5);
    let dets = detect_stars(&report.image, CentroidParams::default());
    assert_eq!(blobs.len(), 2);
    assert_eq!(dets.len(), 2);
    for b in &blobs {
        let nearest = dets
            .iter()
            .map(|d| ((d.x - b.cx).powi(2) + (d.y - b.cy).powi(2)).sqrt())
            .fold(f32::INFINITY, f32::min);
        assert!(nearest < 0.2, "blob and centroid disagree by {nearest}");
    }
}

#[test]
fn streak_length_grows_with_slew_rate() {
    let measure = |length: f32| {
        let stars = StarCatalog::from_stars(vec![Star::new(64.0, 64.0, 2.0)]);
        let mut cfg = SimConfig::new(128, 128, 24);
        cfg.sigma = 1.2;
        cfg.psf = if length > 0.0 {
            PsfKind::Smeared { length, angle: 0.0 }
        } else {
            PsfKind::Point
        };
        let report = SequentialSimulator::new().simulate(&stars, &cfg).unwrap();
        label_blobs(&report.image, 1e-3, 5)[0].major_axis
    };
    let a0 = measure(0.0);
    let a5 = measure(5.0);
    let a10 = measure(10.0);
    assert!(a5 > a0 && a10 > a5, "major axis must grow: {a0} {a5} {a10}");
    // The box of length L adds variance L²/12: 2σ grows accordingly.
    let predicted = 2.0 * ((a0 / 2.0).powi(2) + 100.0f32 / 12.0).sqrt();
    assert!(
        (a10 - predicted).abs() / predicted < 0.15,
        "major axis {a10} vs predicted {predicted}"
    );
}
