//! Cross-crate property-style tests of the simulator invariants.
//!
//! Hand-rolled deterministic property loops (seeded `simrng`) instead of
//! `proptest`, so the workspace tests run with no registry access.

use simrng::Rng64;
use starsim::image::diff::images_close;
use starsim::prelude::*;

/// A star strictly interior to a 64×64 image (the whole ROI of side ≤ 12
/// stays in-bounds).
fn interior_star(rng: &mut Rng64) -> Star {
    Star::new(
        rng.range_f32(8.0, 56.0),
        rng.range_f32(8.0, 56.0),
        rng.range_f32(0.0, 15.0),
    )
}

fn interior_stars(rng: &mut Rng64, lo: usize, hi: usize) -> Vec<Star> {
    let n = rng.range_usize(lo, hi);
    (0..n).map(|_| interior_star(rng)).collect()
}

fn small_cfg(roi: usize) -> SimConfig {
    SimConfig::new(64, 64, roi)
}

/// The parallel simulator agrees with the sequential one on arbitrary
/// interior fields.
#[test]
fn parallel_equals_sequential() {
    let mut rng = Rng64::new(0x11);
    for _ in 0..24 {
        let cat = StarCatalog::from_stars(interior_stars(&mut rng, 0, 40));
        let cfg = small_cfg(10);
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        assert!(images_close(&seq.image, &par.image, 1e-4, 1e-4));
    }
}

/// An interior star deposits its full ROI flux: the image total equals
/// the model's per-star ROI flux sum, regardless of star positions.
#[test]
fn flux_conservation() {
    let mut rng = Rng64::new(0x12);
    for _ in 0..24 {
        let cat = StarCatalog::from_stars(interior_stars(&mut rng, 1, 30));
        let cfg = small_cfg(8);
        let model = cfg.intensity_model();
        let expect: f64 = cat.stars().iter().map(|s| model.roi_flux(s)).sum();
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let total: f64 = seq.image.data().iter().map(|&v| v as f64).sum();
        assert!(
            (total - expect).abs() <= 1e-4 * expect.max(1e-12),
            "total {total} vs expected {expect}"
        );
    }
}

/// Simulation is additive: rendering A∪B equals rendering A plus
/// rendering B, pixel-wise (the intensity model is a linear scatter).
#[test]
fn superposition() {
    let mut rng = Rng64::new(0x13);
    for _ in 0..24 {
        let a = interior_stars(&mut rng, 1, 15);
        let b = interior_stars(&mut rng, 1, 15);
        let cfg = small_cfg(10);
        let seq = SequentialSimulator::new();
        let ra = seq
            .simulate(&StarCatalog::from_stars(a.clone()), &cfg)
            .unwrap();
        let rb = seq
            .simulate(&StarCatalog::from_stars(b.clone()), &cfg)
            .unwrap();
        let mut union = a;
        union.extend(b);
        let ru = seq.simulate(&StarCatalog::from_stars(union), &cfg).unwrap();
        let mut summed = ra.image.clone();
        for (dst, src) in summed.data_mut().iter_mut().zip(rb.image.data()) {
            *dst += src;
        }
        assert!(images_close(&ru.image, &summed, 1e-4, 1e-4));
    }
}

/// Star order never changes the sequential image beyond f32 rounding.
#[test]
fn permutation_invariance() {
    let mut rng = Rng64::new(0x14);
    for _ in 0..24 {
        let stars = interior_stars(&mut rng, 2, 25);
        let cfg = small_cfg(10);
        let seq = SequentialSimulator::new();
        let fwd = seq
            .simulate(&StarCatalog::from_stars(stars.clone()), &cfg)
            .unwrap();
        let mut rev = stars;
        rev.reverse();
        let bwd = seq.simulate(&StarCatalog::from_stars(rev), &cfg).unwrap();
        assert!(images_close(&fwd.image, &bwd.image, 1e-4, 1e-4));
    }
}

/// Image pixels are always non-negative and finite.
#[test]
fn pixels_non_negative_and_finite() {
    let mut rng = Rng64::new(0x15);
    for _ in 0..24 {
        let cat = StarCatalog::from_stars(interior_stars(&mut rng, 0, 30));
        let roi = rng.range_usize(1, 14);
        let cfg = small_cfg(roi);
        let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        assert!(par.image.data().iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}

/// The adaptive image differs from sequential by at most the lookup
/// table's worst-case magnitude-quantization factor, for pixel-centred
/// stars.
#[test]
fn adaptive_quantization_bound() {
    let mut rng = Rng64::new(0x16);
    let cfg = small_cfg(10);
    let lut = AdaptiveSimulator::new().build_lut(&cfg).unwrap();
    let bound = lut.brightness().max_relative_error() * 1.5;
    for _ in 0..8 {
        let seed = rng.range_u64(0, 1000);
        let cat = FieldGenerator::new(64, 64)
            .positions(PositionModel::UniformPixelCentred)
            .generate(30, seed);
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let ada = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        let d = starsim::image::diff::compare(&seq.image, &ada.image, 0.0);
        assert!(d.max_rel <= bound, "seed {seed}: {} > {bound}", d.max_rel);
    }
}

/// Selection is total and stable: for any workload, `choose` returns
/// one of the three simulators, and larger workloads never move the
/// choice *back* toward sequential.
#[test]
fn selection_is_monotone() {
    let mut rng = Rng64::new(0x17);
    for _ in 0..256 {
        let stars = rng.range_usize(1, 1_000_000);
        let roi = rng.range_usize(1, 33);
        let p = InflectionPoint::default();
        let c = p.choose(stars, roi);
        // Doubling the stars can only move Sequential→Parallel→Adaptive.
        let c2 = p.choose(stars * 2, roi);
        let rank = |c: Choice| match c {
            Choice::Sequential => 0,
            Choice::Parallel => 1,
            Choice::Adaptive => 2,
        };
        assert!(rank(c2) >= rank(c), "{c:?} -> {c2:?} at {stars}x{roi}");
    }
}
