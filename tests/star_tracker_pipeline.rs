//! End-to-end star-tracker pipeline: the application the paper's
//! introduction motivates. Sky catalogue → attitude → FOV retrieval →
//! intensity-model rendering → centroid extraction → position matching.

use starsim::field::generator::synthetic_sky;
use starsim::prelude::*;

#[test]
fn rendered_stars_are_recovered_by_centroiding() {
    // A synthetic sky dense enough that a 10° FOV catches a handful of
    // bright stars.
    let sky = synthetic_sky(20_000, 0.0, 6.0, 99);
    let camera = Camera::from_fov(10.0f64.to_radians(), 512, 512).unwrap();
    let attitude = Attitude::pointing(1.1, 0.35, 0.4);

    let catalog = sky.view(attitude, &camera, 5.0);
    assert!(
        catalog.len() >= 5,
        "need a handful of stars in view, got {}",
        catalog.len()
    );

    // Keep the brightest few so blends don't complicate matching.
    let mut sorted = catalog.clone();
    sorted.sort_by_brightness();
    let bright = StarCatalog::from_stars(
        sorted
            .stars()
            .iter()
            .take(12)
            .copied()
            .filter(|s| s.in_image(512, 512))
            .collect(),
    );

    let cfg = SimConfig::new(512, 512, 12);
    let report = ParallelSimulator::new().simulate(&bright, &cfg).unwrap();

    let detections = detect_stars(
        &report.image,
        CentroidParams {
            threshold: 1e-4,
            window: 5,
        },
    );
    assert!(
        detections.len() >= bright.len() / 2,
        "detected {} of {} stars",
        detections.len(),
        bright.len()
    );

    // Every detection must match an injected star within half a pixel
    // (centroiding over a symmetric PSF is sub-pixel accurate).
    let mut matched = 0;
    for d in &detections {
        let best = bright
            .stars()
            .iter()
            .map(|s| ((s.pos.x - d.x).powi(2) + (s.pos.y - d.y).powi(2)).sqrt())
            .fold(f32::INFINITY, f32::min);
        if best < 0.5 {
            matched += 1;
        }
    }
    assert!(
        matched as f64 >= detections.len() as f64 * 0.8,
        "only {matched}/{} detections matched an injected star",
        detections.len()
    );
}

#[test]
fn boresight_pointing_round_trips_through_the_image() {
    // Put a single bright star exactly on the boresight: it must render at
    // the principal point and centroid back there.
    let (ra, dec) = (2.0, -0.3);
    let sky = SkyCatalog::from_stars(vec![starsim::field::SkyStar::new(ra, dec, 1.0)]);
    let camera = Camera::from_fov(8.0f64.to_radians(), 256, 256).unwrap();
    let attitude = Attitude::pointing(ra, dec, 1.7);
    let catalog = sky.view(attitude, &camera, 0.0);
    assert_eq!(catalog.len(), 1);

    let cfg = SimConfig::new(256, 256, 10);
    let report = SequentialSimulator::new().simulate(&catalog, &cfg).unwrap();
    let detections = detect_stars(&report.image, CentroidParams::default());
    assert_eq!(detections.len(), 1);
    let d = detections[0];
    assert!(
        (d.x - 128.0).abs() < 0.5 && (d.y - 128.0).abs() < 0.5,
        "boresight star centroided at ({}, {})",
        d.x,
        d.y
    );
}

#[test]
fn magnitude_ordering_survives_the_pipeline() {
    // Brighter catalogue stars must come out with larger measured flux.
    let stars = vec![
        Star::new(60.0, 60.0, 1.0),
        Star::new(160.0, 60.0, 3.0),
        Star::new(60.0, 160.0, 5.0),
        Star::new(160.0, 160.0, 7.0),
    ];
    let cat = StarCatalog::from_stars(stars.clone());
    let cfg = SimConfig::new(224, 224, 12);
    let report = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
    let mut detections = detect_stars(&report.image, CentroidParams::default());
    assert_eq!(detections.len(), 4);
    // Sort detections by injected order via nearest position.
    detections.sort_by(|a, b| {
        let key = |d: &Detection| {
            stars
                .iter()
                .position(|s| (s.pos.x - d.x).abs() < 2.0 && (s.pos.y - d.y).abs() < 2.0)
                .unwrap()
        };
        key(a).cmp(&key(b))
    });
    for w in detections.windows(2) {
        assert!(
            w[0].flux > w[1].flux,
            "flux ordering broken: {} !> {}",
            w[0].flux,
            w[1].flux
        );
    }
}

use starsim::image::centroid::Detection;

#[test]
fn attitude_recovered_end_to_end_via_triad() {
    // The complete star-tracker loop: render under a known attitude,
    // extract centroids, identify stars against the catalogue, solve the
    // attitude with TRIAD, and compare with the truth.
    use starsim::field::{attitude_error, triad, Observation};

    let sky = synthetic_sky(30_000, 0.0, 6.0, 55);
    let camera = Camera::from_fov(10.0f64.to_radians(), 512, 512).unwrap();
    let truth = Attitude::pointing(2.2, -0.4, 0.9);

    let catalog = sky.view(truth, &camera, 0.0);
    assert!(
        catalog.len() >= 4,
        "need stars in view, got {}",
        catalog.len()
    );
    let mut bright = catalog.clone();
    bright.sort_by_brightness();
    let bright = StarCatalog::from_stars(bright.stars().iter().take(10).copied().collect());

    let cfg = SimConfig::new(512, 512, 12);
    let image = ParallelSimulator::new()
        .simulate(&bright, &cfg)
        .unwrap()
        .image;
    let detections = detect_stars(
        &image,
        CentroidParams {
            threshold: 1e-4,
            window: 5,
        },
    );
    assert!(detections.len() >= 2, "need ≥2 detections");

    // Star identification: match each detection to the nearest catalogue
    // star (in a real tracker this is the lost-in-space problem; with the
    // truth catalogue in hand nearest-neighbour suffices).
    let mut observations = Vec::new();
    for d in &detections {
        let (star, dist) = bright
            .stars()
            .iter()
            .map(|s| {
                let dd = ((s.pos.x - d.x).powi(2) + (s.pos.y - d.y).powi(2)).sqrt();
                (s, dd)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if dist > 1.0 {
            continue;
        }
        // Body direction from the *measured* centroid; inertial direction
        // from the catalogue (invert the view projection via the truth —
        // equivalently, look the star up in the sky catalogue).
        let body = camera.unproject(starsim::field::Vec2::new(d.x, d.y));
        let inertial = truth.rotate(camera.unproject(star.pos));
        observations.push(Observation { body, inertial });
    }
    assert!(observations.len() >= 2, "need ≥2 identified stars");

    let estimate = triad(&observations).unwrap();
    let err = attitude_error(estimate, truth);
    let arcsec = err.to_degrees() * 3600.0;
    // Sub-pixel centroiding through a 10° / 512 px camera ⇒ tens of arcsec.
    assert!(
        arcsec < 120.0,
        "attitude error {arcsec:.1} arcsec too large for a working tracker"
    );
}
