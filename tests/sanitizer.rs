//! Integration tests for `gpusim::sanitize` — the compute-sanitizer mode
//! and the static pre-launch validators.
//!
//! Three claims, per the PR-5 acceptance criteria:
//!
//! 1. every defect class in the known-bad corpus (shared race, global
//!    race, barrier divergence, uninit shared read, OOB global / shared /
//!    texture, arena use-after-recycle) is flagged deterministically;
//! 2. the three paper simulators pass the sanitizer clean;
//! 3. sanitized execution is observationally identical to reference
//!    execution — bit-identical images and identical counters.

use std::sync::Arc;

use gpusim::sanitize::corpus;
use gpusim::{
    ExecMode, FaultKind, FaultPlan, FindingKind, LaunchConfig, MemSpace, SanitizeReport, VirtualGpu,
};
use starfield::FieldGenerator;
use starsim_core::{
    AdaptiveSession, AdaptiveSimulator, ParallelSimulator, SequentialSimulator, SimConfig,
    Simulator,
};

/// A small sanitizing device: 2 workers exercise the cross-worker merge.
fn device() -> VirtualGpu {
    VirtualGpu::gtx480()
        .with_workers(2)
        .with_exec_mode(ExecMode::Sanitized)
}

/// A [`SimConfig`] honoring `STARSIM_BACKEND` (scripts/ci.sh reruns this
/// suite with `STARSIM_BACKEND=simd`): every sanitizer claim — corpus
/// flagging, clean passes, sanitized-vs-reference bit identity — must be
/// backend-independent.
fn sim_config(w: usize, h: usize, roi: usize) -> SimConfig {
    let mut c = SimConfig::new(w, h, roi);
    if let Ok(s) = std::env::var("STARSIM_BACKEND") {
        c.backend = gpusim::KernelBackend::parse(&s)
            .unwrap_or_else(|| panic!("STARSIM_BACKEND must be scalar|simd, got {s:?}"));
    }
    // scripts/ci.sh also reruns this suite with STARSIM_ANALYZE=1: every
    // sanitizer claim must hold with the pre-launch advisor enabled (the
    // analyzer is setup-only, so nothing here may change).
    if std::env::var("STARSIM_ANALYZE").is_ok_and(|v| v == "1") {
        c.analyze = true;
    }
    c
}

/// Launches `kernel` once in sanitized mode and drains the single report.
fn sanitize_one<K: gpusim::Kernel>(
    gpu: &VirtualGpu,
    kernel: &K,
    cfg: LaunchConfig,
) -> SanitizeReport {
    gpu.launch("corpus", kernel, cfg).expect("sanitized launch");
    let mut reports = gpu.take_sanitize_reports();
    assert_eq!(reports.len(), 1, "one launch, one report");
    reports.pop().unwrap()
}

#[test]
fn missing_barrier_is_flagged_as_shared_race() {
    let gpu = device();
    let (src, _) = gpu.upload(vec![1.0f32; 4]);
    let image = gpu.alloc_atomic_f32(4 * 32);
    let kernel = corpus::MissingBarrier {
        src: &src,
        image: &image,
    };
    let report = sanitize_one(
        &gpu,
        &kernel,
        LaunchConfig::new(4u32, 32u32).with_shared_mem(4),
    );
    assert_eq!(
        report.count_class("race"),
        4,
        "one race per block: {report:?}"
    );
    match &report.findings[0].kind {
        FindingKind::Race {
            space,
            addr,
            epoch,
            lanes,
            blocks,
        } => {
            assert_eq!(*space, MemSpace::Shared);
            assert_eq!(*addr, 0, "the staged word");
            assert_eq!(*epoch, 0, "write and read in the same epoch");
            assert_eq!(*lanes, (0, 1), "writer lane 0 vs first conflicting reader");
            assert_eq!(*blocks, (0, 0));
        }
        other => panic!("expected a shared race, got {other:?}"),
    }
}

#[test]
fn plain_store_is_flagged_as_global_race() {
    let gpu = device();
    let image = gpu.alloc_atomic_f32(4);
    let kernel = corpus::PlainStore { image: &image };
    let report = sanitize_one(&gpu, &kernel, LaunchConfig::new(4u32, 32u32));
    assert_eq!(
        report.count_class("race"),
        4,
        "one race per contended pixel: {report:?}"
    );
    assert!(report.findings.iter().all(|f| matches!(
        f.kind,
        FindingKind::Race {
            space: MemSpace::Global,
            lanes: (0, 1),
            ..
        }
    )));
}

#[test]
fn roi_off_by_one_is_flagged_as_global_oob_not_a_panic() {
    let gpu = device();
    let image = gpu.alloc_atomic_f32(63);
    let kernel = corpus::RoiOffByOne { image: &image };
    // 64 linear indices cover 0..=63; the `<=` guard admits index 63 == len.
    let report = sanitize_one(&gpu, &kernel, LaunchConfig::new(2u32, 32u32));
    assert_eq!(report.count_class("out-of-bounds"), 1, "{report:?}");
    match &report.findings[0].kind {
        FindingKind::OutOfBounds {
            space,
            index,
            limit,
            lane,
            ..
        } => {
            assert_eq!(*space, MemSpace::Global);
            assert_eq!((*index, *limit), (63, 63));
            assert_eq!(*lane, 31, "the last lane of block 1");
        }
        other => panic!("expected OOB, got {other:?}"),
    }
    assert_eq!(report.findings[0].block, 1);
    // The stray accumulation was suppressed, not clamped onto pixel 62.
    assert_eq!(image.read(62), 1.0);
}

#[test]
fn unsanitized_roi_off_by_one_still_faults() {
    // Without the sanitizer the same kernel panics in the memory model and
    // surfaces as WorkerPanic — the behavior sanitized mode replaces.
    let gpu = VirtualGpu::gtx480()
        .with_workers(2)
        .with_exec_mode(ExecMode::Reference);
    let image = gpu.alloc_atomic_f32(63);
    let kernel = corpus::RoiOffByOne { image: &image };
    let err = gpu
        .launch("corpus", &kernel, LaunchConfig::new(2u32, 32u32))
        .unwrap_err();
    assert!(
        matches!(err, gpusim::GpuError::WorkerPanic(_)),
        "expected WorkerPanic, got {err}"
    );
}

#[test]
fn divergent_exit_is_flagged_as_barrier_divergence() {
    let gpu = device();
    let report = sanitize_one(&gpu, &corpus::DivergentExit, LaunchConfig::new(1u32, 32u32));
    assert_eq!(report.count_class("barrier-divergence"), 1, "{report:?}");
    assert!(matches!(
        report.findings[0].kind,
        FindingKind::BarrierDivergence {
            barrier: 1,
            arrived: 31,
            expected: 32,
        }
    ));
}

#[test]
fn uninit_shared_read_is_flagged() {
    let gpu = device();
    let report = sanitize_one(
        &gpu,
        &corpus::UninitRead,
        LaunchConfig::new(1u32, 32u32).with_shared_mem(4),
    );
    assert_eq!(report.count_class("uninit-shared-read"), 1, "{report:?}");
    assert!(matches!(
        report.findings[0].kind,
        FindingKind::UninitSharedRead {
            word: 0,
            epoch: 0,
            lane: 0,
        }
    ));
    assert_eq!(report.count_class("race"), 0, "reads alone never race");
}

#[test]
fn shared_oob_write_is_flagged_and_dropped() {
    let gpu = device();
    let report = sanitize_one(
        &gpu,
        &corpus::SharedOob { words: 3 },
        LaunchConfig::new(1u32, 32u32).with_shared_mem(3 * 4),
    );
    assert_eq!(report.count_class("out-of-bounds"), 1, "{report:?}");
    assert!(matches!(
        report.findings[0].kind,
        FindingKind::OutOfBounds {
            space: MemSpace::Shared,
            index: 3,
            limit: 3,
            lane: 0,
            ..
        }
    ));
}

#[test]
fn texture_layer_oob_is_flagged_despite_hardware_clamping() {
    let gpu = device();
    let (lut, _, _) = gpu
        .bind_texture(4, 4, 2, vec![0.5; 4 * 4 * 2])
        .expect("bind");
    let kernel = corpus::TexLayerOob { lut: &lut };
    let report = sanitize_one(&gpu, &kernel, LaunchConfig::new(1u32, 32u32));
    assert!(
        report.count_class("out-of-bounds") >= 1,
        "pre-clamp layer index must be reported: {report:?}"
    );
    assert!(report.findings.iter().any(|f| matches!(
        f.kind,
        FindingKind::OutOfBounds {
            space: MemSpace::Texture,
            index: 2,
            limit: 2,
            ..
        }
    )));
}

#[test]
fn corpus_reports_are_deterministic_across_worker_counts() {
    let run = |workers: usize| {
        let gpu = VirtualGpu::gtx480()
            .with_workers(workers)
            .with_exec_mode(ExecMode::Sanitized);
        let (src, _) = gpu.upload(vec![1.0f32; 8]);
        let image = gpu.alloc_atomic_f32(8 * 32);
        let kernel = corpus::MissingBarrier {
            src: &src,
            image: &image,
        };
        sanitize_one(
            &gpu,
            &kernel,
            LaunchConfig::new(8u32, 32u32).with_shared_mem(4),
        )
        .findings
    };
    let one = run(1);
    let four = run(4);
    assert!(!one.is_empty());
    assert_eq!(one, four, "findings must not depend on host parallelism");
}

#[test]
fn arena_use_after_recycle_is_reported_as_memcheck_finding() {
    // ShadowCorrupt poisons a recycled shadow buffer mid-merge; the arena
    // screens (drops) it, and the sanitizer reports the screen as a
    // use-after-recycle memcheck finding — in *batched* mode, no
    // sanitized execution required.
    let plan = Arc::new(FaultPlan::single(FaultKind::ShadowCorrupt, 0, 0));
    let gpu = VirtualGpu::gtx480()
        .with_workers(2)
        .with_fault_plan(plan)
        .with_exec_mode(ExecMode::Batched);
    let sim = ParallelSimulator::on(gpu);
    let cat = FieldGenerator::new(64, 64).generate(100, 11);
    sim.simulate(&cat, &sim_config(64, 64, 10)).expect("frame");
    let reports = sim.gpu().take_sanitize_reports();
    assert_eq!(reports.len(), 1, "{reports:?}");
    assert!(matches!(
        reports[0].findings[0].kind,
        FindingKind::ArenaRecycleFault { dropped: 1 }
    ));
}

#[test]
fn all_three_simulators_pass_the_sanitizer_clean() {
    let mut config = sim_config(64, 64, 10);
    config.exec_mode = ExecMode::Sanitized;
    let cat = FieldGenerator::new(64, 64).generate(200, 7);

    // Sequential: pure host code, nothing to sanitize — and nothing flagged.
    SequentialSimulator::new()
        .simulate(&cat, &config)
        .expect("sequential");

    let par = ParallelSimulator::new();
    par.simulate(&cat, &config).expect("parallel");
    let reports = par.gpu().take_sanitize_reports();
    assert!(!reports.is_empty(), "sanitized launches must report");
    for r in &reports {
        assert!(r.is_clean(), "parallel kernel must be clean: {r:?}");
        assert!(r.accesses > 0, "shadow access sets must be populated");
    }

    let ada = AdaptiveSimulator::new();
    ada.simulate(&cat, &config).expect("adaptive");
    let reports = ada.gpu().take_sanitize_reports();
    assert!(!reports.is_empty());
    for r in &reports {
        assert!(r.is_clean(), "adaptive kernel must be clean: {r:?}");
    }
}

#[test]
fn sanitized_session_stays_clean_across_frames() {
    let mut config = sim_config(64, 64, 10);
    config.exec_mode = ExecMode::Sanitized;
    config.workers = Some(2);
    let session = AdaptiveSession::on(VirtualGpu::gtx480(), config).expect("session");
    let cat = FieldGenerator::new(64, 64).generate(128, 3);
    let mut host = Vec::new();
    for _ in 0..3 {
        session.render_into(&cat, &mut host).expect("frame");
    }
    let reports = session.gpu().take_sanitize_reports();
    assert_eq!(reports.len(), 3, "one report per sanitized frame");
    assert!(reports.iter().all(SanitizeReport::is_clean), "{reports:?}");
}

#[test]
fn sanitized_execution_is_bit_identical_to_reference() {
    let cat = FieldGenerator::new(64, 64).generate(300, 5);
    let mut reference = sim_config(64, 64, 10);
    reference.exec_mode = ExecMode::Reference;
    let mut sanitized = reference.clone();
    sanitized.exec_mode = ExecMode::Sanitized;

    let r = ParallelSimulator::new()
        .simulate(&cat, &reference)
        .expect("reference");
    let s = ParallelSimulator::new()
        .simulate(&cat, &sanitized)
        .expect("sanitized");
    assert_eq!(
        r.image.data(),
        s.image.data(),
        "sanitized image must be bit-identical"
    );
    assert_eq!(
        r.profile.kernels[0].counters, s.profile.kernels[0].counters,
        "sanitized counters must be identical"
    );
    assert_eq!(
        r.profile.kernels[0].time_s, s.profile.kernels[0].time_s,
        "modeled kernel time must be identical"
    );

    let ra = AdaptiveSimulator::new()
        .simulate(&cat, &reference)
        .expect("reference");
    let sa = AdaptiveSimulator::new()
        .simulate(&cat, &sanitized)
        .expect("sanitized");
    assert_eq!(ra.image.data(), sa.image.data());
    assert_eq!(
        ra.profile.kernels[0].counters,
        sa.profile.kernels[0].counters
    );
}

#[test]
fn static_validator_rejects_oversized_roi_before_dispatch() {
    // ROI 80 on a 64×64 image: every star would index past the image.
    let config = sim_config(64, 64, 80);
    let cat = FieldGenerator::new(64, 64).generate(10, 1);
    let err = ParallelSimulator::new()
        .simulate(&cat, &config)
        .unwrap_err();
    assert!(err.to_string().contains("80"), "typed rejection: {err}");
    let err = AdaptiveSimulator::new()
        .simulate(&cat, &config)
        .unwrap_err();
    assert!(err.to_string().contains("80"), "typed rejection: {err}");
    let err = match AdaptiveSession::on(VirtualGpu::gtx480(), config) {
        Err(e) => e,
        Ok(_) => panic!("session setup must reject an oversized ROI"),
    };
    assert!(err.to_string().contains("80"), "typed rejection: {err}");
}

#[test]
fn static_validator_rejects_launch_dims_beyond_device_limits() {
    let gpu = device();
    let spec = gpu.spec().clone();
    let cfg = LaunchConfig::new(1u32, spec.max_threads_per_block + 1);
    let err = gpusim::sanitize::validate_launch(&cfg, &spec).unwrap_err();
    assert!(matches!(err, gpusim::GpuError::InvalidLaunch(_)), "{err}");
}
