//! Chaos matrix: every injected fault kind, against both GPU simulators,
//! must be absorbed by the resilience layer — all frames complete, the
//! final images are **bit-identical** to a fault-free run at the same
//! worker count, and the `ResilienceReport` records exactly the retries
//! and degradation rungs the plan implies.

use std::sync::Arc;
use std::time::Duration;

use starsim::field::{FieldGenerator, StarCatalog};
use starsim::gpu::{FaultKind, FaultPlan, VirtualGpu};
use starsim::sim::resilience::run_with_retry;
use starsim::sim::{
    AdaptiveSession, ExecMode, ParallelSimulator, ResilienceReport, RetryPolicy, Rung, SimConfig,
    Simulator,
};

const WORKERS: usize = 4;
const FRAMES: usize = 3;

fn cfg() -> SimConfig {
    let mut c = SimConfig::new(128, 128, 10);
    c.workers = Some(WORKERS);
    c
}

fn catalog(frame: u64) -> StarCatalog {
    FieldGenerator::new(128, 128).generate(150, 40 + frame)
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        backoff: Duration::ZERO,
        ..RetryPolicy::default()
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Renders `FRAMES` frames through the zero-allocation session path.
fn session_frames(session: &AdaptiveSession) -> Vec<Vec<u32>> {
    let mut host = Vec::new();
    (0..FRAMES)
        .map(|i| {
            session
                .render_into(&catalog(i as u64), &mut host)
                .unwrap_or_else(|e| panic!("frame {i} failed: {e}"));
            bits(&host)
        })
        .collect()
}

/// A faulted device: one `kind` fault at launch 1 (the second frame),
/// watchdog armed, short stall.
fn chaos_gpu(kind: FaultKind) -> (Arc<FaultPlan>, VirtualGpu) {
    let plan = Arc::new(FaultPlan::single(kind, 1, 2).with_stall(Duration::from_millis(150)));
    let gpu = VirtualGpu::gtx480()
        .with_fault_plan(Arc::clone(&plan))
        .with_watchdog(Duration::from_millis(40));
    (plan, gpu)
}

#[test]
fn chaos_matrix_adaptive_session_recovers_bit_identically() {
    let clean = AdaptiveSession::on(VirtualGpu::gtx480(), cfg()).expect("clean session");
    let expected = session_frames(&clean);

    for kind in FaultKind::ALL {
        let (plan, gpu) = chaos_gpu(kind);
        let session =
            AdaptiveSession::on_resilient(gpu, cfg(), fast_retry()).expect("resilient session");
        let got = session_frames(&session);
        assert_eq!(
            expected, got,
            "{kind:?}: recovered frames must be bit-identical to the fault-free run"
        );
        assert_eq!(plan.remaining(), 0, "{kind:?}: the fault must have fired");

        let r = session.resilience_report();
        assert_eq!(r.frames, FRAMES as u64, "{kind:?}");
        assert_eq!(r.exhausted, 0, "{kind:?}");
        match kind {
            FaultKind::WorkerPanic => {
                assert_eq!((r.retries, r.panics), (1, 1), "{kind:?}");
                assert_eq!(r.rung_frames, [2, 1, 0, 0], "{kind:?}");
            }
            FaultKind::StuckLane => {
                assert_eq!((r.retries, r.timeouts), (1, 1), "{kind:?}");
                assert_eq!(r.rung_frames, [2, 1, 0, 0], "{kind:?}");
                assert_eq!(r.pool_rebuilds, 1, "{kind:?}: pool rebuilt after poison");
            }
            FaultKind::AllocOom => {
                assert_eq!((r.retries, r.oom), (1, 1), "{kind:?}");
                assert_eq!(r.rung_frames, [2, 1, 0, 0], "{kind:?}");
            }
            FaultKind::TransferCorrupt => {
                assert_eq!((r.retries, r.corruptions), (1, 1), "{kind:?}");
                assert_eq!(
                    r.checksum_catches, 1,
                    "{kind:?}: checksum must catch the flip"
                );
                assert_eq!(r.rung_frames, [2, 1, 0, 0], "{kind:?}");
            }
            FaultKind::TextureBindFail => {
                // Fired (and retried) at session setup, not during a frame.
                assert_eq!((r.retries, r.bind_failures), (1, 1), "{kind:?}");
                assert_eq!(r.rung_frames, [3, 0, 0, 0], "{kind:?}");
            }
            FaultKind::ShadowCorrupt => {
                // Corruption lands post-drain: the frame completes, the
                // arena quarantines the buffer, nothing is retried.
                assert_eq!(r.retries, 0, "{kind:?}");
                assert_eq!(r.rung_frames, [3, 0, 0, 0], "{kind:?}");
                assert!(r.arena_drops >= 1, "{kind:?}: arena must drop the buffer");
            }
        }
    }
}

#[test]
fn chaos_matrix_simd_backend_recovers_bit_identically() {
    // The resilience ladder is backend-independent: a session configured
    // with the SIMD fast paths absorbs every fault kind and still produces
    // frames bit-identical to a fault-free *scalar* run — the adaptive
    // SIMD path is bit-identical by construction, and any degradation to
    // the reference executor lands on scalar per-thread code anyway.
    let mut simd_cfg = cfg();
    simd_cfg.backend = starsim::sim::KernelBackend::Simd;

    let clean = AdaptiveSession::on(VirtualGpu::gtx480(), cfg()).expect("clean scalar session");
    let expected = session_frames(&clean);

    for kind in FaultKind::ALL {
        let (plan, gpu) = chaos_gpu(kind);
        let session = AdaptiveSession::on_resilient(gpu, simd_cfg.clone(), fast_retry())
            .expect("resilient simd session");
        let got = session_frames(&session);
        assert_eq!(
            expected, got,
            "{kind:?}: simd recovery must be bit-identical to the scalar fault-free run"
        );
        assert_eq!(plan.remaining(), 0, "{kind:?}: the fault must have fired");
        let r = session.resilience_report();
        assert_eq!(r.frames, FRAMES as u64, "{kind:?}");
        assert_eq!(r.exhausted, 0, "{kind:?}");
    }
}

#[test]
fn chaos_matrix_parallel_simulator_recovers_bit_identically() {
    let expected: Vec<Vec<u32>> = {
        let sim = ParallelSimulator::on(VirtualGpu::gtx480().with_workers(WORKERS));
        (0..FRAMES)
            .map(|i| {
                bits(
                    sim.simulate(&catalog(i as u64), &cfg())
                        .unwrap()
                        .image
                        .data(),
                )
            })
            .collect()
    };

    for kind in FaultKind::ALL {
        let (plan, gpu) = chaos_gpu(kind);
        let sim = ParallelSimulator::on(gpu.with_workers(WORKERS));
        let policy = fast_retry();
        let mut report = ResilienceReport::default();
        let mut got = Vec::new();
        for i in 0..FRAMES {
            let cat = catalog(i as u64);
            let frame = run_with_retry(&policy, &mut report, |rung| {
                // The plain-simulator degradation ladder: spawn dispatch,
                // then the reference executor. (No LUT to fall back from,
                // so the bottom rung coincides with ReferenceExec.)
                sim.gpu().set_dispatch_override(rung >= Rung::SpawnDispatch);
                let mut c = cfg();
                if rung >= Rung::ReferenceExec {
                    c.exec_mode = ExecMode::Reference;
                }
                sim.simulate(&cat, &c).map(|r| bits(r.image.data()))
            })
            .unwrap_or_else(|e| panic!("{kind:?} frame {i}: {e}"));
            sim.gpu().set_dispatch_override(false);
            got.push(frame);
        }
        assert_eq!(expected, got, "{kind:?}: recovery must be bit-identical");
        report.absorb_diagnostics(sim.gpu().diagnostics());

        match kind {
            FaultKind::TextureBindFail => {
                // The parallel simulator never binds a texture: the fault
                // has nowhere to fire and every frame stays clean.
                assert_eq!(plan.remaining(), 1, "{kind:?}");
                assert_eq!(report.retries, 0, "{kind:?}");
                assert_eq!(report.rung_frames, [3, 0, 0, 0], "{kind:?}");
            }
            FaultKind::ShadowCorrupt => {
                assert_eq!(plan.remaining(), 0, "{kind:?}");
                assert_eq!(report.retries, 0, "{kind:?}");
                assert!(report.arena_drops >= 1, "{kind:?}");
            }
            _ => {
                assert_eq!(plan.remaining(), 0, "{kind:?}: the fault must have fired");
                assert_eq!(report.retries, 1, "{kind:?}");
                assert_eq!(report.rung_frames, [2, 1, 0, 0], "{kind:?}");
                assert_eq!(report.exhausted, 0, "{kind:?}");
            }
        }
    }
}

#[test]
fn seeded_fault_plan_completes_all_frames_bit_identically() {
    // ≥ 24 frames: every fault of the seeded plan gets its own stride-4
    // slot (six kinds × stride 4), so each costs exactly one retry and
    // recovery stays on the bit-identical rungs (≤ SpawnDispatch).
    const N: usize = 24;
    let clean = AdaptiveSession::on(VirtualGpu::gtx480(), cfg()).unwrap();
    let mut host = Vec::new();
    let expected: Vec<Vec<u32>> = (0..N)
        .map(|i| {
            clean.render_into(&catalog(i as u64), &mut host).unwrap();
            bits(&host)
        })
        .collect();

    let plan = Arc::new(FaultPlan::seeded(7, N as u64).with_stall(Duration::from_millis(120)));
    let gpu = VirtualGpu::gtx480()
        .with_fault_plan(Arc::clone(&plan))
        .with_watchdog(Duration::from_millis(30));
    let session = AdaptiveSession::on_resilient(gpu, cfg(), fast_retry()).unwrap();
    let mut host = Vec::new();
    for (i, want) in expected.iter().enumerate() {
        session
            .render_into(&catalog(i as u64), &mut host)
            .unwrap_or_else(|e| panic!("seeded chaos frame {i}: {e}"));
        assert_eq!(want, &bits(&host), "frame {i} must be bit-identical");
    }

    let r = session.resilience_report();
    assert_eq!(r.frames, N as u64);
    assert_eq!(r.exhausted, 0, "the seeded plan must never exhaust retries");
    assert_eq!(plan.remaining(), 0, "every planned fault fires: {r:?}");
    assert_eq!(plan.injected(), 6);
    assert_eq!(
        r.rung_frames[2] + r.rung_frames[3],
        0,
        "spaced faults must never push a frame past the bit-identical rungs: {r:?}"
    );
}

#[test]
fn no_panic_crosses_the_public_boundary() {
    for kind in FaultKind::ALL {
        let (_, gpu) = chaos_gpu(kind);
        // No retry policy: the fault surfaces as an Err — but it must be an
        // Err, never an unwinding panic.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let session = AdaptiveSession::on(gpu, cfg())?;
            let mut host = Vec::new();
            for i in 0..FRAMES {
                session.render_into(&catalog(i as u64), &mut host)?;
            }
            Ok::<(), starsim::sim::SimError>(())
        }));
        assert!(
            outcome.is_ok(),
            "{kind:?}: a panic escaped the library boundary"
        );
    }
}

#[test]
fn watchdog_converts_a_stuck_lane_within_the_deadline() {
    let stall = Duration::from_millis(400);
    let plan = Arc::new(FaultPlan::single(FaultKind::StuckLane, 0, 1).with_stall(stall));
    let gpu = VirtualGpu::gtx480()
        .with_workers(WORKERS)
        .with_fault_plan(plan)
        .with_watchdog(Duration::from_millis(30));
    let session = AdaptiveSession::on(gpu, cfg()).unwrap();
    let mut host = Vec::new();
    let start = std::time::Instant::now();
    let err = session.render_into(&catalog(0), &mut host).unwrap_err();
    assert!(
        start.elapsed() < stall,
        "watchdog must fire before the stall ends"
    );
    assert!(
        err.to_string().contains("watchdog expired"),
        "expected a launch-timeout error, got: {err}"
    );
    // The session (and its rebuilt pool) serves the very next frame.
    session
        .render_into(&catalog(0), &mut host)
        .expect("pool must be reusable on the next launch");
    assert_eq!(session.resilience_report().pool_rebuilds, 1);
}
