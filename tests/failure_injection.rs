//! Failure injection: the limits the paper documents in §IV-D must be
//! enforced as errors, not silent corruption.

use starsim::prelude::*;
use starsim::sim::SimError;

#[test]
fn roi_beyond_thread_block_limit_is_rejected() {
    // "the thread block has a maximum of 1024 threads, and this translates
    // into the limitation on the size of ROI".
    let cat = StarCatalog::from_stars(vec![Star::new(100.0, 100.0, 3.0)]);
    let cfg = SimConfig::new(256, 256, 33);
    let err = ParallelSimulator::new().simulate(&cat, &cfg).unwrap_err();
    match err {
        SimError::Gpu(g) => assert!(g.to_string().contains("exceeds the 32 px cap")),
        other => panic!("expected launch error, got {other}"),
    }
    // The sequential simulator has no such limit.
    assert!(SequentialSimulator::new().simulate(&cat, &cfg).is_ok());
}

#[test]
fn lookup_table_beyond_texture_memory_is_rejected() {
    // "we should first determine the size of lookup table to assure that it
    // can be successfully bound into the GPU texture memory".
    let cat = StarCatalog::new();
    let mut cfg = SimConfig::new(256, 256, 32);
    cfg.lut_mag_bins = 200_000_000;
    let err = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap_err();
    assert!(matches!(
        err,
        SimError::Psf(starsim::psf::PsfError::LutTooLarge { .. })
    ));
}

#[test]
fn max_magnitude_range_for_texture_budget_is_computable() {
    // The paper: "we can calculate the maximum star magnitude range that
    // the simulator can simulate with the fixed size of texture memory".
    let gpu = VirtualGpu::gtx480();
    let roi = Roi::new(32);
    let bins = LookupTable::max_mag_bins(roi, 1, gpu.spec().texture_mem_bytes);
    assert!(bins > 0);
    // A table at exactly that resolution must bind; one bin more must not.
    let mut cfg = SimConfig::new(64, 64, 32);
    cfg.lut_mag_bins = bins;
    assert!(AdaptiveSimulator::new().build_lut(&cfg).is_ok());
    cfg.lut_mag_bins = bins + 1;
    assert!(AdaptiveSimulator::new().build_lut(&cfg).is_err());
}

#[test]
fn invalid_configs_rejected_by_all_simulators() {
    let cat = StarCatalog::new();
    let bad_configs = [
        SimConfig::new(0, 64, 10),
        SimConfig::new(64, 0, 10),
        SimConfig::new(64, 64, 0),
        {
            let mut c = SimConfig::new(64, 64, 10);
            c.sigma = 0.0;
            c
        },
        {
            let mut c = SimConfig::new(64, 64, 10);
            c.mag_range = (10.0, 3.0);
            c
        },
    ];
    for cfg in &bad_configs {
        assert!(SequentialSimulator::new().simulate(&cat, cfg).is_err());
        assert!(ParallelSimulator::new().simulate(&cat, cfg).is_err());
        assert!(AdaptiveSimulator::new().simulate(&cat, cfg).is_err());
    }
}

#[test]
fn stars_entirely_outside_the_image_are_harmless() {
    let cat = StarCatalog::from_stars(vec![
        Star::new(-500.0, 10.0, 1.0),
        Star::new(10.0, 9999.0, 1.0),
        Star::new(f32::from_bits(0x7F7FFFFF), 0.0, 1.0), // f32::MAX position
    ]);
    let cfg = SimConfig::new(64, 64, 10);
    let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
    let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
    assert!(seq.image.data().iter().all(|&v| v == 0.0));
    assert!(par.image.data().iter().all(|&v| v == 0.0));
}

#[test]
fn gtx280_rejects_rois_the_gtx480_accepts() {
    // Device-dependent limits: CC 1.3 caps blocks at 512 threads, so a
    // 24×24 ROI (576 threads) works on Fermi but not on GT200.
    let cat = StarCatalog::from_stars(vec![Star::new(100.0, 100.0, 3.0)]);
    let cfg = SimConfig::new(256, 256, 24);
    let fermi = ParallelSimulator::on(VirtualGpu::gtx480());
    assert!(fermi.simulate(&cat, &cfg).is_ok());
    let gt200 = ParallelSimulator::on(VirtualGpu::new(DeviceSpec::gtx280()));
    assert!(matches!(gt200.simulate(&cat, &cfg), Err(SimError::Gpu(_))));
}
