//! Frame-pipelined scheduler contract.
//!
//! [`FrameSequencer::run_frames_pipelined`] overlaps frame `N+1`'s star
//! generation + upload with frame `N`'s kernel + download. Its defining
//! invariant: the pipelined schedule is **bit-identical** to the
//! sequential frame loop — same images, same device counters, same
//! modeled times — for every seed, worker count and kernel backend; and
//! faults injected mid-pipeline retry/degrade through the same resilience
//! ladder, in frame order, recovering bit-identically. Cancellation
//! drains in-flight frames deterministically and a resumed sequencer
//! continues exactly where an uninterrupted run would have been.
//!
//! `STARSIM_BACKEND=simd` reruns the suite with the SIMD fast paths
//! (scripts/ci.sh does exactly that); the identity tests additionally
//! sweep both backends explicitly.

use std::sync::Arc;
use std::time::Duration;

use starsim::field::dynamics::AttitudeDynamics;
use starsim::field::generator::synthetic_sky;
use starsim::field::{Attitude, Camera};
use starsim::gpu::{FaultKind, FaultPlan, KernelBackend, VirtualGpu};
use starsim::sim::telemetry::Telemetry;
use starsim::sim::{
    CancelToken, FrameSequencer, LutCache, RetryPolicy, SimConfig, SimError, ThroughputReport,
};

const FRAMES: usize = 4;

fn backend_under_test() -> KernelBackend {
    match std::env::var("STARSIM_BACKEND") {
        Ok(s) => KernelBackend::parse(&s)
            .unwrap_or_else(|| panic!("STARSIM_BACKEND must be scalar|simd, got {s:?}")),
        Err(_) => KernelBackend::Scalar,
    }
}

fn config(workers: usize, backend: KernelBackend) -> SimConfig {
    let mut c = SimConfig::new(128, 128, 10);
    c.workers = Some(workers);
    c.backend = backend;
    c
}

/// A drifting-field sequencer (gentle slew: the frames differ, no smear).
fn sequencer(gpu: VirtualGpu, seed: u64, workers: usize, backend: KernelBackend) -> FrameSequencer {
    FrameSequencer::on_device(
        gpu,
        synthetic_sky(30_000, 0.0, 6.0, seed),
        Camera::from_fov(10.0f64.to_radians(), 128, 128).unwrap(),
        AttitudeDynamics::new(Attitude::pointing(1.0, 0.2, 0.0), [0.002, 0.0, 0.0]),
        config(workers, backend),
        0.1,
        0.5,
    )
    .unwrap()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One frame's identity-relevant state: image bits, counters, modeled
/// time bits.
#[derive(Debug, PartialEq, Eq)]
struct FrameDigest {
    image: Vec<u32>,
    counters: starsim::gpu::Counters,
    app_time_bits: u64,
}

/// The sequential reference: `n` frames through [`FrameSequencer::next_frame`].
fn sequential_digests(seq: &mut FrameSequencer, n: usize) -> Vec<FrameDigest> {
    (0..n)
        .map(|_| {
            let f = seq.next_frame().unwrap();
            FrameDigest {
                image: bits(f.report.image.data()),
                counters: f.report.profile.kernels[0].counters,
                app_time_bits: f.report.app_time_s.to_bits(),
            }
        })
        .collect()
}

/// `n` frames through the pipelined schedule, digested from the observer.
fn pipelined_digests(seq: &mut FrameSequencer, n: usize) -> (Vec<FrameDigest>, ThroughputReport) {
    let mut digests = Vec::with_capacity(n);
    let token = CancelToken::new();
    let report = seq
        .run_frames_pipelined_observed(n, &token, |frame| {
            digests.push(FrameDigest {
                image: bits(frame.pixels),
                counters: frame.timing.counters,
                app_time_bits: frame.timing.app_time_s.to_bits(),
            });
        })
        .unwrap();
    (digests, report)
}

#[test]
fn pipelined_matches_sequential_bit_identically() {
    for &seed in &[3u64, 11] {
        for &workers in &[1usize, 4, 15] {
            for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                let mut reference = sequencer(VirtualGpu::gtx480(), seed, workers, backend);
                let expected = sequential_digests(&mut reference, FRAMES);
                let mut pipelined = sequencer(VirtualGpu::gtx480(), seed, workers, backend);
                let (got, report) = pipelined_digests(&mut pipelined, FRAMES);
                assert_eq!(
                    expected, got,
                    "seed {seed}, {workers} workers, {backend:?}: pipelined frames \
                     must be bit-identical to the sequential loop"
                );
                assert_eq!(report.frames, FRAMES);
                assert!(report.overlap.is_some());
                assert!(
                    (pipelined.time_s() - reference.time_s()).abs() < 1e-12,
                    "both clocks advanced {FRAMES} frames"
                );
            }
        }
    }
}

#[test]
fn pipelined_bursts_compose_with_next_frame() {
    // Burst, single frame, burst again: the interleaved schedule sees the
    // same sky as one long sequential run.
    let mut reference = sequencer(VirtualGpu::gtx480(), 5, 4, backend_under_test());
    let expected = sequential_digests(&mut reference, 5);
    let mut seq = sequencer(VirtualGpu::gtx480(), 5, 4, backend_under_test());
    let (first, _) = pipelined_digests(&mut seq, 2);
    let middle = sequential_digests(&mut seq, 1);
    let (rest, _) = pipelined_digests(&mut seq, 2);
    let got: Vec<FrameDigest> = first.into_iter().chain(middle).chain(rest).collect();
    assert_eq!(expected, got, "pipelined bursts must compose seamlessly");
}

#[test]
fn pipelined_span_tree_is_deterministic_and_two_staged() {
    let run = || {
        let telemetry = Telemetry::new();
        let mut seq = sequencer(VirtualGpu::gtx480(), 7, 2, backend_under_test())
            .with_telemetry(Arc::clone(&telemetry));
        seq.run_frames_pipelined(FRAMES).unwrap();
        telemetry
    };
    let a = run().span_tree_signature();
    let b = run().span_tree_signature();
    assert_eq!(a, b, "pipelined span tree must be deterministic");
    let n = FRAMES;
    // Producer stage roots on its own thread.
    assert!(a.contains(&("", "frame-produce", n)), "sig: {a:?}");
    assert!(a.contains(&("frame-produce", "star-gen", n)));
    assert!(a.contains(&("frame-produce", "star-upload", n)));
    // Consumer stage: frame > render > attempt > kernel + download.
    assert!(a.contains(&("", "frame", n)));
    assert!(a.contains(&("frame", "render", n)));
    assert!(a.contains(&("render", "attempt-configured", n)));
    assert!(a.contains(&("attempt-configured", "kernel-launch", n)));
    assert!(a.contains(&("attempt-configured", "download", n)));
}

#[test]
fn chaos_matrix_pipelined_recovers_bit_identically() {
    let backend = backend_under_test();
    let mut clean = sequencer(VirtualGpu::gtx480(), 13, 4, backend);
    let expected = sequential_digests(&mut clean, FRAMES)
        .into_iter()
        .map(|d| d.image)
        .collect::<Vec<_>>();

    for kind in FaultKind::ALL {
        if kind == FaultKind::TextureBindFail {
            // Fires at session setup (the one texture bind), never
            // mid-pipeline — covered by the session chaos matrix.
            continue;
        }
        let plan = Arc::new(FaultPlan::single(kind, 1, 2).with_stall(Duration::from_millis(150)));
        let gpu = VirtualGpu::gtx480()
            .with_fault_plan(Arc::clone(&plan))
            .with_watchdog(Duration::from_millis(40));
        let mut seq = sequencer(gpu, 13, 4, backend).with_retry_policy(RetryPolicy {
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        });
        let (got, _report) = pipelined_digests(&mut seq, FRAMES);
        let got = got.into_iter().map(|d| d.image).collect::<Vec<_>>();
        assert_eq!(
            expected, got,
            "{kind:?}: mid-pipeline fault must recover bit-identically"
        );
        assert_eq!(plan.remaining(), 0, "{kind:?}: the fault must have fired");
    }
}

#[test]
fn pipelined_fault_accounting_matches_the_sequential_ladder() {
    // The exact scenario frames.rs tests sequentially: one worker panic at
    // launch 1 degrades that frame to spawn dispatch, later frames are
    // unaffected.
    let gpu = VirtualGpu::gtx480().with_fault_plan(Arc::new(FaultPlan::single(
        FaultKind::WorkerPanic,
        1,
        2,
    )));
    let mut seq = sequencer(gpu, 17, 4, backend_under_test()).with_retry_policy(RetryPolicy {
        backoff: Duration::ZERO,
        ..RetryPolicy::default()
    });
    let report = seq.run_frames_pipelined(FRAMES).unwrap();
    assert_eq!(report.frames, FRAMES);
    assert_eq!(report.resilience.panics, 1);
    assert_eq!(report.resilience.retries, 1);
    assert_eq!(
        report.resilience.rung_frames,
        [3, 1, 0, 0],
        "one frame degraded to spawn dispatch, the rest stayed configured"
    );
}

#[test]
fn cancellation_drains_in_flight_frames_and_resumes_bit_identically() {
    let backend = backend_under_test();
    let mut reference = sequencer(VirtualGpu::gtx480(), 23, 2, backend);
    let expected = sequential_digests(&mut reference, 6);

    let mut seq = sequencer(VirtualGpu::gtx480(), 23, 2, backend);
    let token = CancelToken::new();
    let mut digests = Vec::new();
    let err = seq
        .run_frames_pipelined_observed(6, &token, |frame| {
            digests.push(FrameDigest {
                image: bits(frame.pixels),
                counters: frame.timing.counters,
                app_time_bits: frame.timing.app_time_s.to_bits(),
            });
            if frame.index == 1 {
                token.cancel();
            }
        })
        .unwrap_err();
    assert!(matches!(err, SimError::Cancelled), "got {err}");
    let completed = digests.len();
    assert!(
        (2..=4).contains(&completed),
        "cancel after frame 1 drains at most the two produced frames \
         already in flight, got {completed}"
    );
    assert!(
        (seq.time_s() - completed as f64 * 0.5).abs() < 1e-12,
        "the clock stops exactly after the last completed frame"
    );
    assert_eq!(
        &expected[..completed],
        &digests[..],
        "drained frames are bit-identical to the sequential loop"
    );

    // Resume: the remaining frames continue exactly where an
    // uninterrupted run would have been.
    let resumed = sequential_digests(&mut seq, 6 - completed);
    assert_eq!(&expected[completed..], &resumed[..]);
}

#[test]
fn immediate_cancellation_completes_no_frames() {
    let mut seq = sequencer(VirtualGpu::gtx480(), 29, 2, backend_under_test());
    let token = CancelToken::new();
    token.cancel();
    let err = seq
        .run_frames_pipelined_observed(4, &token, |_| panic!("no frame should complete"))
        .unwrap_err();
    assert!(matches!(err, SimError::Cancelled));
    assert_eq!(seq.time_s(), 0.0, "the clock must not advance");
}

#[test]
fn overlap_and_lut_stats_surface_on_the_report() {
    let cache = Arc::new(LutCache::new());
    let mut seq = sequencer(VirtualGpu::gtx480(), 31, 2, backend_under_test())
        .with_lut_cache(Arc::clone(&cache));

    let report = seq.run_frames_pipelined(FRAMES).unwrap();
    let overlap = report.overlap.expect("pipelined bursts report overlap");
    assert!(overlap.modeled.app_time_s > 0.0);
    assert!(overlap.modeled.saved_s >= 0.0);
    assert!((0.0..=1.0).contains(&overlap.modeled_efficiency));
    assert!((0.0..=1.0).contains(&overlap.measured_efficiency));
    assert!(overlap.produce_busy_s > 0.0);
    assert!(overlap.consume_busy_s > 0.0);

    // The producer prefetched (and built) the LUT off the critical path.
    assert!(report.lut_prefetch_s > 0.0);
    let stats = report.lut_cache.expect("cache stats surface");
    assert_eq!(stats.len, 1);
    assert!(stats.misses >= 1, "first prefetch builds: {stats:?}");

    // A second burst revalidates from cache.
    let report = seq.run_frames_pipelined(FRAMES).unwrap();
    let stats = report.lut_cache.unwrap();
    assert!(stats.hits >= 1, "second prefetch hits: {stats:?}");
    assert_eq!(stats.len, 1);

    // The sequential loop also reports overlap accounting (its measured
    // efficiency is ~0) and never spends prefetch time.
    let report = seq.run_frames(FRAMES).unwrap();
    assert!(report.overlap.is_some());
    assert_eq!(report.lut_prefetch_s, 0.0);
    assert!(report.lut_cache.is_some());
}
