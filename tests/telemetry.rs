//! End-to-end telemetry contract: spans nest, the span tree is
//! deterministic for a fixed seed, LutCache stats surface through the
//! session, the throughput report carries device diagnostics, and the
//! exported Chrome trace parses back with the expected shape.

use std::sync::Arc;

use starsim::field::FieldGenerator;
use starsim::gpu::VirtualGpu;
use starsim::sim::telemetry::{chrome_trace_json, parse_json, JsonValue, Telemetry};
use starsim::sim::{AdaptiveSession, LutCache, SimConfig};

const WORKERS: usize = 2;

fn cfg() -> SimConfig {
    let mut c = SimConfig::new(128, 128, 10);
    c.workers = Some(WORKERS);
    c
}

/// Renders `frames` frames on a fully instrumented session and returns
/// the sink.
fn traced_run(frames: usize, seed: u64) -> Arc<Telemetry> {
    let telemetry = Telemetry::new();
    let cache = LutCache::new();
    let session = AdaptiveSession::on_telemetry(
        VirtualGpu::gtx480(),
        cfg(),
        Some(&cache),
        Arc::clone(&telemetry),
    )
    .expect("session");
    let cat = FieldGenerator::new(128, 128).generate(150, seed);
    let mut host = Vec::new();
    for _ in 0..frames {
        let _frame = telemetry.span("frame");
        session.render_into(&cat, &mut host).expect("frame");
    }
    telemetry
}

#[test]
fn spans_nest_under_the_frame_and_setup_roots() {
    let t = traced_run(2, 7);
    let sig = t.span_tree_signature();
    // Setup: session-setup > {lut-build, texture-bind}.
    assert!(sig.contains(&("", "session-setup", 1)), "sig: {sig:?}");
    assert!(sig.contains(&("session-setup", "lut-build", 1)));
    assert!(sig.contains(&("session-setup", "texture-bind", 1)));
    // Frames: frame > render > attempt-configured > {star-upload,
    // kernel-launch, download}.
    assert!(sig.contains(&("", "frame", 2)));
    assert!(sig.contains(&("frame", "render", 2)));
    assert!(sig.contains(&("render", "attempt-configured", 2)));
    assert!(sig.contains(&("attempt-configured", "star-upload", 2)));
    assert!(sig.contains(&("attempt-configured", "kernel-launch", 2)));
    assert!(sig.contains(&("attempt-configured", "download", 2)));
}

#[test]
fn same_seed_runs_produce_the_same_span_tree() {
    let a = traced_run(3, 42).span_tree_signature();
    let b = traced_run(3, 42).span_tree_signature();
    assert_eq!(a, b, "span tree must be structurally deterministic");
}

#[test]
fn session_surfaces_cache_stats_and_diagnostics() {
    let cache = LutCache::new();
    let t = Telemetry::new();
    let cold =
        AdaptiveSession::on_telemetry(VirtualGpu::gtx480(), cfg(), Some(&cache), Arc::clone(&t))
            .expect("cold");
    let _warm =
        AdaptiveSession::on_telemetry(VirtualGpu::gtx480(), cfg(), Some(&cache), Arc::clone(&t))
            .expect("warm");
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
    assert_eq!((stats.len, stats.capacity), (1, LutCache::DEFAULT_CAPACITY));
    assert_eq!(t.metrics().counter("lut_cache.hits"), 1);
    assert_eq!(t.metrics().counter("lut_cache.misses"), 1);
    // A healthy session reports all-zero device diagnostics.
    assert_eq!(cold.diagnostics(), starsim::gpu::GpuDiagnostics::default());
}

#[test]
fn exported_trace_is_valid_chrome_trace_json_with_gpu_rows() {
    let t = traced_run(2, 11);
    let text = chrome_trace_json(&t);
    let doc = parse_json(&text).expect("trace must parse");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut host_spans = 0usize;
    let mut gpu_launches = 0usize;
    let mut lane_instants = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        let pid = e.get("pid").and_then(JsonValue::as_f64).unwrap_or(0.0);
        match (ph, pid as u64) {
            ("X", 1) => host_spans += 1,
            ("X", 2) => {
                let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
                if name.starts_with("gpu:") {
                    gpu_launches += 1;
                }
            }
            ("i", 2) => lane_instants += 1,
            _ => {}
        }
        // Every non-metadata event carries a numeric timestamp.
        if ph != "M" {
            assert!(e.get("ts").and_then(JsonValue::as_f64).is_some(), "{e:?}");
        }
    }
    assert!(host_spans >= 10, "2 frames x >=5 spans, got {host_spans}");
    assert_eq!(gpu_launches, 2, "one traced launch per frame");
    assert!(lane_instants > 0, "lane rings must contribute instants");
}
