//! `starsimd` server integration: the wire protocol over real sockets,
//! admission control under saturation, deadline budgets that cancel
//! mid-pipeline yet resume bit-identically, the load-shedding ladder,
//! panic isolation, and the PR 3 chaos matrix through the server path
//! with concurrent tenants.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use starsim::gpu::{FaultKind, FaultPlan};
use starsim::sim::admission::{AdmissionConfig, ShedLevel};
use starsim::sim::protocol::{
    read_message, write_message, Message, RejectCode, SessionSpec, HEADER_LEN, MAGIC,
    PROTOCOL_VERSION,
};
use starsim::sim::server::{Client, ServerConfig, ServerHandle, StarServer, DIGEST_SEED};
use starsim::sim::RetryPolicy;

fn spec(tenant: &str) -> SessionSpec {
    SessionSpec {
        width: 128,
        height: 128,
        roi_side: 8,
        stars: 2_000,
        seed: 7,
        backend: 0,
        tenant: tenant.into(),
    }
}

fn boot(config: ServerConfig) -> ServerHandle {
    StarServer::bind("127.0.0.1:0", config).expect("bind test server")
}

fn render_done(client: &mut Client, session: u64, frames: u32, deadline_ms: u32) -> Message {
    client
        .render(session, frames, deadline_ms)
        .expect("render request")
}

#[test]
fn protocol_round_trips_over_a_real_socket() {
    let handle = boot(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let (session, hit) = client.open_session(&spec("tenant-a")).expect("open");
    assert!(!hit, "first open builds the table");

    let done = match render_done(&mut client, session, 3, 0) {
        Message::RenderDone(done) => done,
        other => panic!("expected RenderDone, got {other:?}"),
    };
    assert_eq!((done.requested, done.completed), (3, 3));
    assert!(!done.deadline_missed);
    assert_ne!(
        done.digest, DIGEST_SEED,
        "three frames folded into the digest"
    );

    // A second tenant with the same optics hits the shared cache.
    let mut other = Client::connect(handle.addr()).expect("connect 2");
    let (_, hit) = other.open_session(&spec("tenant-b")).expect("open 2");
    assert!(hit, "same config from another tenant is a cache hit");

    // Monitoring at full detail carries the per-tenant body.
    let monitor = client.monitor().expect("monitor");
    assert!(monitor.detail);
    assert_eq!(monitor.sessions, 2);
    assert!(monitor.body.contains("\"tenants\""), "{}", monitor.body);
    assert!(monitor.body.contains("tenant-a"), "{}", monitor.body);
    assert!(monitor.body.contains("\"lut_cache\""), "{}", monitor.body);

    client.close_session(session).expect("close");
    match render_done(&mut client, session, 1, 0) {
        Message::Reject { code, .. } => assert_eq!(code, RejectCode::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    handle.shutdown();
}

/// Writes `bytes` raw and expects a single reject reply followed by
/// connection close — the server answers a framing violation once and
/// hangs up without ever allocating the declared payload.
fn expect_framing_reject(addr: std::net::SocketAddr, bytes: &[u8], code: RejectCode) {
    let mut stream = TcpStream::connect(addr).expect("raw connect");
    stream.write_all(bytes).expect("raw write");
    match read_message(&mut stream).expect("reject reply") {
        Message::Reject {
            code: got,
            retry_after_ms,
            ..
        } => {
            assert_eq!(got, code);
            assert_eq!(retry_after_ms, 0, "framing violations are not retryable");
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    // The stream is closed behind the reject.
    assert!(read_message(&mut stream).is_err());
}

#[test]
fn malformed_oversized_and_wrong_version_frames_are_rejected() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();

    // Wrong magic.
    let mut bad_magic = Vec::new();
    write_message(&mut bad_magic, &Message::Monitor).unwrap();
    bad_magic[0] = b'X';
    expect_framing_reject(addr, &bad_magic, RejectCode::BadRequest);

    // Wrong protocol version.
    let mut bad_version = Vec::new();
    write_message(&mut bad_version, &Message::Monitor).unwrap();
    bad_version[4] = 99;
    expect_framing_reject(addr, &bad_version, RejectCode::VersionUnsupported);

    // A header declaring a 2 GiB payload with nothing behind it: the
    // reject must come back immediately — the length check fires before
    // any allocation or payload read, so the server neither OOMs nor
    // blocks waiting for bytes that will never arrive.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&MAGIC);
    oversized.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    oversized.push(8); // Monitor
    oversized.extend_from_slice(&(2u32 << 30).to_le_bytes());
    assert_eq!(oversized.len(), HEADER_LEN);
    expect_framing_reject(addr, &oversized, RejectCode::BadRequest);

    // A structurally valid frame with nonsense content: rejected without
    // killing the connection.
    let mut client = Client::connect(addr).expect("connect");
    let mut bad_spec = spec("ok");
    bad_spec.width = 1 << 20;
    match client
        .request(&Message::OpenSession(bad_spec))
        .expect("reply")
    {
        Message::Reject { code, .. } => assert_eq!(code, RejectCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Hello with an unsupported payload version negotiates down to a
    // versioned reject, also without killing the connection.
    match client
        .request(&Message::Hello { version: 9 })
        .expect("reply")
    {
        Message::Reject { code, .. } => assert_eq!(code, RejectCode::VersionUnsupported),
        other => panic!("expected VersionUnsupported, got {other:?}"),
    }
    let (session, _) = client.open_session(&spec("ok")).expect("still serving");
    assert!(matches!(
        render_done(&mut client, session, 1, 0),
        Message::RenderDone(_)
    ));
    handle.shutdown();
}

#[test]
fn admission_rejects_under_saturation_with_a_retry_hint() {
    let config = ServerConfig {
        admission: AdmissionConfig {
            capacity: 1,
            retry_after_ms: 30,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let handle = boot(config);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (session, _) = client.open_session(&spec("sat")).expect("open");

    let permit = handle.admission().try_admit().expect("saturate");
    match render_done(&mut client, session, 1, 0) {
        Message::Reject {
            code,
            retry_after_ms,
            ..
        } => {
            assert_eq!(code, RejectCode::Saturated);
            assert_eq!(retry_after_ms, 30, "the hint is the configured back-off");
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    drop(permit);
    assert!(matches!(
        render_done(&mut client, session, 1, 0),
        Message::RenderDone(_)
    ));
    let stats = handle.admission().stats();
    assert!(stats.rejected >= 1);
    assert!(
        stats.depth <= stats.capacity,
        "depth is bounded by capacity"
    );
    handle.shutdown();
}

#[test]
fn sustained_saturation_climbs_the_shed_ladder_and_coarsens_monitoring() {
    let config = ServerConfig {
        admission: AdmissionConfig {
            capacity: 1,
            retry_after_ms: 1,
            shed_hold: 2,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let handle = boot(config);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (session, _) = client.open_session(&spec("shed")).expect("open");

    let permit = handle.admission().try_admit().expect("saturate");
    // Every rejected request observes utilization 1.0; with hold 2 the
    // ladder escalates one level per two rejects.
    for _ in 0..4 {
        match render_done(&mut client, session, 1, 0) {
            Message::Reject { code, .. } => assert_eq!(code, RejectCode::Saturated),
            other => panic!("expected Saturated, got {other:?}"),
        }
    }
    assert!(handle.admission().shed_level() >= ShedLevel::CoarseMonitoring);
    let monitor = client.monitor().expect("monitor");
    assert!(!monitor.detail, "coarse monitoring sheds the detail body");
    assert!(monitor.body.is_empty());
    assert!(monitor.shed_level >= ShedLevel::CoarseMonitoring.index() as u8);

    // Load subsides: the ladder relaxes back down and renders still work.
    drop(permit);
    let done = loop {
        match render_done(&mut client, session, 1, 0) {
            Message::RenderDone(done) => break done,
            Message::Reject { .. } => continue,
            other => panic!("unexpected {other:?}"),
        }
    };
    assert_eq!(done.completed, 1);
    handle.shutdown();
}

#[test]
fn deadline_cancellation_mid_pipeline_is_bit_identically_resumable() {
    let frames: u32 = 8;
    let handle = boot(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // The uninterrupted reference.
    let (reference, _) = client.open_session(&spec("deadline")).expect("open ref");
    let reference_done = match render_done(&mut client, reference, frames, 0) {
        Message::RenderDone(done) => done,
        other => panic!("expected RenderDone, got {other:?}"),
    };

    // Shrink the budget until a burst is genuinely cut mid-pipeline.
    let per_frame_ms = (reference_done.wall_us as f64 / 1e3 / f64::from(frames)).max(0.5);
    let mut budget_ms = (per_frame_ms * 3.0).max(2.0);
    let mut cut = None;
    for _ in 0..10 {
        let (session, _) = client.open_session(&spec("deadline")).expect("open");
        match render_done(&mut client, session, frames, budget_ms.max(1.0) as u32) {
            Message::RenderDone(done) if done.deadline_missed && done.completed > 0 => {
                assert!(done.completed < frames);
                cut = Some((session, done));
                break;
            }
            Message::RenderDone(done) => {
                budget_ms = if done.deadline_missed {
                    budget_ms * 2.0 // cut before the first frame — loosen
                } else {
                    budget_ms / 2.0 // finished inside the budget — tighten
                };
                client.close_session(session).expect("close");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let (session, done) = cut.expect("a budget in the sweep must cut mid-burst");
    assert!(handle.deadline_misses() >= 1);

    // Resume the remaining frames with no deadline: the cumulative digest
    // must land exactly on the uninterrupted session's.
    let resumed = match render_done(&mut client, session, frames - done.completed, 0) {
        Message::RenderDone(done) => done,
        other => panic!("expected RenderDone, got {other:?}"),
    };
    assert_eq!(resumed.completed, frames - done.completed);
    assert!(!resumed.deadline_missed);
    assert_eq!(
        resumed.digest, reference_done.digest,
        "deadline-cancelled burst must resume bit-identically"
    );
    handle.shutdown();
}

#[test]
fn a_client_triggered_panic_poisons_only_its_session() {
    let config = ServerConfig {
        panic_tenant: Some("evil".into()),
        ..ServerConfig::default()
    };
    let handle = boot(config);

    let mut good = Client::connect(handle.addr()).expect("connect good");
    let (good_session, _) = good.open_session(&spec("good")).expect("open good");
    assert!(matches!(
        render_done(&mut good, good_session, 1, 0),
        Message::RenderDone(_)
    ));

    let mut evil = Client::connect(handle.addr()).expect("connect evil");
    match evil
        .request(&Message::OpenSession(spec("evil")))
        .expect("panic becomes a reply, not a dead connection")
    {
        Message::Reject { code, message, .. } => {
            assert_eq!(code, RejectCode::Internal);
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("expected Internal reject, got {other:?}"),
    }
    assert_eq!(handle.handler_panics(), 1);

    // The panicking connection itself keeps serving…
    let (evil_session, _) = evil
        .open_session(&spec("reformed"))
        .expect("open after panic");
    assert!(matches!(
        render_done(&mut evil, evil_session, 1, 0),
        Message::RenderDone(_)
    ));
    // …and so does everyone else.
    assert!(matches!(
        render_done(&mut good, good_session, 1, 0),
        Message::RenderDone(_)
    ));
    handle.shutdown();
}

#[test]
fn drain_stops_admitting_and_acks_clean() {
    let handle = boot(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (session, _) = client.open_session(&spec("drain")).expect("open");
    assert!(matches!(
        render_done(&mut client, session, 1, 0),
        Message::RenderDone(_)
    ));

    assert_eq!(client.drain().expect("drain"), 0, "nothing in flight");
    match render_done(&mut client, session, 1, 0) {
        Message::Reject { code, .. } => assert_eq!(code, RejectCode::Draining),
        other => panic!("expected Draining, got {other:?}"),
    }
    match client
        .request(&Message::OpenSession(spec("late")))
        .expect("reply")
    {
        Message::Reject { code, .. } => assert_eq!(code, RejectCode::Draining),
        other => panic!("expected Draining, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn obsplane_scrapes_alerts_and_flight_records_over_the_wire() {
    let dir = std::env::temp_dir().join("starsimd_obsplane_itest");
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        flight_dir: Some(dir.clone()),
        panic_tenant: Some("evil".into()),
        ..ServerConfig::default()
    };
    let handle = boot(config);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (session, _) = client.open_session(&spec("obs")).expect("open");
    assert!(matches!(
        render_done(&mut client, session, 2, 0),
        Message::RenderDone(_)
    ));

    // Metrics scrape: the exposition parses back and carries the render
    // counters plus the instance labels.
    let (snapshots, exposition) = client.metrics().expect("metrics");
    assert!(snapshots >= 1);
    let samples = starsim::sim::obsplane::parse_exposition(&exposition).expect("exposition parses");
    let frames = samples
        .iter()
        .find(|s| s.name == "starsim_server_frames_rendered")
        .expect("frames counter exposed");
    assert!(frames.value >= 2.0);
    assert!(
        frames
            .labels
            .iter()
            .any(|(k, v)| k == "device" && v == "gtx480"),
        "{:?}",
        frames.labels
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "starsim_server_requests_total"),
        "admission stats synced into the scrape"
    );

    // Alerts: a healthy server is Ok with a well-formed JSON body.
    let (state, body) = client.alerts().expect("alerts");
    assert_eq!(state, starsim::sim::SloState::Ok, "{body}");
    let doc = starsim::sim::telemetry::parse_json(&body).expect("alert body is JSON");
    assert_eq!(doc.get("state").and_then(|v| v.as_str()), Some("ok"));

    // The monitor rung summary is present (full detail here).
    let monitor = client.monitor().expect("monitor");
    assert!(
        monitor.rung_summary.contains("configured="),
        "{}",
        monitor.rung_summary
    );

    // The fleet utilization aggregate saw this session's launches.
    let util = handle.device_utilization();
    assert!(util.launches > 0);
    assert!(util.occupancy_mean() > 0.0 && util.occupancy_mean() <= 1.0);

    // A handler panic trips a flight-recorder dump with the full
    // request chain: the render entry correlates request → session →
    // launch range, the panic entry closes the story.
    match client
        .request(&Message::OpenSession(spec("evil")))
        .expect("panic becomes a reply")
    {
        Message::Reject { code, .. } => assert_eq!(code, RejectCode::Internal),
        other => panic!("expected Internal reject, got {other:?}"),
    }
    assert!(handle.obs().recorder().dump_count() >= 1);
    let dump_path = std::fs::read_dir(&dir)
        .expect("flight dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-"))
        })
        .expect("a flight dump was written");
    let text = std::fs::read_to_string(&dump_path).expect("read dump");
    let doc = starsim::sim::telemetry::parse_json(&text).expect("dump is valid JSON");
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_array())
        .expect("entries array");
    let kind_of = |e: &starsim::sim::telemetry::JsonValue| {
        e.get("kind").and_then(|v| v.as_str()).map(str::to_string)
    };
    let render = entries
        .iter()
        .find(|e| kind_of(e) == Some("render".into()))
        .expect("render entry in the black box");
    assert!(render.get("request_id").and_then(|v| v.as_f64()).unwrap() > 0.0);
    assert_eq!(
        render.get("session").and_then(|v| v.as_f64()),
        Some(session as f64)
    );
    assert!(
        render.get("launch_past_last").and_then(|v| v.as_f64())
            > render.get("launch_first").and_then(|v| v.as_f64()),
        "the render is correlated to its kernel launches"
    );
    assert!(
        entries.iter().any(|e| kind_of(e) == Some("panic".into())),
        "the fault itself is in the black box"
    );
    // The dump embeds a loadable Chrome trace.
    assert!(doc
        .get("trace")
        .and_then(|t| t.get("traceEvents"))
        .and_then(|v| v.as_array())
        .is_some());

    let _ = std::fs::remove_dir_all(&dir);
    handle.shutdown();
}

#[test]
fn chaos_matrix_recovers_bit_identically_through_the_server_with_concurrent_tenants() {
    const FRAMES: u32 = 6;

    // Clean reference digest (the scene is fixed by the spec, so one
    // uncontended clean run pins the expected pixels for every tenant).
    let clean = boot(ServerConfig::default());
    let mut client = Client::connect(clean.addr()).expect("connect clean");
    let (session, _) = client.open_session(&spec("clean")).expect("open clean");
    let expected = match render_done(&mut client, session, FRAMES, 0) {
        Message::RenderDone(done) => done.digest,
        other => panic!("expected RenderDone, got {other:?}"),
    };
    clean.shutdown();

    for kind in FaultKind::ALL {
        if kind == FaultKind::TextureBindFail {
            // Fires at session setup (the one texture bind), not
            // mid-pipeline — the resilient-open path owns that case.
            continue;
        }
        let plan = Arc::new(FaultPlan::single(kind, 1, 2).with_stall(Duration::from_millis(150)));
        let config = ServerConfig {
            fault_plan: Some(Arc::clone(&plan)),
            watchdog: Some(Duration::from_millis(40)),
            retry: Some(RetryPolicy {
                backoff: Duration::ZERO,
                ..RetryPolicy::default()
            }),
            ..ServerConfig::default()
        };
        let handle = boot(config);
        let addr = handle.addr();
        let digests: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = ["tenant-a", "tenant-b"]
                .into_iter()
                .map(|tenant| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let (session, _) = client.open_session(&spec(tenant)).expect("open");
                        match client.render(session, FRAMES, 0).expect("render") {
                            Message::RenderDone(done) => {
                                assert_eq!(done.completed, FRAMES, "{kind:?} ({tenant})");
                                done.digest
                            }
                            other => panic!("{kind:?} ({tenant}): unexpected {other:?}"),
                        }
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("tenant"))
                .collect()
        });
        for digest in digests {
            assert_eq!(
                digest, expected,
                "{kind:?}: server-path fault must recover bit-identically"
            );
        }
        assert_eq!(plan.remaining(), 0, "{kind:?}: the fault must have fired");
        handle.shutdown();
    }
}
