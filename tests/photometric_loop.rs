//! The radiometric loop: the magnitude written into the catalogue comes
//! back out of the rendered frame through aperture photometry — across
//! all three simulators.

use starsim::image::photometry::{magnitude_from_flux, measure, Aperture};
use starsim::prelude::*;
use starsim::psf::GaussianPsf;

fn test_stars() -> Vec<Star> {
    vec![
        Star::new(40.0, 40.0, 2.0),
        Star::new(120.0, 50.0, 4.5),
        Star::new(60.0, 130.0, 6.0),
        Star::new(140.0, 140.0, 8.0),
    ]
}

fn recover_magnitudes(image: &starsim::image::ImageF32, cfg: &SimConfig) -> Vec<f32> {
    // Aperture radius = ROI margin (the deposit is truncated there), with
    // the matching encircled-energy correction from the PSF model.
    let radius = (cfg.roi_side / 2) as f32;
    let ee = GaussianPsf::new(cfg.sigma).encircled_energy(radius) as f64;
    test_stars()
        .iter()
        .map(|s| {
            let p = measure(image, s.pos.x, s.pos.y, Aperture::new(radius));
            magnitude_from_flux(p.flux, cfg.a_factor, ee).expect("positive flux")
        })
        .collect()
}

#[test]
fn magnitudes_recovered_from_all_simulators() {
    let cat = StarCatalog::from_stars(test_stars());
    let cfg = SimConfig::new(192, 192, 12);
    let truths: Vec<f32> = test_stars().iter().map(|s| s.mag.value()).collect();

    for (name, image) in [
        (
            "sequential",
            SequentialSimulator::new()
                .simulate(&cat, &cfg)
                .unwrap()
                .image,
        ),
        (
            "parallel",
            ParallelSimulator::new().simulate(&cat, &cfg).unwrap().image,
        ),
        (
            "adaptive",
            AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap().image,
        ),
    ] {
        let recovered = recover_magnitudes(&image, &cfg);
        for (got, want) in recovered.iter().zip(&truths) {
            // Point sampling + square-ROI truncation vs circular EE
            // correction: ~0.1 mag systematic; the adaptive LUT adds its
            // magnitude-bin quantization (~0.06 mag at 128 bins).
            assert!(
                (got - want).abs() < 0.2,
                "{name}: recovered m={got} vs catalogue m={want}"
            );
        }
    }
}

#[test]
fn photometry_survives_detector_noise() {
    use starsim::image::{apply_noise, NoiseModel};
    let cat = StarCatalog::from_stars(test_stars());
    let cfg = SimConfig::new(192, 192, 12);
    let mut image = SequentialSimulator::new()
        .simulate(&cat, &cfg)
        .unwrap()
        .image;
    apply_noise(
        &mut image,
        NoiseModel {
            background: 0.001,
            shot_gain: 0.0005,
            read_sigma: 0.0005,
        },
        42,
    );
    let truths: Vec<f32> = test_stars().iter().map(|s| s.mag.value()).collect();
    let recovered = recover_magnitudes(&image, &cfg);
    // The three brightest stars must still come back to ~0.3 mag; the
    // m=8 star is within a few times the noise floor, so allow more.
    for (k, (got, want)) in recovered.iter().zip(&truths).enumerate() {
        let tol = if *want < 7.0 { 0.3 } else { 1.0 };
        assert!(
            (got - want).abs() < tol,
            "star {k}: recovered m={got} vs {want} under noise"
        );
    }
}

#[test]
fn flux_ordering_matches_magnitude_ordering() {
    let cat = StarCatalog::from_stars(test_stars());
    let cfg = SimConfig::new(192, 192, 12);
    let image = ParallelSimulator::new().simulate(&cat, &cfg).unwrap().image;
    let fluxes: Vec<f64> = test_stars()
        .iter()
        .map(|s| measure(&image, s.pos.x, s.pos.y, Aperture::new(6.0)).flux)
        .collect();
    for w in fluxes.windows(2) {
        assert!(
            w[0] > w[1],
            "brighter star must measure more flux: {fluxes:?}"
        );
    }
}
