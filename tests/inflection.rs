//! The headline reproduction target: the inflection points between the two
//! GPU simulators fall where the paper reports them (§IV-C) — **2^13
//! stars** with ROI fixed at 10 (test 1) and **ROI side 10** with stars
//! fixed at 8192 (test 2) — and the two tests agree on the same point,
//! which the paper calls out as a consistency requirement ("the two tests
//! accord perfectly ... or else, there must be mistakes in either
//! simulator").
//!
//! These run the full 1024×1024 benchmark geometry, so they are the
//! slowest tests in the suite.

use starsim::field::workload;
use starsim::prelude::*;

fn gpu_app_times(stars_exp: u32, roi_side: usize) -> (f64, f64) {
    // The star field depends only on the count; the ROI side is free.
    let catalog = workload::test1(stars_exp, 2012).catalog;
    let cfg = SimConfig::new(1024, 1024, roi_side);
    let par = ParallelSimulator::new().simulate(&catalog, &cfg).unwrap();
    let ada = AdaptiveSimulator::new().simulate(&catalog, &cfg).unwrap();
    (par.app_time_s, ada.app_time_s)
}

#[test]
fn test1_inflection_at_2_pow_13_stars() {
    // Below the paper's inflection the parallel simulator must win…
    let (par, ada) = gpu_app_times(11, 10);
    assert!(
        par < ada,
        "2^11 stars: parallel ({par:.4}s) should beat adaptive ({ada:.4}s)"
    );
    // …and above it the adaptive simulator must win.
    let (par, ada) = gpu_app_times(15, 10);
    assert!(
        ada < par,
        "2^15 stars: adaptive ({ada:.4}s) should beat parallel ({par:.4}s)"
    );
}

#[test]
fn test2_inflection_at_roi_side_10() {
    // Stars fixed at 8192 (= 2^13), sweep the ROI side across the paper's
    // inflection: below 10 parallel wins, above 10 adaptive wins.
    let (par, ada) = gpu_app_times(13, 6);
    assert!(
        par < ada,
        "ROI 6: parallel ({par:.4}s) should beat adaptive ({ada:.4}s)"
    );
    let (par, ada) = gpu_app_times(13, 14);
    assert!(
        ada < par,
        "ROI 14: adaptive ({ada:.4}s) should beat parallel ({par:.4}s)"
    );
}

#[test]
fn adaptive_advantage_over_the_inflection_is_paper_scale() {
    // Paper §V: "up to 1.8× between two GPU simulators". Our model lands in
    // the same small-integer band (roughly 1.5–3×) at the top of test 1.
    let (par, ada) = gpu_app_times(16, 10);
    let ratio = par / ada;
    assert!(
        (1.2..4.0).contains(&ratio),
        "adaptive advantage at 2^16 stars was {ratio:.2}x"
    );
}

#[test]
fn selection_table_is_consistent_with_measured_behaviour() {
    // Table III encodes the measured crossover; `choose` must agree with
    // head-to-head runs on either side of the point.
    let point = InflectionPoint::default();
    let below = point.choose(1 << 11, 10);
    let above = point.choose(1 << 15, 10);
    assert_eq!(below, Choice::Parallel);
    assert_eq!(above, Choice::Adaptive);
    let (par, ada) = gpu_app_times(11, 10);
    assert!(par < ada, "Table III row (<, =) verified by measurement");
    let (par, ada) = gpu_app_times(15, 10);
    assert!(ada < par, "Table III row (>, =) verified by measurement");
}
