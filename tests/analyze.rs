//! Integration tests for `gpusim::analyze` — the static kernel analyzer
//! and its pre-launch advisor.
//!
//! Four claims, per the PR-10 acceptance criteria:
//!
//! 1. every perf-defect corpus kernel is flagged with a deny of its
//!    expected diagnostic class, and the advisor rejects its launch;
//! 2. all three production kernels are clean at `deny` level and their
//!    static predictions agree with the dynamic measurements within the
//!    documented tolerances;
//! 3. reports are bit-identical across host worker counts and across
//!    Scalar/Simd backends;
//! 4. a session with `analyze = true` runs the advisor exactly once at
//!    setup — frames never re-analyze — and still renders frames
//!    bit-identical to a non-analyzing session.

use gpusim::analyze::{analyze_kernel, BANK_TOL, COALESCE_TOL, TEX_HIT_TOL};
use gpusim::sanitize::corpus;
use gpusim::{GpuError, KernelBackend, LaunchConfig, LintLevel, VirtualGpu};
use starfield::FieldGenerator;
use starsim_core::{analysis, AdaptiveSession, SimConfig};

fn config(w: usize, h: usize, roi: usize) -> SimConfig {
    SimConfig::new(w, h, roi)
}

fn catalog(size: usize, stars: usize) -> starfield::StarCatalog {
    FieldGenerator::new(size, size).generate(stars, 42)
}

/// Analyzes one corpus kernel and asserts a deny lint of `code`, plus the
/// advisor's `InvalidLaunch` rejection naming the kernel.
fn assert_denied<K: gpusim::Kernel>(
    gpu: &VirtualGpu,
    name: &str,
    kernel: &K,
    cfg: &LaunchConfig,
    code: &str,
) {
    let report = analyze_kernel(name, kernel, cfg, gpu.spec()).expect("analyze");
    assert!(
        report
            .lints
            .iter()
            .any(|l| l.level == LintLevel::Deny && l.code == code),
        "{name}: expected deny `{code}`, got {:#?}",
        report.lints
    );
    match gpu.advise_launch(name, kernel, cfg) {
        Err(GpuError::InvalidLaunch(msg)) => {
            assert!(msg.contains(name), "denial names the kernel: {msg}");
            assert!(msg.contains(code), "denial names the lint: {msg}");
        }
        other => panic!("{name}: advisor must reject, got {other:?}"),
    }
}

#[test]
fn corpus_uncoalesced_is_denied() {
    let gpu = VirtualGpu::gtx480();
    let (src, _t) = gpu.upload(vec![0.5f32; 1024]);
    let image = gpu.alloc_atomic_f32(32);
    let k = corpus::Uncoalesced {
        src: &src,
        image: &image,
    };
    let cfg = LaunchConfig::new(1u32, 32u32);
    assert_denied(&gpu, "uncoalesced", &k, &cfg, "uncoalesced-global");
}

#[test]
fn corpus_bank_conflict_is_denied() {
    let gpu = VirtualGpu::gtx480();
    let image = gpu.alloc_atomic_f32(32);
    let k = corpus::BankConflict { image: &image };
    let cfg = LaunchConfig::new(1u32, 32u32).with_shared_mem(1024 * 4);
    assert_denied(&gpu, "bank-conflict", &k, &cfg, "shared-bank-conflict");
}

#[test]
fn corpus_working_set_blowout_is_denied() {
    let gpu = VirtualGpu::gtx480();
    let (lut, _tu, _tb) = gpu
        .bind_texture(256, 256, 1, vec![0.25f32; 256 * 256])
        .expect("bind");
    let image = gpu.alloc_atomic_f32(32);
    let k = corpus::WorkingSetBlowout {
        lut: &lut,
        image: &image,
    };
    let cfg = LaunchConfig::new(1u32, 32u32);
    assert_denied(&gpu, "working-set-blowout", &k, &cfg, "texture-working-set");
    // The regime must be Thrashing: 512 distinct 128 B lines = 65536 B
    // against the GTX480's 51200 B per-SM texture cache.
    let report = analyze_kernel("wsb", &k, &cfg, gpu.spec()).unwrap();
    let tex = report.texture.expect("texture footprint");
    assert_eq!(tex.lines_per_block, 512);
    assert_eq!(tex.regime, gpusim::CacheRegime::Thrashing);
}

#[test]
fn production_kernels_are_clean_and_within_tolerance() {
    let cfg = config(192, 192, 10);
    let cat = catalog(192, 96);
    for audit in analysis::audit_production(&cfg, &cat).expect("audit") {
        assert!(
            !audit.report.has_deny(),
            "{} must be clean at deny level: {:#?}",
            audit.name,
            audit.report.lints
        );
        let p = &audit.report.prediction;
        assert!(
            (p.global_tx_per_request - audit.measured_tx_per_request()).abs() <= COALESCE_TOL,
            "{}: coalescing prediction {} vs measured {}",
            audit.name,
            p.global_tx_per_request,
            audit.measured_tx_per_request()
        );
        assert!(
            (p.shared_extra_per_request - audit.measured_shared_extra_per_request()).abs()
                <= BANK_TOL,
            "{}: bank-conflict prediction drifted",
            audit.name
        );
        assert!(
            audit.measured_tex_hit_rate() + TEX_HIT_TOL >= p.tex_hit_rate_floor,
            "{}: measured tex hit rate {} below floor {}",
            audit.name,
            audit.measured_tex_hit_rate(),
            p.tex_hit_rate_floor
        );
        assert_eq!(
            audit.report.occupancy, audit.profile.occupancy,
            "{}: occupancy must match exactly",
            audit.name
        );
    }
}

#[test]
fn reports_bit_identical_across_workers_and_backends() {
    let cat = catalog(128, 48);
    let mut baseline: Option<Vec<String>> = None;
    for workers in [1usize, 4] {
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            let mut cfg = config(128, 128, 10);
            cfg.workers = Some(workers);
            cfg.backend = backend;
            let reports: Vec<String> = analysis::audit_production(&cfg, &cat)
                .expect("audit")
                .iter()
                .map(|a| format!("{:?}", a.report))
                .collect();
            match &baseline {
                None => baseline = Some(reports),
                Some(b) => assert_eq!(
                    b, &reports,
                    "report differs at workers={workers} backend={backend:?}"
                ),
            }
        }
    }
}

#[test]
fn session_advisor_runs_once_and_frames_are_unchanged() {
    let cat = catalog(160, 64);

    let mut plain_cfg = config(160, 160, 10);
    plain_cfg.workers = Some(2);
    let plain = AdaptiveSession::new(plain_cfg.clone()).expect("plain session");
    assert_eq!(plain.advise_runs(), 0, "advisor is opt-in");
    assert!(plain.analysis().is_none());
    let mut want = Vec::new();
    plain.render_into(&cat, &mut want).expect("render");

    let mut cfg = plain_cfg;
    cfg.analyze = true;
    let session = AdaptiveSession::new(cfg).expect("analyzing session");
    assert_eq!(session.advise_runs(), 1, "advisor ran at setup");
    let report = session.analysis().expect("report retained");
    assert!(!report.has_deny());
    assert_eq!(report.kernel, "adaptive-lut");

    let mut got = Vec::new();
    for _ in 0..3 {
        session.render_into(&cat, &mut got).expect("render");
    }
    assert_eq!(
        session.advise_runs(),
        1,
        "frames must not re-run the advisor (hot path untouched)"
    );
    assert_eq!(got, want, "advisor must not perturb frame pixels");
}
