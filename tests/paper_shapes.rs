//! Regression tests pinning the paper-shape claims of EXPERIMENTS.md:
//! the quantitative relationships the reproduction stands on, with
//! deliberately generous tolerances so they fail only when the model's
//! *structure* drifts, not on noise.

use starsim::field::workload;
use starsim::prelude::*;

fn run_gpu(stars_exp: u32, roi: usize) -> (SimulationReport, SimulationReport) {
    let catalog = workload::test1(stars_exp, 2012).catalog;
    let cfg = SimConfig::new(1024, 1024, roi);
    let par = ParallelSimulator::new().simulate(&catalog, &cfg).unwrap();
    let ada = AdaptiveSimulator::new().simulate(&catalog, &cfg).unwrap();
    (par, ada)
}

#[test]
fn table1_transmission_band_matches_paper() {
    // Paper Table I: CPU-GPU transmission 2.43–3.01 ms across test 1.
    let (_, ada_small) = run_gpu(5, 10);
    let (_, ada_big) = run_gpu(14, 10);
    for (label, r) in [("2^5", &ada_small), ("2^14", &ada_big)] {
        let t = r.profile.overhead_named("CPU-GPU transmission");
        assert!(
            (2.3e-3..=3.2e-3).contains(&t),
            "{label}: transmission {t}s outside the paper's Table I band"
        );
    }
    // And it grows with the star count (the star-array upload).
    assert!(
        ada_big.profile.overhead_named("CPU-GPU transmission")
            > ada_small.profile.overhead_named("CPU-GPU transmission")
    );
}

#[test]
fn table1_binding_and_build_are_flat_and_paper_scale() {
    let (_, a) = run_gpu(5, 10);
    let (_, b) = run_gpu(13, 10);
    let bind_a = a.profile.overhead_named("texture memory binding");
    let bind_b = b.profile.overhead_named("texture memory binding");
    assert_eq!(bind_a, bind_b, "binding cost must not depend on stars");
    assert!((bind_a - 0.21e-3).abs() < 0.05e-3, "paper: ≈0.21 ms");
    let build_a = a.profile.overhead_named("lookup table build");
    let build_b = b.profile.overhead_named("lookup table build");
    assert_eq!(build_a, build_b, "build cost must not depend on stars");
    assert!(
        (0.05e-3..=1.0e-3).contains(&build_a),
        "build {build_a}s should be paper-order (≈0.1–1 ms)"
    );
}

#[test]
fn kernel_time_ratio_grows_past_the_inflection() {
    // Fig 11: the parallel kernel outgrows the adaptive one.
    let (par, ada) = run_gpu(14, 10);
    let ratio = par.kernel_time_s() / ada.kernel_time_s();
    assert!(
        ratio > 2.0,
        "parallel/adaptive kernel ratio at 2^14 was only {ratio:.2}"
    );
}

#[test]
fn non_kernel_share_falls_with_scale() {
    // Fig 16's direction: the non-kernel percentage falls as work grows.
    let (par_small, _) = run_gpu(8, 10);
    let (par_big, _) = run_gpu(14, 10);
    let pct = |r: &SimulationReport| r.non_kernel_time_s() / r.app_time_s;
    assert!(
        pct(&par_big) < pct(&par_small),
        "non-kernel share must fall: {:.3} !< {:.3}",
        pct(&par_big),
        pct(&par_small)
    );
    // At small scale non-kernel dominates (paper: >90%).
    assert!(pct(&par_small) > 0.8);
}

#[test]
fn gpu_kernels_scale_linearly_in_stars() {
    // Doubling stars ≈ doubles kernel work (modeled, so noise-free).
    let overhead = starsim::gpu::CostModel::fermi().launch_overhead_s;
    let (par_a, ada_a) = run_gpu(12, 10);
    let (par_b, ada_b) = run_gpu(13, 10);
    for (label, a, b) in [("parallel", &par_a, &par_b), ("adaptive", &ada_a, &ada_b)] {
        let ratio = (b.kernel_time_s() - overhead) / (a.kernel_time_s() - overhead);
        assert!(
            (1.7..2.3).contains(&ratio),
            "{label}: 2x-star kernel ratio was {ratio:.2}"
        );
    }
}

#[test]
fn reference_speedups_reach_paper_order() {
    // Paper: speedups of order 10²  at the top of test 1.
    let (par, ada) = run_gpu(15, 10);
    // Reference sequential: 145 ns per ROI pixel (see bench::experiments).
    let seq_ref = (1usize << 15) as f64 * (100.0 * 145.0 + 50.0) * 1e-9;
    let sp_par = seq_ref / par.app_time_s;
    let sp_ada = seq_ref / ada.app_time_s;
    assert!(sp_par > 50.0, "parallel reference speedup {sp_par:.0}x");
    assert!(sp_ada > sp_par, "adaptive must lead past the inflection");
}

#[test]
fn gflops_are_paper_order_and_kernels_comparable() {
    // Paper Table II: both kernels within ~2% of each other at ~95 GFLOPS.
    // Our accounting lands both in the tens with the parallel one ahead.
    let (par, ada) = run_gpu(14, 10);
    let (gp, ga) = (par.gflops(), ada.gflops());
    assert!((5.0..200.0).contains(&gp), "parallel {gp:.1} GFLOPS");
    assert!((5.0..200.0).contains(&ga), "adaptive {ga:.1} GFLOPS");
    assert!(
        ga < gp * 1.5 && gp < ga * 3.0,
        "kernels should be comparable: {gp:.1} vs {ga:.1}"
    );
}

#[test]
fn adaptive_kernel_replaces_arithmetic_with_fetches() {
    // The §III-C mechanism itself: SFU work leaves the kernel; texture
    // fetches appear; both kernels issue the same atomics.
    let (par, ada) = run_gpu(11, 10);
    let cp = &par.profile.kernels[0].counters;
    let ca = &ada.profile.kernels[0].counters;
    assert!(cp.flops_special > 0);
    assert_eq!(ca.flops_special, 0);
    assert_eq!(cp.tex_fetches, 0);
    assert!(ca.tex_fetches > 0);
    assert_eq!(cp.atomic_requests, ca.atomic_requests);
    assert_eq!(cp.barriers, ca.barriers);
}
