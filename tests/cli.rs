//! End-to-end tests of the `starsim` command-line tool.

use std::process::Command;

fn starsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_starsim"))
}

#[test]
fn generate_info_render_pipeline() {
    let dir = std::env::temp_dir().join("starsim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let stars = dir.join("stars.txt");
    let image = dir.join("out.bmp");

    // generate → a parseable catalogue on stdout.
    let out = starsim()
        .args([
            "generate", "--count", "200", "--width", "256", "--height", "256",
        ])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    std::fs::write(&stars, &out.stdout).unwrap();
    let cat = starsim::field::StarCatalog::read_text(&out.stdout[..]).unwrap();
    assert_eq!(cat.len(), 200);

    // info → statistics and a recommendation.
    let out = starsim()
        .args([
            "info",
            "--stars",
            stars.to_str().unwrap(),
            "--width",
            "256",
            "--height",
            "256",
        ])
        .output()
        .expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stars:            200"));
    assert!(text.contains("recommended:"));

    // render → a valid BMP.
    let out = starsim()
        .args([
            "render",
            "--stars",
            stars.to_str().unwrap(),
            "--width",
            "256",
            "--height",
            "256",
            "--out",
            image.to_str().unwrap(),
        ])
        .output()
        .expect("run render");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&image).unwrap();
    let (w, h, gray) = starsim::image::io::bmp::read_bmp_gray8(&mut &bytes[..]).expect("valid BMP");
    assert_eq!((w, h), (256, 256));
    assert!(gray.iter().any(|&g| g > 0), "image must not be black");
}

#[test]
fn render_random_with_explicit_simulator_and_pgm() {
    let dir = std::env::temp_dir().join("starsim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let image = dir.join("random.pgm");
    let out = starsim()
        .args([
            "render",
            "--random",
            "300",
            "--width",
            "256",
            "--height",
            "256",
            "--simulator",
            "adaptive",
            "--out",
            image.to_str().unwrap(),
        ])
        .output()
        .expect("run render");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("adaptive:"), "stderr: {stderr}");
    let bytes = std::fs::read(&image).unwrap();
    let pgm = starsim::image::io::pgm::read_pgm(&mut &bytes[..]).expect("valid PGM");
    assert_eq!((pgm.width, pgm.height, pgm.maxval), (256, 256, 65535));
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown command.
    let out = starsim().args(["explode"]).output().unwrap();
    assert!(!out.status.success());
    // render without a source.
    let out = starsim().args(["render"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stars FILE or --random"));
    // Unknown simulator.
    let out = starsim()
        .args(["render", "--random", "10", "--simulator", "warp-drive"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // ROI over the device cap surfaces the GPU error (the unified
    // `MAX_ROI_SIDE` bound shared by protocol and sanitizer validation).
    let out = starsim()
        .args([
            "render",
            "--random",
            "10",
            "--roi",
            "40",
            "--simulator",
            "parallel",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exceeds the 32 px cap"));
}
