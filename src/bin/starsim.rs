//! `starsim` — command-line star image renderer.
//!
//! ```text
//! starsim render   --stars FILE|--random N  [--out image.bmp] [options]
//! starsim generate --count N --width W --height H [--seed S] > stars.txt
//! starsim info     --stars FILE [options]
//! ```
//!
//! `render` reads a star catalogue (the paper's `magnitude x y` text
//! format), simulates it with the requested (or auto-selected) simulator,
//! and writes a BMP or PGM image plus a timing report. `generate` emits a
//! random benchmark field. `info` prints catalogue statistics and the
//! simulator the selection table recommends.

use std::io::Write as _;
use std::process::exit;

use starsim::image::io::bmp::write_bmp;
use starsim::image::io::pgm::{write_pgm16, write_pgm8};
use starsim::image::stats;
use starsim::prelude::*;
use starsim::sim::contention;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage("missing command");
    };
    let opts = Options::parse(&args[1..]);
    match command.as_str() {
        "render" => render(opts),
        "generate" => generate(opts),
        "info" => info(opts),
        "validate" => validate_cmd(opts),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

/// Parsed command-line options with defaults.
struct Options {
    stars_file: Option<String>,
    random: Option<usize>,
    out: String,
    width: usize,
    height: usize,
    roi: usize,
    sigma: f32,
    simulator: String,
    seed: u64,
    count: usize,
    gamma: f32,
    profile: bool,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut o = Options {
            stars_file: None,
            random: None,
            out: "starsim.bmp".into(),
            width: 1024,
            height: 1024,
            roi: 10,
            sigma: 2.0,
            simulator: "auto".into(),
            seed: 42,
            count: 2252,
            gamma: 2.2,
            profile: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .cloned()
                    .unwrap_or_else(|| usage(&format!("{name} needs a value")))
            };
            match a.as_str() {
                "--stars" => o.stars_file = Some(value("--stars")),
                "--random" => o.random = Some(parse_num(&value("--random"), "--random")),
                "--out" => o.out = value("--out"),
                "--width" => o.width = parse_num(&value("--width"), "--width"),
                "--height" => o.height = parse_num(&value("--height"), "--height"),
                "--roi" => o.roi = parse_num(&value("--roi"), "--roi"),
                "--sigma" => o.sigma = parse_float(&value("--sigma"), "--sigma"),
                "--simulator" => o.simulator = value("--simulator"),
                "--seed" => o.seed = parse_num(&value("--seed"), "--seed") as u64,
                "--count" => o.count = parse_num(&value("--count"), "--count"),
                "--gamma" => o.gamma = parse_float(&value("--gamma"), "--gamma"),
                "--profile" => o.profile = true,
                other => usage(&format!("unknown option `{other}`")),
            }
        }
        o
    }

    fn load_catalog(&self) -> StarCatalog {
        if let Some(path) = &self.stars_file {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("error: cannot open {path}: {e}");
                exit(1);
            });
            StarCatalog::read_text(file).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            })
        } else if let Some(n) = self.random {
            FieldGenerator::new(self.width, self.height).generate(n, self.seed)
        } else {
            usage("render/info need --stars FILE or --random N");
        }
    }

    fn config(&self) -> SimConfig {
        let mut c = SimConfig::new(self.width, self.height, self.roi);
        c.sigma = self.sigma;
        c
    }
}

fn parse_num(s: &str, what: &str) -> usize {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("bad {what}: `{s}`")))
}

fn parse_float(s: &str, what: &str) -> f32 {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("bad {what}: `{s}`")))
}

fn render(opts: Options) {
    let catalog = opts.load_catalog();
    let config = opts.config();
    if let Err(e) = config.validate() {
        eprintln!("error: {e}");
        exit(1);
    }

    let choice = match opts.simulator.as_str() {
        "sequential" => Choice::Sequential,
        "parallel" => Choice::Parallel,
        "adaptive" => Choice::Adaptive,
        "auto" => InflectionPoint::default().choose(catalog.len(), config.roi_side),
        other => usage(&format!(
            "unknown simulator `{other}` (sequential|parallel|adaptive|auto)"
        )),
    };
    let result = match choice {
        Choice::Sequential => SequentialSimulator::new().simulate(&catalog, &config),
        Choice::Parallel => ParallelSimulator::new().simulate(&catalog, &config),
        Choice::Adaptive => AdaptiveSimulator::new().simulate(&catalog, &config),
    };
    let report = result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });

    eprintln!(
        "{}: {} stars, {}x{} image, ROI {} — app {:.3} ms (kernel {:.3} ms)",
        report.simulator,
        report.stars,
        config.width,
        config.height,
        config.roi_side,
        report.app_time_s * 1e3,
        report.kernel_time_s() * 1e3,
    );
    if opts.profile {
        for k in &report.profile.kernels {
            eprintln!("{}", k.describe());
        }
        for o in &report.profile.overheads {
            eprintln!("  overhead `{}`: {:.3} ms", o.label, o.time_s * 1e3);
        }
    }

    let s = stats(&report.image);
    let map = GrayMap::with_gamma(if s.max > 0.0 { s.max } else { 1.0 }, opts.gamma);
    let mut file = std::io::BufWriter::new(std::fs::File::create(&opts.out).unwrap_or_else(|e| {
        eprintln!("error: cannot create {}: {e}", opts.out);
        exit(1);
    }));
    let write_result = if opts.out.ends_with(".pgm") {
        write_pgm16(&mut file, &report.image, map)
    } else if opts.out.ends_with(".pgm8") {
        write_pgm8(&mut file, &report.image, map)
    } else {
        write_bmp(&mut file, &report.image, map)
    };
    if let Err(e) = write_result.and_then(|_| file.flush()) {
        eprintln!("error writing {}: {e}", opts.out);
        exit(1);
    }
    eprintln!("wrote {}", opts.out);
}

fn generate(opts: Options) {
    let catalog = FieldGenerator::new(opts.width, opts.height).generate(opts.count, opts.seed);
    let stdout = std::io::stdout();
    if let Err(e) = catalog.write_text(stdout.lock()) {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn info(opts: Options) {
    let catalog = opts.load_catalog();
    let config = opts.config();
    let in_frame = catalog
        .stars()
        .iter()
        .filter(|s| s.in_image(config.width, config.height))
        .count();
    let brightest = catalog
        .stars()
        .iter()
        .map(|s| s.mag.value())
        .fold(f32::INFINITY, f32::min);
    let dimmest = catalog
        .stars()
        .iter()
        .map(|s| s.mag.value())
        .fold(f32::NEG_INFINITY, f32::max);
    let overlap = contention::analyze(&catalog, &config);
    let choice = InflectionPoint::default().choose(catalog.len(), config.roi_side);

    println!("stars:            {}", catalog.len());
    println!("inside frame:     {in_frame}");
    if !catalog.is_empty() {
        println!("magnitude range:  {brightest:.2} .. {dimmest:.2}");
    }
    println!(
        "ROI overlap:      {:.1}% of deposits contended (max multiplicity {})",
        overlap.contention_rate() * 100.0,
        overlap.max_multiplicity
    );
    println!(
        "recommended:      {choice:?} simulator (ROI {})",
        config.roi_side
    );
}

fn validate_cmd(opts: Options) {
    use starsim::sim::validate::validate;
    let catalog = opts.load_catalog();
    let config = opts.config();
    if let Err(e) = config.validate() {
        eprintln!("error: {e}");
        exit(1);
    }
    let mut failed = false;
    let par = validate(&ParallelSimulator::new(), &catalog, &config);
    let ada = validate(&AdaptiveSimulator::new(), &catalog, &config);
    for result in [par, ada] {
        match result {
            Ok(v) => {
                println!("{}", v.summary());
                failed |= !v.passed;
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "starsim — star image simulator (intensity model with Gauss blur)\n\n\
         usage:\n  starsim render   (--stars FILE | --random N) [--out img.bmp|img.pgm]\n\
         \x20                  [--width W] [--height H] [--roi SIDE] [--sigma S]\n\
         \x20                  [--simulator auto|sequential|parallel|adaptive] [--gamma G]\n\
         \x20 starsim generate --count N [--width W] [--height H] [--seed S]   (stdout)\n\
         \x20 starsim info     (--stars FILE | --random N) [--roi SIDE]\n\
         \x20 starsim validate (--stars FILE | --random N) [--roi SIDE]"
    );
    exit(if error.is_empty() { 0 } else { 2 });
}
