//! `starsimd` — the overload-safe star-image render server.
//!
//! ```text
//! starsimd serve [--addr HOST:PORT] [--capacity N] [--retry-after MS]
//!                [--lut-capacity N] [--tenant-quota N] [--max-sessions N]
//!                [--flight-dir DIR]
//! starsimd --self-test
//! starsimd --obs-smoke
//! ```
//!
//! `serve` binds the address (default `127.0.0.1:7877` — see `--addr`),
//! prints the bound address on stdout (`listening ADDR`), and serves until
//! killed. `--self-test` boots a server on an ephemeral port, runs a
//! render round-trip, forces an admission reject, drains, and exits 0 iff
//! every step behaved — the CI smoke in one command. `--obs-smoke` does
//! the same for the observability plane: scrape → exposition parses and
//! SLOs are `ok`, then a seeded handler fault → a flight-recorder dump
//! is written and parses.

use std::process::exit;
use std::time::Duration;

use starsim::sim::admission::AdmissionConfig;
use starsim::sim::protocol::{Message, RejectCode, SessionSpec, SloState};
use starsim::sim::server::{Client, ServerConfig, StarServer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("--self-test") | Some("self-test") => self_test(),
        Some("--obs-smoke") | Some("obs-smoke") => obs_smoke(),
        Some("--help") | Some("-h") | Some("help") | None => usage(""),
        Some(other) => usage(&format!("unknown command `{other}`")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "starsimd — overload-safe star-image render server\n\
         \n\
         USAGE:\n\
         \x20 starsimd serve [--addr HOST:PORT] [--capacity N] [--retry-after MS]\n\
         \x20                [--lut-capacity N] [--tenant-quota N] [--max-sessions N]\n\
         \x20                [--flight-dir DIR]\n\
         \x20 starsimd --self-test\n\
         \x20 starsimd --obs-smoke\n\
         \n\
         The server speaks the SSIM v1 length-prefixed frame protocol; see\n\
         DESIGN.md §14 for the wire format and the shedding ladder, §15 for\n\
         the observability plane (Metrics/Alerts scrapes, flight recorder)."
    );
    exit(if err.is_empty() { 0 } else { 2 });
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let at = args.iter().position(|a| a == flag)?;
    let value = args.get(at + 1).unwrap_or_else(|| {
        usage(&format!("{flag} needs a value"));
    });
    match value.parse() {
        Ok(v) => Some(v),
        Err(_) => usage(&format!("bad value `{value}` for {flag}")),
    }
}

fn serve(args: &[String]) {
    let addr: String = parse(args, "--addr").unwrap_or_else(|| "127.0.0.1:7877".into());
    let mut config = ServerConfig::default();
    let mut admission = AdmissionConfig::default();
    if let Some(capacity) = parse(args, "--capacity") {
        admission.capacity = capacity;
    }
    if let Some(retry_after_ms) = parse(args, "--retry-after") {
        admission.retry_after_ms = retry_after_ms;
    }
    config.admission = admission;
    if let Some(lut_capacity) = parse(args, "--lut-capacity") {
        config.lut_capacity = lut_capacity;
    }
    if let Some(quota) = parse::<usize>(args, "--tenant-quota") {
        config.tenant_quota = (quota > 0).then_some(quota);
    }
    if let Some(max_sessions) = parse(args, "--max-sessions") {
        config.max_sessions_per_conn = max_sessions;
    }
    if let Some(flight_dir) = parse::<std::path::PathBuf>(args, "--flight-dir") {
        config.flight_dir = Some(flight_dir);
    }
    let handle = match StarServer::bind(&addr, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!("listening {}", handle.addr());
    // Serve until killed; the handle's drop path shuts the acceptor down.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// One assertion of a smoke run: print and fail loudly.
fn check_as(smoke: &str, ok: bool, what: &str) {
    if ok {
        println!("{smoke}: {what}: ok");
    } else {
        eprintln!("{smoke}: {what}: FAILED");
        exit(1);
    }
}

fn check(ok: bool, what: &str) {
    check_as("self-test", ok, what);
}

fn self_test() {
    // Tiny admission window so saturation is cheap to force.
    let mut config = ServerConfig::default();
    config.admission.capacity = 2;
    config.admission.retry_after_ms = 25;
    let handle = StarServer::bind("127.0.0.1:0", config).unwrap_or_else(|e| {
        eprintln!("self-test: bind: FAILED ({e})");
        exit(1);
    });
    println!("self-test: listening {}", handle.addr());

    let mut client = Client::connect(handle.addr()).unwrap_or_else(|e| {
        eprintln!("self-test: connect/hello: FAILED ({e})");
        exit(1);
    });
    check(true, "hello handshake");

    let spec = SessionSpec {
        width: 128,
        height: 128,
        roi_side: 8,
        stars: 2000,
        seed: 11,
        backend: 0,
        tenant: "self-test".into(),
    };
    let (session, _hit) = client.open_session(&spec).unwrap_or_else(|e| {
        eprintln!("self-test: open session: FAILED ({e})");
        exit(1);
    });
    check(true, "open session");

    // Render round-trip: two bursts over the same session must fold into
    // one strictly advancing digest.
    let first = match client.render(session, 3, 0) {
        Ok(Message::RenderDone(done)) => done,
        other => {
            eprintln!("self-test: render: FAILED ({other:?})");
            exit(1);
        }
    };
    check(
        first.completed == 3 && !first.deadline_missed,
        "render round-trip",
    );
    let second = match client.render(session, 2, 0) {
        Ok(Message::RenderDone(done)) => done,
        other => {
            eprintln!("self-test: render 2: FAILED ({other:?})");
            exit(1);
        }
    };
    check(
        second.digest != first.digest,
        "digest advances across bursts",
    );

    // Forced admission reject: hold every permit, then ask for work.
    let permits: Vec<_> = (0..2)
        .map(|i| {
            handle.admission().try_admit().unwrap_or_else(|_| {
                eprintln!("self-test: pre-saturation permit {i}: FAILED");
                exit(1);
            })
        })
        .collect();
    match client.render(session, 1, 0) {
        Ok(Message::Reject {
            code: RejectCode::Saturated,
            retry_after_ms,
            ..
        }) => check(retry_after_ms > 0, "saturated reject carries retry-after"),
        other => {
            eprintln!("self-test: saturated reject: FAILED ({other:?})");
            exit(1);
        }
    }
    drop(permits);

    // Monitoring snapshot reflects the reject.
    let monitor = client.monitor().unwrap_or_else(|e| {
        eprintln!("self-test: monitor: FAILED ({e})");
        exit(1);
    });
    check(
        monitor.rejected >= 1 && monitor.capacity == 2,
        "monitor counts the reject",
    );

    // Graceful drain: ack with nothing pending, then rejects as draining.
    let pending = client.drain().unwrap_or_else(|e| {
        eprintln!("self-test: drain: FAILED ({e})");
        exit(1);
    });
    check(pending == 0, "drain acks with no pending work");
    match client.render(session, 1, 0) {
        Ok(Message::Reject {
            code: RejectCode::Draining,
            ..
        }) => check(true, "post-drain render rejected as draining"),
        other => {
            eprintln!("self-test: post-drain reject: FAILED ({other:?})");
            exit(1);
        }
    }

    handle.shutdown();
    println!("self-test: PASS");
}

fn obs_smoke() {
    let check = |ok: bool, what: &str| check_as("obs-smoke", ok, what);
    let dir = std::env::temp_dir().join(format!("starsimd-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        flight_dir: Some(dir.clone()),
        panic_tenant: Some("chaos".into()),
        ..ServerConfig::default()
    };
    let handle = StarServer::bind("127.0.0.1:0", config).unwrap_or_else(|e| {
        eprintln!("obs-smoke: bind: FAILED ({e})");
        exit(1);
    });
    println!("obs-smoke: listening {}", handle.addr());
    let mut client = Client::connect(handle.addr()).unwrap_or_else(|e| {
        eprintln!("obs-smoke: connect: FAILED ({e})");
        exit(1);
    });

    let spec = SessionSpec {
        width: 128,
        height: 128,
        roi_side: 8,
        stars: 2000,
        seed: 11,
        backend: 0,
        tenant: "obs-smoke".into(),
    };
    let (session, _) = client.open_session(&spec).unwrap_or_else(|e| {
        eprintln!("obs-smoke: open session: FAILED ({e})");
        exit(1);
    });
    match client.render(session, 2, 0) {
        Ok(Message::RenderDone(done)) => check(done.completed == 2, "render round-trip"),
        other => {
            eprintln!("obs-smoke: render: FAILED ({other:?})");
            exit(1);
        }
    }

    // Scrape: the exposition parses and carries the frame counter.
    let (snapshots, exposition) = client.metrics().unwrap_or_else(|e| {
        eprintln!("obs-smoke: metrics scrape: FAILED ({e})");
        exit(1);
    });
    check(snapshots >= 1, "scrape retains ring snapshots");
    match starsim::sim::obsplane::parse_exposition(&exposition) {
        Ok(samples) => check(
            samples
                .iter()
                .any(|s| s.name == "starsim_server_frames_rendered" && s.value >= 2.0),
            "exposition parses with frame counters",
        ),
        Err(e) => {
            eprintln!("obs-smoke: exposition parse: FAILED ({e})");
            exit(1);
        }
    }

    // SLOs on a healthy server are ok.
    match client.alerts() {
        Ok((SloState::Ok, _)) => check(true, "SLO state ok"),
        Ok((state, body)) => {
            eprintln!("obs-smoke: SLO state: FAILED ({} — {body})", state.name());
            exit(1);
        }
        Err(e) => {
            eprintln!("obs-smoke: alerts: FAILED ({e})");
            exit(1);
        }
    }

    // The rung summary survives on the monitor path.
    match client.monitor() {
        Ok(monitor) => check(
            monitor.rung_summary.contains("rung_frames"),
            "monitor carries the rung summary",
        ),
        Err(e) => {
            eprintln!("obs-smoke: monitor: FAILED ({e})");
            exit(1);
        }
    }

    // Seeded fault: the chaos tenant panics its handler, which must
    // produce a parseable flight-recorder dump.
    match client.request(&Message::OpenSession(SessionSpec {
        tenant: "chaos".into(),
        ..spec
    })) {
        Ok(Message::Reject {
            code: RejectCode::Internal,
            ..
        }) => check(true, "seeded fault isolated to a reject"),
        other => {
            eprintln!("obs-smoke: seeded fault: FAILED ({other:?})");
            exit(1);
        }
    }
    check(
        handle.obs().recorder().dump_count() >= 1,
        "fault tripped a flight dump",
    );
    let dump = std::fs::read_dir(&dir)
        .ok()
        .and_then(|entries| {
            entries.filter_map(|e| e.ok()).map(|e| e.path()).find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("flight-"))
            })
        })
        .unwrap_or_else(|| {
            eprintln!("obs-smoke: flight dump file: FAILED (none written)");
            exit(1);
        });
    match std::fs::read_to_string(&dump)
        .map_err(|e| e.to_string())
        .and_then(|text| starsim::sim::telemetry::parse_json(&text).map_err(|e| e.to_string()))
    {
        Ok(doc) => check(
            doc.get("entries").is_some() && doc.get("trace").is_some(),
            "flight dump parses with entries and trace",
        ),
        Err(e) => {
            eprintln!("obs-smoke: flight dump parse: FAILED ({e})");
            exit(1);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    handle.shutdown();
    println!("obs-smoke: PASS");
}
