//! `starsimd` — the overload-safe star-image render server.
//!
//! ```text
//! starsimd serve [--addr HOST:PORT] [--capacity N] [--retry-after MS]
//!                [--lut-capacity N] [--tenant-quota N] [--max-sessions N]
//! starsimd --self-test
//! ```
//!
//! `serve` binds the address (default `127.0.0.1:7877` — see `--addr`),
//! prints the bound address on stdout (`listening ADDR`), and serves until
//! killed. `--self-test` boots a server on an ephemeral port, runs a
//! render round-trip, forces an admission reject, drains, and exits 0 iff
//! every step behaved — the CI smoke in one command.

use std::process::exit;
use std::time::Duration;

use starsim::sim::admission::AdmissionConfig;
use starsim::sim::protocol::{Message, RejectCode, SessionSpec};
use starsim::sim::server::{Client, ServerConfig, StarServer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("--self-test") | Some("self-test") => self_test(),
        Some("--help") | Some("-h") | Some("help") | None => usage(""),
        Some(other) => usage(&format!("unknown command `{other}`")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "starsimd — overload-safe star-image render server\n\
         \n\
         USAGE:\n\
         \x20 starsimd serve [--addr HOST:PORT] [--capacity N] [--retry-after MS]\n\
         \x20                [--lut-capacity N] [--tenant-quota N] [--max-sessions N]\n\
         \x20 starsimd --self-test\n\
         \n\
         The server speaks the SSIM v1 length-prefixed frame protocol; see\n\
         DESIGN.md §14 for the wire format and the shedding ladder."
    );
    exit(if err.is_empty() { 0 } else { 2 });
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let at = args.iter().position(|a| a == flag)?;
    let value = args.get(at + 1).unwrap_or_else(|| {
        usage(&format!("{flag} needs a value"));
    });
    match value.parse() {
        Ok(v) => Some(v),
        Err(_) => usage(&format!("bad value `{value}` for {flag}")),
    }
}

fn serve(args: &[String]) {
    let addr: String = parse(args, "--addr").unwrap_or_else(|| "127.0.0.1:7877".into());
    let mut config = ServerConfig::default();
    let mut admission = AdmissionConfig::default();
    if let Some(capacity) = parse(args, "--capacity") {
        admission.capacity = capacity;
    }
    if let Some(retry_after_ms) = parse(args, "--retry-after") {
        admission.retry_after_ms = retry_after_ms;
    }
    config.admission = admission;
    if let Some(lut_capacity) = parse(args, "--lut-capacity") {
        config.lut_capacity = lut_capacity;
    }
    if let Some(quota) = parse::<usize>(args, "--tenant-quota") {
        config.tenant_quota = (quota > 0).then_some(quota);
    }
    if let Some(max_sessions) = parse(args, "--max-sessions") {
        config.max_sessions_per_conn = max_sessions;
    }
    let handle = match StarServer::bind(&addr, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!("listening {}", handle.addr());
    // Serve until killed; the handle's drop path shuts the acceptor down.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// One assertion of the self-test: print and fail loudly.
fn check(ok: bool, what: &str) {
    if ok {
        println!("self-test: {what}: ok");
    } else {
        eprintln!("self-test: {what}: FAILED");
        exit(1);
    }
}

fn self_test() {
    // Tiny admission window so saturation is cheap to force.
    let mut config = ServerConfig::default();
    config.admission.capacity = 2;
    config.admission.retry_after_ms = 25;
    let handle = StarServer::bind("127.0.0.1:0", config).unwrap_or_else(|e| {
        eprintln!("self-test: bind: FAILED ({e})");
        exit(1);
    });
    println!("self-test: listening {}", handle.addr());

    let mut client = Client::connect(handle.addr()).unwrap_or_else(|e| {
        eprintln!("self-test: connect/hello: FAILED ({e})");
        exit(1);
    });
    check(true, "hello handshake");

    let spec = SessionSpec {
        width: 128,
        height: 128,
        roi_side: 8,
        stars: 2000,
        seed: 11,
        backend: 0,
        tenant: "self-test".into(),
    };
    let (session, _hit) = client.open_session(&spec).unwrap_or_else(|e| {
        eprintln!("self-test: open session: FAILED ({e})");
        exit(1);
    });
    check(true, "open session");

    // Render round-trip: two bursts over the same session must fold into
    // one strictly advancing digest.
    let first = match client.render(session, 3, 0) {
        Ok(Message::RenderDone(done)) => done,
        other => {
            eprintln!("self-test: render: FAILED ({other:?})");
            exit(1);
        }
    };
    check(
        first.completed == 3 && !first.deadline_missed,
        "render round-trip",
    );
    let second = match client.render(session, 2, 0) {
        Ok(Message::RenderDone(done)) => done,
        other => {
            eprintln!("self-test: render 2: FAILED ({other:?})");
            exit(1);
        }
    };
    check(
        second.digest != first.digest,
        "digest advances across bursts",
    );

    // Forced admission reject: hold every permit, then ask for work.
    let permits: Vec<_> = (0..2)
        .map(|i| {
            handle.admission().try_admit().unwrap_or_else(|_| {
                eprintln!("self-test: pre-saturation permit {i}: FAILED");
                exit(1);
            })
        })
        .collect();
    match client.render(session, 1, 0) {
        Ok(Message::Reject {
            code: RejectCode::Saturated,
            retry_after_ms,
            ..
        }) => check(retry_after_ms > 0, "saturated reject carries retry-after"),
        other => {
            eprintln!("self-test: saturated reject: FAILED ({other:?})");
            exit(1);
        }
    }
    drop(permits);

    // Monitoring snapshot reflects the reject.
    let monitor = client.monitor().unwrap_or_else(|e| {
        eprintln!("self-test: monitor: FAILED ({e})");
        exit(1);
    });
    check(
        monitor.rejected >= 1 && monitor.capacity == 2,
        "monitor counts the reject",
    );

    // Graceful drain: ack with nothing pending, then rejects as draining.
    let pending = client.drain().unwrap_or_else(|e| {
        eprintln!("self-test: drain: FAILED ({e})");
        exit(1);
    });
    check(pending == 0, "drain acks with no pending work");
    match client.render(session, 1, 0) {
        Ok(Message::Reject {
            code: RejectCode::Draining,
            ..
        }) => check(true, "post-drain render rejected as draining"),
        other => {
            eprintln!("self-test: post-drain reject: FAILED ({other:?})");
            exit(1);
        }
    }

    handle.shutdown();
    println!("self-test: PASS");
}
