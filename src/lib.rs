//! # starsim — high-performance star image simulation
//!
//! A Rust reproduction of Li, Zhang, Zheng & Hu, *Implementing
//! High-performance Intensity Model with Blur Effect on GPUs for
//! Large-scale Star Image Simulation* (IPDPS Workshops 2012).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`field`] — star catalogues, magnitudes, synthetic field generation,
//!   attitude + field-of-view projection ([`starfield`]);
//! * [`psf`] — the Gaussian blur model, ROIs, intensity lookup tables;
//! * [`image`] — gray-value buffers, atomic accumulation, BMP/PGM IO,
//!   centroiding ([`starimage`]);
//! * [`gpu`] — the virtual CUDA-class GPU with its analytical Fermi timing
//!   model ([`gpusim`]);
//! * [`sim`] — the three simulators of the paper plus selection logic and
//!   the multi-GPU extension ([`starsim_core`]).
//!
//! ## Quickstart
//!
//! ```
//! use starsim::prelude::*;
//!
//! // A random 1024×1024 star field (the paper's Fig. 2 scenario).
//! let catalog = FieldGenerator::new(256, 256).generate(140, 42);
//! let config = SimConfig::new(256, 256, 10);
//!
//! // Render with the star-centric GPU simulator and the CPU baseline.
//! let gpu_report = ParallelSimulator::new().simulate(&catalog, &config).unwrap();
//! let cpu_report = SequentialSimulator::new().simulate(&catalog, &config).unwrap();
//!
//! // The images agree (up to atomic accumulation order).
//! assert!(starsim::image::images_close(
//!     &gpu_report.image,
//!     &cpu_report.image,
//!     1e-5,
//!     1e-4,
//! ));
//! ```

pub use gpusim as gpu;
pub use starfield as field;
pub use starimage as image;
pub use starsim_core as sim;

/// The PSF substrate crate (re-exported under its library name `psf`).
pub use psf;

/// Everything most applications need, in one import.
pub mod prelude {
    pub use gpusim::{DeviceSpec, VirtualGpu};
    pub use psf::{GaussianPsf, IntensityModel, LookupTable, Roi};
    pub use starfield::{
        Attitude, Camera, FieldGenerator, MagnitudeModel, PositionModel, SkyCatalog, Star,
        StarCatalog,
    };
    pub use starimage::{detect_stars, CentroidParams, GrayMap, ImageF32};
    pub use starsim_core::{
        AdaptiveSimulator, Choice, InflectionPoint, MultiGpuSimulator, ParallelSimulator,
        PixelCentricSimulator, SequentialSimulator, SimConfig, SimulationReport, Simulator,
    };
}
