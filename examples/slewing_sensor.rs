//! Slewing sensor: motion-smeared star streaks plus detector noise — the
//! blurred-star-image regime of the paper's reference [9], rendered with
//! the extension PSF and the sensor noise model.
//!
//! ```text
//! cargo run --release --example slewing_sensor
//! ```

use starsim::image::io::pgm::write_pgm16;
use starsim::image::{apply_noise, star_snr, stats, NoiseModel};
use starsim::prelude::*;
use starsim::sim::PsfKind;

fn main() {
    let catalog = FieldGenerator::new(512, 512)
        .magnitudes(MagnitudeModel::Uniform { min: 1.0, max: 6.0 })
        .generate(120, 77);

    // A 9-pixel streak at 30° — a fast slew during the exposure. The ROI
    // must grow to cover the streak (margin_for_energy guides the choice).
    let streak_len = 9.0f32;
    let angle = 30.0f32.to_radians();
    let margin =
        starsim::psf::SmearedGaussianPsf::new(1.5, streak_len, angle).margin_for_energy(0.95);
    let roi_side = (2 * margin + 1).min(32);
    println!(
        "streak {streak_len} px at 30°: 95%-energy margin {margin} ⇒ ROI {roi_side}x{roi_side}"
    );

    let mut config = SimConfig::new(512, 512, roi_side);
    config.sigma = 1.5;
    config.psf = PsfKind::Smeared {
        length: streak_len,
        angle,
    };

    // Render the streaked frame and a static reference frame.
    let streaked = ParallelSimulator::new()
        .simulate(&catalog, &config)
        .unwrap();
    let mut static_cfg = config.clone();
    static_cfg.psf = PsfKind::Point;
    let static_frame = ParallelSimulator::new()
        .simulate(&catalog, &static_cfg)
        .unwrap();

    let s_streak = stats(&streaked.image);
    let s_static = stats(&static_frame.image);
    println!(
        "peak intensity: static {:.3} → streaked {:.3} ({:.1}x dimmer peaks — energy spread over the streak)",
        s_static.max,
        s_streak.max,
        s_static.max / s_streak.max
    );
    println!(
        "lit pixels: static {} → streaked {} ({:+.0}%)",
        s_static.lit_pixels,
        s_streak.lit_pixels,
        (s_streak.lit_pixels as f64 / s_static.lit_pixels as f64 - 1.0) * 100.0
    );

    // Add detector noise and look at detectability.
    let noise = NoiseModel {
        background: 0.0005,
        shot_gain: 0.002,
        read_sigma: 0.001,
    };
    let mut noisy = streaked.image.clone();
    apply_noise(&mut noisy, noise, 7);

    let model = config.intensity_model();
    let dim_star = catalog
        .stars()
        .iter()
        .max_by(|a, b| a.mag.value().total_cmp(&b.mag.value()))
        .unwrap();
    let snr = star_snr(model.roi_flux(dim_star), roi_side * roi_side, noise);
    println!(
        "dimmest star (m={:.1}) SNR over its ROI: {:.1}",
        dim_star.mag.value(),
        snr
    );

    let detections = detect_stars(
        &noisy,
        CentroidParams {
            threshold: 0.02,
            window: margin,
        },
    );
    println!(
        "detected {} of {} streaked stars in the noisy frame",
        detections.len(),
        catalog.len()
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let mut f = std::fs::File::create("results/slewing_sensor.pgm")
        .expect("create results/slewing_sensor.pgm");
    write_pgm16(&mut f, &noisy, GrayMap::with_gamma(stats(&noisy).max, 2.2)).expect("write pgm");
    println!("wrote results/slewing_sensor.pgm (16-bit, streaks + noise)");
}
