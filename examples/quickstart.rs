//! Quickstart: render the paper's Fig. 2 scene — a 1024×1024 star image
//! with 2252 stars — with all three simulators, compare them, and write
//! the picture to `results/quickstart.bmp`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use starsim::image::diff::compare;
use starsim::image::io::bmp::write_bmp;
use starsim::image::stats;
use starsim::prelude::*;

fn main() {
    // The paper's Fig. 2: 2252 stars on a 1024×1024 plane, ROI 10, Gauss σ=2.
    let catalog = FieldGenerator::new(1024, 1024).generate(2252, 42);
    let config = SimConfig::default();
    println!(
        "simulating {} stars on a {}x{} image (ROI {}x{}, sigma {})",
        catalog.len(),
        config.width,
        config.height,
        config.roi_side,
        config.roi_side,
        config.sigma
    );

    let sequential = SequentialSimulator::new()
        .simulate(&catalog, &config)
        .unwrap();
    let parallel = ParallelSimulator::new()
        .simulate(&catalog, &config)
        .unwrap();
    let adaptive = AdaptiveSimulator::new()
        .simulate(&catalog, &config)
        .unwrap();

    println!(
        "\n{:<12} {:>12} {:>12} {:>12}",
        "simulator", "app ms", "kernel ms", "non-kernel ms"
    );
    for r in [&sequential, &parallel, &adaptive] {
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3}",
            r.simulator,
            r.app_time_s * 1e3,
            r.kernel_time_s() * 1e3,
            r.non_kernel_time_s() * 1e3,
        );
    }
    println!(
        "\nspeedup vs sequential: parallel {:.1}x, adaptive {:.1}x",
        parallel.speedup_vs(sequential.app_time_s),
        adaptive.speedup_vs(sequential.app_time_s),
    );

    // Validate: the GPU image matches the CPU image.
    let d = compare(&sequential.image, &parallel.image, 1e-4);
    println!(
        "parallel vs sequential: max abs diff {:.2e}, rmse {:.2e}",
        d.max_abs, d.rmse
    );

    let s = stats(&parallel.image);
    println!(
        "image: {} lit pixels, peak intensity {:.3}, total flux {:.1}",
        s.lit_pixels, s.max, s.total
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let mut f =
        std::fs::File::create("results/quickstart.bmp").expect("create results/quickstart.bmp");
    write_bmp(&mut f, &parallel.image, GrayMap::with_gamma(s.max, 2.2)).expect("write bmp");
    println!("wrote results/quickstart.bmp");
}
