//! Lost in space: the fully autonomous star-tracker pipeline with **no
//! attitude prior anywhere** — the hardest mode a star sensor supports and
//! the end-to-end application of every layer of this workspace.
//!
//! catalogue → (unknown) attitude → intensity-model rendering on the
//! virtual GPU → centroid extraction → angle-pair star identification →
//! TRIAD attitude solution → truth comparison.
//!
//! ```text
//! cargo run --release --example lost_in_space
//! ```

use starsim::field::generator::synthetic_sky;
use starsim::field::{attitude_error, triad, PairCatalog, Vec2};
use starsim::prelude::*;

fn main() {
    // A bright-star sky and its precomputed pair catalogue (the onboard
    // database a real tracker carries in flash).
    let sky = synthetic_sky(4000, 0.0, 5.0, 77);
    let camera = Camera::from_fov(12.0f64.to_radians(), 1024, 1024).unwrap();
    let pair_catalog = PairCatalog::build(&sky, 4.5, camera.diagonal_half_angle() * 2.0);
    println!(
        "onboard database: {} bright stars, {} pairs within the FOV diagonal",
        pair_catalog.stars().len(),
        pair_catalog.pair_count()
    );

    // The spacecraft tumbles to an attitude the software has never seen.
    let secret = Attitude::pointing(4.1, -0.35, 1.9);

    // The sensor images whatever is out there.
    let in_view = sky.view(secret, &camera, 10.0);
    println!(
        "sensor sees {} catalogue stars (unknown to the software)",
        in_view.len()
    );
    let config = SimConfig::new(1024, 1024, 12);
    let report = ParallelSimulator::new()
        .simulate(&in_view, &config)
        .unwrap();
    println!(
        "rendered on the virtual GPU in {:.3} ms (kernel {:.3} ms)",
        report.app_time_s * 1e3,
        report.kernel_time_s() * 1e3
    );

    // Onboard processing: centroid, unproject, identify, solve.
    let mut detections = detect_stars(
        &report.image,
        CentroidParams {
            threshold: 1e-3,
            window: 5,
        },
    );
    detections.sort_by(|a, b| b.flux.total_cmp(&a.flux));
    detections.truncate(8); // the brightest few are the most reliable
    println!("extracted {} bright centroids", detections.len());

    let body_dirs: Vec<[f64; 3]> = detections
        .iter()
        .map(|d| camera.unproject(Vec2::new(d.x, d.y)))
        .collect();

    let ids = pair_catalog.identify(&body_dirs, 3e-4);
    let identified = ids.iter().filter(|i| i.is_some()).count();
    println!(
        "angle-pair voting identified {identified}/{} stars",
        ids.len()
    );

    let observations = pair_catalog.observations(&body_dirs, 3e-4);
    let solution = triad(&observations).expect("attitude solution");

    let err_arcsec = attitude_error(solution, secret).to_degrees() * 3600.0;
    let bore = solution.boresight();
    println!(
        "solved boresight: ra {:.3} h, dec {:+.2}°  (error vs truth: {:.1} arcsec)",
        bore[1].atan2(bore[0]).rem_euclid(std::f64::consts::TAU) / std::f64::consts::TAU * 24.0,
        bore[2].asin().to_degrees(),
        err_arcsec
    );
    assert!(err_arcsec < 120.0, "lost-in-space solve failed");
    println!("lost-in-space acquisition complete.");
}
