//! Star tracker in the loop — the application from the paper's
//! introduction: a star sensor images the sky under a commanded attitude,
//! and the image is used for "real-time attitude adjustment".
//!
//! Pipeline: synthetic sky catalogue → quaternion attitude → FOV retrieval
//! (gnomonic projection) → intensity-model rendering on the virtual GPU →
//! centroid extraction → match against the catalogue → report pointing
//! residuals.
//!
//! ```text
//! cargo run --release --example star_tracker
//! ```

use starsim::field::generator::synthetic_sky;
use starsim::prelude::*;

fn main() {
    // A synthetic sky of 100k stars down to magnitude 6.5 (naked-eye-class
    // catalogue, about the density of Hipparcos at that cut).
    let sky = synthetic_sky(100_000, 0.0, 6.5, 7);
    let camera = Camera::from_fov(12.0f64.to_radians(), 1024, 1024).unwrap();

    // The commanded attitude: RA 3h, Dec +20°, roll 30°.
    let (ra, dec, roll) = (
        (3.0f64 / 24.0) * std::f64::consts::TAU,
        20.0f64.to_radians(),
        30.0f64.to_radians(),
    );
    let attitude = Attitude::pointing(ra, dec, roll);

    // FOV retrieval with an ROI-sized margin (stars just off-frame still
    // spill light in).
    let config = SimConfig::new(1024, 1024, 12);
    let in_view = sky.view(attitude, &camera, config.roi_side as f32);
    println!(
        "attitude (ra {:.2}h, dec {:.1}°, roll {:.0}°): {} catalogue stars in view",
        ra / std::f64::consts::TAU * 24.0,
        dec.to_degrees(),
        roll.to_degrees(),
        in_view.len()
    );

    // Render with the recommended simulator for this workload.
    let point = InflectionPoint::default();
    let choice = point.choose(in_view.len(), config.roi_side);
    println!("selection table recommends: {choice:?}");
    let report = match choice {
        Choice::Sequential => SequentialSimulator::new()
            .simulate(&in_view, &config)
            .unwrap(),
        Choice::Parallel => ParallelSimulator::new()
            .simulate(&in_view, &config)
            .unwrap(),
        Choice::Adaptive => AdaptiveSimulator::new()
            .simulate(&in_view, &config)
            .unwrap(),
    };
    println!(
        "rendered with {} in {:.3} ms (kernel {:.3} ms)",
        report.simulator,
        report.app_time_s * 1e3,
        report.kernel_time_s() * 1e3
    );

    // Extract star centroids from the image, as the attitude-determination
    // stage of a real tracker would.
    let detections = detect_stars(
        &report.image,
        CentroidParams {
            threshold: 1e-4,
            window: 5,
        },
    );
    println!("centroid extraction: {} detections", detections.len());

    // Match detections to the projected catalogue and measure residuals.
    let mut matched = 0usize;
    let mut sum_sq = 0.0f64;
    for d in &detections {
        let nearest = in_view
            .stars()
            .iter()
            .map(|s| ((s.pos.x - d.x).powi(2) + (s.pos.y - d.y).powi(2)).sqrt())
            .fold(f32::INFINITY, f32::min);
        if nearest < 1.0 {
            matched += 1;
            sum_sq += (nearest as f64).powi(2);
        }
    }
    let rms_px = (sum_sq / matched.max(1) as f64).sqrt();
    // One pixel subtends fov/width radians; report the attitude-grade
    // angular residual.
    let arcsec_per_px = camera.horizontal_fov().to_degrees() * 3600.0 / 1024.0;
    println!(
        "matched {matched}/{} detections within 1 px; centroid RMS {:.3} px = {:.1} arcsec",
        detections.len(),
        rms_px,
        rms_px * arcsec_per_px
    );

    assert!(
        matched * 10 >= detections.len() * 8,
        "a working tracker should match most detections"
    );

    // Attitude determination: identify detections against the catalogue,
    // unproject to body vectors, solve with TRIAD.
    use starsim::field::{attitude_error, triad, Observation, Vec2};
    let mut observations = Vec::new();
    for d in detections.iter().take(10) {
        let (star, dist) = in_view
            .stars()
            .iter()
            .map(|s| {
                let dd = ((s.pos.x - d.x).powi(2) + (s.pos.y - d.y).powi(2)).sqrt();
                (s, dd)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if dist < 1.0 {
            observations.push(Observation {
                body: camera.unproject(Vec2::new(d.x, d.y)),
                inertial: attitude.rotate(camera.unproject(star.pos)),
            });
        }
    }
    let estimate = triad(&observations).expect("attitude solution");
    let err_arcsec = attitude_error(estimate, attitude).to_degrees() * 3600.0;
    println!(
        "TRIAD attitude solution from {} stars: error {:.1} arcsec",
        observations.len(),
        err_arcsec
    );
    println!("star tracker loop closed.");
}
