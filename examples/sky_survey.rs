//! Large-scale survey frame: a dense, realistic field — the "large-scale
//! star simulator" regime the paper targets, where tens of thousands of
//! stars hit one frame.
//!
//! Uses the realistic magnitude law (dim stars dominate), clustered
//! positions (a galactic-plane-like density enhancement that stresses the
//! atomic-contention path), the adaptive simulator (the selection table's
//! choice at this scale), and 16-bit PGM output to preserve faint wings.
//!
//! ```text
//! cargo run --release --example sky_survey
//! ```

use starsim::image::histogram;
use starsim::image::io::pgm::write_pgm16;
use starsim::image::stats;
use starsim::prelude::*;

fn main() {
    let stars = 50_000;
    let catalog = FieldGenerator::new(1024, 1024)
        .positions(PositionModel::Clustered {
            clusters: 40,
            sigma_px: 60.0,
        })
        .magnitudes(MagnitudeModel::Realistic {
            min: 2.0,
            max: 12.0,
        })
        .generate(stars, 20260707);

    let config = SimConfig::new(1024, 1024, 10);
    let choice = InflectionPoint::default().choose(stars, config.roi_side);
    println!("survey frame: {stars} stars, selection table says {choice:?}");
    assert_eq!(
        choice,
        Choice::Adaptive,
        "this scale sits past the inflection"
    );

    let report = AdaptiveSimulator::new()
        .simulate(&catalog, &config)
        .unwrap();
    println!(
        "adaptive simulator: app {:.3} ms (kernel {:.3} ms, non-kernel {:.3} ms)",
        report.app_time_s * 1e3,
        report.kernel_time_s() * 1e3,
        report.non_kernel_time_s() * 1e3
    );

    // Contention diagnostics: clustered fields overlap ROIs, the case the
    // paper flags for atomic-add serialization.
    let c = &report.profile.kernels[0].counters;
    println!(
        "atomics: {} requests, {} same-address serialization steps ({:.2}%)",
        c.atomic_requests,
        c.atomic_conflicts,
        c.atomic_conflicts as f64 / c.atomic_requests.max(1) as f64 * 100.0
    );
    println!(
        "texture cache: {:.1}% hit rate over {} fetches",
        c.tex_hit_rate() * 100.0,
        c.tex_fetches
    );

    let s = stats(&report.image);
    println!(
        "image: {} lit pixels ({:.1}%), peak {:.2}, mean {:.4}",
        s.lit_pixels,
        s.lit_pixels as f64 / report.image.len() as f64 * 100.0,
        s.max,
        s.mean
    );

    // Dynamic-range histogram over 8 log-ish bins.
    let h = histogram(&report.image, 8, s.max);
    println!("intensity histogram (8 bins to peak): {h:?}");

    std::fs::create_dir_all("results").expect("create results dir");
    let mut f =
        std::fs::File::create("results/sky_survey.pgm").expect("create results/sky_survey.pgm");
    write_pgm16(&mut f, &report.image, GrayMap::with_gamma(s.max, 2.2)).expect("write pgm");
    println!("wrote results/sky_survey.pgm (16-bit)");
}
