//! Simulator selection advisor — the paper's Table III as a tool: for a
//! grid of workloads, print which simulator the inflection-point rule
//! recommends, then spot-check the recommendation with head-to-head runs.
//!
//! ```text
//! cargo run --release --example selection_advisor
//! ```

use starsim::prelude::*;

fn main() {
    let point = InflectionPoint::default();

    println!(
        "selection map (rows: stars, cols: ROI side) — S=sequential, P=parallel, A=adaptive\n"
    );
    let roi_sides = [2usize, 6, 10, 14, 20, 28, 32];
    print!("{:>9}", "stars\\roi");
    for r in roi_sides {
        print!("{r:>5}");
    }
    println!();
    for exp in [5u32, 7, 9, 11, 13, 15, 17] {
        let stars = 1usize << exp;
        print!("{:>9}", format!("2^{exp}"));
        for r in roi_sides {
            let c = match point.choose(stars, r) {
                Choice::Sequential => 'S',
                Choice::Parallel => 'P',
                Choice::Adaptive => 'A',
            };
            print!("{c:>5}");
        }
        println!();
    }

    // Spot-check three regimes against live measurements on a reduced
    // (512²) frame so the example stays fast.
    println!("\nspot checks (512x512 frame):");
    let cases = [(1 << 6, 10usize), (1 << 12, 10), (1 << 15, 10)];
    for (stars, roi) in cases {
        let catalog = FieldGenerator::new(512, 512).generate(stars, 1);
        let config = SimConfig::new(512, 512, roi);
        let seq = SequentialSimulator::new()
            .simulate(&catalog, &config)
            .unwrap();
        let par = ParallelSimulator::new()
            .simulate(&catalog, &config)
            .unwrap();
        let ada = AdaptiveSimulator::new()
            .simulate(&catalog, &config)
            .unwrap();
        let best = [
            ("sequential", seq.app_time_s),
            ("parallel", par.app_time_s),
            ("adaptive", ada.app_time_s),
        ]
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
        println!(
            "  {stars:>6} stars, ROI {roi:>2}: advisor={:?}  measured best={} \
             (seq {:.2} ms, par {:.2} ms, ada {:.2} ms)",
            point.choose(stars, roi),
            best.0,
            seq.app_time_s * 1e3,
            par.app_time_s * 1e3,
            ada.app_time_s * 1e3,
        );
    }
    println!("\nnote: the advisor's thresholds come from the paper's 1024x1024 benchmarks;");
    println!("on other frame sizes the sequential/GPU boundary shifts with the host CPU.");
}
