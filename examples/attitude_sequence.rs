//! Real-time frame sequence under a slew — "real-time star imaging under
//! any time and any attitude" (paper §I): propagate the sensor attitude
//! with constant body rates, render a frame per timestep, and check the
//! simulator against the sensor's frame budget.
//!
//! ```text
//! cargo run --release --example attitude_sequence
//! ```

use starsim::field::generator::synthetic_sky;
use starsim::field::AttitudeDynamics;
use starsim::prelude::*;
use starsim::sim::PsfKind;

fn main() {
    let sky = synthetic_sky(120_000, 0.0, 6.5, 13);
    let camera = Camera::from_fov(12.0f64.to_radians(), 1024, 1024).unwrap();

    // Slew at 0.25°/s about body x, rolling slowly about the boresight.
    let omega = [0.25f64.to_radians(), 0.0, 0.05f64.to_radians()];
    let mut dyn_state = AttitudeDynamics::new(Attitude::pointing(0.8, 0.1, 0.0), omega);

    let frame_dt = 0.5; // 2 Hz sensor
    let exposure = 0.1; // 100 ms exposure inside each frame
    let streak = dyn_state.streak_length_px(camera.focal_px, exposure);
    println!(
        "slew rate {:.3}°/s ⇒ streak {:.1} px over the {:.0} ms exposure",
        dyn_state.rate().to_degrees(),
        streak,
        exposure * 1e3
    );

    let mut config = SimConfig::new(1024, 1024, 14);
    config.sigma = 1.5;
    if streak > 0.5 {
        config.psf = PsfKind::Smeared {
            length: streak as f32,
            angle: 0.0, // the slew direction in image coords (body +x)
        };
    }

    let advisor = InflectionPoint::default();
    let sim_par = ParallelSimulator::new();
    let sim_ada = AdaptiveSimulator::new();
    let frames = 8usize;
    let mut total_modeled = 0.0f64;
    let mut total_stars = 0usize;

    println!("\nframe  t(s)   stars  simulator  app(ms)  boresight(ra h, dec °)");
    for k in 0..frames {
        let t = k as f64 * frame_dt;
        let attitude = dyn_state.attitude;
        let in_view = sky.view(attitude, &camera, config.roi_side as f32);

        let choice = advisor.choose(in_view.len(), config.roi_side);
        let report = match choice {
            Choice::Adaptive => sim_ada.simulate(&in_view, &config).unwrap(),
            _ => sim_par.simulate(&in_view, &config).unwrap(),
        };

        let bore = attitude.boresight();
        let ra = bore[1].atan2(bore[0]).rem_euclid(std::f64::consts::TAU);
        let dec = bore[2].asin();
        println!(
            "{k:>5}  {t:>4.1}  {:>6}  {:<9}  {:>7.3}  ({:.2}, {:+.2})",
            in_view.len(),
            report.simulator,
            report.app_time_s * 1e3,
            ra / std::f64::consts::TAU * 24.0,
            dec.to_degrees(),
        );
        total_modeled += report.app_time_s;
        total_stars += in_view.len();
        dyn_state.step(frame_dt);
    }

    let budget = frame_dt * frames as f64;
    println!(
        "\n{} frames, {} star renderings: modeled GPU time {:.1} ms of a {:.0} ms budget ({:.2}% duty)",
        frames,
        total_stars,
        total_modeled * 1e3,
        budget * 1e3,
        total_modeled / budget * 100.0
    );
    assert!(
        total_modeled < budget,
        "the simulator must keep up with the sensor frame rate"
    );
    println!("real-time requirement met.");
}
