#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test, Miri smoke, bench smokes.
#
# Artefact convention: every BENCH_PR*.json (PR1 executor speedup, PR2
# sustained throughput, PR3 chaos overhead + recovery, PR4 telemetry
# overhead + trace validation, PR5 sanitizer gate + clean pass + corpus,
# PR6 SIMD backend speedup + pixel-error gate, PR7 frame-pipelined
# scheduler speedup + bit-identity, PR8 server loadgen overload gates,
# PR9 observability-plane overhead + flight-recorder + utilization
# gates, PR10 static-analyzer consistency gate + perf-defect corpus) is
# written to results/ — the single tracked location. Only the *current*
# PR's artefact (BENCH_PR10.json) is additionally copied to the repo
# root for the PR gate, at the end of this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

# The backend contract: the exec-modes and sanitizer suites must hold
# verbatim with the SIMD fast paths selected (counters and modeled times
# bit-equal; image assertions switch to the documented tolerance where
# the suite says so).
echo "== exec-modes + sanitizer + pipeline suites under STARSIM_BACKEND=simd"
STARSIM_BACKEND=simd cargo test -q --test exec_modes --test sanitizer --test pipeline

# The analyzer contract: the sanitizer suite must hold verbatim with the
# pre-launch advisor enabled (setup-only analysis; frames untouched).
echo "== sanitizer suite under STARSIM_ANALYZE=1"
STARSIM_ANALYZE=1 cargo test -q --test sanitizer

# Miri smoke over the std-only leaf crates (rng, psf, starfield): UB
# checking on the pure-math core. Gated on a working miri component so the
# gate stays green on toolchains without it, and time-boxed so an
# interpreter-speed run can't wedge CI (timeout exit 124 = soft skip).
echo "== cargo miri test smoke (rng, psf, starfield)"
if cargo miri --version >/dev/null 2>&1; then
  MIRI_RC=0
  MIRIFLAGS="-Zmiri-disable-isolation" \
    timeout 900 cargo miri test -q -p starsim-rng -p starsim-psf -p starfield \
    || MIRI_RC=$?
  if [ "$MIRI_RC" -eq 124 ]; then
    echo "miri: timed out after 900s — soft skip"
  elif [ "$MIRI_RC" -ne 0 ]; then
    echo "miri: FAILED (exit $MIRI_RC)"
    exit "$MIRI_RC"
  fi
else
  echo "miri: component not installed — skipped"
fi

# Dedicated miri leg over the SIMD lane kernels (psf::lanes): the analyzer
# and the batched fast paths both lean on them, so UB-check them by name
# even when the broad smoke above soft-skips on time.
echo "== cargo miri test smoke (psf::lanes)"
if cargo miri --version >/dev/null 2>&1; then
  MIRI_RC=0
  MIRIFLAGS="-Zmiri-disable-isolation" \
    timeout 300 cargo miri test -q -p starsim-psf lanes \
    || MIRI_RC=$?
  if [ "$MIRI_RC" -eq 124 ]; then
    echo "miri (psf::lanes): timed out after 300s — soft skip"
  elif [ "$MIRI_RC" -ne 0 ]; then
    echo "miri (psf::lanes): FAILED (exit $MIRI_RC)"
    exit "$MIRI_RC"
  fi
else
  echo "miri (psf::lanes): component not installed — skipped"
fi

# Every bench smoke is time-boxed: a wedged run (e.g. a rare scheduler
# race under fault injection) should fail the gate loudly, not hang it.
BENCH="timeout 600 target/release/starsim-bench"

echo "== executor bench smoke"
$BENCH --experiment executor --quick --out results

echo "== BENCH_PR1.json"
cat results/BENCH_PR1.json

echo "== throughput bench smoke"
$BENCH --experiment throughput --quick --out results

echo "== BENCH_PR2.json"
cat results/BENCH_PR2.json

echo "== chaos bench smoke (seeded fault injection + recovery)"
$BENCH --chaos --seed 7 --quick --out results

echo "== BENCH_PR3.json"
cat results/BENCH_PR3.json
grep -q '"bit_identical": true' results/BENCH_PR3.json
grep -q '"exhausted": 0' results/BENCH_PR3.json

echo "== telemetry bench smoke (overhead gate + Perfetto trace export)"
$BENCH --trace results/trace.json --quick --out results

echo "== BENCH_PR4.json"
cat results/BENCH_PR4.json
grep -q '"trace_valid": true' results/BENCH_PR4.json
grep -q '"stages_ok": true' results/BENCH_PR4.json
grep -q '"gate_ok": true' results/BENCH_PR4.json

echo "== sanitizer bench smoke (disabled-overhead gate + clean pass + corpus)"
$BENCH --sanitize --quick --out results

echo "== BENCH_PR5.json"
cat results/BENCH_PR5.json
grep -q '"findings": 0' results/BENCH_PR5.json
grep -q '"corpus_flagged": true' results/BENCH_PR5.json
grep -q '"gate_ok": true' results/BENCH_PR5.json

echo "== simd backend bench (scalar vs simd wall-clock + error gate)"
$BENCH --experiment simd --quick --out results

echo "== BENCH_PR6.json"
cat results/BENCH_PR6.json
grep -q '"counters_equal": true' results/BENCH_PR6.json
grep -q '"error_ok": true' results/BENCH_PR6.json
grep -q '"speedup_ok": true' results/BENCH_PR6.json
grep -q '"gate_ok": true' results/BENCH_PR6.json

echo "== frame-pipeline bench (overlap scheduler vs sequential loop + bit-identity)"
$BENCH --pipeline --quick --out results

echo "== BENCH_PR7.json"
cat results/BENCH_PR7.json
grep -q '"bit_identical": true' results/BENCH_PR7.json
grep -q '"speedup_ok": true' results/BENCH_PR7.json
grep -q '"p99_ok": true' results/BENCH_PR7.json
grep -q '"gate_ok": true' results/BENCH_PR7.json

# starsimd smoke: boots a server on an ephemeral port, runs a render
# round-trip, forces an admission reject (retry-after hint), drains, and
# exits non-zero on any misbehaviour.
echo "== starsimd server smoke (--self-test)"
timeout 120 target/release/starsimd --self-test

echo "== server loadgen bench (admission + deadline + shedding gates)"
$BENCH --server --quick --out results

echo "== BENCH_PR8.json"
cat results/BENCH_PR8.json
grep -q '"reject_rate"' results/BENCH_PR8.json
grep -q '"deadline_miss_rate"' results/BENCH_PR8.json
grep -q '"retry_after_honored": true' results/BENCH_PR8.json
grep -q '"resume_identical": true' results/BENCH_PR8.json
grep -q '"gate_ok": true' results/BENCH_PR8.json

# starsimd observability smoke: scrape parses, SLOs ok, seeded fault
# dumps a parseable flight-recorder post-mortem.
echo "== starsimd observability smoke (--obs-smoke)"
timeout 120 target/release/starsimd --obs-smoke

echo "== observability plane bench (overhead + flight-recorder + utilization gates)"
$BENCH --obsplane --quick --out results

echo "== BENCH_PR9.json"
cat results/BENCH_PR9.json
grep -q '"overhead_pct"' results/BENCH_PR9.json
grep -q '"exposition_ok": true' results/BENCH_PR9.json
grep -q '"wire_scrape_ok": true' results/BENCH_PR9.json
grep -q '"slo_ok": true' results/BENCH_PR9.json
grep -q '"flight_dump_ok": true' results/BENCH_PR9.json
grep -q '"trace_ok": true' results/BENCH_PR9.json
grep -q '"chain_ok": true' results/BENCH_PR9.json
grep -q '"util_signature_match": true' results/BENCH_PR9.json
grep -q '"gate_ok": true' results/BENCH_PR9.json

echo "== static-analyzer bench (static-vs-dynamic consistency + corpus + advisor gates)"
$BENCH --analyze --quick --out results

echo "== BENCH_PR10.json"
cat results/BENCH_PR10.json
grep -q '"production_ok": true' results/BENCH_PR10.json
grep -q '"determinism_ok": true' results/BENCH_PR10.json
grep -q '"corpus_flagged": true' results/BENCH_PR10.json
grep -q '"advisor_runs": 1' results/BENCH_PR10.json
grep -q '"gate_ok": true' results/BENCH_PR10.json

# Root copy: current PR's artefact only (see the convention at the top).
cp results/BENCH_PR10.json .
