#!/usr/bin/env bash
# Full offline CI gate: format, build, test, executor bench smoke.
# Writes BENCH_PR1.json (executor speedup headline) to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== executor bench smoke"
cargo run --release -p starsim-bench -- --experiment executor --quick --out .

echo "== BENCH_PR1.json"
cat BENCH_PR1.json
