#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test, bench smokes.
# Bench artefacts (BENCH_PR1.json executor speedup, BENCH_PR2.json
# sustained throughput, BENCH_PR3.json chaos overhead + recovery,
# BENCH_PR4.json telemetry overhead + trace validation) land in
# results/ and are copied to the repo root for the PR gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== executor bench smoke"
cargo run --release -p starsim-bench -- --experiment executor --quick --out results

echo "== BENCH_PR1.json"
cat results/BENCH_PR1.json

echo "== throughput bench smoke"
cargo run --release -p starsim-bench -- --experiment throughput --quick --out results

echo "== BENCH_PR2.json"
cat results/BENCH_PR2.json

echo "== chaos bench smoke (seeded fault injection + recovery)"
cargo run --release -p starsim-bench -- --chaos --seed 7 --quick --out results

echo "== BENCH_PR3.json"
cat results/BENCH_PR3.json
grep -q '"bit_identical": true' results/BENCH_PR3.json
grep -q '"exhausted": 0' results/BENCH_PR3.json

echo "== telemetry bench smoke (overhead gate + Perfetto trace export)"
cargo run --release -p starsim-bench -- --trace results/trace.json --quick --out results

echo "== BENCH_PR4.json"
cat results/BENCH_PR4.json
grep -q '"trace_valid": true' results/BENCH_PR4.json
grep -q '"stages_ok": true' results/BENCH_PR4.json
grep -q '"gate_ok": true' results/BENCH_PR4.json

cp results/BENCH_PR1.json results/BENCH_PR2.json results/BENCH_PR3.json \
   results/BENCH_PR4.json .
