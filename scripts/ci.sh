#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test, bench smokes.
# Writes BENCH_PR1.json (executor speedup headline), BENCH_PR2.json
# (sustained-throughput headline), and BENCH_PR3.json (chaos-mode
# overhead + seeded fault recovery) to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== executor bench smoke"
cargo run --release -p starsim-bench -- --experiment executor --quick --out .

echo "== BENCH_PR1.json"
cat BENCH_PR1.json

echo "== throughput bench smoke"
cargo run --release -p starsim-bench -- --experiment throughput --quick --out .

echo "== BENCH_PR2.json"
cat BENCH_PR2.json

echo "== chaos bench smoke (seeded fault injection + recovery)"
cargo run --release -p starsim-bench -- --chaos --seed 7 --quick --out .

echo "== BENCH_PR3.json"
cat BENCH_PR3.json
grep -q '"bit_identical": true' BENCH_PR3.json
grep -q '"exhausted": 0' BENCH_PR3.json
