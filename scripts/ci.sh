#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test, Miri smoke, bench smokes.
# Bench artefacts (BENCH_PR1.json executor speedup, BENCH_PR2.json
# sustained throughput, BENCH_PR3.json chaos overhead + recovery,
# BENCH_PR4.json telemetry overhead + trace validation, BENCH_PR5.json
# sanitizer gate + clean pass + corpus) land in results/ and are copied
# to the repo root for the PR gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

# Miri smoke over the std-only leaf crates (rng, psf, starfield): UB
# checking on the pure-math core. Gated on a working miri component so the
# gate stays green on toolchains without it, and time-boxed so an
# interpreter-speed run can't wedge CI (timeout exit 124 = soft skip).
echo "== cargo miri test smoke (rng, psf, starfield)"
if cargo miri --version >/dev/null 2>&1; then
  MIRI_RC=0
  MIRIFLAGS="-Zmiri-disable-isolation" \
    timeout 900 cargo miri test -q -p starsim-rng -p starsim-psf -p starfield \
    || MIRI_RC=$?
  if [ "$MIRI_RC" -eq 124 ]; then
    echo "miri: timed out after 900s — soft skip"
  elif [ "$MIRI_RC" -ne 0 ]; then
    echo "miri: FAILED (exit $MIRI_RC)"
    exit "$MIRI_RC"
  fi
else
  echo "miri: component not installed — skipped"
fi

echo "== executor bench smoke"
cargo run --release -p starsim-bench -- --experiment executor --quick --out results

echo "== BENCH_PR1.json"
cat results/BENCH_PR1.json

echo "== throughput bench smoke"
cargo run --release -p starsim-bench -- --experiment throughput --quick --out results

echo "== BENCH_PR2.json"
cat results/BENCH_PR2.json

echo "== chaos bench smoke (seeded fault injection + recovery)"
cargo run --release -p starsim-bench -- --chaos --seed 7 --quick --out results

echo "== BENCH_PR3.json"
cat results/BENCH_PR3.json
grep -q '"bit_identical": true' results/BENCH_PR3.json
grep -q '"exhausted": 0' results/BENCH_PR3.json

echo "== telemetry bench smoke (overhead gate + Perfetto trace export)"
cargo run --release -p starsim-bench -- --trace results/trace.json --quick --out results

echo "== BENCH_PR4.json"
cat results/BENCH_PR4.json
grep -q '"trace_valid": true' results/BENCH_PR4.json
grep -q '"stages_ok": true' results/BENCH_PR4.json
grep -q '"gate_ok": true' results/BENCH_PR4.json

echo "== sanitizer bench smoke (disabled-overhead gate + clean pass + corpus)"
cargo run --release -p starsim-bench -- --sanitize --quick --out results

echo "== BENCH_PR5.json"
cat results/BENCH_PR5.json
grep -q '"findings": 0' results/BENCH_PR5.json
grep -q '"corpus_flagged": true' results/BENCH_PR5.json
grep -q '"gate_ok": true' results/BENCH_PR5.json

cp results/BENCH_PR1.json results/BENCH_PR2.json results/BENCH_PR3.json \
   results/BENCH_PR4.json results/BENCH_PR5.json .
