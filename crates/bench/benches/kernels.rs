//! Criterion microbenches of the virtual-GPU kernel path: star-centric vs
//! adaptive kernel execution, and the lookup-table build.
//!
//! These measure *host wall time* of the functional simulation (how fast
//! the virtual GPU itself runs), complementing the harness's modeled GPU
//! times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use starfield::FieldGenerator;
use starsim_core::{AdaptiveSimulator, ParallelSimulator, SimConfig, Simulator};

fn bench_star_centric_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("star_centric_kernel");
    group.sample_size(10);
    for &stars in &[256usize, 1024, 4096] {
        let catalog = FieldGenerator::new(512, 512).generate(stars, 1);
        let config = SimConfig::new(512, 512, 10);
        let sim = ParallelSimulator::new();
        group.bench_with_input(BenchmarkId::from_parameter(stars), &stars, |b, _| {
            b.iter(|| sim.simulate(&catalog, &config).unwrap());
        });
    }
    group.finish();
}

fn bench_adaptive_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_kernel");
    group.sample_size(10);
    for &stars in &[256usize, 1024, 4096] {
        let catalog = FieldGenerator::new(512, 512).generate(stars, 1);
        let config = SimConfig::new(512, 512, 10);
        let sim = AdaptiveSimulator::new();
        group.bench_with_input(BenchmarkId::from_parameter(stars), &stars, |b, _| {
            b.iter(|| sim.simulate(&catalog, &config).unwrap());
        });
    }
    group.finish();
}

fn bench_lut_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_build");
    for &(bins, roi) in &[(128usize, 10usize), (512, 10), (128, 32)] {
        let mut config = SimConfig::new(64, 64, roi);
        config.lut_mag_bins = bins;
        let sim = AdaptiveSimulator::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{bins}bins_roi{roi}")),
            &bins,
            |b, _| {
                b.iter(|| sim.build_lut(&config).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_star_centric_kernel,
    bench_adaptive_kernel,
    bench_lut_build
);
criterion_main!(benches);
