//! Microbenches of the virtual-GPU kernel path: star-centric vs adaptive
//! kernel execution, and the lookup-table build.
//!
//! These measure *host wall time* of the functional simulation (how fast
//! the virtual GPU itself runs), complementing the harness's modeled GPU
//! times.

include!("common/harness.rs");

use starfield::FieldGenerator;
use starsim_core::{AdaptiveSimulator, ParallelSimulator, SimConfig, Simulator};

fn bench_star_centric_kernel() {
    for &stars in &[256usize, 1024, 4096] {
        let catalog = FieldGenerator::new(512, 512).generate(stars, 1);
        let config = SimConfig::new(512, 512, 10);
        let sim = ParallelSimulator::new();
        bench(&format!("star_centric_kernel/{stars}"), || {
            sim.simulate(&catalog, &config).unwrap()
        });
    }
}

fn bench_adaptive_kernel() {
    for &stars in &[256usize, 1024, 4096] {
        let catalog = FieldGenerator::new(512, 512).generate(stars, 1);
        let config = SimConfig::new(512, 512, 10);
        let sim = AdaptiveSimulator::new();
        bench(&format!("adaptive_kernel/{stars}"), || {
            sim.simulate(&catalog, &config).unwrap()
        });
    }
}

fn bench_lut_build() {
    for &(bins, roi) in &[(128usize, 10usize), (512, 10), (128, 32)] {
        let mut config = SimConfig::new(64, 64, roi);
        config.lut_mag_bins = bins;
        let sim = AdaptiveSimulator::new();
        bench(&format!("lut_build/{bins}bins_roi{roi}"), || {
            sim.build_lut(&config).unwrap()
        });
    }
}

fn main() {
    bench_star_centric_kernel();
    bench_adaptive_kernel();
    bench_lut_build();
}
