// Minimal wall-clock micro-benchmark harness shared by the bench targets
// (no Criterion: the workspace builds with no registry access).
//
// Each target `include!`s this file. Timing: one warm-up call, then
// batches of iterations until ~0.2 s or 50 iterations have elapsed;
// reports the mean per-iteration time.

use std::hint::black_box;
use std::time::Instant;

#[allow(dead_code)]
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f()); // warm-up
    let mut iters = 0u32;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < 0.2 && iters < 50 {
        black_box(f());
        iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} µs/iter  ({iters} iters)", per_iter * 1e6);
}
