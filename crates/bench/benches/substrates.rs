//! Microbenches of the hot substrate paths: atomic image accumulation,
//! PSF evaluation, coalescing analysis, the texture cache, and image
//! encoding.

include!("common/harness.rs");

use gpusim::memory::cache::CacheSim;
use gpusim::warp::{bank_conflict_extra, coalesce_transactions};
use psf::{GaussianPsf, IntegratedGaussianPsf, MoffatPsf, SmearedGaussianPsf};
use starfield::{triad, Attitude, Observation, SkyStar};
use starimage::io::bmp::write_bmp_gray8;
use starimage::{apply_noise, label_blobs, AtomicImage, ImageF32, NoiseModel};

fn bench_atomic_image() {
    let img = AtomicImage::new(1024, 1024);
    bench("atomic_image_fetch_add_1k", || {
        for i in 0..1000usize {
            img.fetch_add(black_box(i * 1049 % (1024 * 1024)), 0.5);
        }
    });
}

fn bench_psf_eval() {
    let point = GaussianPsf::new(2.0);
    let integ = IntegratedGaussianPsf::new(2.0);
    bench("psf_point_eval_100", || {
        let mut acc = 0.0f32;
        for j in 0..10 {
            for i in 0..10 {
                acc += point.eval(i as f32, j as f32, 4.5, 4.5);
            }
        }
        acc
    });
    bench("psf_integrated_eval_100", || {
        let mut acc = 0.0f32;
        for j in 0..10 {
            for i in 0..10 {
                acc += integ.eval(i as f32, j as f32, 4.5, 4.5);
            }
        }
        acc
    });
}

fn bench_warp_analysis() {
    let coalesced: Vec<(u64, u16)> = (0..32).map(|i| (i * 4, 4)).collect();
    let scattered: Vec<(u64, u16)> = (0..32).map(|i| (i * 4096, 4)).collect();
    bench("coalesce_coalesced_warp", || {
        coalesce_transactions(black_box(&coalesced), 128)
    });
    bench("coalesce_scattered_warp", || {
        coalesce_transactions(black_box(&scattered), 128)
    });
    let words: Vec<u32> = (0..32).map(|i| i * 32).collect();
    bench("bank_conflict_analysis", || {
        bank_conflict_extra(black_box(&words), 32)
    });
}

fn bench_texture_cache() {
    let mut cache = CacheSim::new(48 * 1024, 128, 16);
    bench("cache_sim_streaming_4k", || {
        let mut hits = 0u64;
        for addr in (0..16384u64).step_by(4) {
            if cache.access(addr) {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_bmp_encode() {
    let img = ImageF32::new(1024, 1024);
    let gray = starimage::to_gray8(&img, starimage::GrayMap::linear(1.0));
    bench("bmp_encode_1024", || {
        let mut buf = Vec::with_capacity(1024 * 1024 + 2048);
        write_bmp_gray8(&mut buf, 1024, 1024, black_box(&gray)).unwrap();
        buf
    });
}

fn bench_extension_psfs() {
    let smear = SmearedGaussianPsf::new(1.5, 6.0, 0.5);
    let moffat = MoffatPsf::with_gaussian_fwhm(1.5, 2.5);
    bench("psf_smeared_eval_100", || {
        let mut acc = 0.0f32;
        for j in 0..10 {
            for i in 0..10 {
                acc += smear.eval(i as f32, j as f32, 4.5, 4.5);
            }
        }
        acc
    });
    bench("psf_moffat_eval_100", || {
        let mut acc = 0.0f32;
        for j in 0..10 {
            for i in 0..10 {
                acc += moffat.eval(i as f32, j as f32, 4.5, 4.5);
            }
        }
        acc
    });
}

fn bench_extraction() {
    // A 256² frame with ~50 blobs: the extraction paths.
    let mut img = ImageF32::new(256, 256);
    for k in 0..50usize {
        let (cx, cy) = ((k * 37 % 240 + 8) as f32, (k * 53 % 240 + 8) as f32);
        for dy in -4i64..=4 {
            for dx in -4i64..=4 {
                let v = 5.0 * (-((dx * dx + dy * dy) as f32) / 4.0).exp();
                img.add((cx as i64 + dx) as usize, (cy as i64 + dy) as usize, v);
            }
        }
    }
    bench("label_blobs_256", || label_blobs(&img, 1e-3, 3));
    bench("detect_stars_256", || {
        starimage::detect_stars(&img, starimage::CentroidParams::default())
    });
}

fn bench_noise_and_triad() {
    let base = ImageF32::from_data(256, 256, vec![0.5; 256 * 256]);
    bench("apply_noise_256", || {
        let mut img = base.clone();
        apply_noise(&mut img, NoiseModel::quiet(), 7);
        img
    });
    let truth = Attitude::pointing(1.2, 0.3, 0.7);
    let observations: Vec<Observation> = (0..10)
        .map(|k| {
            let d = SkyStar::new(0.3 + k as f64 * 0.2, 0.1 * k as f64 - 0.4, 3.0).direction();
            Observation {
                body: truth.to_body(d),
                inertial: d,
            }
        })
        .collect();
    bench("triad_10_observations", || {
        triad(black_box(&observations)).unwrap()
    });
}

fn main() {
    bench_atomic_image();
    bench_psf_eval();
    bench_extension_psfs();
    bench_extraction();
    bench_noise_and_triad();
    bench_warp_analysis();
    bench_texture_cache();
    bench_bmp_encode();
}
