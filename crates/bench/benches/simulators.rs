//! Criterion end-to-end comparison of the three simulators on one
//! mid-scale workload — the wall-time analogue of paper Fig. 9's middle.

use criterion::{criterion_group, criterion_main, Criterion};
use starfield::FieldGenerator;
use starsim_core::{
    AdaptiveSession, AdaptiveSimulator, ParallelSimulator, PixelCentricSimulator,
    SequentialSimulator, SimConfig, Simulator,
};

fn bench_three_simulators(c: &mut Criterion) {
    let catalog = FieldGenerator::new(512, 512).generate(2048, 3);
    let config = SimConfig::new(512, 512, 10);

    let mut group = c.benchmark_group("simulators_2048stars_512px");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let sim = SequentialSimulator::new();
        b.iter(|| sim.simulate(&catalog, &config).unwrap());
    });
    group.bench_function("parallel", |b| {
        let sim = ParallelSimulator::new();
        b.iter(|| sim.simulate(&catalog, &config).unwrap());
    });
    group.bench_function("adaptive", |b| {
        let sim = AdaptiveSimulator::new();
        b.iter(|| sim.simulate(&catalog, &config).unwrap());
    });
    group.finish();
}

fn bench_pixel_centric_ablation(c: &mut Criterion) {
    // Small frame: the rejected design is O(pixels × stars).
    let catalog = FieldGenerator::new(128, 128).generate(256, 5);
    let config = SimConfig::new(128, 128, 10);

    let mut group = c.benchmark_group("decomposition_ablation");
    group.sample_size(10);
    group.bench_function("star_centric", |b| {
        let sim = ParallelSimulator::new();
        b.iter(|| sim.simulate(&catalog, &config).unwrap());
    });
    group.bench_function("pixel_centric", |b| {
        let sim = PixelCentricSimulator::new();
        b.iter(|| sim.simulate(&catalog, &config).unwrap());
    });
    group.finish();
}

fn bench_session_frames(c: &mut Criterion) {
    // Per-frame cost of the persistent adaptive session (setup excluded).
    let catalog = FieldGenerator::new(512, 512).generate(2048, 3);
    let config = SimConfig::new(512, 512, 10);
    let session = AdaptiveSession::new(config).unwrap();
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    group.bench_function("adaptive_session_frame", |b| {
        b.iter(|| session.render(&catalog).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_three_simulators,
    bench_pixel_centric_ablation,
    bench_session_frames
);
criterion_main!(benches);
