//! End-to-end comparison of the three simulators on one mid-scale
//! workload — the wall-time analogue of paper Fig. 9's middle.

include!("common/harness.rs");

use starfield::FieldGenerator;
use starsim_core::{
    AdaptiveSession, AdaptiveSimulator, ParallelSimulator, PixelCentricSimulator,
    SequentialSimulator, SimConfig, Simulator,
};

fn bench_three_simulators() {
    let catalog = FieldGenerator::new(512, 512).generate(2048, 3);
    let config = SimConfig::new(512, 512, 10);

    let seq = SequentialSimulator::new();
    bench("simulators_2048stars_512px/sequential", || {
        seq.simulate(&catalog, &config).unwrap()
    });
    let par = ParallelSimulator::new();
    bench("simulators_2048stars_512px/parallel", || {
        par.simulate(&catalog, &config).unwrap()
    });
    let ada = AdaptiveSimulator::new();
    bench("simulators_2048stars_512px/adaptive", || {
        ada.simulate(&catalog, &config).unwrap()
    });
}

fn bench_pixel_centric_ablation() {
    // Small frame: the rejected design is O(pixels × stars).
    let catalog = FieldGenerator::new(128, 128).generate(256, 5);
    let config = SimConfig::new(128, 128, 10);

    let star = ParallelSimulator::new();
    bench("decomposition_ablation/star_centric", || {
        star.simulate(&catalog, &config).unwrap()
    });
    let pixel = PixelCentricSimulator::new();
    bench("decomposition_ablation/pixel_centric", || {
        pixel.simulate(&catalog, &config).unwrap()
    });
}

fn bench_session_frames() {
    // Per-frame cost of the persistent adaptive session (setup excluded).
    let catalog = FieldGenerator::new(512, 512).generate(2048, 3);
    let config = SimConfig::new(512, 512, 10);
    let session = AdaptiveSession::new(config).unwrap();
    bench("session/adaptive_session_frame", || {
        session.render(&catalog).unwrap()
    });
}

fn main() {
    bench_three_simulators();
    bench_pixel_centric_ablation();
    bench_session_frames();
}
