//! `starsim-bench` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! starsim-bench [--experiment NAME] [--quick] [--seed N] [--out DIR]
//!               [--exec reference|batched|sanitized] [--backend scalar|simd]
//!               [--workers N] [--chaos] [--trace PATH] [--metrics] [--sanitize]
//!               [--pipeline] [--server] [--obsplane] [--analyze]
//!
//! NAME ∈ { fig2, fig9, fig10, fig11, fig12, table1, table2,
//!          fig13, fig14, fig15, fig16, table3, ablation, contention,
//!          devices, multigpu, streams, session, lutbuild, executor,
//!          throughput, chaos, trace, sanitize, simd, pipeline, server,
//!          obsplane, analyze, all }
//! ```
//!
//! `--backend simd` runs every experiment with the lane-oriented batched
//! fast paths (identical counters and modeled times; bounded pixel error).
//! The `simd` experiment compares the two backends directly and writes
//! `BENCH_PR6.json`.
//!
//! `--pipeline` is shorthand for `--experiment pipeline`: the
//! frame-pipelined scheduler against the sequential frame loop, with the
//! overlap-efficiency accounting and the bit-identity sweep (writes
//! `BENCH_PR7.json`).
//!
//! `--server` is shorthand for `--experiment server`: boots an in-process
//! `starsimd`, drives it with concurrent closed-loop clients at several
//! times sustainable demand, and gates on admission behavior, admitted-p99
//! protection and deadline-cancelled-burst resumability (writes
//! `BENCH_PR8.json`).
//!
//! `--obsplane` is shorthand for `--experiment obsplane`: the
//! observability plane's exporter + flight-recorder disabled-overhead
//! gate, a wire scrape + SLO check, a seeded-fault post-mortem
//! round-trip, and the per-device utilization determinism sweep (writes
//! `BENCH_PR9.json`).
//!
//! `--analyze` is shorthand for `--experiment analyze`: the static
//! kernel analyzer's consistency gate — static coalescing/bank-conflict/
//! texture-working-set/occupancy predictions vs dynamic measurements on
//! all three production kernels x both backends, report determinism,
//! the perf-defect corpus, and the advisor-runs-once check (writes
//! `BENCH_PR10.json`).
//!
//! `--chaos` is shorthand for `--experiment chaos`: the fault-injection
//! overhead gate plus a seeded recovery run (writes `BENCH_PR3.json`).
//!
//! `--trace PATH` is shorthand for `--experiment trace` with the Chrome
//! trace-event JSON written to PATH (loadable in Perfetto); `--metrics`
//! additionally prints the telemetry rollup table. The trace experiment
//! measures the telemetry overhead gate and writes `BENCH_PR4.json`.
//!
//! `--sanitize` is shorthand for `--experiment sanitize`: the sanitizer's
//! disabled-overhead gate, the clean pass over the three paper simulators
//! in `--exec sanitized` mode, and the known-bad corpus sweep (writes
//! `BENCH_PR5.json`).
//!
//! Sequential times are measured wall-clock on this host; GPU times come
//! from the virtual GPU's calibrated Fermi model (see `gpusim`). Shapes —
//! who wins, where the inflection points fall — are the reproduction
//! target, not absolute milliseconds.

mod experiments;

use experiments::{
    ablation, analyze, chaos, contention, devices, executor, fig2, lutbuild, multigpu, obsplane,
    pipeline, sanitize, server, session, simd, streams, table3, test1, test2, throughput, trace,
    Context,
};
use starsim_core::{ExecMode, KernelBackend};

fn main() {
    let mut ctx = Context::default();
    let mut experiment = String::from("all");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = args
                    .next()
                    .unwrap_or_else(|| usage("missing experiment name"));
            }
            "--quick" => ctx.quick = true,
            "--chaos" => experiment = String::from("chaos"),
            "--trace" => {
                ctx.trace_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("missing --trace path"))
                        .into(),
                );
                experiment = String::from("trace");
            }
            "--metrics" => {
                ctx.metrics = true;
                experiment = String::from("trace");
            }
            "--sanitize" => experiment = String::from("sanitize"),
            "--pipeline" => experiment = String::from("pipeline"),
            "--server" => experiment = String::from("server"),
            "--obsplane" => experiment = String::from("obsplane"),
            "--analyze" => experiment = String::from("analyze"),
            "--seed" => {
                ctx.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed"));
            }
            "--out" => {
                ctx.out_dir = args
                    .next()
                    .unwrap_or_else(|| usage("missing --out dir"))
                    .into();
            }
            "--exec" => {
                let mode = args.next().unwrap_or_else(|| usage("missing --exec mode"));
                ctx.exec_mode = ExecMode::parse(&mode)
                    .unwrap_or_else(|| usage(&format!("bad --exec `{mode}`")));
            }
            "--backend" => {
                let b = args
                    .next()
                    .unwrap_or_else(|| usage("missing --backend name"));
                ctx.backend = KernelBackend::parse(&b)
                    .unwrap_or_else(|| usage(&format!("bad --backend `{b}`")));
            }
            "--workers" => {
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad --workers"));
                if n == 0 {
                    usage("--workers must be positive");
                }
                ctx.workers = Some(n);
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let needs_t1 = matches!(
        experiment.as_str(),
        "fig9" | "fig10" | "fig11" | "fig12" | "table1" | "table2" | "table3" | "all"
    );
    let needs_t2 = matches!(
        experiment.as_str(),
        "fig13" | "fig14" | "fig15" | "fig16" | "table3" | "all"
    );

    let t1 = if needs_t1 {
        Some(test1::run(&ctx))
    } else {
        None
    };
    let t2 = if needs_t2 {
        Some(test2::run(&ctx))
    } else {
        None
    };

    let section = |title: &str, table: experiments::format::Table| {
        println!("\n== {title} ==");
        print!("{}", table.render());
    };

    match experiment.as_str() {
        "fig2" => section("Fig 2: simulated star image", fig2::run(&ctx)),
        "fig9" => section(
            "Fig 9: test1 overall time",
            test1::fig9(t1.as_ref().unwrap(), &ctx),
        ),
        "fig10" => section(
            "Fig 10: test1 speedups",
            test1::fig10(t1.as_ref().unwrap(), &ctx),
        ),
        "fig11" => section(
            "Fig 11: test1 kernel time",
            test1::fig11(t1.as_ref().unwrap(), &ctx),
        ),
        "fig12" => section(
            "Fig 12: test1 non-kernel time",
            test1::fig12(t1.as_ref().unwrap(), &ctx),
        ),
        "table1" => section(
            "Table I: adaptive non-kernel breakdown",
            test1::table1(t1.as_ref().unwrap(), &ctx),
        ),
        "table2" => section(
            "Table II: GFLOPS",
            test1::table2(t1.as_ref().unwrap(), &ctx),
        ),
        "fig13" => section(
            "Fig 13: test2 overall time",
            test2::fig13(t2.as_ref().unwrap(), &ctx),
        ),
        "fig14" => section(
            "Fig 14: test2 speedups",
            test2::fig14(t2.as_ref().unwrap(), &ctx),
        ),
        "fig15" => section(
            "Fig 15: test2 breakdown",
            test2::fig15(t2.as_ref().unwrap(), &ctx),
        ),
        "fig16" => section(
            "Fig 16: test2 non-kernel percentage",
            test2::fig16(t2.as_ref().unwrap(), &ctx),
        ),
        "table3" => {
            let (t, point) = table3::table3(t1.as_ref().unwrap(), t2.as_ref().unwrap(), &ctx);
            section("Table III: simulator selection", t);
            println!("{}", table3::summary(&point));
        }
        "ablation" => section(
            "Ablation: star-centric vs pixel-centric",
            ablation::run(&ctx),
        ),
        "contention" => section("Atomic contention vs field density", contention::run(&ctx)),
        "devices" => section("Device sensitivity", devices::run(&ctx)),
        "multigpu" => section("Multi-GPU scaling (future work)", multigpu::run(&ctx)),
        "streams" => section("Stream pipelining estimate", streams::run(&ctx)),
        "session" => section("Session amortization", session::run(&ctx)),
        "lutbuild" => section("LUT build placement (CPU vs GPU)", lutbuild::run(&ctx)),
        "executor" => section("Executor comparison (host wall-clock)", executor::run(&ctx)),
        "throughput" => section(
            "Sustained throughput (pool + buffer reuse)",
            throughput::run(&ctx),
        ),
        "chaos" => section(
            "Chaos mode (fault-plan overhead + seeded recovery)",
            chaos::run(&ctx),
        ),
        "trace" => section(
            "Telemetry (overhead gate + Perfetto trace export)",
            trace::run(&ctx),
        ),
        "sanitize" => section(
            "Sanitizer (disabled-overhead gate + clean pass + corpus)",
            sanitize::run(&ctx),
        ),
        "simd" => section(
            "SIMD backend (batched wall-clock + pixel-error gate)",
            simd::run(&ctx),
        ),
        "pipeline" => section(
            "Frame pipeline (overlap + bit-identity gates)",
            pipeline::run(&ctx),
        ),
        "server" => section(
            "Server loadgen (admission + deadline + shedding gates)",
            server::run(&ctx),
        ),
        "obsplane" => section(
            "Observability plane (overhead + flight-recorder + utilization gates)",
            obsplane::run(&ctx),
        ),
        "analyze" => section(
            "Static kernel analyzer (static-vs-dynamic consistency gates)",
            analyze::run(&ctx),
        ),
        "all" => {
            let t1 = t1.as_ref().unwrap();
            let t2 = t2.as_ref().unwrap();
            section("Fig 2: simulated star image", fig2::run(&ctx));
            section("Fig 9: test1 overall time", test1::fig9(t1, &ctx));
            section("Fig 10: test1 speedups", test1::fig10(t1, &ctx));
            section("Fig 11: test1 kernel time", test1::fig11(t1, &ctx));
            section("Fig 12: test1 non-kernel time", test1::fig12(t1, &ctx));
            section(
                "Table I: adaptive non-kernel breakdown",
                test1::table1(t1, &ctx),
            );
            section("Table II: GFLOPS", test1::table2(t1, &ctx));
            section("Fig 13: test2 overall time", test2::fig13(t2, &ctx));
            section("Fig 14: test2 speedups", test2::fig14(t2, &ctx));
            section("Fig 15: test2 breakdown", test2::fig15(t2, &ctx));
            section(
                "Fig 16: test2 non-kernel percentage",
                test2::fig16(t2, &ctx),
            );
            let (t, point) = table3::table3(t1, t2, &ctx);
            section("Table III: simulator selection", t);
            println!("{}", table3::summary(&point));
            section(
                "Ablation: star-centric vs pixel-centric",
                ablation::run(&ctx),
            );
            section("Atomic contention vs field density", contention::run(&ctx));
            section("Device sensitivity", devices::run(&ctx));
            section("Multi-GPU scaling (future work)", multigpu::run(&ctx));
            section("Stream pipelining estimate", streams::run(&ctx));
            section("Session amortization", session::run(&ctx));
            section("LUT build placement (CPU vs GPU)", lutbuild::run(&ctx));
            section("Executor comparison (host wall-clock)", executor::run(&ctx));
            section(
                "Sustained throughput (pool + buffer reuse)",
                throughput::run(&ctx),
            );
            section(
                "Chaos mode (fault-plan overhead + seeded recovery)",
                chaos::run(&ctx),
            );
            section(
                "Telemetry (overhead gate + Perfetto trace export)",
                trace::run(&ctx),
            );
            section(
                "Sanitizer (disabled-overhead gate + clean pass + corpus)",
                sanitize::run(&ctx),
            );
            section(
                "SIMD backend (batched wall-clock + pixel-error gate)",
                simd::run(&ctx),
            );
            section(
                "Frame pipeline (overlap + bit-identity gates)",
                pipeline::run(&ctx),
            );
            section(
                "Server loadgen (admission + deadline + shedding gates)",
                server::run(&ctx),
            );
            section(
                "Observability plane (overhead + flight-recorder + utilization gates)",
                obsplane::run(&ctx),
            );
            section(
                "Static kernel analyzer (static-vs-dynamic consistency gates)",
                analyze::run(&ctx),
            );
        }
        other => usage(&format!("unknown experiment `{other}`")),
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: starsim-bench [--experiment NAME] [--quick] [--seed N] [--out DIR]\n\
                      [--exec reference|batched|sanitized] [--backend scalar|simd]\n\
                      [--workers N] [--trace PATH] [--metrics] [--sanitize] [--pipeline]\n\
                      [--server] [--obsplane] [--analyze]\n\
         NAME: fig2 fig9 fig10 fig11 fig12 table1 table2 fig13 fig14 fig15 fig16\n\
               table3 ablation contention devices multigpu streams session lutbuild\n\
               executor throughput chaos trace sanitize simd pipeline server obsplane\n\
               analyze\n\
               all (default)"
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
