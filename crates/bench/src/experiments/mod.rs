//! The experiment suite: one module per paper table/figure group.

pub mod ablation;
pub mod analyze;
pub mod chaos;
pub mod contention;
pub mod devices;
pub mod executor;
pub mod fig2;
pub mod format;
pub mod lutbuild;
pub mod multigpu;
pub mod obsplane;
pub mod pipeline;
pub mod sanitize;
pub mod server;
pub mod session;
pub mod simd;
pub mod streams;
pub mod table3;
pub mod test1;
pub mod test2;
pub mod throughput;
pub mod trace;

use std::path::PathBuf;

use starsim_core::{ExecMode, KernelBackend, SimConfig};

/// Shared experiment settings.
#[derive(Debug, Clone)]
pub struct Context {
    /// Reduced sweeps for CI / smoke runs.
    pub quick: bool,
    /// Workload RNG seed.
    pub seed: u64,
    /// Directory CSV artefacts are written into.
    pub out_dir: PathBuf,
    /// Virtual-GPU executor every experiment launches with (`--exec`).
    /// Counters and modeled times are identical across modes; only host
    /// wall-clock changes. The `executor` experiment measures both.
    pub exec_mode: ExecMode,
    /// Arithmetic backend for the batched fast paths (`--backend`).
    /// Counters and modeled times are identical across backends; the SIMD
    /// backend trades a documented pixel tolerance for host wall-clock
    /// (the `simd` experiment measures both and gates the error).
    pub backend: KernelBackend,
    /// Host worker threads per launch (`--workers`). `None` = auto (one
    /// per available core, capped at the device SM count). Counters and
    /// modeled times are identical for any count; only host wall-clock
    /// changes.
    pub workers: Option<usize>,
    /// Where the `trace` experiment writes its Chrome trace-event JSON
    /// (`--trace PATH`). `None` = `<out_dir>/trace.json`.
    pub trace_path: Option<PathBuf>,
    /// Print the human-readable telemetry table after the `trace`
    /// experiment (`--metrics`).
    pub metrics: bool,
}

impl Default for Context {
    fn default() -> Self {
        Context {
            quick: false,
            seed: 2012,
            out_dir: PathBuf::from("results"),
            exec_mode: ExecMode::default(),
            backend: KernelBackend::default(),
            workers: None,
            trace_path: None,
            metrics: false,
        }
    }
}

impl Context {
    /// Ensures the output directory exists and returns the path of `name`.
    pub fn out_path(&self, name: &str) -> PathBuf {
        let _ = std::fs::create_dir_all(&self.out_dir);
        self.out_dir.join(name)
    }

    /// A [`SimConfig`] for this context: defaults plus the selected
    /// executor mode.
    pub fn sim_config(&self, width: usize, height: usize, roi_side: usize) -> SimConfig {
        let mut config = SimConfig::new(width, height, roi_side);
        config.exec_mode = self.exec_mode;
        config.backend = self.backend;
        config.workers = self.workers;
        config
    }
}

/// Modeled per-ROI-pixel cost of the paper's sequential simulator on its
/// testbed (one core of a 2.8 GHz Core i7, C++ with libm `expf`/`powf`).
///
/// Derived from the paper's own numbers: at 2^17 stars × 100 ROI pixels the
/// parallel simulator's ≈270× speedup over a GPU application time of a few
/// milliseconds implies ≈1.9 s of sequential time, i.e. ≈145 ns per ROI
/// pixel. Speedups against this *reference* baseline are comparable to the
/// paper's; speedups against the locally measured sequential time depend on
/// how fast this host's CPU is.
pub const REFERENCE_SEQ_NS_PER_PIXEL: f64 = 145.0;

/// Reference sequential application time for a workload, seconds.
pub fn reference_sequential_s(stars: usize, roi_side: usize) -> f64 {
    let per_star = (roi_side * roi_side) as f64 * REFERENCE_SEQ_NS_PER_PIXEL + 50.0;
    stars as f64 * per_star * 1e-9
}
