//! Benchmark **test 2** (paper §IV-B): ROI side sweeps 2..32, star count
//! fixed at 8192, image 1024×1024. Feeds Figs. 13–16.

use starfield::workload;
use starsim_core::{AdaptiveSimulator, ParallelSimulator, SequentialSimulator, Simulator};

use super::format::{ms, speedup, Table};
use super::{reference_sequential_s, Context};

/// One sweep point of test 2.
#[derive(Debug, Clone)]
pub struct Test2Row {
    /// ROI side length.
    pub roi_side: usize,
    /// Sequential application time (measured wall), seconds.
    pub seq_app: f64,
    /// Parallel application time (modeled), seconds.
    pub par_app: f64,
    /// Parallel kernel / non-kernel split, seconds.
    pub par_kernel: f64,
    /// Parallel non-kernel time, seconds.
    pub par_non_kernel: f64,
    /// Adaptive application time (modeled), seconds.
    pub ada_app: f64,
    /// Adaptive kernel time, seconds.
    pub ada_kernel: f64,
    /// Adaptive non-kernel time, seconds.
    pub ada_non_kernel: f64,
}

/// Runs the sweep. `quick` uses sides 2..=12 only.
pub fn run(ctx: &Context) -> Vec<Test2Row> {
    let sides: Vec<usize> = if ctx.quick {
        vec![2, 4, 6, 8, 10, 12]
    } else {
        workload::TEST2_ROI_SIDES.to_vec()
    };
    let seq = SequentialSimulator::new();
    let par = ParallelSimulator::new();
    let ada = AdaptiveSimulator::new();

    let mut rows = Vec::new();
    for side in sides {
        let w = workload::test2(side, ctx.seed);
        let config = ctx.sim_config(w.image_size, w.image_size, side);
        eprintln!("test2: ROI {side}x{side} ...");
        let rs = seq.simulate(&w.catalog, &config).expect("sequential");
        let rp = par.simulate(&w.catalog, &config).expect("parallel");
        let ra = ada.simulate(&w.catalog, &config).expect("adaptive");
        rows.push(Test2Row {
            roi_side: side,
            seq_app: rs.app_time_s,
            par_app: rp.app_time_s,
            par_kernel: rp.kernel_time_s(),
            par_non_kernel: rp.non_kernel_time_s(),
            ada_app: ra.app_time_s,
            ada_kernel: ra.kernel_time_s(),
            ada_non_kernel: ra.non_kernel_time_s(),
        });
    }
    rows
}

/// Fig. 13 — overall simulation time of the three simulators.
pub fn fig13(rows: &[Test2Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec![
        "roi_side",
        "sequential_ms",
        "parallel_ms",
        "adaptive_ms",
    ]);
    for r in rows {
        t.row(vec![
            r.roi_side.to_string(),
            ms(r.seq_app),
            ms(r.par_app),
            ms(r.ada_app),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("fig13.csv"));
    t
}

/// Fig. 14 — speedups of the GPU simulators vs sequential, against both the
/// measured local baseline and the paper-testbed reference baseline.
pub fn fig14(rows: &[Test2Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec![
        "roi_side",
        "parallel_speedup",
        "adaptive_speedup",
        "parallel_speedup_ref",
        "adaptive_speedup_ref",
    ]);
    for r in rows {
        let seq_ref = reference_sequential_s(8192, r.roi_side);
        t.row(vec![
            r.roi_side.to_string(),
            speedup(r.seq_app / r.par_app),
            speedup(r.seq_app / r.ada_app),
            speedup(seq_ref / r.par_app),
            speedup(seq_ref / r.ada_app),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("fig14.csv"));
    t
}

/// Fig. 15 — kernel vs non-kernel breakdown for both GPU simulators.
pub fn fig15(rows: &[Test2Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec![
        "roi_side",
        "parallel_kernel_ms",
        "parallel_non_kernel_ms",
        "adaptive_kernel_ms",
        "adaptive_non_kernel_ms",
    ]);
    for r in rows {
        t.row(vec![
            r.roi_side.to_string(),
            ms(r.par_kernel),
            ms(r.par_non_kernel),
            ms(r.ada_kernel),
            ms(r.ada_non_kernel),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("fig15.csv"));
    t
}

/// Fig. 16 — percentage of application time spent outside kernels.
pub fn fig16(rows: &[Test2Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec![
        "roi_side",
        "parallel_non_kernel_pct",
        "adaptive_non_kernel_pct",
    ]);
    for r in rows {
        t.row(vec![
            r.roi_side.to_string(),
            format!("{:.1}", r.par_non_kernel / r.par_app * 100.0),
            format!("{:.1}", r.ada_non_kernel / r.ada_app * 100.0),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("fig16.csv"));
    t
}

/// The ROI-side inflection point: the first sweep point where the adaptive
/// simulator's application time beats the parallel one.
pub fn inflection_roi(rows: &[Test2Row]) -> Option<usize> {
    rows.iter()
        .find(|r| r.ada_app < r.par_app)
        .map(|r| r.roi_side)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_rows() -> Vec<Test2Row> {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_test2"),
            ..Default::default()
        };
        run(&ctx)
    }

    #[test]
    fn sweep_and_figures() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_test2"),
            ..Default::default()
        };
        let rows = quick_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(fig13(&rows, &ctx).len(), 6);
        assert_eq!(fig14(&rows, &ctx).len(), 6);
        assert_eq!(fig15(&rows, &ctx).len(), 6);
        assert_eq!(fig16(&rows, &ctx).len(), 6);
    }

    #[test]
    fn sequential_grows_with_roi_area() {
        let rows = quick_rows();
        // ROI 12 does 36× the pixel work of ROI 2.
        let small = rows.first().unwrap();
        let large = rows.last().unwrap();
        assert!(large.seq_app > small.seq_app * 5.0);
    }

    #[test]
    fn kernel_share_rises_with_roi() {
        let rows = quick_rows();
        let first = &rows[0];
        let last = rows.last().unwrap();
        let pct = |k: f64, app: f64| k / app * 100.0;
        assert!(
            pct(last.par_kernel, last.par_app) > pct(first.par_kernel, first.par_app),
            "kernel share must rise with ROI side (paper Fig. 16)"
        );
    }
}
