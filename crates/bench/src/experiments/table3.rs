//! Table III — the GPU simulator selection table, derived from the
//! *measured* inflection points of test 1 and test 2 (paper §IV-C).

use starsim_core::{Choice, InflectionPoint};

use super::format::Table;
use super::test1::{inflection_stars, Test1Row};
use super::test2::{inflection_roi, Test2Row};
use super::Context;

/// Builds the selection table from measured sweeps and reports the
/// measured inflection points alongside the paper's.
pub fn table3(t1: &[Test1Row], t2: &[Test2Row], ctx: &Context) -> (Table, InflectionPoint) {
    let stars_exp = inflection_stars(t1);
    let roi = inflection_roi(t2);
    let point = InflectionPoint {
        stars: stars_exp.map_or(1 << 13, |e| 1usize << e),
        roi_side: roi.unwrap_or(10),
        ..InflectionPoint::default()
    };

    let mut t = Table::new(vec![
        "turning_point",
        "number_of_stars",
        "size_of_roi",
        "simulator_choice",
    ]);
    let rows = [
        (
            "row1",
            "=",
            "<",
            point.choose(point.stars, point.roi_side - 1),
        ),
        (
            "row2",
            "<",
            "=",
            point.choose(point.stars - 1, point.roi_side),
        ),
        (
            "row3",
            "=",
            ">",
            point.choose(point.stars, point.roi_side + 1),
        ),
        (
            "row4",
            ">",
            "=",
            point.choose(point.stars + 1, point.roi_side),
        ),
    ];
    for (label, s, r, choice) in rows {
        t.row(vec![
            label.to_string(),
            s.to_string(),
            r.to_string(),
            format!("{choice:?}"),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("table3.csv"));
    (t, point)
}

/// Renders the measured-vs-paper inflection summary line.
pub fn summary(point: &InflectionPoint) -> String {
    format!(
        "measured inflection: stars = {} (paper: 2^13 = 8192), ROI side = {} (paper: 10)",
        point.stars, point.roi_side
    )
}

/// Sanity: the derived table must reproduce the paper's choices.
#[cfg_attr(not(test), allow(dead_code))] // used by the test suite
pub fn choices_match_paper(point: &InflectionPoint) -> bool {
    point.choose(point.stars, point.roi_side - 1) == Choice::Parallel
        && point.choose(point.stars - 1, point.roi_side) == Choice::Parallel
        && point.choose(point.stars, point.roi_side + 1) == Choice::Adaptive
        && point.choose(point.stars + 1, point.roi_side) == Choice::Adaptive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_reproduces_table_iii() {
        let p = InflectionPoint::default();
        assert!(choices_match_paper(&p));
        assert!(summary(&p).contains("8192"));
    }
}
