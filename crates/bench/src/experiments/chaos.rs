//! Chaos-mode benchmark: the cost of the resilience layer and a seeded
//! fault-recovery demonstration.
//!
//! Two questions, answered in one run and recorded in `BENCH_PR3.json`:
//!
//! 1. **What does the plumbing cost when nothing fails?** The fault hooks
//!    are compiled in unconditionally, so a device with
//!    `FaultPlan::none()` must track the pooled+reuse baseline of the
//!    `throughput` experiment within noise (the PR gate is ≤ 3%).
//! 2. **Does recovery work at speed?** A `FaultPlan::seeded(seed, N)`
//!    run injects one fault of every kind across `N` frames; every frame
//!    must complete, and every recovered frame must be bit-identical to
//!    the fault-free run at the same worker count (seeded faults are
//!    spaced so retries stay on the bit-identical ladder rungs).

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpusim::{DeviceSpec, FaultPlan, VirtualGpu};
use starfield::catalog::StarCatalog;
use starfield::FieldGenerator;
use starsim_core::{AdaptiveSession, RetryPolicy};

use super::format::{write_json_object, Json, Table};
use super::Context;

/// Headline shape: the paper's test-1 workload at 2^13 stars.
const IMAGE_SIZE: usize = 1024;
const ROI_SIDE: usize = 10;
const STAR_COUNT: usize = 1 << 13;

/// Chaos frames: enough launches that every fault of the seeded plan
/// (six kinds, one stride-4 slot each) fires.
const CHAOS_FRAMES: usize = 24;

/// Watchdog deadline for chaos-armed devices. Must comfortably exceed a
/// legitimate frame (~35 ms at this shape), otherwise healthy launches
/// time out and the run degenerates into timeout/rebuild churn.
const WATCHDOG: Duration = Duration::from_millis(250);

/// Stuck-lane stall: longer than the watchdog deadline, so the injected
/// wedge is detected rather than outwaited.
const STALL: Duration = Duration::from_millis(450);

fn catalog(frame: u64, seed: u64) -> StarCatalog {
    FieldGenerator::new(IMAGE_SIZE, IMAGE_SIZE).generate(STAR_COUNT, seed + frame)
}

/// A pooled+reuse session at the headline shape, optionally chaos-armed.
/// A faulted device gets a resilient session (the seeded plan's bind
/// fault fires during setup, so even construction needs the retry path).
fn session(ctx: &Context, workers: usize, plan: Option<Arc<FaultPlan>>) -> AdaptiveSession {
    let mut config = ctx.sim_config(IMAGE_SIZE, IMAGE_SIZE, ROI_SIDE);
    config.workers = Some(workers);
    match plan {
        None => AdaptiveSession::on(VirtualGpu::gtx480(), config).expect("session"),
        Some(plan) => {
            let gpu = VirtualGpu::gtx480()
                .with_fault_plan(plan)
                .with_watchdog(WATCHDOG);
            let policy = RetryPolicy {
                backoff: Duration::ZERO,
                ..RetryPolicy::default()
            };
            AdaptiveSession::on_resilient(gpu, config, policy).expect("resilient session")
        }
    }
}

/// Best-of-`reps` sustained fps over `frames` identical frames.
fn sustained_fps(session: &AdaptiveSession, cat: &StarCatalog, frames: usize, reps: usize) -> f64 {
    let mut host = Vec::new();
    session.render_into(cat, &mut host).expect("warmup");
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..frames {
            session.render_into(cat, &mut host).expect("render");
        }
        let fps = frames as f64 / start.elapsed().as_secs_f64();
        best = best.max(fps);
    }
    best
}

/// Runs the overhead measurement and the seeded recovery demonstration;
/// writes `BENCH_PR3.json`.
pub fn run(ctx: &Context) -> Table {
    let frames = if ctx.quick { 6 } else { 24 };
    let reps = if ctx.quick { 2 } else { 3 };
    let workers = ctx
        .workers
        .unwrap_or(DeviceSpec::gtx480().sm_count as usize);
    let cat = catalog(0, ctx.seed);

    // 1. Steady-state overhead of the (empty) fault plan.
    eprintln!("chaos: baseline ({frames} frames, {workers} workers) ...");
    let baseline_fps = sustained_fps(&session(ctx, workers, None), &cat, frames, reps);
    eprintln!("chaos: FaultPlan::none() ({frames} frames) ...");
    let plan_none_fps = sustained_fps(
        &session(ctx, workers, Some(Arc::new(FaultPlan::none()))),
        &cat,
        frames,
        reps,
    );
    let overhead_pct = (1.0 - plan_none_fps / baseline_fps) * 100.0;

    // 2. Seeded chaos run vs the fault-free reference, frame by frame.
    eprintln!(
        "chaos: seeded recovery (seed {}, {CHAOS_FRAMES} frames) ...",
        ctx.seed
    );
    let clean = session(ctx, workers, None);
    let mut host = Vec::new();
    let expected: Vec<Vec<u32>> = (0..CHAOS_FRAMES)
        .map(|i| {
            clean
                .render_into(&catalog(i as u64, ctx.seed), &mut host)
                .expect("clean frame");
            host.iter().map(|x| x.to_bits()).collect()
        })
        .collect();

    let plan = Arc::new(FaultPlan::seeded(ctx.seed, CHAOS_FRAMES as u64).with_stall(STALL));
    let chaos = session(ctx, workers, Some(Arc::clone(&plan)));
    let chaos_start = Instant::now();
    let mut bit_identical = true;
    for (i, want) in expected.iter().enumerate() {
        chaos
            .render_into(&catalog(i as u64, ctx.seed), &mut host)
            .unwrap_or_else(|e| panic!("chaos frame {i} not recovered: {e}"));
        let got: Vec<u32> = host.iter().map(|x| x.to_bits()).collect();
        bit_identical &= &got == want;
    }
    let chaos_fps = CHAOS_FRAMES as f64 / chaos_start.elapsed().as_secs_f64();
    let report = chaos.resilience_report();

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["baseline_fps".into(), format!("{baseline_fps:.2}")]);
    t.row(vec!["plan_none_fps".into(), format!("{plan_none_fps:.2}")]);
    t.row(vec!["overhead_pct".into(), format!("{overhead_pct:.2}")]);
    t.row(vec!["chaos_fps".into(), format!("{chaos_fps:.2}")]);
    t.row(vec!["faults_injected".into(), plan.injected().to_string()]);
    t.row(vec!["retries".into(), report.retries.to_string()]);
    t.row(vec![
        "rung_frames".into(),
        format!("{:?}", report.rung_frames),
    ]);
    t.row(vec!["bit_identical".into(), bit_identical.to_string()]);
    if overhead_pct > 3.0 {
        eprintln!(
            "chaos: WARNING: FaultPlan::none() overhead {overhead_pct:.2}% exceeds the 3% gate"
        );
    }

    let _ = write_json_object(
        &ctx.out_path("BENCH_PR3.json"),
        &[
            ("workload", Json::Str("test1/2^13".into())),
            ("frames", Json::Int(frames as u64)),
            ("workers", Json::Int(workers as u64)),
            ("baseline_fps", Json::f3(baseline_fps)),
            ("plan_none_fps", Json::f3(plan_none_fps)),
            ("overhead_pct", Json::f3(overhead_pct)),
            ("chaos_seed", Json::Int(ctx.seed)),
            ("chaos_frames", Json::Int(CHAOS_FRAMES as u64)),
            ("chaos_fps", Json::f3(chaos_fps)),
            ("faults_injected", Json::Int(plan.injected())),
            ("retries", Json::Int(report.retries)),
            (
                "rung_frames",
                Json::Array(report.rung_frames.iter().map(|&n| Json::Int(n)).collect()),
            ),
            ("exhausted", Json::Int(report.exhausted)),
            ("bit_identical", Json::Bool(bit_identical)),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_study_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_chaos");
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            workers: Some(2),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 8, "eight metric rows");
        let json = std::fs::read_to_string(dir.join("BENCH_PR3.json")).unwrap();
        for key in [
            "baseline_fps",
            "plan_none_fps",
            "overhead_pct",
            "faults_injected",
            "rung_frames",
            "\"bit_identical\": true",
            "\"exhausted\": 0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
