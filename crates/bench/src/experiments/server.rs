//! Server loadgen: `starsimd` under N concurrent closed-loop clients.
//!
//! Three legs against one in-process [`StarServer`]:
//!
//! 1. **Uncontended** — a single client measures the baseline per-request
//!    p50/p99 and FPS.
//! 2. **Overload** — `4 × admission capacity` clients drive the server at
//!    well over sustainable demand. The admission gate must hold: depth
//!    stays bounded at capacity (no unbounded queueing, no OOM), excess
//!    demand is *rejected with a retry-after hint* rather than timed out,
//!    and the p99 of **admitted** requests stays within 2× the
//!    uncontended p99 — the latency protection that admission control
//!    buys.
//! 3. **Deadline** — tight `deadline_ms` budgets force mid-burst
//!    cancellation; the session then resumes the remaining frames and the
//!    final cumulative digest must equal an uninterrupted session's —
//!    deadline-cancelled bursts are bit-identically resumable.
//!
//! `BENCH_PR8.json` carries `reject_rate`, `deadline_miss_rate` and
//! `gate_ok` (grepped by `scripts/ci.sh`).

use std::time::{Duration, Instant};

use starsim_core::admission::AdmissionConfig;
use starsim_core::protocol::{Message, RejectCode, SessionSpec};
use starsim_core::server::{Client, ServerConfig, ServerHandle, StarServer};

use super::format::{write_json_object, Json, Table};
use super::Context;

/// Admitted-p99 protection gate: overload p99 over uncontended p99.
const P99_RATIO_GATE: f64 = 2.0;
/// Overload demand multiple over admission capacity.
const OVERLOAD_FACTOR: usize = 4;

/// Admission capacity the loadgen server runs with: the host's
/// *sustainable* render concurrency, which is 1 on any core count — a
/// single render burst already spreads across the available cores (the
/// pipelined producer plus the kernel worker pool), so admitting a
/// second concurrent burst just time-slices both. Every admitted
/// request gets slower, which is exactly what the admitted-p99 gate
/// exists to forbid; capacity 1 keeps admitted work undegraded and
/// pushes all excess demand into rejects, where it belongs.
const SUSTAINABLE_CAPACITY: usize = 1;

fn spec(ctx: &Context, quick: bool, tenant: &str) -> SessionSpec {
    SessionSpec {
        width: if quick { 192 } else { 256 },
        height: if quick { 192 } else { 256 },
        roi_side: 8,
        stars: if quick { 4_000 } else { 8_000 },
        seed: ctx.seed,
        backend: ctx.backend as u8,
        tenant: tenant.into(),
    }
}

fn boot(ctx: &Context) -> ServerHandle {
    let config = ServerConfig {
        admission: AdmissionConfig {
            capacity: SUSTAINABLE_CAPACITY,
            retry_after_ms: if ctx.quick { 5 } else { 10 },
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    StarServer::bind("127.0.0.1:0", config).expect("bind loadgen server")
}

/// Latencies (seconds) of one client's admitted requests, plus its
/// admission-reject count and frames completed.
struct ClientRun {
    latencies_s: Vec<f64>,
    rejects: u64,
    frames: u64,
    retry_honored: bool,
}

/// Closed loop: `requests` render requests of `frames` frames, backing
/// off on admission rejects by the server's retry-after hint, like a
/// well-behaved client. The latency of an admitted request counts from
/// its *admitted* send — backoff waits are the client's cost of the
/// server's latency protection and are reported separately as rejects.
fn closed_loop(
    addr: std::net::SocketAddr,
    spec: &SessionSpec,
    requests: usize,
    frames: u32,
) -> ClientRun {
    let mut client = Client::connect(addr).expect("loadgen connect");
    let (session, _hit) = client.open_session_with_backoff(spec);
    let mut run = ClientRun {
        latencies_s: Vec::with_capacity(requests),
        rejects: 0,
        frames: 0,
        retry_honored: true,
    };
    for _ in 0..requests {
        loop {
            let start = Instant::now();
            match client.render(session, frames, 0).expect("render request") {
                Message::RenderDone(done) => {
                    run.latencies_s.push(start.elapsed().as_secs_f64());
                    run.frames += u64::from(done.completed);
                    break;
                }
                Message::Reject {
                    code: RejectCode::Saturated,
                    retry_after_ms,
                    ..
                } => {
                    run.rejects += 1;
                    if retry_after_ms == 0 {
                        run.retry_honored = false; // a reject without a hint
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
                }
                other => panic!("loadgen: unexpected reply {other:?}"),
            }
        }
    }
    run
}

/// Backoff-aware open: session opens also pass the admission gate, so an
/// overloaded boot phase can see saturated rejects too.
trait OpenWithBackoff {
    fn open_session_with_backoff(&mut self, spec: &SessionSpec) -> (u64, bool);
}

impl OpenWithBackoff for Client {
    fn open_session_with_backoff(&mut self, spec: &SessionSpec) -> (u64, bool) {
        loop {
            match self
                .request(&Message::OpenSession(spec.clone()))
                .expect("open request")
            {
                Message::SessionOpen {
                    session,
                    lut_cache_hit,
                } => return (session, lut_cache_hit),
                Message::Reject {
                    code: RejectCode::Saturated,
                    retry_after_ms,
                    ..
                } => std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1)))),
                other => panic!("loadgen: unexpected open reply {other:?}"),
            }
        }
    }
}

/// Nearest-rank percentile of unsorted latencies, milliseconds.
fn percentile_ms(latencies_s: &[f64], q: f64) -> f64 {
    if latencies_s.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies_s.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] * 1e3
}

/// The deadline leg: force a mid-burst deadline miss, resume, and compare
/// the cumulative digest against an uninterrupted session.
struct DeadlineLeg {
    requests: u64,
    misses: u64,
    resume_identical: bool,
}

fn deadline_leg(
    addr: std::net::SocketAddr,
    spec: &SessionSpec,
    frames: u32,
    per_frame_ms: f64,
) -> DeadlineLeg {
    let mut client = Client::connect(addr).expect("deadline connect");

    // The uninterrupted reference digest.
    let (reference, _) = client.open_session_with_backoff(spec);
    let reference_digest = match client
        .render(reference, frames, 0)
        .expect("reference render")
    {
        Message::RenderDone(done) => done.digest,
        other => panic!("deadline leg: unexpected reference reply {other:?}"),
    };

    let mut leg = DeadlineLeg {
        requests: 0,
        misses: 0,
        resume_identical: false,
    };
    // Shrink the budget until a burst actually misses: start around three
    // frames' worth and halve. Fast hosts need the lower budgets; the
    // floor of 1 ms cuts any burst whose frames cost ≳ 0.1 ms.
    let mut budget_ms = (per_frame_ms * 3.0).max(2.0);
    for _ in 0..8 {
        let (session, _) = client.open_session_with_backoff(spec);
        leg.requests += 1;
        let done = match client
            .render(session, frames, budget_ms.max(1.0) as u32)
            .expect("deadline render")
        {
            Message::RenderDone(done) => done,
            Message::Reject { .. } => {
                // Transient saturation: give the session back (the
                // connection's session limit is finite) and retry fresh.
                let _ = client.close_session(session);
                continue;
            }
            other => panic!("deadline leg: unexpected reply {other:?}"),
        };
        if !done.deadline_missed || done.completed == 0 {
            // Completed inside the budget (or cut before frame one):
            // adjust and try a fresh session.
            if done.deadline_missed {
                leg.misses += 1;
                budget_ms *= 2.0; // cut too early — allow some progress
            } else {
                budget_ms /= 2.0; // too generous — tighten
            }
            let _ = client.close_session(session);
            continue;
        }
        // A genuine mid-burst miss: resume the remaining frames with no
        // deadline and compare the final cumulative digest.
        leg.misses += 1;
        let remaining = frames - done.completed;
        let resumed = match client.render(session, remaining, 0).expect("resume render") {
            Message::RenderDone(done) => done,
            other => panic!("deadline leg: unexpected resume reply {other:?}"),
        };
        leg.resume_identical = resumed.completed == remaining && resumed.digest == reference_digest;
        let _ = client.close_session(session);
        break;
    }
    leg
}

/// Runs the three legs and writes `server_loadgen.csv` plus the
/// `BENCH_PR8.json` headline artefact.
pub fn run(ctx: &Context) -> Table {
    let handle = boot(ctx);
    let addr = handle.addr();
    let capacity = handle.admission().config().capacity;
    // Quick mode shrinks the *frame*, not the sample count: the p99
    // ratio gate needs enough admitted samples (and requests that cost
    // a few ms each) or scheduler noise dominates the percentile.
    let frames: u32 = 8;
    let requests = 10;

    // Leg 1: uncontended baseline.
    eprintln!("server: uncontended leg (1 client, {requests} requests x {frames} frames) ...");
    let base_spec = spec(ctx, ctx.quick, "baseline");
    let t0 = Instant::now();
    let baseline = closed_loop(addr, &base_spec, requests, frames);
    let baseline_elapsed = t0.elapsed().as_secs_f64();
    let uncontended_p50 = percentile_ms(&baseline.latencies_s, 50.0);
    let uncontended_p99 = percentile_ms(&baseline.latencies_s, 99.0);
    let uncontended_fps = baseline.frames as f64 / baseline_elapsed;

    // Leg 2: overload at OVERLOAD_FACTOR × capacity concurrent clients.
    let clients = capacity * OVERLOAD_FACTOR;
    eprintln!("server: overload leg ({clients} clients, capacity {capacity}) ...");
    let t0 = Instant::now();
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let tenant = format!("tenant-{}", i % 3); // a few tenants share the cache
                let client_spec = spec(ctx, ctx.quick, &tenant);
                scope.spawn(move || closed_loop(addr, &client_spec, requests, frames))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let overload_elapsed = t0.elapsed().as_secs_f64();
    let admitted_latencies: Vec<f64> = runs
        .iter()
        .flat_map(|r| r.latencies_s.iter().copied())
        .collect();
    let rejects: u64 = runs.iter().map(|r| r.rejects).sum();
    let admitted = admitted_latencies.len() as u64;
    let total_frames: u64 = runs.iter().map(|r| r.frames).sum();
    let retry_honored = runs.iter().all(|r| r.retry_honored);
    let admitted_p50 = percentile_ms(&admitted_latencies, 50.0);
    let admitted_p99 = percentile_ms(&admitted_latencies, 99.0);
    let aggregate_fps = total_frames as f64 / overload_elapsed;
    let reject_rate = rejects as f64 / (rejects + admitted).max(1) as f64;
    let stats = handle.admission().stats();
    let depth_bounded = stats.depth <= stats.capacity;

    // Leg 3: deadline budgets + resumability.
    eprintln!("server: deadline leg ...");
    let per_frame_ms = uncontended_p50 / f64::from(frames.max(1));
    let deadline = deadline_leg(
        addr,
        &spec(ctx, ctx.quick, "deadline"),
        frames * 2,
        per_frame_ms,
    );
    let deadline_miss_rate = deadline.misses as f64 / deadline.requests.max(1) as f64;

    let lut_tenants = handle.lut_cache().tenant_stats().len() as u64;
    let shed_level = handle.admission().shed_level();
    handle.shutdown();

    // Gates. Overload must shed (rejects observed, with hints, depth
    // bounded), admitted latency must stay protected, and a
    // deadline-cancelled burst must have resumed bit-identically.
    let p99_ratio = if uncontended_p99 > 0.0 {
        admitted_p99 / uncontended_p99
    } else {
        f64::INFINITY
    };
    let reject_ok = rejects > 0 && retry_honored;
    let p99_ok = p99_ratio <= P99_RATIO_GATE;
    let deadline_ok = deadline.misses > 0 && deadline.resume_identical;
    let gate_ok = reject_ok && p99_ok && deadline_ok && depth_bounded;
    if !gate_ok {
        eprintln!(
            "server: WARNING: gate failed — rejects {rejects} (hint honored {retry_honored}), \
             p99 ratio {p99_ratio:.2} (need <= {P99_RATIO_GATE}), deadline misses \
             {} (resume identical {}), depth bounded {depth_bounded}",
            deadline.misses, deadline.resume_identical
        );
    }

    let mut t = Table::new(vec!["leg", "fps", "p50_ms", "p99_ms", "rejects"]);
    t.row(vec![
        "uncontended".to_string(),
        format!("{uncontended_fps:.2}"),
        format!("{uncontended_p50:.3}"),
        format!("{uncontended_p99:.3}"),
        format!("{}", baseline.rejects),
    ]);
    t.row(vec![
        format!("overload x{OVERLOAD_FACTOR} ({clients} clients)"),
        format!("{aggregate_fps:.2}"),
        format!("{admitted_p50:.3}"),
        format!("{admitted_p99:.3}"),
        format!("{rejects}"),
    ]);
    t.row(vec![
        "deadline".to_string(),
        String::new(),
        format!("misses {}", deadline.misses),
        format!("resume_ok {}", deadline.resume_identical),
        String::new(),
    ]);
    let _ = t.write_csv(&ctx.out_path("server_loadgen.csv"));

    let _ = write_json_object(
        &ctx.out_path("BENCH_PR8.json"),
        &[
            ("capacity", Json::Int(capacity as u64)),
            ("clients", Json::Int(clients as u64)),
            ("requests_per_client", Json::Int(requests as u64)),
            ("frames_per_request", Json::Int(u64::from(frames))),
            ("uncontended_fps", Json::f3(uncontended_fps)),
            ("uncontended_p50_ms", Json::f3(uncontended_p50)),
            ("uncontended_p99_ms", Json::f3(uncontended_p99)),
            ("aggregate_fps", Json::f3(aggregate_fps)),
            ("admitted_p50_ms", Json::f3(admitted_p50)),
            ("admitted_p99_ms", Json::f3(admitted_p99)),
            ("p99_ratio", Json::f3(p99_ratio)),
            ("p99_ratio_gate", Json::f3(P99_RATIO_GATE)),
            ("admitted", Json::Int(admitted)),
            ("rejected", Json::Int(rejects)),
            ("reject_rate", Json::f3(reject_rate)),
            ("retry_after_honored", Json::Bool(retry_honored)),
            ("depth_bounded", Json::Bool(depth_bounded)),
            ("shed_level", Json::Str(shed_level.name().into())),
            ("lut_tenants", Json::Int(lut_tenants)),
            ("deadline_requests", Json::Int(deadline.requests)),
            ("deadline_misses", Json::Int(deadline.misses)),
            ("deadline_miss_rate", Json::f3(deadline_miss_rate)),
            ("resume_identical", Json::Bool(deadline.resume_identical)),
            ("reject_ok", Json::Bool(reject_ok)),
            ("p99_ok", Json::Bool(p99_ok)),
            ("deadline_ok", Json::Bool(deadline_ok)),
            ("gate_ok", Json::Bool(gate_ok)),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_loadgen_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_server_bench");
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 3, "three legs");
        let json = std::fs::read_to_string(dir.join("BENCH_PR8.json")).unwrap();
        for key in [
            "uncontended_p99_ms",
            "aggregate_fps",
            "admitted_p99_ms",
            "p99_ratio",
            "reject_rate",
            "retry_after_honored",
            "depth_bounded",
            "deadline_miss_rate",
            "resume_identical",
            "gate_ok",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Correctness gates must hold even in a debug-profile smoke run:
        // overload sheds with hints, depth stays bounded, and the
        // deadline-cut burst resumed bit-identically. (The p99 latency
        // gate is only meaningful under --release; scripts/ci.sh asserts
        // the full gate_ok there.)
        assert!(json.contains("\"retry_after_honored\": true"), "{json}");
        assert!(json.contains("\"depth_bounded\": true"), "{json}");
        assert!(json.contains("\"resume_identical\": true"), "{json}");
        assert!(dir.join("server_loadgen.csv").exists());
    }
}
