//! Atomic-contention study (paper §III-B.3): quantifies "the possibility
//! of ROI overlaying is relatively low, considering that stars in the
//! image are generally scattered" — and shows when it stops being low.

use starfield::{FieldGenerator, PositionModel};
use starsim_core::{contention, ParallelSimulator, Simulator};

use super::format::{ms, Table};
use super::Context;

/// Runs the study over field densities and spatial distributions.
pub fn run(ctx: &Context) -> Table {
    let image = 1024;
    let config = ctx.sim_config(image, image, 10);
    let cases: Vec<(String, PositionModel, usize)> = {
        let counts: &[usize] = if ctx.quick {
            &[1 << 10, 1 << 13]
        } else {
            &[1 << 10, 1 << 13, 1 << 15, 1 << 17]
        };
        let mut v = Vec::new();
        for &n in counts {
            v.push((format!("uniform/{n}"), PositionModel::Uniform, n));
        }
        v.push((
            "clustered/8192".into(),
            PositionModel::Clustered {
                clusters: 30,
                sigma_px: 25.0,
            },
            1 << 13,
        ));
        v
    };

    let mut t = Table::new(vec![
        "field",
        "contention_rate_pct",
        "max_multiplicity",
        "overlapped_pixels",
        "kernel_ms",
    ]);
    let par = ParallelSimulator::new();
    for (label, model, n) in cases {
        eprintln!("contention: {label} ...");
        let catalog = FieldGenerator::new(image, image)
            .positions(model)
            .generate(n, ctx.seed);
        let profile = contention::analyze(&catalog, &config);
        let report = par.simulate(&catalog, &config).expect("parallel");
        t.row(vec![
            label,
            format!("{:.2}", profile.contention_rate() * 100.0),
            profile.max_multiplicity.to_string(),
            profile.overlapped_pixels().to_string(),
            ms(report.kernel_time_s()),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("contention.csv"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_study_runs_quick() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_contention"),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 3);
    }
}
