//! Benchmark **test 1** (paper §IV-A): star count sweeps `2^5 .. 2^17`,
//! ROI fixed at 10×10, image 1024×1024. Feeds Figs. 9–12 and Tables I–II.

use starfield::workload;
use starsim_core::{AdaptiveSimulator, ParallelSimulator, SequentialSimulator, Simulator};

use super::format::{ms, speedup, Table};
use super::{reference_sequential_s, Context};

/// One sweep point: all three simulators on the same star field.
#[derive(Debug, Clone)]
pub struct Test1Row {
    /// log2 of the star count.
    pub exponent: u32,
    /// Star count.
    pub stars: usize,
    /// Sequential application time (measured wall), seconds.
    pub seq_app: f64,
    /// Parallel application time (modeled), seconds.
    pub par_app: f64,
    /// Parallel kernel time, seconds.
    pub par_kernel: f64,
    /// Parallel non-kernel time, seconds.
    pub par_non_kernel: f64,
    /// Parallel achieved GFLOPS.
    pub par_gflops: f64,
    /// Adaptive application time (modeled), seconds.
    pub ada_app: f64,
    /// Adaptive kernel time, seconds.
    pub ada_kernel: f64,
    /// Adaptive non-kernel time, seconds.
    pub ada_non_kernel: f64,
    /// Adaptive achieved GFLOPS.
    pub ada_gflops: f64,
    /// Adaptive CPU-GPU transmission time, seconds (Table I row 1).
    pub ada_transfer: f64,
    /// Adaptive lookup-table build time, seconds (Table I row 2).
    pub ada_lut_build: f64,
    /// Adaptive texture binding time, seconds (Table I row 3).
    pub ada_tex_bind: f64,
}

/// Runs the sweep. `quick` stops at 2^12 (CI-friendly).
pub fn run(ctx: &Context) -> Vec<Test1Row> {
    let max_exp = if ctx.quick { 12 } else { 17 };
    let seq = SequentialSimulator::new();
    let par = ParallelSimulator::new();
    let ada = AdaptiveSimulator::new();

    let mut rows = Vec::new();
    for exponent in 5..=max_exp {
        let w = workload::test1(exponent, ctx.seed);
        let config = ctx.sim_config(w.image_size, w.image_size, w.roi_side);
        eprintln!("test1: 2^{exponent} stars ...");
        let rs = seq.simulate(&w.catalog, &config).expect("sequential");
        let rp = par.simulate(&w.catalog, &config).expect("parallel");
        let ra = ada.simulate(&w.catalog, &config).expect("adaptive");
        rows.push(Test1Row {
            exponent,
            stars: w.catalog.len(),
            seq_app: rs.app_time_s,
            par_app: rp.app_time_s,
            par_kernel: rp.kernel_time_s(),
            par_non_kernel: rp.non_kernel_time_s(),
            par_gflops: rp.gflops(),
            ada_app: ra.app_time_s,
            ada_kernel: ra.kernel_time_s(),
            ada_non_kernel: ra.non_kernel_time_s(),
            ada_gflops: ra.gflops(),
            ada_transfer: ra.profile.overhead_named("CPU-GPU transmission"),
            ada_lut_build: ra.profile.overhead_named("lookup table build"),
            ada_tex_bind: ra.profile.overhead_named("texture memory binding"),
        });
    }
    rows
}

/// Fig. 9 — overall simulation time of the three simulators.
pub fn fig9(rows: &[Test1Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec!["stars", "sequential_ms", "parallel_ms", "adaptive_ms"]);
    for r in rows {
        t.row(vec![
            format!("2^{}", r.exponent),
            ms(r.seq_app),
            ms(r.par_app),
            ms(r.ada_app),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("fig9.csv"));
    t
}

/// Fig. 10 — application speedup of both GPU simulators vs sequential.
///
/// Two baselines: the locally *measured* sequential simulator, and the
/// paper-testbed *reference* model (see
/// [`super::REFERENCE_SEQ_NS_PER_PIXEL`]) whose magnitudes are comparable
/// to the paper's reported 97×-average / 270×-max speedups.
pub fn fig10(rows: &[Test1Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec![
        "stars",
        "parallel_speedup",
        "adaptive_speedup",
        "parallel_speedup_ref",
        "adaptive_speedup_ref",
    ]);
    for r in rows {
        let seq_ref = reference_sequential_s(r.stars, 10);
        t.row(vec![
            format!("2^{}", r.exponent),
            speedup(r.seq_app / r.par_app),
            speedup(r.seq_app / r.ada_app),
            speedup(seq_ref / r.par_app),
            speedup(seq_ref / r.ada_app),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("fig10.csv"));
    t
}

/// Fig. 11 — kernel time of the two GPU simulators.
pub fn fig11(rows: &[Test1Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec!["stars", "parallel_kernel_ms", "adaptive_kernel_ms"]);
    for r in rows {
        t.row(vec![
            format!("2^{}", r.exponent),
            ms(r.par_kernel),
            ms(r.ada_kernel),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("fig11.csv"));
    t
}

/// Fig. 12 — non-kernel time of the two GPU simulators.
pub fn fig12(rows: &[Test1Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec![
        "stars",
        "parallel_non_kernel_ms",
        "adaptive_non_kernel_ms",
    ]);
    for r in rows {
        t.row(vec![
            format!("2^{}", r.exponent),
            ms(r.par_non_kernel),
            ms(r.ada_non_kernel),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("fig12.csv"));
    t
}

/// Table I — breakdown of the adaptive simulator's non-kernel overhead.
pub fn table1(rows: &[Test1Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec![
        "stars",
        "cpu_gpu_transmission_ms",
        "lookup_table_build_ms",
        "texture_binding_ms",
    ]);
    for r in rows {
        t.row(vec![
            format!("2^{}", r.exponent),
            ms(r.ada_transfer),
            ms(r.ada_lut_build),
            ms(r.ada_tex_bind),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("table1.csv"));
    t
}

/// Table II — achieved GFLOPS of both kernels at the top of the sweep.
pub fn table2(rows: &[Test1Row], ctx: &Context) -> Table {
    let mut t = Table::new(vec!["stars", "parallel_gflops", "adaptive_gflops"]);
    if let Some(r) = rows.last() {
        t.row(vec![
            format!("2^{}", r.exponent),
            format!("{:.2}", r.par_gflops),
            format!("{:.2}", r.ada_gflops),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("table2.csv"));
    t
}

/// The star-count inflection point: the first sweep point where the
/// adaptive simulator's application time beats the parallel one.
pub fn inflection_stars(rows: &[Test1Row]) -> Option<u32> {
    rows.iter()
        .find(|r| r.ada_app < r.par_app)
        .map(|r| r.exponent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_rows() -> Vec<Test1Row> {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_test1"),
            ..Default::default()
        };
        run(&ctx)
    }

    #[test]
    fn sweep_produces_all_figures() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_test1"),
            ..Default::default()
        };
        let rows = quick_rows();
        assert_eq!(rows.len(), 8); // 2^5..=2^12
        for (f, n) in [
            (fig9(&rows, &ctx), "fig9"),
            (fig10(&rows, &ctx), "fig10"),
            (fig11(&rows, &ctx), "fig11"),
            (fig12(&rows, &ctx), "fig12"),
            (table1(&rows, &ctx), "table1"),
        ] {
            assert_eq!(f.len(), rows.len(), "{n}");
            assert!(ctx.out_path(&format!("{n}.csv")).exists(), "{n} csv");
        }
        assert_eq!(table2(&rows, &ctx).len(), 1);
    }

    #[test]
    fn sequential_time_grows_linearly_with_stars() {
        let rows = quick_rows();
        // Doubling the star count should roughly double sequential time
        // across the upper half of the sweep (timer noise dominates below).
        let a = &rows[rows.len() - 2];
        let b = &rows[rows.len() - 1];
        let ratio = b.seq_app / a.seq_app;
        assert!(
            (1.3..3.5).contains(&ratio),
            "sequential 2x-star ratio was {ratio}"
        );
    }

    #[test]
    fn gpu_kernel_time_scales_with_stars() {
        // Compare kernel *work* (time minus the fixed launch overhead,
        // which dominates tiny launches).
        let overhead = gpusim::CostModel::fermi().launch_overhead_s;
        let rows = quick_rows();
        let a = &rows[0];
        let b = rows.last().unwrap();
        assert!(b.par_kernel - overhead > (a.par_kernel - overhead) * 10.0);
        assert!(b.ada_kernel - overhead > (a.ada_kernel - overhead) * 10.0);
    }

    #[test]
    fn non_kernel_is_roughly_flat() {
        let rows = quick_rows();
        let first = rows[0].par_non_kernel;
        let last = rows.last().unwrap().par_non_kernel;
        assert!(
            last < first * 2.0,
            "transfer-dominated overhead is flat-ish"
        );
    }
}
