//! Observability plane benchmark: the exporter + flight-recorder
//! disabled-overhead gate, a seeded-fault post-mortem round-trip, and
//! the per-device utilization determinism sweep.
//!
//! Four legs:
//!
//! 1. **Overhead** — the headline frame stream (2^13 stars dense in a
//!    10° FOV at 1024×1024, the same shape `pipeline` measures) with the
//!    plane *off* (no sink, no sampling, no recording) and *on* in its
//!    worst case (utilization sink attached, a ring sample attempted and
//!    a flight entry recorded on **every** frame — production throttles
//!    to one sample per 250 ms). The on-path must cost ≤
//!    [`OVERHEAD_GATE_PCT`] of throughput.
//! 2. **Exposition** — an in-process `starsimd` is scraped over the wire;
//!    the exposition must parse back ([`parse_exposition`]) with the
//!    frame counter and instance labels intact, and a healthy server's
//!    SLOs must all be `ok`.
//! 3. **Flight recorder** — a seeded handler fault (the `panic_tenant`
//!    hook) must produce a `flight-*.json` post-mortem whose embedded
//!    Chrome trace parses and whose entries chain a server request id to
//!    the kernel-launch range it caused.
//! 4. **Utilization determinism** — the [`DeviceUtilization`] aggregate
//!    (occupancy, stall breakdown, cache hits, traffic) must be
//!    bit-identical across host worker counts for the same seed
//!    ([`DeviceUtilization::signature`] compares the raw bits).
//!
//! `BENCH_PR9.json` carries `overhead_pct`, `flight_dump_ok`,
//! `util_signature_match` and `gate_ok` (grepped by `scripts/ci.sh`).

use std::sync::Arc;

use gpusim::telemetry::now_us;
use gpusim::{DeviceSpec, DeviceUtilization, UtilizationSink, VirtualGpu};
use starsim_core::obsplane::parse_exposition;
use starsim_core::protocol::{Message, RejectCode, SessionSpec, SloState};
use starsim_core::server::{Client, ServerConfig, StarServer};
use starsim_core::telemetry::parse_json;
use starsim_core::{
    CancelToken, FlightEntry, FrameSequencer, MetricsRegistry, ObsPlane, PipelinedFrame,
};

use super::format::{write_json_object, Json, Table};
use super::pipeline::sequencer;
use super::Context;

/// The headline workload: 2^13 stars (the pipeline experiment's shape,
/// so the overhead is measured against the PR 8-era frame loop).
const HEADLINE_EXPONENT: u32 = 13;

/// Exporter + recorder throughput cost gate, percent.
const OVERHEAD_GATE_PCT: f64 = 3.0;

/// One leg's sustained throughput (best of `reps`, like `pipeline`).
struct Sustained {
    fps: f64,
    p99_ms: f64,
}

/// Runs `reps` bursts of `frames` through the pipelined loop with
/// `per_frame` on the observer hook and keeps the fastest pass. One
/// untimed warmup burst populates the pool, LUT and device images.
fn measure(
    seq: &mut FrameSequencer,
    frames: usize,
    reps: usize,
    mut per_frame: impl FnMut(&PipelinedFrame<'_>),
) -> Sustained {
    let token = CancelToken::new();
    let _ = seq
        .run_frames_pipelined_observed(frames, &token, &mut per_frame)
        .expect("warmup burst");
    let mut best: Option<Sustained> = None;
    for _ in 0..reps.max(1) {
        let report = seq
            .run_frames_pipelined_observed(frames, &token, &mut per_frame)
            .expect("measured burst");
        let pass = Sustained {
            fps: report.fps(),
            p99_ms: report.p99_ms,
        };
        if best.as_ref().is_none_or(|b| pass.fps > b.fps) {
            best = Some(pass);
        }
    }
    best.expect("reps >= 1")
}

/// The overhead leg's numbers plus the on-leg's scrape result.
struct OverheadLeg {
    off: Sustained,
    on: Sustained,
    overhead_pct: f64,
    ring_snapshots: u32,
    exposition_samples: usize,
    exposition_ok: bool,
}

fn overhead_leg(ctx: &Context, frames: usize, reps: usize, workers: usize) -> OverheadLeg {
    let stars = 1usize << HEADLINE_EXPONENT;
    let mut config = ctx.sim_config(1024, 1024, 10);
    config.workers = Some(workers);

    // Off: the plain pipelined loop, no sink, no sampling, no recorder.
    eprintln!("obsplane: overhead leg, plane off ({frames} frames) ...");
    let mut seq =
        sequencer(VirtualGpu::gtx480(), config.clone(), stars, ctx.seed).expect("off sequencer");
    let off = measure(&mut seq, frames, reps, |_| {});

    // On, worst case: utilization sink attached, and every frame bumps
    // counters, observes a latency histogram, attempts a ring sample
    // (period 0 — production throttles to 250 ms) and records a flight
    // entry. The flight-entry Strings are empty, so the per-frame hook
    // stays allocation-free.
    eprintln!("obsplane: overhead leg, plane on ({frames} frames) ...");
    let sink = Arc::new(UtilizationSink::new(&DeviceSpec::gtx480()));
    let gpu = VirtualGpu::gtx480().with_utilization(Arc::clone(&sink));
    let mut seq = sequencer(gpu, config, stars, ctx.seed).expect("on sequencer");
    let obs = ObsPlane::with_sample_period_us(0);
    let registry = MetricsRegistry::new();
    let mut request_id = 0u64;
    let on = measure(&mut seq, frames, reps, |frame| {
        request_id += 1;
        registry.counter_add("server.frames_rendered", 1);
        registry.observe("server.render_wall_ms", frame.timing.app_time_s * 1e3);
        obs.maybe_sample(&registry);
        obs.recorder().record(FlightEntry {
            t_us: now_us(),
            request_id,
            session: 1,
            tenant: String::new(),
            kind: "frame",
            frames: 1,
            launch_range: (0, sink.launches()),
            detail: String::new(),
        });
    });

    // The scrape itself (off the hot path) must round-trip.
    let labels = vec![("bench".to_string(), "obsplane".to_string())];
    let (ring_snapshots, exposition) = obs.scrape(&registry, &labels);
    let samples = parse_exposition(&exposition).unwrap_or_default();
    let exposition_ok = samples.iter().any(|s| {
        s.name == "starsim_server_frames_rendered"
            && s.value > 0.0
            && s.labels
                .iter()
                .any(|(k, v)| k == "bench" && v == "obsplane")
    });

    let overhead_pct = if off.fps > 0.0 {
        (1.0 - on.fps / off.fps) * 100.0
    } else {
        f64::INFINITY
    };
    OverheadLeg {
        off,
        on,
        overhead_pct,
        ring_snapshots,
        exposition_samples: samples.len(),
        exposition_ok,
    }
}

/// The server round-trip: wire scrape, SLO state, seeded fault, dump.
struct FlightLeg {
    wire_scrape_ok: bool,
    slo_state: SloState,
    flight_dumps: u64,
    dump_written: bool,
    trace_ok: bool,
    chain_ok: bool,
    utilization: DeviceUtilization,
}

fn flight_leg(ctx: &Context, quick: bool) -> FlightLeg {
    let flight_dir = ctx.out_path("flight");
    let _ = std::fs::remove_dir_all(&flight_dir);
    let config = ServerConfig {
        flight_dir: Some(flight_dir.clone()),
        panic_tenant: Some("chaos".into()),
        ..ServerConfig::default()
    };
    let handle = StarServer::bind("127.0.0.1:0", config).expect("bind obsplane server");
    let mut client = Client::connect(handle.addr()).expect("obsplane connect");
    let spec = SessionSpec {
        width: 192,
        height: 192,
        roi_side: 8,
        stars: if quick { 2_000 } else { 4_000 },
        seed: ctx.seed,
        backend: ctx.backend as u8,
        tenant: "obsbench".into(),
    };
    let (session, _hit) = client.open_session(&spec).expect("open session");
    for _ in 0..2 {
        match client.render(session, 2, 0).expect("render request") {
            Message::RenderDone(done) => assert_eq!(done.completed, 2, "burst completes"),
            other => panic!("obsplane: unexpected render reply {other:?}"),
        }
    }

    // Wire scrape: the exposition parses back with the frame counter and
    // the instance labels the server stamps on.
    let (_snapshots, exposition) = client.metrics().expect("metrics scrape");
    let wire_scrape_ok = parse_exposition(&exposition).is_ok_and(|samples| {
        samples.iter().any(|s| {
            s.name == "starsim_server_frames_rendered"
                && s.value >= 4.0
                && s.labels.iter().any(|(k, v)| k == "device" && v == "gtx480")
        })
    });
    let (slo_state, _body) = client.alerts().expect("alerts request");

    // Seeded fault: the chaos tenant panics its handler; the server must
    // isolate it to an Internal reject and dump a post-mortem.
    match client.request(&Message::OpenSession(SessionSpec {
        tenant: "chaos".into(),
        ..spec
    })) {
        Ok(Message::Reject {
            code: RejectCode::Internal,
            ..
        }) => {}
        other => panic!("obsplane: seeded fault not isolated: {other:?}"),
    }
    let flight_dumps = handle.obs().recorder().dump_count();
    let utilization = handle.device_utilization();
    handle.shutdown();

    // The newest dump must be self-contained: entries chaining a request
    // id to its launch range, plus a parseable Chrome trace.
    let mut dumps: Vec<_> = std::fs::read_dir(&flight_dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    dumps.sort();
    let (mut dump_written, mut trace_ok, mut chain_ok) = (false, false, false);
    if let Some(path) = dumps.last() {
        dump_written = true;
        if let Ok(doc) = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| parse_json(&text).map_err(|e| e.to_string()))
        {
            trace_ok = doc
                .get("trace")
                .and_then(|t| t.get("traceEvents"))
                .and_then(|e| e.as_array())
                .is_some_and(|events| !events.is_empty());
            let entries = doc.get("entries").and_then(|e| e.as_array());
            let field = |entry: &starsim_core::telemetry::JsonValue, key: &str| -> f64 {
                entry.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
            };
            let kind_is = |entry: &starsim_core::telemetry::JsonValue, kind: &str| {
                entry.get("kind").and_then(|k| k.as_str()) == Some(kind)
            };
            chain_ok = entries.is_some_and(|entries| {
                let rendered = entries.iter().any(|e| {
                    kind_is(e, "render")
                        && field(e, "request_id") > 0.0
                        && field(e, "session") > 0.0
                        && field(e, "launch_past_last") > field(e, "launch_first")
                });
                let panicked = entries
                    .iter()
                    .any(|e| kind_is(e, "panic") && field(e, "request_id") > 0.0);
                rendered && panicked
            });
        }
    }
    FlightLeg {
        wire_scrape_ok,
        slo_state,
        flight_dumps,
        dump_written,
        trace_ok,
        chain_ok,
        utilization,
    }
}

/// Runs the same small frame stream under different host worker counts
/// and reports whether every [`DeviceUtilization::signature`] matches.
fn utilization_determinism(ctx: &Context) -> (bool, usize) {
    let mut signatures: Vec<String> = Vec::new();
    for &workers in &[1usize, 2, 15] {
        let sink = Arc::new(UtilizationSink::new(&DeviceSpec::gtx480()));
        let gpu = VirtualGpu::gtx480().with_utilization(Arc::clone(&sink));
        let mut config = ctx.sim_config(256, 256, 10);
        config.workers = Some(workers);
        let mut seq = sequencer(gpu, config, 1024, ctx.seed).expect("determinism sequencer");
        let _ = seq.run_frames_pipelined(3).expect("determinism burst");
        signatures.push(sink.snapshot().signature());
    }
    let first = signatures.first().cloned().unwrap_or_default();
    let all_match = !first.is_empty() && signatures.iter().all(|s| *s == first);
    if !all_match {
        for (i, s) in signatures.iter().enumerate() {
            eprintln!("obsplane: WARNING: utilization signature [{i}]: {s}");
        }
    }
    (all_match, signatures.len())
}

/// Runs the four legs and writes `obsplane.csv` plus the
/// `BENCH_PR9.json` headline artefact.
pub fn run(ctx: &Context) -> Table {
    let frames = if ctx.quick { 6 } else { 24 };
    let reps = if ctx.quick { 2 } else { 3 };
    let workers = ctx
        .workers
        .unwrap_or(DeviceSpec::gtx480().sm_count as usize);

    let overhead = overhead_leg(ctx, frames, reps, workers);

    eprintln!("obsplane: flight-recorder leg (seeded fault over the wire) ...");
    let flight = flight_leg(ctx, ctx.quick);

    eprintln!("obsplane: utilization determinism sweep ...");
    let (util_signature_match, util_configs) = utilization_determinism(ctx);

    let overhead_ok = overhead.overhead_pct <= OVERHEAD_GATE_PCT;
    let slo_ok = flight.slo_state == SloState::Ok;
    let flight_dump_ok = flight.flight_dumps >= 1 && flight.dump_written;
    let gate_ok = overhead_ok
        && overhead.exposition_ok
        && flight.wire_scrape_ok
        && slo_ok
        && flight_dump_ok
        && flight.trace_ok
        && flight.chain_ok
        && util_signature_match;
    if !gate_ok {
        eprintln!(
            "obsplane: WARNING: gate failed — overhead {:.2}% (need <= {OVERHEAD_GATE_PCT}%), \
             exposition {} wire {} slo {} dump {} trace {} chain {} util {}",
            overhead.overhead_pct,
            overhead.exposition_ok,
            flight.wire_scrape_ok,
            flight.slo_state.name(),
            flight_dump_ok,
            flight.trace_ok,
            flight.chain_ok,
            util_signature_match
        );
    }

    let util = &flight.utilization;
    let mut t = Table::new(vec!["leg", "result", "detail"]);
    t.row(vec![
        "overhead".to_string(),
        format!("{:.2} -> {:.2} fps", overhead.off.fps, overhead.on.fps),
        format!(
            "{:+.2}% (gate <= {OVERHEAD_GATE_PCT}%)",
            overhead.overhead_pct
        ),
    ]);
    t.row(vec![
        "exposition".to_string(),
        format!(
            "{} samples / {} snapshots",
            overhead.exposition_samples, overhead.ring_snapshots
        ),
        format!(
            "wire ok {}, slo {}",
            flight.wire_scrape_ok,
            flight.slo_state.name()
        ),
    ]);
    t.row(vec![
        "flight".to_string(),
        format!("{} dumps", flight.flight_dumps),
        format!("trace {} chain {}", flight.trace_ok, flight.chain_ok),
    ]);
    t.row(vec![
        "utilization".to_string(),
        format!(
            "occ {:.3} busy {:.3} tex {:.3}",
            util.occupancy_mean(),
            util.sm_busy_fraction(),
            util.tex_hit_rate()
        ),
        format!("signature match {util_signature_match} ({util_configs} worker counts)"),
    ]);
    let _ = t.write_csv(&ctx.out_path("obsplane.csv"));

    let _ = write_json_object(
        &ctx.out_path("BENCH_PR9.json"),
        &[
            (
                "workload",
                Json::Str(format!("dense/2^{HEADLINE_EXPONENT} @1024")),
            ),
            ("frames", Json::Int(frames as u64)),
            ("workers", Json::Int(workers as u64)),
            ("off_fps", Json::f3(overhead.off.fps)),
            ("off_p99_ms", Json::f3(overhead.off.p99_ms)),
            ("on_fps", Json::f3(overhead.on.fps)),
            ("on_p99_ms", Json::f3(overhead.on.p99_ms)),
            ("overhead_pct", Json::f3(overhead.overhead_pct)),
            ("overhead_gate_pct", Json::f3(OVERHEAD_GATE_PCT)),
            (
                "ring_snapshots",
                Json::Int(u64::from(overhead.ring_snapshots)),
            ),
            (
                "exposition_samples",
                Json::Int(overhead.exposition_samples as u64),
            ),
            ("exposition_ok", Json::Bool(overhead.exposition_ok)),
            ("wire_scrape_ok", Json::Bool(flight.wire_scrape_ok)),
            ("slo_state", Json::Str(flight.slo_state.name().into())),
            ("flight_dumps", Json::Int(flight.flight_dumps)),
            ("trace_ok", Json::Bool(flight.trace_ok)),
            ("chain_ok", Json::Bool(flight.chain_ok)),
            ("util_launches", Json::Int(util.launches)),
            ("util_occupancy_mean", Json::f3(util.occupancy_mean())),
            ("util_sm_busy_fraction", Json::f3(util.sm_busy_fraction())),
            ("util_tex_hit_rate", Json::f3(util.tex_hit_rate())),
            (
                "util_memory_traffic_mb",
                Json::f3(util.memory_traffic_bytes() as f64 / (1024.0 * 1024.0)),
            ),
            ("util_configs", Json::Int(util_configs as u64)),
            ("util_signature_match", Json::Bool(util_signature_match)),
            ("overhead_ok", Json::Bool(overhead_ok)),
            ("slo_ok", Json::Bool(slo_ok)),
            ("flight_dump_ok", Json::Bool(flight_dump_ok)),
            ("gate_ok", Json::Bool(gate_ok)),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obsplane_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_obsplane_bench");
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            // Keep the smoke cheap; the full SM-wide fan-out is the real
            // bench run's job.
            workers: Some(2),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 4, "four legs");
        let json = std::fs::read_to_string(dir.join("BENCH_PR9.json")).unwrap();
        for key in [
            "off_fps",
            "on_fps",
            "overhead_pct",
            "exposition_ok",
            "wire_scrape_ok",
            "slo_state",
            "flight_dumps",
            "trace_ok",
            "chain_ok",
            "util_signature_match",
            "overhead_ok",
            "flight_dump_ok",
            "gate_ok",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Correctness gates must hold even in a debug-profile smoke run:
        // the exposition round-trips, the seeded fault dumps a chained
        // post-mortem, and utilization is worker-count invariant. (The
        // overhead gate is only meaningful under --release; scripts/ci.sh
        // asserts the full gate_ok there.)
        assert!(json.contains("\"exposition_ok\": true"), "{json}");
        assert!(json.contains("\"wire_scrape_ok\": true"), "{json}");
        assert!(json.contains("\"flight_dump_ok\": true"), "{json}");
        assert!(json.contains("\"trace_ok\": true"), "{json}");
        assert!(json.contains("\"chain_ok\": true"), "{json}");
        assert!(json.contains("\"util_signature_match\": true"), "{json}");
        assert!(json.contains("\"slo_ok\": true"), "{json}");
        assert!(dir.join("obsplane.csv").exists());
    }
}
