//! Multi-GPU scaling (the paper's future work, §V): star partitioning
//! across 1..8 virtual GTX480s.

use starfield::workload;
use starsim_core::{MultiGpuSimulator, Simulator};

use super::format::{ms, Table};
use super::Context;

/// Runs the scaling study and renders its table.
pub fn run(ctx: &Context) -> Table {
    let exponent = if ctx.quick { 12 } else { 16 };
    let device_counts: &[usize] = if ctx.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let w = workload::test1(exponent, ctx.seed);
    let config = ctx.sim_config(w.image_size, w.image_size, w.roi_side);

    let mut t = Table::new(vec![
        "devices",
        "slowest_kernel_ms",
        "app_ms",
        "kernel_scaling",
    ]);
    let mut base_kernel = None;
    for &n in device_counts {
        eprintln!("multigpu: {n} device(s), 2^{exponent} stars ...");
        let sim = MultiGpuSimulator::new(n);
        let r = sim.simulate(&w.catalog, &config).expect("multi-gpu");
        let slowest = r
            .profile
            .kernels
            .iter()
            .map(|k| k.time_s)
            .fold(0.0f64, f64::max);
        let base = *base_kernel.get_or_insert(slowest);
        t.row(vec![
            n.to_string(),
            ms(slowest),
            ms(r.app_time_s),
            format!("{:.2}x", base / slowest),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("multigpu.csv"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_runs_quick() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_multigpu"),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 3);
    }
}
