//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[cfg_attr(not(test), allow(dead_code))] // used by the test suite
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows present.
    #[cfg_attr(not(test), allow(dead_code))] // used by the test suite
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }
}

/// A JSON value for [`write_json_object`] — the few shapes the BENCH
/// artefacts need, no external crates.
#[derive(Debug, Clone)]
pub enum Json {
    /// A string (escaped on write).
    Str(String),
    /// An integer.
    Int(u64),
    /// A float printed with a fixed number of decimals (stable artefact
    /// diffs; CI greps for exact keys and well-formed numbers).
    F64(f64, usize),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Json>),
}

impl Json {
    /// Float with 3 decimals (rates, speedups, percentages).
    pub fn f3(v: f64) -> Json {
        Json::F64(v, 3)
    }

    /// Float with 6 decimals (seconds).
    #[cfg_attr(not(test), allow(dead_code))] // not every experiment emits seconds
    pub fn f6(v: f64) -> Json {
        Json::F64(v, 6)
    }

    fn render(&self, out: &mut String) {
        match self {
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v, decimals) => {
                let _ = write!(out, "{v:.decimals$}");
            }
            Json::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render(out);
                }
                out.push(']');
            }
        }
    }
}

/// Writes `fields` as a single-object JSON file (`{"k": v, ...}` plus a
/// trailing newline). Every BENCH_PR*.json artefact goes through this —
/// the experiments stay free of hand-rolled brace escaping.
pub fn write_json_object(path: &Path, fields: &[(&str, Json)]) -> std::io::Result<()> {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        Json::Str((*key).to_string()).render(&mut out);
        out.push_str(": ");
        value.render(&mut out);
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Formats seconds as milliseconds with three decimals.
pub fn ms(t: f64) -> String {
    format!("{:.3}", t * 1e3)
}

/// Formats a ratio with one decimal and an `x` suffix.
pub fn speedup(r: f64) -> String {
    format!("{r:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["stars", "time"]);
        t.row(vec!["32", "1.5"]);
        t.row(vec!["131072", "220.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("stars"));
        assert!(lines[3].trim_start().starts_with("131072"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let dir = std::env::temp_dir().join("starsim_fmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        t.write_csv(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
    }

    #[test]
    fn helpers() {
        assert_eq!(ms(0.0015), "1.500");
        assert_eq!(speedup(97.3), "97.3x");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn json_object_roundtrip() {
        let dir = std::env::temp_dir().join("starsim_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("o.json");
        write_json_object(
            &p,
            &[
                ("name", Json::Str("test1/2^13".into())),
                ("frames", Json::Int(40)),
                ("fps", Json::f3(123.4567)),
                ("time_s", Json::f6(0.001234)),
                ("ok", Json::Bool(true)),
                (
                    "rungs",
                    Json::Array(vec![Json::Int(2), Json::Int(1), Json::Int(0)]),
                ),
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(
            text,
            "{\"name\": \"test1/2^13\", \"frames\": 40, \"fps\": 123.457, \
             \"time_s\": 0.001234, \"ok\": true, \"rungs\": [2, 1, 0]}\n"
        );
    }

    #[test]
    fn json_strings_escaped() {
        let mut out = String::new();
        Json::Str("a\"b\\c\nd".into()).render(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\u000ad\"");
    }
}
