//! Static kernel analyzer benchmark: the static-vs-dynamic consistency
//! gate, answered in one run and recorded in `BENCH_PR10.json`:
//!
//! 1. **Do the predictions hold?** The static pass runs over all three
//!    production kernels × both arithmetic backends; its coalescing,
//!    bank-conflict, texture and occupancy predictions must agree with
//!    the dynamic `CacheSim`/counter measurements of the *same* launch
//!    within the documented tolerances (`COALESCE_TOL`, `BANK_TOL`,
//!    `TEX_HIT_TOL`; occupancy exactly) — and every production kernel
//!    must be clean at `deny` level (`"gate_ok": true`).
//! 2. **Is the analysis deterministic?** Reports must be bit-identical
//!    across host worker counts (1 vs 4) and across Scalar/Simd backends
//!    (`"determinism_ok": true`).
//! 3. **Does it catch real defects?** Every perf-defect corpus kernel
//!    (uncoalesced / bank-conflict / working-set-blowout) must be flagged
//!    with a deny of its expected class and rejected by the pre-launch
//!    advisor (`"corpus_flagged": true`).
//! 4. **Is the frame hot path untouched?** A session opened with
//!    `analyze = true` runs the advisor exactly once at setup; rendering
//!    any number of frames must not add advisor invocations
//!    (`"advisor_runs": 1`).

use gpusim::analyze::{analyze_kernel, BANK_TOL, COALESCE_TOL, TEX_HIT_TOL};
use gpusim::sanitize::corpus;
use gpusim::{KernelBackend, LaunchConfig, VirtualGpu};
use starfield::catalog::StarCatalog;
use starfield::FieldGenerator;
use starsim_core::{analysis, AdaptiveSession, KernelAudit};

use super::format::{write_json_object, Json, Table};
use super::Context;

const ROI_SIDE: usize = 10;

fn shape(ctx: &Context) -> (usize, usize) {
    if ctx.quick {
        (256, 512)
    } else {
        (1024, 1 << 13)
    }
}

fn catalog(size: usize, stars: usize, seed: u64) -> StarCatalog {
    FieldGenerator::new(size, size).generate(stars, seed)
}

/// One audited kernel's gate verdict.
struct Verdict {
    name: String,
    backend: &'static str,
    tx_delta: f64,
    shared_delta: f64,
    tex_floor: f64,
    tex_measured: f64,
    occupancy_ok: bool,
    deny_free: bool,
    ok: bool,
}

fn judge(audit: &KernelAudit, backend: &'static str) -> Verdict {
    let p = &audit.report.prediction;
    let tx_delta = (p.global_tx_per_request - audit.measured_tx_per_request()).abs();
    let shared_delta =
        (p.shared_extra_per_request - audit.measured_shared_extra_per_request()).abs();
    let tex_floor = p.tex_hit_rate_floor;
    let tex_measured = audit.measured_tex_hit_rate();
    let occupancy_ok = audit.report.occupancy == audit.profile.occupancy;
    let deny_free = !audit.report.has_deny();
    let ok = deny_free
        && occupancy_ok
        && tx_delta <= COALESCE_TOL
        && shared_delta <= BANK_TOL
        && tex_measured + TEX_HIT_TOL >= tex_floor;
    Verdict {
        name: audit.name.clone(),
        backend,
        tx_delta,
        shared_delta,
        tex_floor,
        tex_measured,
        occupancy_ok,
        deny_free,
        ok,
    }
}

/// Audits the three production kernels under both backends; returns the
/// per-kernel verdicts.
fn production_leg(ctx: &Context, size: usize, cat: &StarCatalog) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    for (backend, label) in [
        (KernelBackend::Scalar, "scalar"),
        (KernelBackend::Simd, "simd"),
    ] {
        let mut config = ctx.sim_config(size, size, ROI_SIDE);
        config.backend = backend;
        let audits = analysis::audit_production(&config, cat).expect("audit");
        verdicts.extend(audits.iter().map(|a| judge(a, label)));
    }
    verdicts
}

/// Reports must be bit-identical across worker counts and backends. Runs
/// at a small fixed shape of its own — determinism is shape-independent,
/// and the sweep re-audits everything 4 times over.
fn determinism_leg(ctx: &Context) -> bool {
    let size = 128;
    let cat = catalog(size, 64, ctx.seed);
    let mut variants = Vec::new();
    for workers in [1usize, 4] {
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            let mut config = ctx.sim_config(size, size, ROI_SIDE);
            config.workers = Some(workers);
            config.backend = backend;
            let audits = analysis::audit_production(&config, &cat).expect("audit");
            let rendered: Vec<String> = audits.iter().map(|a| format!("{:?}", a.report)).collect();
            variants.push(rendered);
        }
    }
    variants.windows(2).all(|w| w[0] == w[1])
}

/// Runs the perf-defect corpus; returns `(kernel, expected code, denied)`
/// rows. `corpus_flagged` holds iff every row is denied with its code.
fn corpus_leg() -> Vec<(&'static str, &'static str, bool)> {
    let gpu = VirtualGpu::gtx480();
    let mut rows = Vec::new();

    let (src, _t) = gpu.upload(vec![0.5f32; 1024]);
    let image = gpu.alloc_atomic_f32(32);
    let k = corpus::Uncoalesced {
        src: &src,
        image: &image,
    };
    let cfg = LaunchConfig::new(1u32, 32u32);
    let denied = denied_with(&gpu, "uncoalesced", &k, &cfg, "uncoalesced-global");
    rows.push(("uncoalesced", "uncoalesced-global", denied));

    let k = corpus::BankConflict { image: &image };
    let cfg = LaunchConfig::new(1u32, 32u32).with_shared_mem(1024 * 4);
    let denied = denied_with(&gpu, "bank-conflict", &k, &cfg, "shared-bank-conflict");
    rows.push(("bank-conflict", "shared-bank-conflict", denied));

    let (lut, _tu, _tb) = gpu
        .bind_texture(256, 256, 1, vec![0.25f32; 256 * 256])
        .expect("bind");
    let k = corpus::WorkingSetBlowout {
        lut: &lut,
        image: &image,
    };
    let cfg = LaunchConfig::new(1u32, 32u32);
    let denied = denied_with(&gpu, "working-set-blowout", &k, &cfg, "texture-working-set");
    rows.push(("working-set-blowout", "texture-working-set", denied));

    rows
}

/// True iff the analyzer denies `kernel` with a lint of `code` *and* the
/// pre-launch advisor rejects the launch.
fn denied_with<K: gpusim::Kernel>(
    gpu: &VirtualGpu,
    name: &str,
    kernel: &K,
    cfg: &LaunchConfig,
    code: &str,
) -> bool {
    let report = analyze_kernel(name, kernel, cfg, gpu.spec()).expect("analyze");
    let has_code = report
        .lints
        .iter()
        .any(|l| l.level == gpusim::LintLevel::Deny && l.code == code);
    let advisor_rejects = gpu.advise_launch(name, kernel, cfg).is_err();
    has_code && advisor_rejects
}

/// Opens an analyzing session, renders frames, and returns the advisor
/// invocation count (must stay 1 — the hot path never re-analyzes).
fn advisor_leg(ctx: &Context, size: usize, cat: &StarCatalog, frames: usize) -> u64 {
    let mut config = ctx.sim_config(size, size, ROI_SIDE);
    config.analyze = true;
    let session = AdaptiveSession::new(config).expect("session");
    let mut host = Vec::new();
    for _ in 0..frames {
        session.render_into(cat, &mut host).expect("render");
    }
    session.advise_runs()
}

/// Runs the analyzer benchmark.
pub fn run(ctx: &Context) -> Table {
    let (size, stars) = shape(ctx);
    let cat = catalog(size, stars, ctx.seed);

    eprintln!("analyze: static-vs-dynamic audits over 3 kernels x 2 backends ...");
    let verdicts = production_leg(ctx, size, &cat);
    let production_ok = verdicts.iter().all(|v| v.ok);

    eprintln!("analyze: determinism sweep (workers 1/4 x scalar/simd) ...");
    let determinism_ok = determinism_leg(ctx);

    eprintln!("analyze: perf-defect corpus ...");
    let corpus_rows = corpus_leg();
    let corpus_flagged = !corpus_rows.is_empty() && corpus_rows.iter().all(|&(_, _, d)| d);

    let frames = if ctx.quick { 4 } else { 16 };
    eprintln!("analyze: advisor-once check over {frames} frames ...");
    let advisor_runs = advisor_leg(ctx, size, &cat, frames);
    let advisor_ok = advisor_runs == 1;

    let gate_ok = production_ok && determinism_ok && corpus_flagged && advisor_ok;
    if !gate_ok {
        eprintln!(
            "analyze: WARNING: gate failed — production {production_ok}, determinism \
             {determinism_ok}, corpus {corpus_flagged}, advisor runs {advisor_runs}"
        );
    }

    let mut t = Table::new(vec!["kernel", "backend", "static vs dynamic", "verdict"]);
    for v in &verdicts {
        t.row(vec![
            v.name.clone(),
            v.backend.to_string(),
            format!(
                "tx Δ{:.4} · shared Δ{:.4} · tex {:.3}≥{:.3} · occ {}",
                v.tx_delta,
                v.shared_delta,
                v.tex_measured,
                v.tex_floor,
                if v.occupancy_ok { "=" } else { "!=" }
            ),
            format!(
                "{}{}",
                if v.ok { "ok" } else { "FAIL" },
                if v.deny_free { "" } else { " (deny)" }
            ),
        ]);
    }
    for (name, code, denied) in &corpus_rows {
        t.row(vec![
            format!("corpus/{name}"),
            "-".to_string(),
            format!("expect deny `{code}`"),
            if *denied { "denied" } else { "MISSED" }.to_string(),
        ]);
    }
    t.row(vec![
        "advisor".to_string(),
        "-".to_string(),
        format!("{advisor_runs} run(s) over {frames} frames"),
        if advisor_ok { "ok" } else { "FAIL" }.to_string(),
    ]);

    let worst_tx = verdicts.iter().map(|v| v.tx_delta).fold(0.0, f64::max);
    let worst_shared = verdicts.iter().map(|v| v.shared_delta).fold(0.0, f64::max);
    let _ = write_json_object(
        &ctx.out_path("BENCH_PR10.json"),
        &[
            ("kernels", Json::Int(3)),
            ("backends", Json::Int(2)),
            ("image", Json::Int(size as u64)),
            ("stars", Json::Int(stars as u64)),
            ("coalesce_tol", Json::f3(COALESCE_TOL)),
            ("worst_tx_delta", Json::f3(worst_tx)),
            ("worst_shared_delta", Json::f3(worst_shared)),
            ("production_ok", Json::Bool(production_ok)),
            ("determinism_ok", Json::Bool(determinism_ok)),
            ("corpus_kernels", Json::Int(corpus_rows.len() as u64)),
            ("corpus_flagged", Json::Bool(corpus_flagged)),
            ("advisor_runs", Json::Int(advisor_runs)),
            ("gate_ok", Json::Bool(gate_ok)),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_all_gates() {
        let dir = std::env::temp_dir().join("starsim-bench-analyze-test");
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            ..Context::default()
        };
        run(&ctx);
        let json = std::fs::read_to_string(dir.join("BENCH_PR10.json")).expect("json");
        assert!(json.contains("\"gate_ok\": true"), "{json}");
        assert!(json.contains("\"corpus_flagged\": true"), "{json}");
    }
}
