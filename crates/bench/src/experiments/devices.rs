//! Device sensitivity: the paper's design on other GPU generations.
//!
//! The paper notes its limits "can be improved with the development of GPU
//! general computing" (§V); this experiment reruns the 2^13-star workload
//! on the previous generation (GTX280, CC 1.3) and a compute-class Fermi
//! (Tesla C2050) to show how the architecture moves the numbers.

use gpusim::{DeviceSpec, VirtualGpu};
use starfield::workload;
use starsim_core::{AdaptiveSimulator, ParallelSimulator, Simulator};

use super::format::{ms, Table};
use super::Context;

/// Runs the paper's inflection-point workload on three device specs.
pub fn run(ctx: &Context) -> Table {
    let exponent = if ctx.quick { 11 } else { 13 };
    let w = workload::test1(exponent, ctx.seed);
    let config = ctx.sim_config(w.image_size, w.image_size, w.roi_side);

    let devices: Vec<DeviceSpec> = vec![
        DeviceSpec::gtx280(),
        DeviceSpec::gtx480(),
        DeviceSpec::tesla_c2050(),
    ];

    let mut t = Table::new(vec![
        "device",
        "sms",
        "parallel_kernel_ms",
        "adaptive_kernel_ms",
        "parallel_app_ms",
        "adaptive_app_ms",
        "winner",
    ]);
    for spec in devices {
        eprintln!("devices: {} ...", spec.name);
        let name = spec.name;
        let sms = spec.sm_count;
        let par = ParallelSimulator::on(VirtualGpu::new(spec.clone()));
        let ada = AdaptiveSimulator::on(VirtualGpu::new(spec));
        let rp = par.simulate(&w.catalog, &config).expect("parallel");
        let ra = ada.simulate(&w.catalog, &config).expect("adaptive");
        let winner = if rp.app_time_s <= ra.app_time_s {
            "parallel"
        } else {
            "adaptive"
        };
        t.row(vec![
            name.to_string(),
            sms.to_string(),
            ms(rp.kernel_time_s()),
            ms(ra.kernel_time_s()),
            ms(rp.app_time_s),
            ms(ra.app_time_s),
            winner.to_string(),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("devices.csv"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_sweep_runs_quick() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_devices"),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 3);
    }
}
