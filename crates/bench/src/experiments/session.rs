//! Session amortization study: with the lookup table resident across
//! frames (the paper's realistic deployed-simulator mode), the adaptive
//! design's non-kernel penalty vanishes and the inflection point with it.

use starfield::workload;
use starsim_core::{AdaptiveSession, ParallelSimulator, Simulator};

use super::format::{ms, Table};
use super::Context;

/// Sweeps star counts comparing per-frame session cost against both
/// one-shot GPU simulators.
pub fn run(ctx: &Context) -> Table {
    let exponents: Vec<u32> = if ctx.quick {
        vec![8, 10, 12]
    } else {
        vec![8, 10, 12, 13, 14, 16]
    };
    let config = ctx.sim_config(1024, 1024, 10);
    let session = AdaptiveSession::new(config.clone()).expect("session");
    let par = ParallelSimulator::new();

    let mut t = Table::new(vec![
        "stars",
        "parallel_ms",
        "adaptive_oneshot_ms",
        "session_frame_ms",
        "session_winner_everywhere",
    ]);
    for exp in exponents {
        eprintln!("session: 2^{exp} stars ...");
        let w = workload::test1(exp, ctx.seed);
        let ada = starsim_core::AdaptiveSimulator::new()
            .simulate(&w.catalog, &config)
            .expect("adaptive");
        let rp = par.simulate(&w.catalog, &config).expect("parallel");
        let frame = session.render(&w.catalog).expect("session frame");
        let wins = frame.app_time_s < rp.app_time_s && frame.app_time_s < ada.app_time_s;
        t.row(vec![
            format!("2^{exp}"),
            ms(rp.app_time_s),
            ms(ada.app_time_s),
            ms(frame.app_time_s),
            if wins { "yes" } else { "no" }.to_string(),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("session.csv"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_study_runs_quick() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_session"),
            ..Default::default()
        };
        assert_eq!(run(&ctx).len(), 3);
    }
}
