//! SIMD backend comparison: scalar vs lane-oriented batched fast paths
//! (`gpusim::KernelBackend`).
//!
//! Counters and modeled GPU times are bit-equal across backends — proven
//! here on the headline workload and exhaustively by
//! `tests/exec_modes.rs` — so the two numbers of interest are **host
//! wall-clock** of the batched executor and the **pixel error** the SIMD
//! approximation introduces. The headline workload (2^13 stars, ROI 10,
//! 1024×1024 — the paper's test-1 shape) is written to `BENCH_PR6.json`
//! with both gates evaluated:
//!
//! * `speedup_ok` — SIMD is ≥ 2.0× faster than scalar on the batched
//!   star-centric kernel;
//! * `error_ok` — the SIMD image agrees with the scalar image within the
//!   parallel-vs-sequential tolerance (1e-5 absolute or 1e-4 relative per
//!   pixel — the same `images_close` gate the test suite uses).

use std::time::Instant;

use starfield::workload;
use starsim_core::{KernelBackend, ParallelSimulator, SimulationReport, Simulator};

use super::format::{speedup, write_json_object, Json, Table};
use super::Context;

/// The headline workload: 2^13 stars. Always measured, even under
/// `--quick`, so `BENCH_PR6.json` is comparable across runs.
const HEADLINE_EXPONENT: u32 = 13;

/// The wall-clock gate: SIMD must at least halve the batched time.
const SPEEDUP_GATE: f64 = 2.0;

/// The pixel-error gate — the parallel-vs-sequential mixed tolerance.
const ABS_TOL: f32 = 1e-5;
const REL_TOL: f32 = 1e-4;

/// Best-of-`reps` wall-clock seconds plus one representative report
/// (deterministic virtual GPU: every rep yields identical output).
fn measure(
    w: &workload::Workload,
    ctx: &Context,
    backend: KernelBackend,
    reps: usize,
) -> (f64, SimulationReport) {
    let mut config = ctx.sim_config(w.image_size, w.image_size, w.roi_side);
    config.backend = backend;
    let sim = ParallelSimulator::new();
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = sim.simulate(&w.catalog, &config).expect("simulate");
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    (best, report.expect("reps >= 1"))
}

/// Runs the backend comparison and writes `simd.csv` plus the
/// `BENCH_PR6.json` headline artefact.
pub fn run(ctx: &Context) -> Table {
    let exponents: &[u32] = if ctx.quick {
        &[HEADLINE_EXPONENT]
    } else {
        &[12, 13, 14, 15]
    };
    let mut t = Table::new(vec![
        "stars",
        "scalar_s",
        "simd_s",
        "speedup",
        "max_abs_err",
        "max_rel_err",
    ]);
    let mut headline = None;
    for &exponent in exponents {
        eprintln!("simd: 2^{exponent} stars ...");
        let w = workload::test1(exponent, ctx.seed);
        let (scalar_s, scalar) = measure(&w, ctx, KernelBackend::Scalar, 3);
        let (simd_s, simd) = measure(&w, ctx, KernelBackend::Simd, 3);

        let counters_equal = scalar.profile.kernels[0].counters == simd.profile.kernels[0].counters
            && scalar.profile.kernels[0].time_s.to_bits()
                == simd.profile.kernels[0].time_s.to_bits();
        let d = starimage::diff::compare(&scalar.image, &simd.image, 0.0);
        let error_ok = starimage::diff::images_close(&scalar.image, &simd.image, ABS_TOL, REL_TOL);
        if exponent == HEADLINE_EXPONENT {
            headline = Some((scalar_s, simd_s, d, counters_equal, error_ok));
        }
        t.row(vec![
            format!("2^{exponent}"),
            format!("{scalar_s:.3}"),
            format!("{simd_s:.3}"),
            speedup(scalar_s / simd_s),
            format!("{:.2e}", d.max_abs),
            format!("{:.2e}", d.max_rel),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("simd.csv"));

    let (scalar_s, simd_s, d, counters_equal, error_ok) =
        headline.expect("headline exponent always measured");
    let ratio = scalar_s / simd_s;
    let speedup_ok = ratio >= SPEEDUP_GATE;
    let gate_ok = speedup_ok && error_ok && counters_equal;
    if !gate_ok {
        eprintln!(
            "simd: WARNING: gate failed — speedup {ratio:.2}x (need {SPEEDUP_GATE}x), \
             error_ok {error_ok}, counters_equal {counters_equal}"
        );
    }
    let _ = write_json_object(
        &ctx.out_path("BENCH_PR6.json"),
        &[
            (
                "workload",
                Json::Str(format!("test1/2^{HEADLINE_EXPONENT}")),
            ),
            ("exec_batched_scalar_s", Json::f6(scalar_s)),
            ("exec_batched_simd_s", Json::f6(simd_s)),
            ("speedup", Json::f3(ratio)),
            ("speedup_gate", Json::f3(SPEEDUP_GATE)),
            ("max_abs_err", Json::F64(d.max_abs as f64, 9)),
            ("max_rel_err", Json::F64(d.max_rel as f64, 9)),
            ("counters_equal", Json::Bool(counters_equal)),
            ("speedup_ok", Json::Bool(speedup_ok)),
            ("error_ok", Json::Bool(error_ok)),
            ("gate_ok", Json::Bool(gate_ok)),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_study_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_simd_bench");
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 1);
        let json = std::fs::read_to_string(dir.join("BENCH_PR6.json")).unwrap();
        for key in [
            "exec_batched_scalar_s",
            "exec_batched_simd_s",
            "speedup",
            "max_abs_err",
            "max_rel_err",
            "counters_equal",
            "error_ok",
            "gate_ok",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Correctness gates must hold even in a debug-profile smoke run
        // (the 2x speedup gate is only meaningful under --release and is
        // asserted by scripts/ci.sh instead).
        assert!(json.contains("\"counters_equal\": true"), "{json}");
        assert!(json.contains("\"error_ok\": true"), "{json}");
        assert!(dir.join("simd.csv").exists());
    }
}
