//! Sustained multi-frame throughput: the persistent worker pool and
//! zero-allocation frame loop vs the per-frame-spawn, per-frame-allocation
//! baseline.
//!
//! Counters and modeled GPU times are bit-equal across all four
//! configurations (`tests/exec_modes.rs` and the session tests prove it) —
//! what differs is **host wall-clock per frame** in the deployed
//! `AdaptiveSession` steady state. The headline (2^13 stars, ROI 10,
//! 1024×1024 — the paper's test-1 shape — with one worker per virtual SM)
//! is written to `BENCH_PR2.json`.

use std::time::Instant;

use gpusim::{DeviceSpec, VirtualGpu};
use starfield::catalog::StarCatalog;
use starfield::workload;
use starsim_core::AdaptiveSession;

use super::format::{speedup, write_json_object, Json, Table};
use super::Context;

/// The headline workload: 2^13 stars. Always measured, even under
/// `--quick`, so `BENCH_PR2.json` is comparable across runs.
const HEADLINE_EXPONENT: u32 = 13;

/// One configuration's sustained numbers.
struct Sustained {
    fps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Nearest-rank percentile of sorted latencies, milliseconds.
fn percentile_ms(sorted_s: &[f64], q: f64) -> f64 {
    let rank = (q / 100.0 * sorted_s.len() as f64).ceil() as usize;
    sorted_s[rank.clamp(1, sorted_s.len()) - 1] * 1e3
}

/// Renders `frames` back-to-back frames `reps` times and reports the
/// best pass (the one least disturbed by unrelated host load — same
/// best-of-reps policy as the `executor` experiment). `zero_alloc`
/// selects the recycled-buffer path ([`AdaptiveSession::render_into`]);
/// otherwise every frame goes through the allocating
/// [`AdaptiveSession::render`]. One untimed warmup frame populates the
/// pool, the arena, and the host buffer.
fn measure(
    session: &AdaptiveSession,
    catalog: &StarCatalog,
    frames: usize,
    reps: usize,
    zero_alloc: bool,
) -> Sustained {
    let mut host = Vec::new();
    if zero_alloc {
        session.render_into(catalog, &mut host).expect("warmup");
    } else {
        let _ = session.render(catalog).expect("warmup");
    }
    let mut best: Option<Sustained> = None;
    for _ in 0..reps {
        let mut latencies_s = Vec::with_capacity(frames);
        let start = Instant::now();
        for _ in 0..frames {
            if zero_alloc {
                let timing = session.render_into(catalog, &mut host).expect("render");
                latencies_s.push(timing.wall_time_s);
            } else {
                let frame_start = Instant::now();
                let _ = session.render(catalog).expect("render");
                latencies_s.push(frame_start.elapsed().as_secs_f64());
            }
        }
        let elapsed_s = start.elapsed().as_secs_f64();
        latencies_s.sort_by(f64::total_cmp);
        let pass = Sustained {
            fps: frames as f64 / elapsed_s,
            p50_ms: percentile_ms(&latencies_s, 50.0),
            p99_ms: percentile_ms(&latencies_s, 99.0),
        };
        if best.as_ref().is_none_or(|b| pass.fps > b.fps) {
            best = Some(pass);
        }
    }
    best.expect("reps >= 1")
}

/// A session at the headline shape: `pooled` selects persistent-pool
/// dispatch (vs per-launch thread spawning), `reuse` selects buffer
/// recycling (vs fresh caches, shadows, and device image every frame).
fn build_session(
    ctx: &Context,
    w: &workload::Workload,
    workers: usize,
    pooled: bool,
    reuse: bool,
) -> AdaptiveSession {
    let mut config = ctx.sim_config(w.image_size, w.image_size, w.roi_side);
    config.workers = Some(workers);
    let mut gpu = VirtualGpu::gtx480().with_buffer_reuse(reuse);
    if !pooled {
        gpu = gpu.with_spawn_dispatch();
    }
    AdaptiveSession::on(gpu, config)
        .expect("session")
        .with_frame_reuse(reuse)
}

/// Runs the four-way comparison and writes `throughput.csv` plus the
/// `BENCH_PR2.json` headline artefact.
pub fn run(ctx: &Context) -> Table {
    let frames = if ctx.quick { 6 } else { 24 };
    let reps = if ctx.quick { 2 } else { 3 };
    let w = workload::test1(HEADLINE_EXPONENT, ctx.seed);
    // One worker per virtual SM — the deployed shape — unless --workers
    // overrides it.
    let workers = ctx
        .workers
        .unwrap_or(DeviceSpec::gtx480().sm_count as usize);

    let mut t = Table::new(vec!["config", "fps", "p50_ms", "p99_ms"]);
    let mut results = Vec::new();
    for (name, pooled, reuse) in [
        ("spawn_alloc", false, false),
        ("spawn_reuse", false, true),
        ("pooled_alloc", true, false),
        ("pooled_reuse", true, true),
    ] {
        eprintln!("throughput: {name} ({frames} frames, {workers} workers) ...");
        let session = build_session(ctx, &w, workers, pooled, reuse);
        let s = measure(&session, &w.catalog, frames, reps, reuse);
        t.row(vec![
            name.to_string(),
            format!("{:.2}", s.fps),
            format!("{:.3}", s.p50_ms),
            format!("{:.3}", s.p99_ms),
        ]);
        results.push((name, s));
    }
    let _ = t.write_csv(&ctx.out_path("throughput.csv"));

    let by_name = |name: &str| -> &Sustained {
        &results
            .iter()
            .find(|(n, _)| *n == name)
            .expect("all configs measured")
            .1
    };
    let spawn_alloc = by_name("spawn_alloc");
    let pooled_reuse = by_name("pooled_reuse");
    let _ = write_json_object(
        &ctx.out_path("BENCH_PR2.json"),
        &[
            ("workload", Json::Str(w.label.clone())),
            ("frames", Json::Int(frames as u64)),
            ("workers", Json::Int(workers as u64)),
            ("spawn_alloc_fps", Json::f3(spawn_alloc.fps)),
            ("spawn_alloc_p50_ms", Json::f3(spawn_alloc.p50_ms)),
            ("spawn_alloc_p99_ms", Json::f3(spawn_alloc.p99_ms)),
            ("pooled_reuse_fps", Json::f3(pooled_reuse.fps)),
            ("pooled_reuse_p50_ms", Json::f3(pooled_reuse.p50_ms)),
            ("pooled_reuse_p99_ms", Json::f3(pooled_reuse.p99_ms)),
            ("speedup", Json::f3(pooled_reuse.fps / spawn_alloc.fps)),
        ],
    );

    t.row(vec![
        "speedup (pooled_reuse / spawn_alloc)".to_string(),
        speedup(pooled_reuse.fps / spawn_alloc.fps),
        String::new(),
        String::new(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_study_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_throughput");
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            // Keep the smoke cheap: the full SM-wide fan-out is the real
            // bench run's job.
            workers: Some(2),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 5, "four configs plus the speedup row");
        let json = std::fs::read_to_string(dir.join("BENCH_PR2.json")).unwrap();
        for key in [
            "spawn_alloc_fps",
            "pooled_reuse_fps",
            "spawn_alloc_p99_ms",
            "pooled_reuse_p99_ms",
            "speedup",
            "workers",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(dir.join("throughput.csv").exists());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let lat = [0.001, 0.002, 0.003, 0.004];
        assert_eq!(percentile_ms(&lat, 50.0), 2.0);
        assert_eq!(percentile_ms(&lat, 99.0), 4.0);
        assert_eq!(percentile_ms(&[0.005], 50.0), 5.0);
    }
}
