//! Ablation: star-centric vs pixel-centric decomposition (paper §III-B.1,
//! Fig. 3) — the quantitative version of the paper's design argument.
//!
//! Runs on a reduced 256×256 image because the pixel-centric kernel is
//! O(pixels × stars).

use starfield::FieldGenerator;
use starsim_core::{ParallelSimulator, PixelCentricSimulator, Simulator};

use super::format::{ms, Table};
use super::Context;

/// Runs the ablation and renders its table.
pub fn run(ctx: &Context) -> Table {
    let image = 256;
    let star_counts: &[usize] = if ctx.quick {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let par = ParallelSimulator::new();
    let pix = PixelCentricSimulator::new();

    let mut t = Table::new(vec![
        "stars",
        "star_centric_kernel_ms",
        "pixel_centric_kernel_ms",
        "kernel_ratio",
        "star_centric_divergent",
        "pixel_centric_divergent",
    ]);
    for &n in star_counts {
        eprintln!("ablation: {n} stars ...");
        let cat = FieldGenerator::new(image, image).generate(n, ctx.seed);
        let config = ctx.sim_config(image, image, 10);
        let rp = par.simulate(&cat, &config).expect("star-centric");
        let rx = pix.simulate(&cat, &config).expect("pixel-centric");
        let kp = rp.kernel_time_s();
        let kx = rx.kernel_time_s();
        t.row(vec![
            n.to_string(),
            ms(kp),
            ms(kx),
            format!("{:.1}x", kx / kp),
            rp.profile.kernels[0]
                .counters
                .divergent_branches
                .to_string(),
            rx.profile.kernels[0]
                .counters
                .divergent_branches
                .to_string(),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("ablation.csv"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_quick() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_ablation"),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 2);
    }
}
