//! Sanitizer benchmark: the compute-sanitizer's three acceptance claims,
//! answered in one run and recorded in `BENCH_PR5.json`:
//!
//! 1. **Does it cost anything when off?** A batched session on a device
//!    with the sanitizer machinery explicitly attached (all checks
//!    configured, mode not `Sanitized`) must track the plain batched
//!    baseline within the PR gate of ≤ 1% (the per-launch dormant cost is
//!    two relaxed atomic reads: the launch id and the arena watermark).
//! 2. **Are the paper simulators clean?** Sequential, parallel and
//!    adaptive all run in `Sanitized` mode and every drained report must
//!    carry zero findings (`"findings": 0`).
//! 3. **Does it actually catch bugs?** Every kernel in the known-bad
//!    corpus ([`gpusim::sanitize::corpus`]) must be flagged with a finding
//!    of its expected class, and the static pre-launch validators must
//!    reject an oversized ROI and an over-tall launch
//!    (`"corpus_flagged": true`).

use std::time::Instant;

use gpusim::sanitize::{corpus, validate_launch, validate_roi};
use gpusim::{ExecMode, Kernel, LaunchConfig, SanitizeConfig, VirtualGpu};
use starfield::catalog::StarCatalog;
use starfield::FieldGenerator;
use starsim_core::{
    AdaptiveSession, AdaptiveSimulator, ParallelSimulator, SequentialSimulator, Simulator,
};

use super::format::{write_json_object, Json, Table};
use super::Context;

/// Headline shape for the overhead gate: the paper's test-1 workload at
/// 2^13 stars (same shape as the chaos and trace gates).
const IMAGE_SIZE: usize = 1024;
const ROI_SIDE: usize = 10;
const STAR_COUNT: usize = 1 << 13;

/// The disabled-sanitizer overhead ceiling, percent.
const GATE_PCT: f64 = 1.0;

fn catalog(seed: u64) -> StarCatalog {
    FieldGenerator::new(IMAGE_SIZE, IMAGE_SIZE).generate(STAR_COUNT, seed)
}

/// A pooled+reuse batched session at the headline shape, on `gpu`.
fn session(ctx: &Context, workers: usize, gpu: VirtualGpu) -> AdaptiveSession {
    let mut config = ctx.sim_config(IMAGE_SIZE, IMAGE_SIZE, ROI_SIDE);
    config.exec_mode = ExecMode::Batched;
    config.workers = Some(workers);
    AdaptiveSession::on(gpu, config).expect("session")
}

/// Best-of-`reps` sustained fps over `frames` identical frames.
fn sustained_fps(session: &AdaptiveSession, cat: &StarCatalog, frames: usize, reps: usize) -> f64 {
    let mut host = Vec::new();
    session.render_into(cat, &mut host).expect("warmup");
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..frames {
            session.render_into(cat, &mut host).expect("render");
        }
        let fps = frames as f64 / start.elapsed().as_secs_f64();
        best = best.max(fps);
    }
    best
}

/// Runs one corpus kernel on a sanitizing device and returns how many
/// findings of `class` its report carries.
fn flagged<K: Kernel>(gpu: &VirtualGpu, kernel: &K, cfg: LaunchConfig, class: &str) -> usize {
    gpu.launch("corpus", kernel, cfg).expect("sanitized launch");
    gpu.take_sanitize_reports()
        .iter()
        .map(|r| r.count_class(class))
        .sum()
}

/// Runs the whole known-bad corpus plus the static validators; returns
/// `(name, class, findings)` rows. `corpus_flagged` holds iff every row's
/// count is positive.
fn run_corpus(workers: usize) -> Vec<(&'static str, &'static str, usize)> {
    let gpu = VirtualGpu::gtx480()
        .with_workers(workers)
        .with_exec_mode(ExecMode::Sanitized);
    let mut rows = Vec::new();

    let (src, _) = gpu.upload(vec![1.0f32; 8]);
    let image = gpu.alloc_atomic_f32(8 * 32);
    let k = corpus::MissingBarrier {
        src: &src,
        image: &image,
    };
    rows.push((
        "missing-barrier",
        "race",
        flagged(
            &gpu,
            &k,
            LaunchConfig::new(8u32, 32u32).with_shared_mem(4),
            "race",
        ),
    ));

    let image = gpu.alloc_atomic_f32(4);
    let k = corpus::PlainStore { image: &image };
    rows.push((
        "plain-store",
        "race",
        flagged(&gpu, &k, LaunchConfig::new(4u32, 32u32), "race"),
    ));

    let image = gpu.alloc_atomic_f32(63);
    let k = corpus::RoiOffByOne { image: &image };
    rows.push((
        "roi-off-by-one",
        "out-of-bounds",
        flagged(&gpu, &k, LaunchConfig::new(2u32, 32u32), "out-of-bounds"),
    ));

    rows.push((
        "divergent-exit",
        "barrier-divergence",
        flagged(
            &gpu,
            &corpus::DivergentExit,
            LaunchConfig::new(1u32, 32u32),
            "barrier-divergence",
        ),
    ));

    rows.push((
        "uninit-read",
        "uninit-shared-read",
        flagged(
            &gpu,
            &corpus::UninitRead,
            LaunchConfig::new(1u32, 32u32).with_shared_mem(4),
            "uninit-shared-read",
        ),
    ));

    let k = corpus::SharedOob { words: 3 };
    rows.push((
        "shared-oob",
        "out-of-bounds",
        flagged(
            &gpu,
            &k,
            LaunchConfig::new(1u32, 32u32).with_shared_mem(12),
            "out-of-bounds",
        ),
    ));

    let (lut, _, _) = gpu.bind_texture(4, 4, 2, vec![0.5; 32]).expect("bind");
    let k = corpus::TexLayerOob { lut: &lut };
    rows.push((
        "tex-layer-oob",
        "out-of-bounds",
        flagged(&gpu, &k, LaunchConfig::new(1u32, 32u32), "out-of-bounds"),
    ));

    // The static validators count as corpus entries too: a rejection is
    // "one finding".
    let spec = gpu.spec();
    let roi_rejected = validate_roi(80, 64, 64).is_err() as usize;
    rows.push(("static-roi-validator", "invalid-launch", roi_rejected));
    let tall = LaunchConfig::new(1u32, spec.max_threads_per_block + 1);
    let launch_rejected = validate_launch(&tall, spec).is_err() as usize;
    rows.push(("static-launch-validator", "invalid-launch", launch_rejected));

    rows
}

/// Runs the three paper simulators in `Sanitized` mode on a reduced field
/// and returns `(reports, findings)` summed across them.
fn clean_pass(ctx: &Context, workers: usize) -> (usize, usize) {
    let side = if ctx.quick { 128 } else { 256 };
    let stars = if ctx.quick { 256 } else { 1024 };
    let mut config = ctx.sim_config(side, side, ROI_SIDE);
    config.exec_mode = ExecMode::Sanitized;
    config.workers = Some(workers);
    let cat = FieldGenerator::new(side, side).generate(stars, ctx.seed);

    // Sequential is pure host code: nothing launches, nothing to drain.
    SequentialSimulator::new()
        .simulate(&cat, &config)
        .expect("sequential");
    let mut reports = 0usize;
    let mut findings = 0usize;

    let par = ParallelSimulator::new();
    par.simulate(&cat, &config).expect("parallel");
    for r in par.gpu().take_sanitize_reports() {
        reports += 1;
        findings += r.findings.len();
    }

    let ada = AdaptiveSimulator::new();
    ada.simulate(&cat, &config).expect("adaptive");
    for r in ada.gpu().take_sanitize_reports() {
        reports += 1;
        findings += r.findings.len();
    }
    (reports, findings)
}

/// Runs the overhead gate, the clean pass and the corpus sweep; writes
/// `BENCH_PR5.json`.
pub fn run(ctx: &Context) -> Table {
    let frames = if ctx.quick { 6 } else { 24 };
    let reps = if ctx.quick { 2 } else { 3 };
    let workers = ctx
        .workers
        .unwrap_or(gpusim::DeviceSpec::gtx480().sm_count as usize);

    // 1. Batched baseline vs batched with the sanitizer attached-but-off.
    eprintln!("sanitize: baseline ({frames} frames, {workers} workers) ...");
    let cat = catalog(ctx.seed);
    let baseline_fps = sustained_fps(
        &session(ctx, workers, VirtualGpu::gtx480()),
        &cat,
        frames,
        reps,
    );
    eprintln!("sanitize: attached-but-disabled ({frames} frames) ...");
    let armed = VirtualGpu::gtx480().with_sanitize_config(SanitizeConfig::default());
    let attached_fps = sustained_fps(&session(ctx, workers, armed), &cat, frames, reps);
    let overhead_pct = (1.0 - attached_fps / baseline_fps) * 100.0;
    let gate_ok = overhead_pct <= GATE_PCT;
    if !gate_ok {
        eprintln!(
            "sanitize: WARNING: disabled overhead {overhead_pct:.2}% exceeds the {GATE_PCT}% gate"
        );
    }

    // 2. Clean pass over the three paper simulators.
    eprintln!("sanitize: clean pass (sequential / parallel / adaptive) ...");
    let (reports, findings) = clean_pass(ctx, workers);

    // 3. The known-bad corpus.
    eprintln!("sanitize: known-bad corpus ...");
    let rows = run_corpus(workers);
    let corpus_flagged = rows.iter().all(|(_, _, n)| *n > 0);

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["baseline_fps".into(), format!("{baseline_fps:.2}")]);
    t.row(vec!["attached_fps".into(), format!("{attached_fps:.2}")]);
    t.row(vec!["overhead_pct".into(), format!("{overhead_pct:.2}")]);
    t.row(vec!["gate_ok".into(), gate_ok.to_string()]);
    t.row(vec!["clean_reports".into(), reports.to_string()]);
    t.row(vec!["findings".into(), findings.to_string()]);
    for (name, class, n) in &rows {
        t.row(vec![format!("corpus/{name} [{class}]"), n.to_string()]);
    }
    t.row(vec!["corpus_flagged".into(), corpus_flagged.to_string()]);

    let _ = write_json_object(
        &ctx.out_path("BENCH_PR5.json"),
        &[
            ("workload", Json::Str("test1/2^13".into())),
            ("frames", Json::Int(frames as u64)),
            ("workers", Json::Int(workers as u64)),
            ("baseline_fps", Json::f3(baseline_fps)),
            ("attached_fps", Json::f3(attached_fps)),
            ("overhead_pct", Json::f3(overhead_pct)),
            ("gate_ok", Json::Bool(gate_ok)),
            ("clean_reports", Json::Int(reports as u64)),
            ("findings", Json::Int(findings as u64)),
            ("corpus_kernels", Json::Int(rows.len() as u64)),
            ("corpus_flagged", Json::Bool(corpus_flagged)),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_study_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_sanitize_bench");
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            workers: Some(2),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 7 + 9, "six summary rows plus nine corpus rows");

        let json = std::fs::read_to_string(dir.join("BENCH_PR5.json")).unwrap();
        for key in ["\"findings\": 0", "\"corpus_flagged\": true", "gate_ok"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_rows_all_flag_with_single_worker() {
        let rows = run_corpus(1);
        assert_eq!(rows.len(), 9);
        for (name, class, n) in rows {
            assert!(n > 0, "corpus kernel {name} produced no {class} finding");
        }
    }
}
