//! Fig. 2 — "a segment of simulated star image (1024*1024) with 2252 stars
//! projected": renders the scene and writes a BMP next to the CSVs.

use starfield::FieldGenerator;
use starimage::io::bmp::write_bmp;
use starimage::{stats, GrayMap};
use starsim_core::{ParallelSimulator, Simulator};

use super::format::Table;
use super::Context;

/// The star count of the paper's Fig. 2.
pub const FIG2_STARS: usize = 2252;

/// Renders the Fig. 2 scene; returns a one-row summary table.
pub fn run(ctx: &Context) -> Table {
    let size = if ctx.quick { 256 } else { 1024 };
    let stars = if ctx.quick {
        FIG2_STARS / 16
    } else {
        FIG2_STARS
    };
    let cat = FieldGenerator::new(size, size).generate(stars, ctx.seed);
    let config = ctx.sim_config(size, size, 10);
    let report = ParallelSimulator::new()
        .simulate(&cat, &config)
        .expect("fig2 render");

    let path = ctx.out_path("fig2.bmp");
    let mut file = std::fs::File::create(&path).expect("create fig2.bmp");
    // Gamma lifts the faint wings so the blur effect is visible, as in the
    // paper's reproduction of the image.
    write_bmp(
        &mut file,
        &report.image,
        GrayMap::with_gamma(report_white(&report), 2.2),
    )
    .expect("write fig2.bmp");

    let s = stats(&report.image);
    let mut t = Table::new(vec!["stars", "image", "lit_pixels", "peak", "file"]);
    t.row(vec![
        stars.to_string(),
        format!("{size}x{size}"),
        s.lit_pixels.to_string(),
        format!("{:.3}", s.max),
        path.display().to_string(),
    ]);
    t
}

fn report_white(report: &starsim_core::SimulationReport) -> f32 {
    let max = stats(&report.image).max;
    if max > 0.0 {
        max
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_saves() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_fig2"),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 1);
        assert!(ctx.out_path("fig2.bmp").exists());
    }
}
