//! Host-side executor comparison: reference per-thread interpretation vs
//! the block-batched fast path (`gpusim::ExecMode`).
//!
//! Both executors produce identical counters and modeled GPU times — that
//! is covered by `tests/exec_modes.rs` — so the only thing to measure here
//! is **host wall-clock**: how long the virtual GPU takes to *run* the
//! simulation on this machine. The headline number (2^13 stars, ROI 10,
//! 1024×1024 — the paper's test-1 shape) is written to `BENCH_PR1.json`.

use std::time::Instant;

use starfield::workload;
use starsim_core::{ExecMode, ParallelSimulator, Simulator};

use super::format::{speedup, write_json_object, Json, Table};
use super::Context;

/// The headline workload: 2^13 stars. Always measured, even under
/// `--quick`, so `BENCH_PR1.json` is comparable across runs.
const HEADLINE_EXPONENT: u32 = 13;

/// Wall-clock seconds to simulate `w` with the given executor, best of
/// `reps` (the virtual GPU is deterministic; repetitions only shave
/// scheduler noise).
fn measure(w: &workload::Workload, ctx: &Context, mode: ExecMode, reps: usize) -> f64 {
    let mut config = ctx.sim_config(w.image_size, w.image_size, w.roi_side);
    config.exec_mode = mode;
    let sim = ParallelSimulator::new();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let report = sim.simulate(&w.catalog, &config).expect("simulate");
        let elapsed = start.elapsed().as_secs_f64();
        // Wall time from the report would also do; timing here keeps the
        // two modes measured through the exact same code path.
        assert_eq!(report.stars, w.star_count());
        best = best.min(elapsed);
    }
    best
}

/// Runs the comparison sweep and writes `executor.csv` plus the
/// `BENCH_PR1.json` headline artefact.
pub fn run(ctx: &Context) -> Table {
    let exponents: &[u32] = if ctx.quick {
        &[HEADLINE_EXPONENT]
    } else {
        &[13, 14, 15, 16]
    };
    let mut t = Table::new(vec!["stars", "reference_s", "batched_s", "speedup"]);
    let mut headline: Option<(f64, f64)> = None;
    for &exponent in exponents {
        eprintln!("executor: 2^{exponent} stars ...");
        let w = workload::test1(exponent, ctx.seed);
        let reference_s = measure(&w, ctx, ExecMode::Reference, 1);
        let batched_s = measure(&w, ctx, ExecMode::Batched, 3);
        if exponent == HEADLINE_EXPONENT {
            headline = Some((reference_s, batched_s));
        }
        t.row(vec![
            format!("2^{exponent}"),
            format!("{reference_s:.3}"),
            format!("{batched_s:.3}"),
            speedup(reference_s / batched_s),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("executor.csv"));

    let (reference_s, batched_s) = headline.expect("headline exponent always measured");
    let _ = write_json_object(
        &ctx.out_path("BENCH_PR1.json"),
        &[
            ("exec_reference_s", Json::f6(reference_s)),
            ("exec_batched_s", Json::f6(batched_s)),
            ("speedup", Json::f3(reference_s / batched_s)),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_study_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_executor");
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 1);
        let json = std::fs::read_to_string(dir.join("BENCH_PR1.json")).unwrap();
        for key in ["exec_reference_s", "exec_batched_s", "speedup"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(dir.join("executor.csv").exists());
    }
}
