//! Stream-pipelining study: how much of the non-kernel transmission
//! overhead (paper Fig. 12/16) CUDA streams would hide.

use starfield::workload;
use starsim_core::{streams, ParallelSimulator, Simulator};

use super::format::{ms, Table};
use super::Context;

/// Runs the study at the top of test 1 where transfers matter most.
pub fn run(ctx: &Context) -> Table {
    let exponent = if ctx.quick { 12 } else { 16 };
    let w = workload::test1(exponent, ctx.seed);
    let config = ctx.sim_config(w.image_size, w.image_size, w.roi_side);
    eprintln!("streams: 2^{exponent} stars ...");
    let report = ParallelSimulator::new()
        .simulate(&w.catalog, &config)
        .expect("parallel");

    let mut t = Table::new(vec!["streams", "app_ms", "saved_ms", "saved_pct"]);
    for n in [1usize, 2, 4, 8, 16] {
        let e = streams::streamed_estimate(&report, n);
        t.row(vec![
            n.to_string(),
            ms(e.app_time_s),
            ms(e.saved_s),
            format!("{:.1}", e.saved_s / report.app_time_s * 100.0),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("streams.csv"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_study_runs_quick() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_streams"),
            ..Default::default()
        };
        assert_eq!(run(&ctx).len(), 5);
    }
}
