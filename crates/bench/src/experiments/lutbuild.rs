//! Lookup-table build placement (paper §IV-D): CPU vs GPU construction
//! across table sizes. See `starsim_core::lut_build`.

use starsim_core::lut_build;

use super::format::{ms, Table};
use super::Context;

/// Runs the comparison across magnitude-bin counts.
pub fn run(ctx: &Context) -> Table {
    let bin_counts: &[usize] = if ctx.quick {
        &[16, 128]
    } else {
        &[16, 128, 1024, 4096]
    };
    let mut t = Table::new(vec![
        "mag_bins",
        "entries",
        "cpu_build_ms",
        "gpu_build_ms",
        "winner",
    ]);
    for &bins in bin_counts {
        eprintln!("lutbuild: {bins} bins ...");
        let mut config = ctx.sim_config(1024, 1024, 10);
        config.lut_mag_bins = bins;
        let (cmp, _) = lut_build::compare_builds(&config).expect("comparison");
        t.row(vec![
            bins.to_string(),
            cmp.entries.to_string(),
            ms(cmp.cpu_build_s),
            ms(cmp.gpu_build_s),
            if cmp.cpu_wins() { "cpu" } else { "gpu" }.to_string(),
        ]);
    }
    let _ = t.write_csv(&ctx.out_path("lutbuild.csv"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lutbuild_study_runs_quick() {
        let ctx = Context {
            quick: true,
            out_dir: std::env::temp_dir().join("starsim_lutbuild"),
            ..Default::default()
        };
        assert_eq!(run(&ctx).len(), 2);
    }
}
