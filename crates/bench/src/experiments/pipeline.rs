//! Frame-pipelined scheduler benchmark: the double-buffered producer /
//! consumer frame loop ([`FrameSequencer::run_frames_pipelined`]) against
//! the sequential frame loop, with the pre-PR-7 executor scheduling as the
//! baseline.
//!
//! Three legs at the headline shape (2^13 stars dense in a 10° FOV,
//! ROI 10, 1024×1024 — the paper's test-1 scale as a frame stream):
//!
//! * `sequential_legacy` — [`FrameSequencer::run_frames`] on a device with
//!   the legacy per-worker scheduler (the gate baseline);
//! * `sequential` — the same loop on the current scheduler (also the
//!   bit-identity reference);
//! * `pipelined` — [`FrameSequencer::run_frames_pipelined`], star gen +
//!   upload overlapped with kernel + download.
//!
//! `BENCH_PR7.json` carries the gates:
//!
//! * `speedup_ok` — pipelined FPS ≥ 1.3× the legacy sequential loop;
//! * `p99_ok` — pipelined p99 frame latency ≤ 39 ms;
//! * `bit_identical` — pipelined images, counters and modeled times are
//!   bit-equal to the sequential loop across a seed × workers × backend
//!   sweep (the invariant `tests/pipeline.rs` checks exhaustively).

use std::sync::Arc;

use gpusim::{DeviceSpec, KernelBackend, VirtualGpu};
use starfield::dynamics::AttitudeDynamics;
use starfield::{Attitude, Camera, SkyCatalog, SkyStar};
use starsim_core::{CancelToken, FrameSequencer, LutCache, SimConfig, ThroughputReport};

use super::format::{speedup, write_json_object, Json, Table};
use super::Context;

/// The headline workload: 2^13 stars. Always measured, even under
/// `--quick`, so `BENCH_PR7.json` is comparable across runs.
const HEADLINE_EXPONENT: u32 = 13;

/// The throughput gate: the pipelined loop must beat the legacy-scheduled
/// sequential loop by at least this factor.
const SPEEDUP_GATE: f64 = 1.3;

/// The tail-latency gate, milliseconds.
const P99_GATE_MS: f64 = 39.0;

/// A sky with exactly `stars` stars spread over the central ~84% of a
/// `fov_rad` field of view around (ra 0, dec 0): every star stays on the
/// sensor for the whole burst. A golden-ratio lattice (no RNG dependency)
/// keeps the layout deterministic per seed and low-discrepancy — dense,
/// even coverage like the paper's large-scale fields.
pub(super) fn dense_sky(stars: usize, fov_rad: f64, seed: u64) -> SkyCatalog {
    const PHI1: f64 = 0.754_877_666_246_692_8; // plastic-number lattice
    const PHI2: f64 = 0.569_840_290_998_053_2;
    let offset = (seed % 4096) as f64 * PHI2;
    (0..stars)
        .map(|i| {
            let t = i as f64 + offset;
            let u = (t * PHI1).fract();
            let v = (t * PHI2).fract();
            let ra = (u - 0.5) * 0.84 * fov_rad;
            let dec = (v - 0.5) * 0.84 * fov_rad;
            let mag = 6.0 * ((t * PHI1 * 7.0).fract() as f32);
            SkyStar::new(ra, dec, mag)
        })
        .collect()
}

/// A sequencer over the dense sky: boresight on the field centre, a drift
/// slow enough to keep the point PSF (and every star in view) while still
/// changing the field every frame.
pub(super) fn sequencer(
    gpu: VirtualGpu,
    config: SimConfig,
    stars: usize,
    seed: u64,
) -> Result<FrameSequencer, starsim_core::SimError> {
    let fov_rad = 10.0f64.to_radians();
    let camera = Camera::from_fov(fov_rad, config.width, config.height).expect("valid camera");
    FrameSequencer::on_device(
        gpu,
        dense_sky(stars, fov_rad, seed),
        camera,
        AttitudeDynamics::new(Attitude::pointing(0.0, 0.0, 0.0), [5e-4, 0.0, 0.0]),
        config,
        0.05,
        0.1,
    )
}

/// One leg's sustained numbers plus the report of its best pass.
struct Sustained {
    fps: f64,
    p50_ms: f64,
    p99_ms: f64,
    report: ThroughputReport,
}

/// Runs `reps` bursts of `frames` and keeps the fastest pass (the one
/// least disturbed by unrelated host load — the same best-of-reps policy
/// as the `executor` and `throughput` experiments). One untimed warmup
/// burst populates the pool, the LUT, and the pipeline's device images.
fn measure(seq: &mut FrameSequencer, frames: usize, reps: usize, pipelined: bool) -> Sustained {
    let run = |seq: &mut FrameSequencer| -> ThroughputReport {
        if pipelined {
            seq.run_frames_pipelined(frames).expect("pipelined burst")
        } else {
            seq.run_frames(frames).expect("sequential burst")
        }
    };
    let _ = run(seq); // warmup
    let mut best: Option<Sustained> = None;
    for _ in 0..reps.max(1) {
        let report = run(seq);
        let pass = Sustained {
            fps: report.fps(),
            p50_ms: report.p50_ms,
            p99_ms: report.p99_ms,
            report,
        };
        if best.as_ref().is_none_or(|b| pass.fps > b.fps) {
            best = Some(pass);
        }
    }
    best.expect("reps >= 1")
}

/// FNV-1a over one burst's identity-relevant state: image bits, counters
/// and modeled-time bits per frame.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Digest of `frames` sequential frames (the reference schedule).
fn sequential_digest(seq: &mut FrameSequencer, frames: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for _ in 0..frames {
        let f = seq.next_frame().expect("frame");
        for p in f.report.image.data() {
            fnv1a(&mut h, &p.to_bits().to_le_bytes());
        }
        fnv1a(
            &mut h,
            format!("{:?}", f.report.profile.kernels[0].counters).as_bytes(),
        );
        fnv1a(&mut h, &f.report.app_time_s.to_bits().to_le_bytes());
    }
    h
}

/// Digest of `frames` pipelined frames, taken in flight.
fn pipelined_digest(seq: &mut FrameSequencer, frames: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let token = CancelToken::new();
    seq.run_frames_pipelined_observed(frames, &token, |frame| {
        for p in frame.pixels {
            fnv1a(&mut h, &p.to_bits().to_le_bytes());
        }
        fnv1a(&mut h, format!("{:?}", frame.timing.counters).as_bytes());
        fnv1a(&mut h, &frame.timing.app_time_s.to_bits().to_le_bytes());
    })
    .expect("pipelined burst");
    h
}

/// Sweeps seed × workers × backend at a small shape and reports whether
/// every configuration's pipelined digest matches the sequential one.
fn identity_sweep(ctx: &Context, seeds: &[u64]) -> (bool, usize) {
    let mut all_equal = true;
    let mut configs = 0;
    for &seed in seeds {
        for &workers in &[2usize, 15] {
            for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                let mut config = ctx.sim_config(256, 256, 10);
                config.workers = Some(workers);
                config.backend = backend;
                let mut reference = sequencer(VirtualGpu::gtx480(), config.clone(), 1024, seed)
                    .expect("reference sequencer");
                let mut pipelined =
                    sequencer(VirtualGpu::gtx480(), config, 1024, seed).expect("sequencer");
                let expected = sequential_digest(&mut reference, 3);
                let got = pipelined_digest(&mut pipelined, 3);
                if expected != got {
                    eprintln!(
                        "pipeline: WARNING: identity broken at seed {seed}, \
                         {workers} workers, {backend:?}"
                    );
                    all_equal = false;
                }
                configs += 1;
            }
        }
    }
    (all_equal, configs)
}

/// Runs the three-leg comparison and writes `pipeline.csv` plus the
/// `BENCH_PR7.json` headline artefact.
pub fn run(ctx: &Context) -> Table {
    let frames = if ctx.quick { 6 } else { 24 };
    let reps = if ctx.quick { 2 } else { 3 };
    let stars = 1usize << HEADLINE_EXPONENT;
    // One worker per virtual SM — the deployed shape — unless --workers
    // overrides it.
    let workers = ctx
        .workers
        .unwrap_or(DeviceSpec::gtx480().sm_count as usize);
    let mut config = ctx.sim_config(1024, 1024, 10);
    config.workers = Some(workers);
    let cache = Arc::new(LutCache::new());

    let mut t = Table::new(vec!["config", "fps", "p50_ms", "p99_ms"]);
    let mut measured = Vec::new();
    for (name, legacy, pipelined) in [
        ("sequential_legacy", true, false),
        ("sequential", false, false),
        ("pipelined", false, true),
    ] {
        eprintln!("pipeline: {name} ({frames} frames, {workers} workers) ...");
        let gpu = if legacy {
            VirtualGpu::gtx480().with_legacy_scheduler()
        } else {
            VirtualGpu::gtx480()
        };
        let mut seq = sequencer(gpu, config.clone(), stars, ctx.seed)
            .expect("sequencer")
            .with_lut_cache(Arc::clone(&cache));
        let s = measure(&mut seq, frames, reps, pipelined);
        t.row(vec![
            name.to_string(),
            format!("{:.2}", s.fps),
            format!("{:.3}", s.p50_ms),
            format!("{:.3}", s.p99_ms),
        ]);
        measured.push((name, s));
    }
    let _ = t.write_csv(&ctx.out_path("pipeline.csv"));

    let by_name = |name: &str| -> &Sustained {
        &measured
            .iter()
            .find(|(n, _)| *n == name)
            .expect("all legs measured")
            .1
    };
    let legacy = by_name("sequential_legacy");
    let sequential = by_name("sequential");
    let pipelined = by_name("pipelined");
    let overlap = pipelined
        .report
        .overlap
        .expect("pipelined bursts report overlap");
    let lut = pipelined.report.lut_cache.unwrap_or_default();

    let seeds: &[u64] = if ctx.quick {
        &[ctx.seed]
    } else {
        &[ctx.seed, ctx.seed + 4]
    };
    eprintln!("pipeline: bit-identity sweep ({} seeds) ...", seeds.len());
    let (bit_identical, identity_configs) = identity_sweep(ctx, seeds);

    let ratio = pipelined.fps / legacy.fps;
    let speedup_ok = ratio >= SPEEDUP_GATE;
    let p99_ok = pipelined.p99_ms <= P99_GATE_MS;
    let gate_ok = speedup_ok && p99_ok && bit_identical;
    if !gate_ok {
        eprintln!(
            "pipeline: WARNING: gate failed — speedup {ratio:.2}x (need {SPEEDUP_GATE}x), \
             p99 {:.2} ms (need <= {P99_GATE_MS}), bit_identical {bit_identical}",
            pipelined.p99_ms
        );
    }
    let _ = write_json_object(
        &ctx.out_path("BENCH_PR7.json"),
        &[
            (
                "workload",
                Json::Str(format!("dense/2^{HEADLINE_EXPONENT} @1024")),
            ),
            ("frames", Json::Int(frames as u64)),
            ("workers", Json::Int(workers as u64)),
            ("sequential_legacy_fps", Json::f3(legacy.fps)),
            ("sequential_legacy_p99_ms", Json::f3(legacy.p99_ms)),
            ("sequential_fps", Json::f3(sequential.fps)),
            ("sequential_p99_ms", Json::f3(sequential.p99_ms)),
            ("pipelined_fps", Json::f3(pipelined.fps)),
            ("pipelined_p50_ms", Json::f3(pipelined.p50_ms)),
            ("pipelined_p99_ms", Json::f3(pipelined.p99_ms)),
            ("speedup", Json::f3(ratio)),
            ("speedup_gate", Json::f3(SPEEDUP_GATE)),
            ("p99_gate_ms", Json::f3(P99_GATE_MS)),
            ("overlap_modeled_saved_s", Json::f6(overlap.modeled.saved_s)),
            (
                "overlap_modeled_efficiency",
                Json::f3(overlap.modeled_efficiency),
            ),
            (
                "overlap_measured_efficiency",
                Json::f3(overlap.measured_efficiency),
            ),
            ("lut_prefetch_s", Json::f6(pipelined.report.lut_prefetch_s)),
            ("lut_hits", Json::Int(lut.hits)),
            ("lut_misses", Json::Int(lut.misses)),
            ("lut_evictions", Json::Int(lut.evictions)),
            ("identity_configs", Json::Int(identity_configs as u64)),
            ("bit_identical", Json::Bool(bit_identical)),
            ("speedup_ok", Json::Bool(speedup_ok)),
            ("p99_ok", Json::Bool(p99_ok)),
            ("gate_ok", Json::Bool(gate_ok)),
        ],
    );

    t.row(vec![
        "speedup (pipelined / sequential_legacy)".to_string(),
        speedup(ratio),
        String::new(),
        String::new(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_study_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_pipeline_bench");
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            // Keep the smoke cheap: the full SM-wide fan-out is the real
            // bench run's job.
            workers: Some(2),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 4, "three legs plus the speedup row");
        let json = std::fs::read_to_string(dir.join("BENCH_PR7.json")).unwrap();
        for key in [
            "sequential_legacy_fps",
            "sequential_fps",
            "pipelined_fps",
            "pipelined_p50_ms",
            "pipelined_p99_ms",
            "speedup",
            "overlap_modeled_efficiency",
            "lut_prefetch_s",
            "lut_misses",
            "bit_identical",
            "speedup_ok",
            "p99_ok",
            "gate_ok",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The correctness gate must hold even in a debug-profile smoke run
        // (the speed gates are only meaningful under --release and are
        // asserted by scripts/ci.sh instead).
        assert!(json.contains("\"bit_identical\": true"), "{json}");
        assert!(dir.join("pipeline.csv").exists());
    }

    #[test]
    fn dense_sky_is_deterministic_and_fills_the_fov() {
        let fov = 10.0f64.to_radians();
        let a = dense_sky(512, fov, 7);
        let b = dense_sky(512, fov, 7);
        let c = dense_sky(512, fov, 8);
        assert_eq!(a.len(), 512);
        assert_eq!(a.stars().len(), b.stars().len());
        for (x, y) in a.stars().iter().zip(b.stars()) {
            assert_eq!(x.ra.to_bits(), y.ra.to_bits());
            assert_eq!(x.dec.to_bits(), y.dec.to_bits());
        }
        assert!(
            a.stars()
                .iter()
                .zip(c.stars())
                .any(|(x, y)| x.ra.to_bits() != y.ra.to_bits()),
            "different seeds shift the lattice"
        );
        for s in a.stars() {
            assert!(s.ra.abs() <= 0.42 * fov + 1e-12);
            assert!(s.dec.abs() <= 0.42 * fov + 1e-12);
            assert!((0.0..=6.0).contains(&s.mag.0));
        }
    }
}
