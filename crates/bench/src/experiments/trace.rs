//! Telemetry benchmark: the cost of the tracing layer and a Perfetto
//! trace export.
//!
//! Two questions, answered in one run and recorded in `BENCH_PR4.json`:
//!
//! 1. **What does observability cost when it is on?** A session with a
//!    full [`Telemetry`] sink attached (spans on every pipeline stage,
//!    lane-event rings recording, launch traces draining) must track the
//!    telemetry-off baseline of the same workload within noise (the PR
//!    gate is ≤ 3%, same shape and method as the chaos gate).
//! 2. **Is the exported trace real?** The Chrome trace-event JSON written
//!    by the run is parsed back (with the in-tree parser), and the file
//!    must contain nested host spans for at least six distinct pipeline
//!    stages plus per-lane launch instants from the worker pool's rings.

use std::path::PathBuf;
use std::time::Instant;

use gpusim::{DeviceSpec, VirtualGpu};
use starfield::catalog::StarCatalog;
use starfield::FieldGenerator;
use starsim_core::telemetry::{parse_json, write_chrome_trace, JsonValue};
use starsim_core::{AdaptiveSession, LutCache, Telemetry};

use super::format::{write_json_object, Json, Table};
use super::Context;

/// Headline shape: the paper's test-1 workload at 2^13 stars (the same
/// shape the chaos and throughput gates measure).
const IMAGE_SIZE: usize = 1024;
const ROI_SIDE: usize = 10;
const STAR_COUNT: usize = 1 << 13;

/// The acceptance floor on distinct host pipeline stages in the trace.
const MIN_STAGES: usize = 6;

fn catalog(seed: u64) -> StarCatalog {
    FieldGenerator::new(IMAGE_SIZE, IMAGE_SIZE).generate(STAR_COUNT, seed)
}

/// A pooled+reuse session at the headline shape, with or without a sink.
fn session(
    ctx: &Context,
    workers: usize,
    telemetry: Option<&std::sync::Arc<Telemetry>>,
) -> AdaptiveSession {
    let mut config = ctx.sim_config(IMAGE_SIZE, IMAGE_SIZE, ROI_SIDE);
    config.workers = Some(workers);
    match telemetry {
        None => AdaptiveSession::on(VirtualGpu::gtx480(), config).expect("session"),
        Some(t) => {
            let cache = LutCache::new();
            AdaptiveSession::on_telemetry(
                VirtualGpu::gtx480(),
                config,
                Some(&cache),
                std::sync::Arc::clone(t),
            )
            .expect("telemetry session")
        }
    }
}

/// Best-of-`reps` sustained fps over `frames` identical frames. With a
/// sink, every frame is additionally wrapped in a `frame` span — span
/// recording is part of the measured cost.
fn sustained_fps(
    session: &AdaptiveSession,
    cat: &StarCatalog,
    frames: usize,
    reps: usize,
    telemetry: Option<&std::sync::Arc<Telemetry>>,
) -> f64 {
    let mut host = Vec::new();
    session.render_into(cat, &mut host).expect("warmup");
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..frames {
            let _frame = telemetry.map(|t| t.span("frame"));
            session.render_into(cat, &mut host).expect("render");
        }
        let fps = frames as f64 / start.elapsed().as_secs_f64();
        best = best.max(fps);
    }
    best
}

/// Shape facts extracted from the parsed trace file.
struct TraceShape {
    valid: bool,
    host_stages: usize,
    nested_spans: usize,
    lane_instants: usize,
    lane_launches: usize,
}

fn inspect_trace(text: &str) -> TraceShape {
    let mut shape = TraceShape {
        valid: false,
        host_stages: 0,
        nested_spans: 0,
        lane_instants: 0,
        lane_launches: 0,
    };
    let Ok(doc) = parse_json(text) else {
        return shape;
    };
    let Some(events) = doc.get("traceEvents").and_then(JsonValue::as_array) else {
        return shape;
    };
    shape.valid = true;
    let mut stages = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        let pid = e.get("pid").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
        if ph == "X" && pid == 1.0 {
            stages.insert(name.to_string());
            let parent = e
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            if parent != 0.0 {
                shape.nested_spans += 1;
            }
        }
        if ph == "i" {
            shape.lane_instants += 1;
            if name == "launch" {
                shape.lane_launches += 1;
            }
        }
    }
    shape.host_stages = stages.len();
    shape
}

/// Runs the overhead measurement and the trace export + parse-back
/// validation; writes the trace file and `BENCH_PR4.json`.
pub fn run(ctx: &Context) -> Table {
    let frames = if ctx.quick { 6 } else { 24 };
    let reps = if ctx.quick { 2 } else { 3 };
    let workers = ctx
        .workers
        .unwrap_or(DeviceSpec::gtx480().sm_count as usize);

    // 1. Telemetry-off vs telemetry-on throughput (the ≤3% gate).
    eprintln!("trace: baseline ({frames} frames, {workers} workers) ...");
    let cat = catalog(ctx.seed);
    let baseline_fps = sustained_fps(&session(ctx, workers, None), &cat, frames, reps, None);

    eprintln!("trace: telemetry-on ({frames} frames) ...");
    let telemetry = Telemetry::new();
    let observed = {
        // Star generation is a pipeline stage too: regenerate the catalog
        // under a span so the trace shows it (outside the timed loop, as
        // the frame loop reuses the catalog in both measured runs).
        let _gen = telemetry.span("star-gen");
        catalog(ctx.seed)
    };
    let traced_session = session(ctx, workers, Some(&telemetry));
    let telemetry_fps = sustained_fps(&traced_session, &observed, frames, reps, Some(&telemetry));
    let overhead_pct = (1.0 - telemetry_fps / baseline_fps) * 100.0;
    let gate_ok = overhead_pct <= 3.0;
    if !gate_ok {
        eprintln!("trace: WARNING: telemetry overhead {overhead_pct:.2}% exceeds the 3% gate");
    }

    // 2. Export the trace and parse it back.
    let trace_path: PathBuf = ctx
        .trace_path
        .clone()
        .unwrap_or_else(|| ctx.out_path("trace.json"));
    write_chrome_trace(&telemetry, &trace_path).expect("write trace");
    let text = std::fs::read_to_string(&trace_path).expect("read trace back");
    let shape = inspect_trace(&text);
    let stages_ok = shape.valid && shape.host_stages >= MIN_STAGES && shape.nested_spans > 0;
    eprintln!(
        "trace: wrote {} ({} bytes, {} host stages, {} lane events)",
        trace_path.display(),
        text.len(),
        shape.host_stages,
        shape.lane_instants
    );

    let ft = telemetry.frame_telemetry();
    if ctx.metrics {
        print!("{}", ft.render());
    }

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["baseline_fps".into(), format!("{baseline_fps:.2}")]);
    t.row(vec!["telemetry_fps".into(), format!("{telemetry_fps:.2}")]);
    t.row(vec!["overhead_pct".into(), format!("{overhead_pct:.2}")]);
    t.row(vec!["gate_ok".into(), gate_ok.to_string()]);
    t.row(vec!["spans".into(), ft.spans_recorded.to_string()]);
    t.row(vec!["host_stages".into(), shape.host_stages.to_string()]);
    t.row(vec!["stages_ok".into(), stages_ok.to_string()]);
    t.row(vec!["gpu_launches".into(), ft.gpu_launches.to_string()]);
    t.row(vec!["lane_events".into(), shape.lane_instants.to_string()]);
    t.row(vec![
        "lane_launches".into(),
        shape.lane_launches.to_string(),
    ]);
    t.row(vec!["trace_valid".into(), shape.valid.to_string()]);

    let _ = write_json_object(
        &ctx.out_path("BENCH_PR4.json"),
        &[
            ("workload", Json::Str("test1/2^13".into())),
            ("frames", Json::Int(frames as u64)),
            ("workers", Json::Int(workers as u64)),
            ("baseline_fps", Json::f3(baseline_fps)),
            ("telemetry_fps", Json::f3(telemetry_fps)),
            ("overhead_pct", Json::f3(overhead_pct)),
            ("gate_ok", Json::Bool(gate_ok)),
            ("spans", Json::Int(ft.spans_recorded as u64)),
            ("host_stages", Json::Int(shape.host_stages as u64)),
            ("stages_ok", Json::Bool(stages_ok)),
            ("gpu_launches", Json::Int(ft.gpu_launches as u64)),
            ("lane_events", Json::Int(shape.lane_instants as u64)),
            ("lane_launches", Json::Int(shape.lane_launches as u64)),
            ("nested_spans", Json::Int(shape.nested_spans as u64)),
            ("trace_valid", Json::Bool(shape.valid)),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_study_runs_quick_and_writes_artefacts() {
        let dir = std::env::temp_dir().join("starsim_trace_bench");
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Context {
            quick: true,
            out_dir: dir.clone(),
            workers: Some(2),
            trace_path: Some(dir.join("trace.json")),
            ..Default::default()
        };
        let t = run(&ctx);
        assert_eq!(t.len(), 11, "eleven metric rows");

        let json = std::fs::read_to_string(dir.join("BENCH_PR4.json")).unwrap();
        for key in [
            "baseline_fps",
            "telemetry_fps",
            "overhead_pct",
            "\"stages_ok\": true",
            "\"trace_valid\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }

        let text = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        let shape = inspect_trace(&text);
        assert!(shape.valid);
        assert!(
            shape.host_stages >= MIN_STAGES,
            "only {} host stages",
            shape.host_stages
        );
        assert!(shape.nested_spans > 0, "spans must nest");
        assert!(shape.lane_launches > 0, "lane launch instants missing");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
