//! Property-based tests of the PSF substrate (module kept separate from
//! the unit tests for readability).

#![cfg(test)]

use proptest::prelude::*;

use crate::gaussian::GaussianPsf;
use crate::integrated::{IntegratedGaussianPsf, PsfModel};
use crate::lut::{LookupTable, LutParams};
use crate::roi::Roi;
use crate::smear::SmearedGaussianPsf;

proptest! {
    /// The Gaussian PSF is positive, bounded by its peak, and radially
    /// monotone for any sigma and offset.
    #[test]
    fn gaussian_bounded_and_monotone(
        sigma in 0.2f32..10.0,
        dx in -30.0f32..30.0,
        dy in -30.0f32..30.0,
    ) {
        let psf = GaussianPsf::new(sigma);
        let v = psf.eval(dx, dy, 0.0, 0.0);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= psf.peak() * (1.0 + 1e-6));
        // Moving radially outward cannot increase the value.
        let farther = psf.eval(dx * 1.5, dy * 1.5, 0.0, 0.0);
        prop_assert!(farther <= v * (1.0 + 1e-6));
    }

    /// Encircled energy is a CDF: monotone from 0 toward 1.
    #[test]
    fn encircled_energy_is_cdf(sigma in 0.2f32..10.0, r in 0.0f32..100.0) {
        let psf = GaussianPsf::new(sigma);
        let e = psf.encircled_energy(r);
        prop_assert!((0.0..=1.0).contains(&e));
        prop_assert!(psf.encircled_energy(r + 1.0) >= e);
    }

    /// The pixel-integrated PSF never exceeds 1 per pixel and sums to ≤ 1
    /// over any finite region.
    #[test]
    fn integrated_psf_is_a_measure(
        sigma in 0.2f32..5.0,
        cx in -0.5f32..0.5,
        cy in -0.5f32..0.5,
    ) {
        let psf = IntegratedGaussianPsf::new(sigma);
        let mut sum = 0.0f64;
        for y in -15..=15 {
            for x in -15..=15 {
                let v = psf.eval(x as f32, y as f32, cx, cy);
                prop_assert!((0.0..=1.0).contains(&v));
                sum += v as f64;
            }
        }
        prop_assert!(sum <= 1.0 + 1e-4);
    }

    /// ROI clipping never yields pixels outside the image, and the clipped
    /// area never exceeds the full ROI area.
    #[test]
    fn roi_clip_invariants(
        side in 1usize..33,
        x in -100.0f32..1100.0,
        y in -100.0f32..1100.0,
    ) {
        let roi = Roi::new(side);
        if let Some(clip) = roi.clip(x, y, 1024, 1024) {
            prop_assert!(clip.area() >= 1);
            prop_assert!(clip.area() <= roi.area());
            for (px, py, i, j) in clip.pixels() {
                prop_assert!(px < 1024 && py < 1024);
                prop_assert!(i < side && j < side);
            }
        }
    }

    /// An interior star's clip is exactly the full ROI.
    #[test]
    fn interior_clip_is_full(side in 1usize..33) {
        let roi = Roi::new(side);
        let clip = roi.clip(512.0, 512.0, 1024, 1024).unwrap();
        prop_assert_eq!(clip.area(), roi.area());
    }

    /// LUT fetches agree with direct evaluation at bin centres for random
    /// geometry parameters.
    #[test]
    fn lut_matches_direct_at_bin_centres(
        sigma in 0.5f32..5.0,
        side in 2usize..16,
        bins in 2usize..64,
        probe_bin in 0usize..64,
    ) {
        let probe_bin = probe_bin % bins;
        let roi = Roi::new(side);
        let psf = PsfModel::point(sigma);
        let lut = LookupTable::build(
            &psf,
            1000.0,
            roi,
            LutParams { mag_bins: bins, phases: 1, mag_range: (0.0, 15.0) },
            None,
        ).unwrap();
        let m = lut.brightness().bin_centre(probe_bin);
        let star = starfield::Star::new(100.0, 100.0, m);
        let g = star.brightness(1000.0);
        let margin = roi.margin() as f32;
        for j in 0..side {
            for i in 0..side {
                let direct = g * psf.eval(i as f32 - margin, j as f32 - margin, 0.0, 0.0);
                let fetched = lut.fetch(&star, i, j);
                prop_assert!(
                    (direct - fetched).abs() <= 1e-5 * direct.max(1e-10),
                    "({i},{j}): {direct} vs {fetched}"
                );
            }
        }
    }

    /// The smeared PSF conserves energy for any track. (σ ≥ 0.8: narrower
    /// point-sampled Gaussians alias on the integer grid by ~1%, a property
    /// of sampling, not of the smear.)
    #[test]
    fn smear_conserves_energy(
        sigma in 0.8f32..2.5,
        length in 0.0f32..10.0,
        angle in 0.0f32..6.28,
    ) {
        let psf = SmearedGaussianPsf::new(sigma, length, angle);
        let half = (4.0 * sigma + length) as i32 + 2;
        let mut sum = 0.0f64;
        for y in -half..=half {
            for x in -half..=half {
                sum += psf.eval(x as f32, y as f32, 0.0, 0.0) as f64;
            }
        }
        prop_assert!((sum - 1.0).abs() < 5e-3, "integral {sum}");
    }
}
