//! Property-style tests of the PSF substrate (module kept separate from
//! the unit tests for readability).
//!
//! Hand-rolled deterministic property loops (seeded `simrng`) instead of
//! `proptest`, so the workspace tests run with no registry access.

#![cfg(test)]

use simrng::Rng64;

use crate::gaussian::GaussianPsf;
use crate::integrated::{IntegratedGaussianPsf, PsfModel};
use crate::lut::{LookupTable, LutParams};
use crate::roi::Roi;
use crate::smear::SmearedGaussianPsf;

/// The Gaussian PSF is positive, bounded by its peak, and radially
/// monotone for any sigma and offset.
#[test]
fn gaussian_bounded_and_monotone() {
    let mut rng = Rng64::new(0x6A);
    for _ in 0..256 {
        let sigma = rng.range_f32(0.2, 10.0);
        let dx = rng.range_f32(-30.0, 30.0);
        let dy = rng.range_f32(-30.0, 30.0);
        let psf = GaussianPsf::new(sigma);
        let v = psf.eval(dx, dy, 0.0, 0.0);
        assert!(v >= 0.0);
        assert!(v <= psf.peak() * (1.0 + 1e-6));
        // Moving radially outward cannot increase the value.
        let farther = psf.eval(dx * 1.5, dy * 1.5, 0.0, 0.0);
        assert!(farther <= v * (1.0 + 1e-6));
    }
}

/// Encircled energy is a CDF: monotone from 0 toward 1.
#[test]
fn encircled_energy_is_cdf() {
    let mut rng = Rng64::new(0xE7);
    for _ in 0..256 {
        let sigma = rng.range_f32(0.2, 10.0);
        let r = rng.range_f32(0.0, 100.0);
        let psf = GaussianPsf::new(sigma);
        let e = psf.encircled_energy(r);
        assert!((0.0..=1.0).contains(&e));
        assert!(psf.encircled_energy(r + 1.0) >= e);
    }
}

/// The pixel-integrated PSF never exceeds 1 per pixel and sums to ≤ 1
/// over any finite region.
#[test]
fn integrated_psf_is_a_measure() {
    let mut rng = Rng64::new(0x17);
    for _ in 0..32 {
        let sigma = rng.range_f32(0.2, 5.0);
        let cx = rng.range_f32(-0.5, 0.5);
        let cy = rng.range_f32(-0.5, 0.5);
        let psf = IntegratedGaussianPsf::new(sigma);
        let mut sum = 0.0f64;
        for y in -15..=15 {
            for x in -15..=15 {
                let v = psf.eval(x as f32, y as f32, cx, cy);
                assert!((0.0..=1.0).contains(&v));
                sum += v as f64;
            }
        }
        assert!(sum <= 1.0 + 1e-4);
    }
}

/// ROI clipping never yields pixels outside the image, and the clipped
/// area never exceeds the full ROI area.
#[test]
fn roi_clip_invariants() {
    let mut rng = Rng64::new(0x401);
    for _ in 0..256 {
        let side = rng.range_usize(1, 33);
        let x = rng.range_f32(-100.0, 1100.0);
        let y = rng.range_f32(-100.0, 1100.0);
        let roi = Roi::new(side);
        if let Some(clip) = roi.clip(x, y, 1024, 1024) {
            assert!(clip.area() >= 1);
            assert!(clip.area() <= roi.area());
            for (px, py, i, j) in clip.pixels() {
                assert!(px < 1024 && py < 1024);
                assert!(i < side && j < side);
            }
        }
    }
}

/// An interior star's clip is exactly the full ROI.
#[test]
fn interior_clip_is_full() {
    for side in 1..33 {
        let roi = Roi::new(side);
        let clip = roi.clip(512.0, 512.0, 1024, 1024).unwrap();
        assert_eq!(clip.area(), roi.area());
    }
}

/// LUT fetches agree with direct evaluation at bin centres for random
/// geometry parameters.
#[test]
fn lut_matches_direct_at_bin_centres() {
    let mut rng = Rng64::new(0x107);
    for _ in 0..24 {
        let sigma = rng.range_f32(0.5, 5.0);
        let side = rng.range_usize(2, 16);
        let bins = rng.range_usize(2, 64);
        let probe_bin = rng.range_usize(0, 64) % bins;
        let roi = Roi::new(side);
        let psf = PsfModel::point(sigma);
        let lut = LookupTable::build(
            &psf,
            1000.0,
            roi,
            LutParams {
                mag_bins: bins,
                phases: 1,
                mag_range: (0.0, 15.0),
            },
            None,
        )
        .unwrap();
        let m = lut.brightness().bin_centre(probe_bin);
        let star = starfield::Star::new(100.0, 100.0, m);
        let g = star.brightness(1000.0);
        let margin = roi.margin() as f32;
        for j in 0..side {
            for i in 0..side {
                let direct = g * psf.eval(i as f32 - margin, j as f32 - margin, 0.0, 0.0);
                let fetched = lut.fetch(&star, i, j);
                assert!(
                    (direct - fetched).abs() <= 1e-5 * direct.max(1e-10),
                    "({i},{j}): {direct} vs {fetched}"
                );
            }
        }
    }
}

/// The smeared PSF conserves energy for any track. (σ ≥ 0.8: narrower
/// point-sampled Gaussians alias on the integer grid by ~1%, a property
/// of sampling, not of the smear.)
#[test]
fn smear_conserves_energy() {
    let mut rng = Rng64::new(0x53);
    for _ in 0..48 {
        let sigma = rng.range_f32(0.8, 2.5);
        let length = rng.range_f32(0.0, 10.0);
        let angle = rng.range_f32(0.0, std::f32::consts::TAU);
        let psf = SmearedGaussianPsf::new(sigma, length, angle);
        let half = (4.0 * sigma + length) as i32 + 2;
        let mut sum = 0.0f64;
        for y in -half..=half {
            for x in -half..=half {
                sum += psf.eval(x as f32, y as f32, 0.0, 0.0) as f64;
            }
        }
        assert!((sum - 1.0).abs() < 5e-3, "integral {sum}");
    }
}
