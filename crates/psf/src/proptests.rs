//! Property-style tests of the PSF substrate (module kept separate from
//! the unit tests for readability).
//!
//! Hand-rolled deterministic property loops (seeded `simrng`) instead of
//! `proptest`, so the workspace tests run with no registry access.

#![cfg(test)]

use simrng::Rng64;

use crate::gaussian::GaussianPsf;
use crate::integrated::{IntegratedGaussianPsf, PsfModel};
use crate::lanes;
use crate::lut::{LookupTable, LutParams};
use crate::roi::Roi;
use crate::smear::SmearedGaussianPsf;

/// The Gaussian PSF is positive, bounded by its peak, and radially
/// monotone for any sigma and offset.
#[test]
fn gaussian_bounded_and_monotone() {
    let mut rng = Rng64::new(0x6A);
    for _ in 0..256 {
        let sigma = rng.range_f32(0.2, 10.0);
        let dx = rng.range_f32(-30.0, 30.0);
        let dy = rng.range_f32(-30.0, 30.0);
        let psf = GaussianPsf::new(sigma);
        let v = psf.eval(dx, dy, 0.0, 0.0);
        assert!(v >= 0.0);
        assert!(v <= psf.peak() * (1.0 + 1e-6));
        // Moving radially outward cannot increase the value.
        let farther = psf.eval(dx * 1.5, dy * 1.5, 0.0, 0.0);
        assert!(farther <= v * (1.0 + 1e-6));
    }
}

/// Encircled energy is a CDF: monotone from 0 toward 1.
#[test]
fn encircled_energy_is_cdf() {
    let mut rng = Rng64::new(0xE7);
    for _ in 0..256 {
        let sigma = rng.range_f32(0.2, 10.0);
        let r = rng.range_f32(0.0, 100.0);
        let psf = GaussianPsf::new(sigma);
        let e = psf.encircled_energy(r);
        assert!((0.0..=1.0).contains(&e));
        assert!(psf.encircled_energy(r + 1.0) >= e);
    }
}

/// The pixel-integrated PSF never exceeds 1 per pixel and sums to ≤ 1
/// over any finite region.
#[test]
fn integrated_psf_is_a_measure() {
    let mut rng = Rng64::new(0x17);
    for _ in 0..32 {
        let sigma = rng.range_f32(0.2, 5.0);
        let cx = rng.range_f32(-0.5, 0.5);
        let cy = rng.range_f32(-0.5, 0.5);
        let psf = IntegratedGaussianPsf::new(sigma);
        let mut sum = 0.0f64;
        for y in -15..=15 {
            for x in -15..=15 {
                let v = psf.eval(x as f32, y as f32, cx, cy);
                assert!((0.0..=1.0).contains(&v));
                sum += v as f64;
            }
        }
        assert!(sum <= 1.0 + 1e-4);
    }
}

/// ROI clipping never yields pixels outside the image, and the clipped
/// area never exceeds the full ROI area.
#[test]
fn roi_clip_invariants() {
    let mut rng = Rng64::new(0x401);
    for _ in 0..256 {
        let side = rng.range_usize(1, 33);
        let x = rng.range_f32(-100.0, 1100.0);
        let y = rng.range_f32(-100.0, 1100.0);
        let roi = Roi::new(side);
        if let Some(clip) = roi.clip(x, y, 1024, 1024) {
            assert!(clip.area() >= 1);
            assert!(clip.area() <= roi.area());
            for (px, py, i, j) in clip.pixels() {
                assert!(px < 1024 && py < 1024);
                assert!(i < side && j < side);
            }
        }
    }
}

/// An interior star's clip is exactly the full ROI.
#[test]
fn interior_clip_is_full() {
    for side in 1..33 {
        let roi = Roi::new(side);
        let clip = roi.clip(512.0, 512.0, 1024, 1024).unwrap();
        assert_eq!(clip.area(), roi.area());
    }
}

/// LUT fetches agree with direct evaluation at bin centres for random
/// geometry parameters.
#[test]
fn lut_matches_direct_at_bin_centres() {
    let mut rng = Rng64::new(0x107);
    for _ in 0..24 {
        let sigma = rng.range_f32(0.5, 5.0);
        let side = rng.range_usize(2, 16);
        let bins = rng.range_usize(2, 64);
        let probe_bin = rng.range_usize(0, 64) % bins;
        let roi = Roi::new(side);
        let psf = PsfModel::point(sigma);
        let lut = LookupTable::build(
            &psf,
            1000.0,
            roi,
            LutParams {
                mag_bins: bins,
                phases: 1,
                mag_range: (0.0, 15.0),
            },
            None,
        )
        .unwrap();
        let m = lut.brightness().bin_centre(probe_bin);
        let star = starfield::Star::new(100.0, 100.0, m);
        let g = star.brightness(1000.0);
        let margin = roi.margin() as f32;
        for j in 0..side {
            for i in 0..side {
                let direct = g * psf.eval(i as f32 - margin, j as f32 - margin, 0.0, 0.0);
                let fetched = lut.fetch(&star, i, j);
                assert!(
                    (direct - fetched).abs() <= 1e-5 * direct.max(1e-10),
                    "({i},{j}): {direct} vs {fetched}"
                );
            }
        }
    }
}

/// The vectorized `exp` tracks `f64` `exp` over the full LUT input
/// domain. The lookup table (and the star-centric kernel) feed the
/// Gaussian exponent `−r²/(2σ²)`: with ROI margins up to 20 px and σ down
/// to 0.2 the argument spans `[−20000, 0]`, far past the flush threshold
/// — sweep the whole reachable range and pin the documented 1e-6 bound.
#[test]
fn lanes_exp_bounded_over_lut_domain() {
    let mut rng = Rng64::new(0x51D);
    let mut max_rel = 0.0f64;
    for _ in 0..20_000 {
        let sigma = rng.range_f32(0.2, 10.0) as f64;
        let r = rng.range_f32(0.0, 30.0) as f64;
        let x = (-(r * r) / (2.0 * sigma * sigma)) as f32;
        let want = (x as f64).exp();
        let got = lanes::exp_f32(x) as f64;
        if want >= f32::MIN_POSITIVE as f64 {
            max_rel = max_rel.max(((got - want) / want).abs());
        } else {
            // Subnormal-or-zero territory: the lane version flushes.
            assert!(got.abs() <= f32::MIN_POSITIVE as f64, "x={x}: got {got}");
        }
    }
    assert!(
        max_rel <= 1e-6,
        "exp relative error {max_rel} exceeds bound"
    );
}

/// The vectorized `erf` tracks the scalar `f64` [`crate::erf::erf`] over
/// the integrated PSF's input domain (`(d ± ½)/(σ√2)` for in-ROI `d`).
#[test]
fn lanes_erf_bounded_over_lut_domain() {
    let mut rng = Rng64::new(0xE2F);
    let mut max_abs = 0.0f64;
    for _ in 0..20_000 {
        let sigma = rng.range_f32(0.2, 10.0) as f64;
        let d = rng.range_f32(-21.0, 21.0) as f64;
        let x = ((d + 0.5) / (sigma * std::f64::consts::SQRT_2)) as f32;
        let want = crate::erf::erf(x as f64);
        let got = lanes::erf_f32(x) as f64;
        max_abs = max_abs.max((got - want).abs());
    }
    assert!(
        max_abs <= 1e-6,
        "erf absolute error {max_abs} exceeds bound"
    );
}

/// A Gaussian row accumulated through the lane backend agrees with the
/// scalar per-pixel baseline to the documented relative bound, for any
/// geometry the kernels can reach (this bound is the SIMD backend's
/// image tolerance).
#[test]
fn lanes_gaussian_row_matches_scalar_eval() {
    let mut rng = Rng64::new(0x90D);
    for _ in 0..200 {
        let sigma = rng.range_f32(0.3, 8.0);
        let side = rng.range_usize(1, 33);
        let cx = rng.range_f32(-0.6, 0.6) + side as f32 / 2.0;
        let cy = rng.range_f32(-0.6, 0.6) + side as f32 / 2.0;
        let y = rng.range_f32(0.0, side as f32);
        let gain = rng.range_f32(0.1, 1000.0);
        let psf = GaussianPsf::new(sigma);
        let mut acc = vec![0.0f32; side];
        psf.accumulate_row_lanes(&mut acc, gain, 0.0, y, cx, cy);
        for (i, &got) in acc.iter().enumerate() {
            let want = gain * psf.eval(i as f32, y, cx, cy);
            // Relative bound plus an absolute floor for the deep-tail
            // region where `exp_f32` flushes subnormals to zero.
            let tol = 1e-6 * want.abs() + 1e-36 * gain;
            assert!(
                (got - want).abs() <= tol,
                "σ={sigma} side={side} i={i}: {got} vs {want}"
            );
        }
    }
}

/// Same property for the pixel-integrated PSF, against the documented
/// absolute-on-μ bound (the scalar baseline runs the same polynomial in
/// `f64`, so the difference is pure `f32` rounding).
#[test]
fn lanes_integrated_row_matches_scalar_eval() {
    let mut rng = Rng64::new(0x1A7E);
    for _ in 0..200 {
        let sigma = rng.range_f32(0.3, 8.0);
        let side = rng.range_usize(1, 33);
        let cx = rng.range_f32(-0.6, 0.6) + side as f32 / 2.0;
        let cy = rng.range_f32(-0.6, 0.6) + side as f32 / 2.0;
        let y = rng.range_f32(0.0, side as f32);
        let psf = IntegratedGaussianPsf::new(sigma);
        let mut acc = vec![0.0f32; side];
        psf.accumulate_row_lanes(&mut acc, 1.0, 0.0, y, cx, cy);
        for (i, &got) in acc.iter().enumerate() {
            let want = psf.eval(i as f32, y, cx, cy);
            assert!(
                (got - want).abs() <= 1e-6,
                "σ={sigma} side={side} i={i}: {got} vs {want}"
            );
        }
    }
}

/// PSF kinds without a vector path (Smeared, Moffat) fall back to the
/// exact scalar evaluation: accumulate_row must be bit-identical to a
/// hand-rolled eval loop for them.
#[test]
fn accumulate_row_fallback_is_bit_identical() {
    let models = [PsfModel::smeared(1.5, 4.0, 0.7), PsfModel::moffat(2.0, 2.5)];
    for model in models {
        let mut acc = vec![0.0f32; 17];
        model.accumulate_row(&mut acc, 3.25, 2.0, 5.5, 8.1, 8.9);
        for (i, &got) in acc.iter().enumerate() {
            let want = 3.25 * model.eval(2.0 + i as f32, 5.5, 8.1, 8.9);
            assert_eq!(got.to_bits(), want.to_bits(), "pixel {i}");
        }
    }
}

/// The smeared PSF conserves energy for any track. (σ ≥ 0.8: narrower
/// point-sampled Gaussians alias on the integer grid by ~1%, a property
/// of sampling, not of the smear.)
#[test]
fn smear_conserves_energy() {
    let mut rng = Rng64::new(0x53);
    for _ in 0..48 {
        let sigma = rng.range_f32(0.8, 2.5);
        let length = rng.range_f32(0.0, 10.0);
        let angle = rng.range_f32(0.0, std::f32::consts::TAU);
        let psf = SmearedGaussianPsf::new(sigma, length, angle);
        let half = (4.0 * sigma + length) as i32 + 2;
        let mut sum = 0.0f64;
        for y in -half..=half {
            for x in -half..=half {
                sum += psf.eval(x as f32, y as f32, 0.0, 0.0) as f64;
            }
        }
        assert!((sum - 1.0).abs() < 5e-3, "integral {sum}");
    }
}

/// The separable factorization (the SIMD backend's per-block fast path:
/// `μ ≈ s · xs[i] · ys[j]`) agrees with the scalar 2-D evaluation within
/// the lane contract — the product of two approximated axis factors adds
/// one multiply rounding to the per-factor bounds.
#[test]
fn axis_factor_product_matches_scalar_eval() {
    let mut rng = Rng64::new(0x5E9A);
    for _ in 0..200 {
        let sigma = rng.range_f32(0.3, 8.0);
        let side = rng.range_usize(1, 33);
        let cx = rng.range_f32(-0.6, 0.6) + side as f32 / 2.0;
        let cy = rng.range_f32(-0.6, 0.6) + side as f32 / 2.0;
        let gain = rng.range_f32(0.1, 1000.0);
        for (is_point, model) in [
            (true, PsfModel::point(sigma)),
            (false, PsfModel::integrated(sigma)),
        ] {
            let mut xs = vec![0.0f32; side];
            let mut ys = vec![0.0f32; side];
            let scale = model
                .axis_factors(&mut xs, &mut ys, 0.0, 0.0, cx, cy)
                .expect("point/integrated models separate");
            for (j, &fy) in ys.iter().enumerate() {
                for (i, &fx) in xs.iter().enumerate() {
                    let got = gain * scale * fx * fy;
                    let want = gain * model.eval(i as f32, j as f32, cx, cy);
                    // Point: `exp_f32` error is relative and grows with
                    // |ln μ| (the `n·LN2_LO` truncation in the range
                    // reduction) — ≤ 4e-6 for the product over the
                    // imaging-relevant range (μ within 1e-10 of the
                    // gain), ≤ 2e-5 in the deeper tail — plus the
                    // subnormal-flush floor. Integrated: `erf_f32` error
                    // is absolute on each ≤1 axis factor, so the product
                    // bound is absolute on μ (times gain).
                    let tol = if is_point {
                        let rel = if want.abs() >= 1e-10 * gain {
                            4e-6
                        } else {
                            2e-5
                        };
                        rel * want.abs() + 1e-36 * gain
                    } else {
                        2.5e-6 * gain
                    };
                    assert!(
                        (got - want).abs() <= tol,
                        "σ={sigma} side={side} ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }
}

/// Non-separable models refuse to factor instead of silently
/// approximating: the kernels' fallback contract.
#[test]
fn axis_factors_rejects_non_separable_models() {
    let mut xs = [0.0f32; 8];
    let mut ys = [0.0f32; 8];
    for model in [PsfModel::smeared(1.5, 4.0, 0.7), PsfModel::moffat(2.0, 2.5)] {
        assert!(model
            .axis_factors(&mut xs, &mut ys, 0.0, 0.0, 4.0, 4.0)
            .is_none());
    }
}
