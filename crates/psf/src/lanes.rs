//! Portable SIMD lane layer for the batched kernels' interior-ROI loops.
//!
//! `std::simd` is nightly-only and the workspace builds offline with no
//! dependencies, so this module provides the minimum the fast paths need:
//! branch-free polynomial approximations of `exp` and `erf` whose callers
//! the loop vectorizer turns into packed SIMD, a fixed-width
//! array-of-lanes `f32` type ([`F32x8`]) for explicit chunked adds, and
//! the loop-shape rules that make autovectorization actually fire.
//!
//! # Loop shape: what vectorizes and what silently does not
//!
//! The kernels lean on LLVM's *loop* vectorizer, not its SLP (straight
//! line) vectorizer, because the two have very different power on this
//! code. Empirically (inspected on x86-64 SSE2 baseline, rustc 1.95):
//!
//! * Manually unrolled 8-lane chunks (`[f32; 8].map(exp_f32)` and
//!   friends) do **not** get re-rolled into packed ops — SLP gives up on
//!   the long transcendental chains, and the result is 8× scalar code.
//!   A single per-pixel loop over a slice, by contrast, loop-vectorizes
//!   cleanly with a vector body and scalar epilogue.
//! * Every operation in the loop body must have a packed equivalent on
//!   the *baseline* target. Three scalar idioms that silently break this:
//!   `f32::round` (libm call without SSE4.1 `roundps` — use the
//!   1.5·2^23 magic-constant rounding instead), `as i32` float→int casts
//!   (Rust's saturating semantics emit compare+cmov chains — keep values
//!   in float or bit-twiddle instead), and 64-bit int→float conversions
//!   (`cvtsi2ss %rax` has no packed form — cast induction variables
//!   through `i32`).
//! * Branches must be reducible to selects: the flush-to-zero tail of
//!   [`exp_f32`] is an integer mask on the scale factor, and the sign of
//!   [`erf_f32`] is applied by XORing the sign bit, precisely so no
//!   `if` survives into the loop body.
//!
//! # Accuracy contract
//!
//! The scalar PSF implementations ([`crate::gaussian`], [`crate::erf`])
//! stay the accuracy baseline; the lane variants trade a bounded error for
//! throughput. The bounds are *measured* by the property sweeps in
//! `proptests.rs` over the full lookup-table input domain and asserted
//! there; the documented guarantees are:
//!
//! * [`exp_f32`]: relative error ≤ 1e-6 versus `f64` `exp` over the whole
//!   finite range (measured ≈ 2e-7); exact 0 below the flush threshold,
//!   where the true value is subnormal-or-zero anyway.
//! * [`erf_f32`]: absolute error ≤ 1e-6 versus the crate's `f64`
//!   [`crate::erf::erf`] (measured ≈ 3e-7 — the two share the same A&S
//!   7.1.26 polynomial, so the difference is `f32` rounding plus the `exp`
//!   approximation).
//!
//! Downstream, a Gaussian PSF row evaluated through these lanes differs
//! from the scalar row by ≤ 1e-6 *relative* per pixel, which is well
//! inside the parallel-vs-sequential image tolerance the simulators
//! already accept for accumulation-order differences.

/// Lane width of the portable vector type: 8 × f32 = one AVX2 register,
/// two NEON registers — wide enough to cover a paper-sized ROI row (10 px)
/// in two iterations, narrow enough that edge waste stays small.
pub const LANES: usize = 8;

/// A fixed-width vector of [`LANES`] `f32` values.
///
/// All operations are element-wise per-lane loops over the backing array;
/// with the lane count a compile-time constant the compiler unrolls and
/// vectorizes them into SIMD instructions where the target supports it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F32x8(pub [f32; LANES]);

impl F32x8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        F32x8([v; LANES])
    }

    /// Lanes `f(0), f(1), …, f(LANES-1)`.
    #[inline(always)]
    pub fn from_fn(f: impl FnMut(usize) -> f32) -> Self {
        F32x8(std::array::from_fn(f))
    }

    /// Loads [`LANES`] values from the start of `src`.
    ///
    /// # Panics
    /// Panics when `src` is shorter than [`LANES`].
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        let mut out = [0.0f32; LANES];
        out.copy_from_slice(&src[..LANES]);
        F32x8(out)
    }

    /// The backing lanes.
    #[inline(always)]
    pub fn lanes(&self) -> &[f32; LANES] {
        &self.0
    }

    /// Element-wise `exp` (see [`exp_f32`] for the accuracy contract).
    #[inline(always)]
    pub fn exp(self) -> Self {
        F32x8(self.0.map(exp_f32))
    }

    /// Element-wise `erf` (see [`erf_f32`] for the accuracy contract).
    #[inline(always)]
    pub fn erf(self) -> Self {
        F32x8(self.0.map(erf_f32))
    }
}

impl std::ops::Add for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn add(self, rhs: F32x8) -> F32x8 {
        F32x8(std::array::from_fn(|i| self.0[i] + rhs.0[i]))
    }
}

impl std::ops::Sub for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn sub(self, rhs: F32x8) -> F32x8 {
        F32x8(std::array::from_fn(|i| self.0[i] - rhs.0[i]))
    }
}

impl std::ops::Mul for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn mul(self, rhs: F32x8) -> F32x8 {
        F32x8(std::array::from_fn(|i| self.0[i] * rhs.0[i]))
    }
}

impl std::ops::Neg for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn neg(self) -> F32x8 {
        F32x8(self.0.map(|v| -v))
    }
}

/// Inputs below this flush to exactly `0.0`: `exp(-87.336) ≈ 1.18e-38` is
/// the smallest *normal* `f32`, and the Gaussian tails the kernels feed
/// through here are indistinguishable from zero at that magnitude.
#[allow(clippy::excessive_precision)] // written form documents the exact threshold
const EXP_FLUSH_BELOW: f32 = -87.336_544;
/// Inputs above this clamp: `exp(87)` ≈ 6.1e37 stays finite in `f32`.
const EXP_CLAMP_ABOVE: f32 = 87.0;

/// Branch-free polynomial `exp` for one lane.
///
/// Classic range reduction: `x = n·ln2 + r` with `|r| ≤ ln2/2`, a
/// degree-5 minimax polynomial (Cephes `expf` coefficients) for `e^r`, and
/// `2^n` assembled directly into the exponent bits.
///
/// The body is a single straight line of float and integer ops — no
/// branches, no float→int casts, no libm — because each of those defeats
/// the loop vectorizer that turns the per-pixel callers into packed SIMD:
///
/// * `f32::round` is a libm call on targets without SSE4.1 `roundps`;
///   rounding instead rides the 1.5·2^23 magic constant (adding it pushes
///   the integer part into the mantissa's last place — exact for
///   |v| < 2^22, and |x·log2e| ≤ 126 here — subtracting recovers the
///   rounded value).
/// * Rust's `as i32` float cast has saturating semantics that compile to
///   a compare+cmov chain; `2^n` is instead read straight out of the
///   magic-shifted float's bit pattern (`t = 1.5·2^23 + n` holds `n` in
///   its low mantissa bits, so `(t.to_bits() << 23) + (127 << 23)` *is*
///   the exponent field of `2^n`, with two's-complement wraparound
///   handling negative `n`).
/// * The flush-to-zero tail is an integer mask on the scale factor, not a
///   conditional.
///
/// Relative error ≤ 1e-6 versus `f64` `exp` (measured ≈ 2e-7); returns
/// exactly `0.0` below the subnormal threshold and stays finite above.
#[inline(always)]
pub fn exp_f32(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    // ln2 split hi/lo so `x − n·ln2` stays exact through the reduction.
    // (the hi part is exactly representable: 355/512 = 0x1.63p-1)
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const C0: f32 = 1.987_569_2e-4;
    const C1: f32 = 1.398_199_9e-3;
    const C2: f32 = 8.333_452e-3;
    const C3: f32 = 4.166_579_6e-2;
    const C4: f32 = 1.666_666_6e-1;
    #[allow(clippy::excessive_precision)] // Cephes coefficient, kept verbatim
    const C5: f32 = 5.000_000_1e-1;
    const ROUND_MAGIC: f32 = 12_582_912.0; // 1.5 · 2^23

    // All-ones when the input is above the flush threshold, zero below.
    let keep = 0u32.wrapping_sub((x >= EXP_FLUSH_BELOW) as u32);
    let x = x.clamp(EXP_FLUSH_BELOW, EXP_CLAMP_ABOVE);
    let t = x * LOG2_E + ROUND_MAGIC;
    let n = t - ROUND_MAGIC;
    let r = x - n * LN2_HI - n * LN2_LO;
    let p = ((((C0 * r + C1) * r + C2) * r + C3) * r + C4) * r + C5;
    let y = p * r * r + r + 1.0;
    // 2^n from t's mantissa bits; n ∈ [-126, 126] after the clamp.
    let scale = f32::from_bits((t.to_bits() << 23).wrapping_add(127 << 23) & keep);
    y * scale
}

/// Branch-free `erf` for one lane: Abramowitz & Stegun 7.1.26 — the same
/// polynomial as the scalar [`crate::erf::erf`], evaluated in `f32` with
/// [`exp_f32`] replacing the libm call.
///
/// Absolute error ≤ 1e-6 versus the scalar `f64` implementation
/// (measured ≈ 3e-7).
#[inline(always)]
pub fn erf_f32(x: f32) -> f32 {
    #[allow(clippy::excessive_precision)] // A&S 7.1.26 coefficient, kept verbatim
    const A1: f32 = 0.254_829_59;
    const A2: f32 = -0.284_496_74;
    const A3: f32 = 1.421_413_7;
    const A4: f32 = -1.453_152;
    const A5: f32 = 1.061_405_4;
    const P: f32 = 0.327_591_1;

    let ax = x.abs();
    let t = 1.0 / (1.0 + P * ax);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * exp_f32(-ax * ax);
    // erf(−x) = −erf(x): apply x's sign bit directly (branch-free, so the
    // per-pixel callers stay loop-vectorizable).
    f32::from_bits(y.to_bits() ^ (x.to_bits() & 0x8000_0000))
}

/// `dst[i] += src[i]` over a whole span, in lane-width chunks.
///
/// The adaptive kernel's SIMD path stages a fetched LUT row into a stack
/// buffer and folds it into the shadow accumulator through this helper;
/// each destination slot receives exactly one add, so the result is
/// bit-identical to the scalar per-pixel loop.
#[inline]
pub fn accumulate(dst: &mut [f32], src: &[f32]) {
    let n = dst.len().min(src.len());
    let (mut i, full) = (0, n - n % LANES);
    while i < full {
        let s = F32x8::load(&src[i..]);
        let d = F32x8::load(&dst[i..]);
        dst[i..i + LANES].copy_from_slice((d + s).lanes());
        i += LANES;
    }
    while i < n {
        dst[i] += src[i];
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_f64_reference() {
        let mut max_rel = 0.0f64;
        let mut x = -87.0f64;
        while x <= 20.0 {
            // Round the probe to f32 first: the contract is about the
            // approximation at representable inputs, not about the cast.
            let xf = x as f32;
            let got = exp_f32(xf) as f64;
            let want = (xf as f64).exp();
            max_rel = max_rel.max(((got - want) / want).abs());
            x += 0.003;
        }
        assert!(max_rel <= 1e-6, "exp rel error {max_rel}");
    }

    #[test]
    fn exp_flushes_and_clamps() {
        assert_eq!(exp_f32(-90.0), 0.0);
        assert_eq!(exp_f32(-1.0e9), 0.0);
        assert!(exp_f32(1.0e9).is_finite());
        assert!((exp_f32(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn erf_matches_scalar_reference() {
        let mut max_abs = 0.0f64;
        let mut x = -6.0f64;
        while x <= 6.0 {
            let got = erf_f32(x as f32) as f64;
            let want = crate::erf::erf(x);
            max_abs = max_abs.max((got - want).abs());
            x += 0.001;
        }
        assert!(max_abs <= 1e-6, "erf abs error {max_abs}");
    }

    #[test]
    fn erf_odd_and_bounded() {
        for x in [0.1f32, 0.7, 1.5, 3.0, 5.5] {
            assert!((erf_f32(-x) + erf_f32(x)).abs() < 1e-6);
            assert!(erf_f32(x).abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn vector_ops_are_element_wise() {
        let a = F32x8::from_fn(|i| i as f32);
        let b = F32x8::splat(2.0);
        assert_eq!((a + b).lanes()[3], 5.0);
        assert_eq!((a - b).lanes()[1], -1.0);
        assert_eq!((a * b).lanes()[4], 8.0);
        assert_eq!((-a).lanes()[2], -2.0);
        let e = (-(a * a)).exp();
        for (i, &v) in e.lanes().iter().enumerate() {
            let want = (-(i as f32 * i as f32)).exp();
            assert!((v - want).abs() <= 1e-6 * want.max(1e-12), "lane {i}");
        }
    }

    #[test]
    fn accumulate_adds_once_per_slot() {
        let src: Vec<f32> = (0..19).map(|i| i as f32 * 0.5).collect();
        let mut dst = vec![1.0f32; 19];
        accumulate(&mut dst, &src);
        for (i, &v) in dst.iter().enumerate() {
            assert_eq!(v, 1.0 + i as f32 * 0.5);
        }
    }
}
