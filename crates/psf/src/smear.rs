//! Motion-smeared Gaussian PSF — an extension for slewing sensors.
//!
//! When the spacecraft rotates during the exposure, each star streaks along
//! the slew direction: the paper's reference \[9\] ("Attitude Information
//! Deduction Based on Single Frame of Blurred Star Image") is exactly this
//! regime. A Gaussian PSF convolved with a uniform line segment of length
//! `L` at angle `θ` has a closed form in track-aligned coordinates
//! `(u, v)` (u along the streak):
//!
//! ```text
//! μ(u, v) = 1/L · [Φ((u+L/2)/δ) − Φ((u−L/2)/δ)] · 1/(√(2π)δ) · e^(−v²/2δ²)
//! ```
//!
//! where `Φ` is the standard normal CDF — no numerical convolution needed.
//! As `L → 0` this reduces to the static Gaussian of eq. 2.

use crate::erf::normal_cdf;
use crate::gaussian::GaussianPsf;

/// A Gaussian PSF smeared along a linear track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmearedGaussianPsf {
    sigma: f32,
    /// Streak length in pixels (≥ 0).
    length: f32,
    /// Track direction, radians from the +x axis.
    cos_t: f32,
    sin_t: f32,
    angle: f32,
}

impl SmearedGaussianPsf {
    /// Creates a smeared PSF.
    ///
    /// # Panics
    /// Panics unless `sigma > 0` and `length >= 0`, both finite.
    pub fn new(sigma: f32, length: f32, angle: f32) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "PSF sigma must be positive and finite, got {sigma}"
        );
        assert!(
            length.is_finite() && length >= 0.0,
            "streak length must be non-negative and finite, got {length}"
        );
        assert!(angle.is_finite(), "streak angle must be finite");
        SmearedGaussianPsf {
            sigma,
            length,
            cos_t: angle.cos(),
            sin_t: angle.sin(),
            angle,
        }
    }

    /// The underlying Gaussian width δ.
    #[inline]
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// The streak length in pixels.
    #[inline]
    pub fn length(&self) -> f32 {
        self.length
    }

    /// The streak direction in radians.
    #[inline]
    pub fn angle(&self) -> f32 {
        self.angle
    }

    /// Evaluates the smeared intensity rate at pixel `(x, y)` for a star
    /// centred (mid-exposure) at `(cx, cy)`.
    #[inline]
    pub fn eval(&self, x: f32, y: f32, cx: f32, cy: f32) -> f32 {
        let dx = x - cx;
        let dy = y - cy;
        // Rotate into track coordinates.
        let u = (self.cos_t * dx + self.sin_t * dy) as f64;
        let v = (-self.sin_t * dx + self.cos_t * dy) as f64;
        let s = self.sigma as f64;

        // Across-track: plain 1-D Gaussian.
        let across = (-(v * v) / (2.0 * s * s)).exp() / ((2.0 * std::f64::consts::PI).sqrt() * s);

        // Along-track: box ⊗ Gaussian.
        let along = if self.length < 1e-6 {
            (-(u * u) / (2.0 * s * s)).exp() / ((2.0 * std::f64::consts::PI).sqrt() * s)
        } else {
            let half = self.length as f64 / 2.0;
            (normal_cdf((u + half) / s) - normal_cdf((u - half) / s)) / self.length as f64
        };
        (across * along) as f32
    }

    /// The margin (half-side) an ROI needs to capture `fraction` of the
    /// streaked energy: the static margin plus half the streak length.
    pub fn margin_for_energy(&self, fraction: f32) -> usize {
        let base = GaussianPsf::new(self.sigma).margin_for_energy(fraction);
        base + (self.length / 2.0).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_reduces_to_static_gaussian() {
        let smear = SmearedGaussianPsf::new(2.0, 0.0, 0.7);
        let gauss = GaussianPsf::new(2.0);
        for (x, y) in [(0.0f32, 0.0f32), (1.5, -2.0), (4.0, 3.0)] {
            let a = smear.eval(x, y, 0.0, 0.0);
            let b = gauss.eval(x, y, 0.0, 0.0);
            assert!(
                (a - b).abs() < 1e-6 * b.max(1e-9),
                "({x},{y}): smeared {a} vs gaussian {b}"
            );
        }
    }

    #[test]
    fn tiny_length_converges_to_static() {
        let smear = SmearedGaussianPsf::new(2.0, 0.01, 0.3);
        let gauss = GaussianPsf::new(2.0);
        let a = smear.eval(1.0, 1.0, 0.0, 0.0);
        let b = gauss.eval(1.0, 1.0, 0.0, 0.0);
        assert!((a - b).abs() / b < 1e-3);
    }

    #[test]
    fn energy_is_conserved() {
        // Sum over a generous grid ≈ 1 for any streak length.
        for length in [0.0f32, 3.0, 8.0] {
            let psf = SmearedGaussianPsf::new(1.5, length, 0.4);
            let half = 20i32;
            let mut sum = 0.0f64;
            for y in -half..=half {
                for x in -half..=half {
                    sum += psf.eval(x as f32, y as f32, 0.0, 0.0) as f64;
                }
            }
            assert!((sum - 1.0).abs() < 2e-3, "L={length}: integral {sum}");
        }
    }

    #[test]
    fn streak_elongates_along_track() {
        // Along the track the profile is wider than across it.
        let psf = SmearedGaussianPsf::new(1.0, 6.0, 0.0); // track = +x
        let along = psf.eval(3.0, 0.0, 0.0, 0.0);
        let across = psf.eval(0.0, 3.0, 0.0, 0.0);
        assert!(
            along > 5.0 * across,
            "along-track {along} should dominate across-track {across}"
        );
        // And the peak is depressed relative to the static PSF.
        let static_peak = GaussianPsf::new(1.0).peak();
        assert!(psf.eval(0.0, 0.0, 0.0, 0.0) < static_peak);
    }

    #[test]
    fn track_rotation_rotates_the_streak() {
        let horizontal = SmearedGaussianPsf::new(1.0, 6.0, 0.0);
        let vertical = SmearedGaussianPsf::new(1.0, 6.0, std::f32::consts::FRAC_PI_2);
        // The vertical streak evaluated at (0, d) equals the horizontal one
        // at (d, 0).
        for d in [1.0f32, 2.5, 4.0] {
            let h = horizontal.eval(d, 0.0, 0.0, 0.0);
            let v = vertical.eval(0.0, d, 0.0, 0.0);
            assert!((h - v).abs() < 1e-6);
        }
    }

    #[test]
    fn symmetric_about_mid_exposure_centre() {
        let psf = SmearedGaussianPsf::new(1.5, 5.0, 0.9);
        for (x, y) in [(2.0f32, 1.0f32), (-1.0, 3.0), (4.0, -2.0)] {
            let a = psf.eval(x, y, 0.0, 0.0);
            let b = psf.eval(-x, -y, 0.0, 0.0);
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn margin_grows_with_streak() {
        let static_margin = SmearedGaussianPsf::new(2.0, 0.0, 0.0).margin_for_energy(0.95);
        let streaked = SmearedGaussianPsf::new(2.0, 10.0, 0.0).margin_for_energy(0.95);
        assert_eq!(streaked, static_margin + 5);
        assert_eq!(
            SmearedGaussianPsf::new(2.0, 0.0, 0.0).margin_for_energy(0.95),
            GaussianPsf::new(2.0).margin_for_energy(0.95)
        );
    }

    #[test]
    fn accessors() {
        let psf = SmearedGaussianPsf::new(1.5, 4.0, 0.25);
        assert_eq!(psf.sigma(), 1.5);
        assert_eq!(psf.length(), 4.0);
        assert_eq!(psf.angle(), 0.25);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_rejected() {
        let _ = SmearedGaussianPsf::new(1.0, -1.0, 0.0);
    }
}
