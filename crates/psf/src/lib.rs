//! # psf — point-spread-function substrate
//!
//! The blur model of the paper: the Gaussian PSF (eq. 2), the square region
//! of interest that bounds each star's deposition (Fig. 1), the composed
//! intensity model φ = g·μ (eq. 3), and the 3-D lookup table the adaptive
//! simulator precomputes into texture memory (§III-C).
//!
//! Extensions beyond the paper, clearly marked in the module docs:
//! a pixel-integrated (erf-based) PSF variant, sub-pixel phase bins for
//! the lookup table, and a portable SIMD lane layer ([`lanes`]) backing
//! the simulators' vectorized kernel backend.

#![warn(missing_docs)]

pub mod erf;
pub mod error;
pub mod gaussian;
pub mod integrated;
pub mod intensity;
pub mod lanes;
pub mod lut;
pub mod moffat;
pub mod roi;
pub mod smear;

mod proptests;

pub use error::PsfError;
pub use gaussian::GaussianPsf;
pub use integrated::{IntegratedGaussianPsf, PsfModel};
pub use intensity::IntensityModel;
pub use lut::{LookupTable, LutParams};
pub use moffat::MoffatPsf;
pub use roi::{ClippedRoi, Roi};
pub use smear::SmearedGaussianPsf;
