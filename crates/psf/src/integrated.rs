//! Pixel-integrated Gaussian PSF — an accuracy extension.
//!
//! The paper samples μ(x, y) at the pixel centre (point sampling). A real
//! CCD pixel integrates the PSF over its unit square; for small σ the
//! difference is significant (a σ=0.5 star deposits ~80% of its energy in
//! one pixel, which point sampling badly misestimates). Because a 2-D
//! Gaussian separates, the integral over pixel `[x−½, x+½] × [y−½, y+½]` is
//! a product of two 1-D erf differences.

use crate::erf::erf;
use crate::gaussian::GaussianPsf;

/// Pixel-integrated Gaussian PSF.
///
/// [`Self::eval`] returns the *exact* fraction of the star's total energy
/// deposited into the unit pixel centred at `(x, y)`, rather than the
/// paper's point sample. Implements the same evaluation interface shape as
/// [`GaussianPsf`] so simulators can switch between sampling models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegratedGaussianPsf {
    sigma: f32,
    /// 1/(σ√2), hoisted out of the erf arguments.
    inv_sigma_sqrt2: f64,
}

impl IntegratedGaussianPsf {
    /// Creates a pixel-integrated PSF with standard deviation `sigma` pixels.
    ///
    /// # Panics
    /// Panics unless `sigma` is finite and positive.
    pub fn new(sigma: f32) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "PSF sigma must be positive and finite, got {sigma}"
        );
        IntegratedGaussianPsf {
            sigma,
            inv_sigma_sqrt2: 1.0 / (sigma as f64 * std::f64::consts::SQRT_2),
        }
    }

    /// The standard deviation in pixels.
    #[inline]
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Energy fraction deposited into the unit pixel centred at `(x, y)` by
    /// a star centred at `(cx, cy)`.
    #[inline]
    pub fn eval(&self, x: f32, y: f32, cx: f32, cy: f32) -> f32 {
        (self.axis_integral((x - cx) as f64) * self.axis_integral((y - cy) as f64)) as f32
    }

    /// 1-D integral of the normalized Gaussian over `[d−½, d+½]`.
    #[inline]
    fn axis_integral(&self, d: f64) -> f64 {
        0.5 * (erf((d + 0.5) * self.inv_sigma_sqrt2) - erf((d - 0.5) * self.inv_sigma_sqrt2))
    }

    /// Adds `gain · μ(x0 + i, y)` into `acc[i]` for a contiguous pixel
    /// row through the [`crate::lanes`] vector layer: the row-constant y
    /// axis integral is computed once, and the x integrals evaluate the
    /// `f32` polynomial [`crate::lanes::erf_f32`] in one per-pixel loop
    /// the loop vectorizer turns into packed SIMD (see the `lanes` module
    /// notes on loop shape).
    ///
    /// The scalar [`Self::eval`] evaluates the same A&S 7.1.26 polynomial
    /// in `f64`; the per-pixel difference is `f32` rounding, ≤ 1e-6
    /// absolute on μ (see the `lanes` module contract).
    pub fn accumulate_row_lanes(
        &self,
        acc: &mut [f32],
        gain: f32,
        x0: f32,
        y: f32,
        cx: f32,
        cy: f32,
    ) {
        use crate::lanes::erf_f32;
        let inv = self.inv_sigma_sqrt2 as f32;
        let dy = y - cy;
        let ay = 0.5 * (erf_f32((dy + 0.5) * inv) - erf_f32((dy - 0.5) * inv));
        let a = gain * ay;
        let base = x0 - cx;
        for (i, slot) in acc.iter_mut().enumerate() {
            // i32 cast: see `GaussianPsf::accumulate_row_lanes`.
            let dx = base + i as i32 as f32;
            let ax = 0.5 * (erf_f32((dx + 0.5) * inv) - erf_f32((dx - 0.5) * inv));
            *slot += a * ax;
        }
    }

    /// Fills `out[i]` with the 1-D unit-pixel integral centred at
    /// `start + i` for a star axis coordinate `c` — one factor of the
    /// separable pixel integral, via [`crate::lanes::erf_f32`].
    ///
    /// μ is an exact product of the two axis integrals (the 2-D Gaussian
    /// separates), so a `side × side` ROI needs `4·side` erf evaluations
    /// instead of `4·side²`. Absolute factor error versus the `f64`
    /// [`Self::eval`] axis term is ≤ 1e-6 (two `erf_f32` approximations).
    pub fn axis_factors(&self, out: &mut [f32], start: f32, c: f32) {
        use crate::lanes::erf_f32;
        let inv = self.inv_sigma_sqrt2 as f32;
        let base = start - c;
        for (i, slot) in out.iter_mut().enumerate() {
            let d = base + i as i32 as f32;
            *slot = 0.5 * (erf_f32((d + 0.5) * inv) - erf_f32((d - 0.5) * inv));
        }
    }
}

/// Either PSF evaluation model, chosen by simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PsfModel {
    /// The paper's point-sampled Gaussian (eq. 2).
    Point(GaussianPsf),
    /// Pixel-integrated Gaussian (extension).
    Integrated(IntegratedGaussianPsf),
    /// Motion-smeared Gaussian for slewing sensors (extension; the blurred
    /// star images of the paper's reference \[9\]).
    Smeared(crate::smear::SmearedGaussianPsf),
    /// Moffat profile with realistic heavy wings (extension).
    Moffat(crate::moffat::MoffatPsf),
}

impl PsfModel {
    /// Point-sampled model with the given sigma.
    pub fn point(sigma: f32) -> Self {
        PsfModel::Point(GaussianPsf::new(sigma))
    }

    /// Pixel-integrated model with the given sigma.
    pub fn integrated(sigma: f32) -> Self {
        PsfModel::Integrated(IntegratedGaussianPsf::new(sigma))
    }

    /// Motion-smeared model: streak of `length` pixels at `angle` radians.
    pub fn smeared(sigma: f32, length: f32, angle: f32) -> Self {
        PsfModel::Smeared(crate::smear::SmearedGaussianPsf::new(sigma, length, angle))
    }

    /// Moffat model matched to a Gaussian of the given sigma by FWHM.
    pub fn moffat(sigma: f32, beta: f32) -> Self {
        PsfModel::Moffat(crate::moffat::MoffatPsf::with_gaussian_fwhm(sigma, beta))
    }

    /// The (equivalent) Gaussian standard deviation in pixels.
    pub fn sigma(&self) -> f32 {
        match self {
            PsfModel::Point(p) => p.sigma(),
            PsfModel::Integrated(p) => p.sigma(),
            PsfModel::Smeared(p) => p.sigma(),
            // Invert the FWHM matching of `moffat()`.
            PsfModel::Moffat(p) => {
                p.alpha() * 2.0 * (2f32.powf(1.0 / p.beta()) - 1.0).sqrt() / 2.354_82
            }
        }
    }

    /// Evaluates the intensity contribution rate at pixel `(x, y)` for a
    /// star centred at `(cx, cy)`.
    #[inline]
    pub fn eval(&self, x: f32, y: f32, cx: f32, cy: f32) -> f32 {
        match self {
            PsfModel::Point(p) => p.eval(x, y, cx, cy),
            PsfModel::Integrated(p) => p.eval(x, y, cx, cy),
            PsfModel::Smeared(p) => p.eval(x, y, cx, cy),
            PsfModel::Moffat(p) => p.eval(x, y, cx, cy),
        }
    }

    /// Adds `gain · μ(x0 + i, y)` into `acc[i]` for a contiguous pixel
    /// row — the SIMD-backend entry point of the batched kernels.
    ///
    /// Point and Integrated Gaussians ride the [`crate::lanes`] vector
    /// layer (bounded approximation error, documented per method); the
    /// Smeared and Moffat extensions have no vector path yet and fall
    /// back to the exact scalar [`Self::eval`] per pixel, so selecting the
    /// SIMD backend never changes *their* results at all.
    #[inline]
    pub fn accumulate_row(&self, acc: &mut [f32], gain: f32, x0: f32, y: f32, cx: f32, cy: f32) {
        match self {
            PsfModel::Point(p) => p.accumulate_row_lanes(acc, gain, x0, y, cx, cy),
            PsfModel::Integrated(p) => p.accumulate_row_lanes(acc, gain, x0, y, cx, cy),
            PsfModel::Smeared(_) | PsfModel::Moffat(_) => {
                for (i, slot) in acc.iter_mut().enumerate() {
                    *slot += gain * self.eval(x0 + i as f32, y, cx, cy);
                }
            }
        }
    }

    /// Fills the two axis-factor vectors of a separable PSF and returns
    /// the overall scale `s` such that `μ(x0+i, y0+j) ≈ s · xs[i] · ys[j]`
    /// within the [`crate::lanes`] error contract — or `None` when the
    /// model does not separate (Smeared's rotated anisotropic Gaussian,
    /// Moffat's radial power law), in which case callers fall back to
    /// [`Self::accumulate_row`].
    ///
    /// This is the SIMD backend's per-block fast path: a `side × side` ROI
    /// costs `2·side` transcendental evaluations plus a pure multiply-add
    /// outer product, instead of `side²` transcendentals.
    ///
    /// # Panics
    /// Panics when `xs` and `ys` lengths differ.
    pub fn axis_factors(
        &self,
        xs: &mut [f32],
        ys: &mut [f32],
        x0: f32,
        y0: f32,
        cx: f32,
        cy: f32,
    ) -> Option<f32> {
        assert_eq!(xs.len(), ys.len(), "axis factor vectors must match");
        match self {
            PsfModel::Point(p) => {
                p.axis_factors(xs, x0, cx);
                p.axis_factors(ys, y0, cy);
                Some(p.peak())
            }
            PsfModel::Integrated(p) => {
                p.axis_factors(xs, x0, cx);
                p.axis_factors(ys, y0, cy);
                Some(1.0)
            }
            PsfModel::Smeared(_) | PsfModel::Moffat(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_energy_sums_to_one() {
        // Unlike point sampling, the integrated PSF sums to exactly 1 over
        // an unbounded grid — and very nearly 1 over ±6σ.
        for sigma in [0.5f32, 1.0, 2.0] {
            let psf = IntegratedGaussianPsf::new(sigma);
            let half = (6.0 * sigma).ceil() as i32;
            let mut sum = 0.0f64;
            for y in -half..=half {
                for x in -half..=half {
                    sum += psf.eval(x as f32, y as f32, 0.0, 0.0) as f64;
                }
            }
            assert!((sum - 1.0).abs() < 1e-5, "σ={sigma}: sum={sum}");
        }
    }

    #[test]
    fn sharp_psf_concentrates_in_centre_pixel() {
        let psf = IntegratedGaussianPsf::new(0.3);
        let centre = psf.eval(0.0, 0.0, 0.0, 0.0);
        // erf(0.5/(0.3√2))² ≈ 0.82 of the energy lands in the centre pixel.
        assert!(centre > 0.8, "σ=0.3 centre pixel got {centre}");
    }

    #[test]
    fn converges_to_point_sample_for_wide_psf() {
        // For σ ≫ 1 pixel the unit-square integral ≈ centre sample.
        let sigma = 10.0;
        let point = GaussianPsf::new(sigma);
        let integ = IntegratedGaussianPsf::new(sigma);
        for (x, y) in [(0.0f32, 0.0f32), (3.0, 4.0), (7.5, -2.0)] {
            let a = point.eval(x, y, 0.0, 0.0);
            let b = integ.eval(x, y, 0.0, 0.0);
            assert!(
                (a - b).abs() / a < 2e-3,
                "σ={sigma} at ({x},{y}): point={a} integrated={b}"
            );
        }
    }

    #[test]
    fn symmetry() {
        let psf = IntegratedGaussianPsf::new(1.5);
        let a = psf.eval(2.0, 3.0, 0.0, 0.0);
        assert!((a - psf.eval(-2.0, 3.0, 0.0, 0.0)).abs() < 1e-12);
        assert!((a - psf.eval(3.0, 2.0, 0.0, 0.0)).abs() < 1e-12);
        assert!((a - psf.eval(-3.0, -2.0, 0.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn model_enum_dispatch() {
        let p = PsfModel::point(2.0);
        let i = PsfModel::integrated(2.0);
        assert_eq!(p.sigma(), 2.0);
        assert_eq!(i.sigma(), 2.0);
        // Both models agree loosely at σ=2.
        let a = p.eval(1.0, 1.0, 0.0, 0.0);
        let b = i.eval(1.0, 1.0, 0.0, 0.0);
        assert!((a - b).abs() / a < 0.05);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_sigma() {
        let _ = IntegratedGaussianPsf::new(-1.0);
    }
}
