//! Regions of interest (ROIs).
//!
//! Instead of scattering every star's energy across the whole image, the
//! paper restricts deposition to a square ROI centred on the star (Fig. 1):
//! "the coverage of star point's intensity distribution is imposed on a
//! region of interest (ROI)". The ROI side length is an optical parameter,
//! empirically 2–20 pixels radius; it is also the thread-block shape of the
//! GPU simulators (side × side threads per block).

/// A square ROI of a given side length (pixels).
///
/// For a star whose centre rounds to pixel `(cx, cy)`, the ROI covers the
/// half-open pixel rectangle `[cx − margin, cx − margin + side) ×
/// [cy − margin, cy − margin + side)` with `margin = side / 2`. This matches
/// the paper's kernel addressing `pixelX = starPosX − MARGIN + threadX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Roi {
    side: usize,
}

impl Roi {
    /// ROI of the given side length.
    ///
    /// # Panics
    /// Panics when `side == 0`.
    pub fn new(side: usize) -> Self {
        assert!(side > 0, "ROI side must be positive");
        Roi { side }
    }

    /// Side length in pixels (= threads per block dimension on the GPU).
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Pixel count (= threads per block on the GPU).
    #[inline]
    pub fn area(&self) -> usize {
        self.side * self.side
    }

    /// The margin subtracted from the star pixel to find the ROI origin.
    #[inline]
    pub fn margin(&self) -> i64 {
        (self.side / 2) as i64
    }

    /// ROI origin (top-left pixel) for a star centred at `(x, y)`.
    ///
    /// Coordinates are clamped to ±2³² pixels so extreme (or non-finite)
    /// star positions — which are always fully off-image — cannot overflow
    /// the downstream index arithmetic.
    #[inline]
    pub fn origin(&self, x: f32, y: f32) -> (i64, i64) {
        const LIMIT: f32 = 4.3e9;
        (
            (x.round().clamp(-LIMIT, LIMIT) as i64) - self.margin(),
            (y.round().clamp(-LIMIT, LIMIT) as i64) - self.margin(),
        )
    }

    /// The ROI of a star at `(x, y)` clipped against a `width × height`
    /// image. Returns `None` when the ROI lies entirely outside.
    pub fn clip(&self, x: f32, y: f32, width: usize, height: usize) -> Option<ClippedRoi> {
        let (x0, y0) = self.origin(x, y);
        let x1 = x0 + self.side as i64;
        let y1 = y0 + self.side as i64;
        let cx0 = x0.max(0);
        let cy0 = y0.max(0);
        let cx1 = x1.min(width as i64);
        let cy1 = y1.min(height as i64);
        if cx0 >= cx1 || cy0 >= cy1 {
            return None;
        }
        Some(ClippedRoi {
            x0: cx0 as usize,
            y0: cy0 as usize,
            x1: cx1 as usize,
            y1: cy1 as usize,
            full_x0: x0,
            full_y0: y0,
        })
    }
}

/// An ROI clipped to image bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClippedRoi {
    /// First in-bounds column.
    pub x0: usize,
    /// First in-bounds row.
    pub y0: usize,
    /// One past the last in-bounds column.
    pub x1: usize,
    /// One past the last in-bounds row.
    pub y1: usize,
    /// Unclipped ROI origin column (may be negative).
    pub full_x0: i64,
    /// Unclipped ROI origin row (may be negative).
    pub full_y0: i64,
}

impl ClippedRoi {
    /// Number of in-bounds pixels.
    #[inline]
    pub fn area(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Iterates the in-bounds pixels in row-major order, yielding
    /// `(x, y, roi_i, roi_j)` where `(roi_i, roi_j)` are the offsets inside
    /// the *unclipped* ROI (the thread indices on the GPU, and the lookup
    /// table indices in the adaptive simulator).
    pub fn pixels(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        let (x0, x1, y0, y1) = (self.x0, self.x1, self.y0, self.y1);
        let (fx0, fy0) = (self.full_x0, self.full_y0);
        (y0..y1).flat_map(move |y| {
            (x0..x1).map(move |x| (x, y, (x as i64 - fx0) as usize, (y as i64 - fy0) as usize))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let r = Roi::new(10);
        assert_eq!(r.side(), 10);
        assert_eq!(r.area(), 100);
        assert_eq!(r.margin(), 5);
        assert_eq!(Roi::new(7).margin(), 3);
        assert_eq!(Roi::new(1).margin(), 0);
    }

    #[test]
    fn origin_follows_kernel_addressing() {
        let r = Roi::new(10);
        // star at (100, 200): origin = (100−5, 200−5).
        assert_eq!(r.origin(100.0, 200.0), (95, 195));
        // Sub-pixel positions round to nearest pixel first.
        assert_eq!(r.origin(100.4, 199.6), (95, 195));
        assert_eq!(r.origin(100.6, 199.4), (96, 194));
    }

    #[test]
    fn interior_roi_is_unclipped() {
        let r = Roi::new(10);
        let c = r.clip(512.0, 512.0, 1024, 1024).unwrap();
        assert_eq!(c.area(), 100);
        assert_eq!((c.x0, c.y0), (507, 507));
        assert_eq!((c.x1, c.y1), (517, 517));
        assert_eq!((c.full_x0, c.full_y0), (507, 507));
    }

    #[test]
    fn corner_roi_clips() {
        let r = Roi::new(10);
        let c = r.clip(0.0, 0.0, 1024, 1024).unwrap();
        // Origin (−5, −5); in-bounds part is [0, 5) × [0, 5).
        assert_eq!((c.x0, c.y0, c.x1, c.y1), (0, 0, 5, 5));
        assert_eq!(c.area(), 25);
        assert_eq!((c.full_x0, c.full_y0), (-5, -5));
    }

    #[test]
    fn edge_roi_clips_one_side() {
        let r = Roi::new(10);
        let c = r.clip(1023.0, 500.0, 1024, 1024).unwrap();
        assert_eq!((c.x0, c.x1), (1018, 1024));
        assert_eq!((c.y0, c.y1), (495, 505));
        assert_eq!(c.area(), 60);
    }

    #[test]
    fn fully_outside_roi_is_none() {
        let r = Roi::new(10);
        assert!(r.clip(-100.0, 50.0, 1024, 1024).is_none());
        assert!(r.clip(50.0, 2000.0, 1024, 1024).is_none());
        // Just close enough that the ROI pokes in:
        assert!(r.clip(-4.0, 50.0, 1024, 1024).is_some());
        // Origin −4−5 = −9, side 10 ⇒ covers [−9, 1): one in-bounds column.
        let c = r.clip(-4.0, 50.0, 1024, 1024).unwrap();
        assert_eq!((c.x0, c.x1), (0, 1));
    }

    #[test]
    fn pixel_iteration_covers_area_with_correct_offsets() {
        let r = Roi::new(4);
        let c = r.clip(1.0, 1.0, 8, 8).unwrap();
        // Origin (−1, −1), clipped to [0, 3) × [0, 3).
        let px: Vec<_> = c.pixels().collect();
        assert_eq!(px.len(), c.area());
        assert_eq!(px[0], (0, 0, 1, 1)); // image (0,0) is ROI offset (1,1)
        for &(x, y, i, j) in &px {
            assert_eq!(x as i64 - c.full_x0, i as i64);
            assert_eq!(y as i64 - c.full_y0, j as i64);
            assert!(i < 4 && j < 4);
        }
    }

    #[test]
    fn odd_roi_is_centred() {
        let r = Roi::new(5);
        let c = r.clip(10.0, 10.0, 100, 100).unwrap();
        // Margin 2: [8, 13) in both axes; star pixel (10,10) is the centre.
        assert_eq!((c.x0, c.y0, c.x1, c.y1), (8, 8, 13, 13));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_side_rejected() {
        let _ = Roi::new(0);
    }
}
