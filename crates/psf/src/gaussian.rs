//! The Gaussian point-spread function of the paper (eq. 2).
//!
//! ```text
//! μ(x, y) = 1/(2πδ²) · exp(−((x−X)² + (y−Y)²)/(2δ²))
//! ```
//!
//! `δ` (sigma) reflects the width of the distribution circle of the optical
//! system; `(X, Y)` is the star centre where intensity peaks. μ is the
//! *intensity contribution rate* the star exerts at pixel `(x, y)`.

/// A Gaussian PSF with standard deviation `sigma` (pixels).
///
/// The PSF is evaluated relative to a star centre passed per call, so one
/// `GaussianPsf` is shared by every star of a simulation (the paper's optic
/// parameters are fixed per simulator run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianPsf {
    sigma: f32,
    /// Precomputed 1/(2πδ²).
    norm: f32,
    /// Precomputed 1/(2δ²).
    inv_two_sigma_sq: f32,
}

impl GaussianPsf {
    /// Creates a PSF with the given standard deviation in pixels.
    ///
    /// # Panics
    /// Panics unless `sigma` is finite and positive.
    pub fn new(sigma: f32) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "PSF sigma must be positive and finite, got {sigma}"
        );
        let two_sigma_sq = 2.0 * sigma * sigma;
        GaussianPsf {
            sigma,
            norm: 1.0 / (std::f32::consts::PI * two_sigma_sq),
            inv_two_sigma_sq: 1.0 / two_sigma_sq,
        }
    }

    /// The standard deviation δ in pixels.
    #[inline]
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// The peak value `μ(X, Y) = 1/(2πδ²)`.
    #[inline]
    pub fn peak(&self) -> f32 {
        self.norm
    }

    /// Evaluates μ at squared distance `r²` from the star centre.
    #[inline]
    pub fn eval_r2(&self, r2: f32) -> f32 {
        self.norm * (-r2 * self.inv_two_sigma_sq).exp()
    }

    /// Evaluates μ at pixel `(x, y)` for a star centred at `(cx, cy)`
    /// (paper eq. 2 verbatim).
    #[inline]
    pub fn eval(&self, x: f32, y: f32, cx: f32, cy: f32) -> f32 {
        let dx = x - cx;
        let dy = y - cy;
        self.eval_r2(dx * dx + dy * dy)
    }

    /// Fraction of total PSF energy contained within a radius `r` of the
    /// centre (the Rayleigh CDF): `1 − exp(−r²/(2δ²))`.
    ///
    /// The paper restricts deposition to an ROI because "the intensity
    /// distribution of a star to a certain pixel reduces drastically when
    /// the distance ... expands"; this quantifies how much a given ROI
    /// radius captures.
    #[inline]
    pub fn encircled_energy(&self, r: f32) -> f32 {
        1.0 - (-(r * r) * self.inv_two_sigma_sq).exp()
    }

    /// Adds `gain · μ(x0 + i, y)` into `acc[i]` for a contiguous pixel row,
    /// evaluated through the [`crate::lanes`] vector layer: one per-pixel
    /// loop whose body is the branch-free polynomial
    /// [`crate::lanes::exp_f32`] instead of a libm call, shaped so the
    /// loop vectorizer turns it into packed SIMD (see the `lanes` module
    /// notes on why a single if-converted loop vectorizes where manually
    /// unrolled lane chunks do not).
    ///
    /// Per-pixel relative error versus [`Self::eval`] is bounded by the
    /// `exp` approximation (≤ 1e-6; see the `lanes` module contract).
    pub fn accumulate_row_lanes(
        &self,
        acc: &mut [f32],
        gain: f32,
        x0: f32,
        y: f32,
        cx: f32,
        cy: f32,
    ) {
        use crate::lanes::exp_f32;
        let dy = y - cy;
        let dy2 = dy * dy;
        let k = self.inv_two_sigma_sq;
        let a = gain * self.norm;
        let base = x0 - cx;
        for (i, slot) in acc.iter_mut().enumerate() {
            // i32 cast: packed int→float exists at 32 bits (`cvtdq2ps`)
            // but not 64, and a 64-bit index would block vectorization.
            // Rows are image-width bounded, far below i32::MAX.
            let dx = base + i as i32 as f32;
            *slot += a * exp_f32(-(dx * dx + dy2) * k);
        }
    }

    /// Fills `out[i] = exp(−(start + i − c)²/(2δ²))` — one axis factor of
    /// the separable 2-D Gaussian, via [`crate::lanes::exp_f32`].
    ///
    /// μ separates as `norm · fx(dx) · fy(dy)`, so a `side × side` ROI
    /// needs only `2·side` exponentials (one factor vector per axis)
    /// instead of `side²`; the deposition becomes a pure multiply-add
    /// outer product (see [`crate::integrated::PsfModel::axis_factors`]).
    /// Relative error of the reassembled product versus [`Self::eval`] is
    /// ≤ 4e-6 over the imaging-relevant range (two `exp` approximations,
    /// each with its own range reduction, plus multiply rounding),
    /// growing to ≤ 2e-5 in the deep tail (μ below ~1e-10 of the peak,
    /// where the reduction's `n·ln2_lo` truncation dominates); both
    /// bounds are asserted by the `proptests` sweep, and values below
    /// the subnormal flush threshold come out exactly zero.
    pub fn axis_factors(&self, out: &mut [f32], start: f32, c: f32) {
        use crate::lanes::exp_f32;
        let k = self.inv_two_sigma_sq;
        let base = start - c;
        for (i, slot) in out.iter_mut().enumerate() {
            let d = base + i as i32 as f32;
            *slot = exp_f32(-(d * d) * k);
        }
    }

    /// The smallest ROI *margin* (half-side, in whole pixels) whose
    /// inscribed circle captures at least `fraction` of the PSF energy.
    ///
    /// Empirically the paper sets ROI radii "within a range from 2~20
    /// pixels"; this helper picks one from an energy target instead.
    pub fn margin_for_energy(&self, fraction: f32) -> usize {
        assert!(
            (0.0..1.0).contains(&fraction),
            "energy fraction must be in [0, 1), got {fraction}"
        );
        // r = δ·sqrt(−2·ln(1−fraction))
        let r = self.sigma * (-2.0 * (1.0 - fraction).ln()).sqrt();
        (r.ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_matches_formula() {
        for sigma in [0.5f32, 1.0, 2.0, 5.0] {
            let psf = GaussianPsf::new(sigma);
            let expect = 1.0 / (2.0 * std::f32::consts::PI * sigma * sigma);
            assert!((psf.peak() - expect).abs() < 1e-9);
            assert_eq!(psf.eval(0.0, 0.0, 0.0, 0.0), psf.peak());
            assert_eq!(psf.sigma(), sigma);
        }
    }

    #[test]
    fn radially_symmetric() {
        let psf = GaussianPsf::new(2.0);
        let a = psf.eval(3.0, 4.0, 0.0, 0.0);
        let b = psf.eval(-4.0, 3.0, 0.0, 0.0);
        let c = psf.eval(5.0, 0.0, 0.0, 0.0);
        assert!((a - b).abs() < 1e-12);
        assert!((a - c).abs() < 1e-12);
    }

    #[test]
    fn translation_invariant() {
        let psf = GaussianPsf::new(1.5);
        let a = psf.eval(10.0, 20.0, 8.0, 19.0);
        let b = psf.eval(2.0, 1.0, 0.0, 0.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn monotone_decay_with_distance() {
        let psf = GaussianPsf::new(2.0);
        let mut prev = f32::INFINITY;
        for i in 0..100 {
            let v = psf.eval_r2((i as f32 * 0.5).powi(2));
            // Strictly decreasing until exp underflows to zero.
            if prev > 0.0 {
                assert!(v < prev);
            } else {
                assert_eq!(v, 0.0);
            }
            assert!(v >= 0.0);
            prev = v;
        }
    }

    #[test]
    fn integrates_to_one_numerically() {
        // Midpoint-rule integral over a wide grid ≈ 1 (PSF is normalized).
        let psf = GaussianPsf::new(2.0);
        let mut sum = 0.0f64;
        let half = 20;
        for y in -half..=half {
            for x in -half..=half {
                sum += psf.eval(x as f32, y as f32, 0.0, 0.0) as f64;
            }
        }
        assert!((sum - 1.0).abs() < 1e-3, "integral was {sum}");
    }

    #[test]
    fn encircled_energy_behaviour() {
        let psf = GaussianPsf::new(2.0);
        assert_eq!(psf.encircled_energy(0.0), 0.0);
        // 1σ circle of a 2-D Gaussian holds 1 − e^(−1/2) ≈ 39.3%.
        assert!((psf.encircled_energy(2.0) - 0.3935).abs() < 1e-3);
        // 3σ ≈ 98.9%.
        assert!(psf.encircled_energy(6.0) > 0.98);
        assert!(psf.encircled_energy(100.0) <= 1.0);
    }

    #[test]
    fn margin_for_energy_is_sufficient_and_tight() {
        let psf = GaussianPsf::new(2.0);
        for target in [0.5f32, 0.9, 0.99] {
            let m = psf.margin_for_energy(target);
            assert!(psf.encircled_energy(m as f32) >= target);
            if m > 1 {
                assert!(
                    psf.encircled_energy((m - 1) as f32) < target,
                    "margin {m} not tight for target {target}"
                );
            }
        }
    }

    #[test]
    fn paper_roi_range_covers_common_sigmas() {
        // Empirical ROI radius 2..20 px should capture ≥95% for σ in ~0.8..8.
        for sigma in [0.8f32, 2.0, 4.0, 8.0] {
            let m = GaussianPsf::new(sigma).margin_for_energy(0.95);
            assert!((1..=20).contains(&m), "σ={sigma} ⇒ margin {m}");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sigma_rejected() {
        let _ = GaussianPsf::new(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nan_sigma_rejected() {
        let _ = GaussianPsf::new(f32::NAN);
    }
}
