//! The composed intensity model (paper eq. 3):
//! `φ(m, x, y) = g(m) · μ(x, y)`, restricted to the star's ROI.

use starfield::star::Star;

use crate::integrated::PsfModel;
use crate::roi::Roi;

/// The full intensity model: brightness law factor, PSF and ROI bundled
/// with the image geometry they apply to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityModel {
    /// The proportionality factor `A` of the brightness law (paper eq. 1).
    pub a_factor: f32,
    /// The point-spread function.
    pub psf: PsfModel,
    /// The region of interest.
    pub roi: Roi,
}

impl IntensityModel {
    /// Builds a model with the paper's point-sampled Gaussian PSF.
    pub fn new(a_factor: f32, sigma: f32, roi_side: usize) -> Self {
        IntensityModel {
            a_factor,
            psf: PsfModel::point(sigma),
            roi: Roi::new(roi_side),
        }
    }

    /// φ(m, x, y): the gray contribution of `star` at pixel centre `(x, y)`
    /// (paper eq. 3). Does **not** check ROI membership; callers iterate ROI
    /// pixels via [`Roi::clip`].
    #[inline]
    pub fn contribution(&self, star: &Star, x: f32, y: f32) -> f32 {
        star.brightness(self.a_factor) * self.psf.eval(x, y, star.pos.x, star.pos.y)
    }

    /// The total gray a star deposits inside its (unclipped) ROI — the
    /// reference value for flux-conservation tests.
    pub fn roi_flux(&self, star: &Star) -> f64 {
        let (x0, y0) = self.roi.origin(star.pos.x, star.pos.y);
        let mut sum = 0.0f64;
        for j in 0..self.roi.side() {
            for i in 0..self.roi.side() {
                let x = (x0 + i as i64) as f32;
                let y = (y0 + j as i64) as f32;
                sum += self.contribution(star, x, y) as f64;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfield::magnitude::brightness;

    fn model() -> IntensityModel {
        IntensityModel::new(1000.0, 2.0, 10)
    }

    #[test]
    fn contribution_is_brightness_times_psf() {
        let m = model();
        let star = Star::new(100.0, 100.0, 3.0);
        let got = m.contribution(&star, 101.0, 102.0);
        let g = brightness(3.0, 1000.0);
        let mu = m.psf.eval(101.0, 102.0, 100.0, 100.0);
        assert!((got - g * mu).abs() < 1e-9);
    }

    #[test]
    fn peak_at_star_centre() {
        let m = model();
        let star = Star::new(50.0, 50.0, 2.0);
        let centre = m.contribution(&star, 50.0, 50.0);
        for (dx, dy) in [(1.0, 0.0), (0.0, 1.0), (-1.0, -1.0), (3.0, 2.0)] {
            assert!(m.contribution(&star, 50.0 + dx, 50.0 + dy) < centre);
        }
    }

    #[test]
    fn brighter_star_contributes_more_everywhere() {
        let m = model();
        let bright = Star::new(50.0, 50.0, 1.0);
        let dim = Star::new(50.0, 50.0, 6.0);
        for (x, y) in [(50.0, 50.0), (52.0, 49.0), (47.0, 53.0)] {
            assert!(m.contribution(&bright, x, y) > m.contribution(&dim, x, y));
        }
    }

    #[test]
    fn roi_flux_captures_most_energy_for_generous_roi() {
        // σ=2, ROI 10 (margin 5 = 2.5σ): expect > 95% of g(m) in the ROI
        // under point sampling (discrete sum approximates the integral).
        let m = model();
        let star = Star::new(500.0, 500.0, 4.0);
        let flux = m.roi_flux(&star);
        let g = brightness(4.0, 1000.0) as f64;
        assert!(flux > 0.9 * g && flux <= 1.02 * g, "flux={flux} g={g}");
    }

    #[test]
    fn tiny_roi_loses_energy() {
        let small = IntensityModel::new(1000.0, 2.0, 3);
        let big = IntensityModel::new(1000.0, 2.0, 15);
        let star = Star::new(500.0, 500.0, 4.0);
        assert!(small.roi_flux(&star) < big.roi_flux(&star));
    }
}
