//! A self-contained error function, used by the pixel-integrated PSF.
//!
//! Rust's standard library has no `erf`; we implement Abramowitz & Stegun
//! formula 7.1.26 (max absolute error 1.5e-7), which is ample for `f32`
//! image work.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Maximum absolute error ≤ 1.5e-7 over the real line.
pub fn erf(x: f64) -> f64 {
    // A&S 7.1.26 with Horner evaluation.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// CDF of the standard normal distribution, `Φ(x) = (1 + erf(x/√2))/2`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn odd_symmetry() {
        for x in [0.1, 0.7, 1.5, 2.5] {
            assert!((erf(-x) + erf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn limits() {
        assert!((erf(6.0) - 1.0).abs() < 1e-7);
        assert!((erf(-6.0) + 1.0).abs() < 1e-7);
        // A&S 7.1.26 is an approximation: erf(0) ≈ 1e-9, not exactly 0.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(6.0) < 1e-7);
    }

    #[test]
    fn monotone_increasing() {
        let mut prev = -2.0;
        for i in -40..=40 {
            let v = erf(i as f64 * 0.1);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn normal_cdf_properties() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        // Φ(1.96) ≈ 0.975.
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }
}
