//! Error type for the PSF substrate.

use std::fmt;

/// Errors produced by PSF and lookup-table construction.
#[derive(Debug)]
pub enum PsfError {
    /// An invalid parameter (non-positive sigma, empty range, ...).
    InvalidParameter(String),
    /// The lookup table exceeds the device's texture memory
    /// (paper §IV-D: "we should first determine the size of lookup table to
    /// assure that it can be successfully bound into the GPU texture
    /// memory").
    LutTooLarge {
        /// Bytes the table needs.
        needed: usize,
        /// Bytes the device offers.
        available: usize,
    },
}

impl fmt::Display for PsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsfError::InvalidParameter(m) => write!(f, "invalid PSF parameter: {m}"),
            PsfError::LutTooLarge { needed, available } => write!(
                f,
                "lookup table needs {needed} B but texture memory holds {available} B"
            ),
        }
    }
}

impl std::error::Error for PsfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(PsfError::InvalidParameter("x".into())
            .to_string()
            .contains("x"));
        let e = PsfError::LutTooLarge {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }
}
