//! The adaptive simulator's precomputed intensity lookup table
//! (paper §III-C, Fig. 8).
//!
//! "With a fixed star magnitude and side of ROI, we can build a
//! three-dimensional lookup table which contains each magnitude of a star
//! and its intensity distribution matrix." The table shifts the kernel's
//! arithmetic (`exp`, multiplies) into memory fetches from texture memory.
//!
//! Layout: `table[mag_bin][phase_y][phase_x][j][i]` flattened row-major,
//! where `(i, j)` index the ROI pixel offsets and the optional sub-pixel
//! *phase* bins (an extension over the paper, which assumes pixel-centred
//! stars) quantize the star's fractional pixel offset in `[−0.5, 0.5)²`.
//! With `phases == 1` the table is exactly the paper's 3-D table.

use starfield::magnitude::BrightnessTable;
use starfield::star::Star;

use crate::error::PsfError;
use crate::integrated::PsfModel;
use crate::roi::Roi;

/// Build parameters of a lookup table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutParams {
    /// Number of magnitude bins over the simulator's magnitude range.
    pub mag_bins: usize,
    /// Sub-pixel phase bins per axis (1 = paper behaviour).
    pub phases: usize,
    /// Magnitude range `[min, max]` covered.
    pub mag_range: (f32, f32),
}

impl Default for LutParams {
    fn default() -> Self {
        LutParams {
            mag_bins: 256,
            phases: 1,
            mag_range: (0.0, 15.0),
        }
    }
}

/// The precomputed `g(m) · μ(Δx, Δy)` table of the adaptive simulator.
#[derive(Debug, Clone)]
pub struct LookupTable {
    params: LutParams,
    roi: Roi,
    brightness: BrightnessTable,
    /// Flattened `[mag][py][px][j][i]`.
    data: Vec<f32>,
}

impl LookupTable {
    /// Builds the table on the CPU (the paper builds it "in CPU platform
    /// instead of GPU kernel, due to the small execution overhead and little
    /// data parallelism", §IV-D).
    ///
    /// `max_bytes`, when given, rejects tables that would not fit the
    /// device's texture memory (paper §IV-D limitation).
    pub fn build(
        model_psf: &PsfModel,
        a_factor: f32,
        roi: Roi,
        params: LutParams,
        max_bytes: Option<usize>,
    ) -> Result<Self, PsfError> {
        if params.mag_bins == 0 || params.phases == 0 {
            return Err(PsfError::InvalidParameter(format!(
                "LUT needs ≥1 magnitude bin and ≥1 phase, got {} / {}",
                params.mag_bins, params.phases
            )));
        }
        let (lo, hi) = params.mag_range;
        // NaN bounds must fail too, hence the explicit finiteness check.
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(PsfError::InvalidParameter(format!(
                "LUT magnitude range must be non-empty: [{lo}, {hi}]"
            )));
        }
        let bytes = Self::size_bytes(&params, roi);
        if let Some(cap) = max_bytes {
            if bytes > cap {
                return Err(PsfError::LutTooLarge {
                    needed: bytes,
                    available: cap,
                });
            }
        }

        let brightness = BrightnessTable::build(lo, hi, params.mag_bins, a_factor);
        let side = roi.side();
        let margin = roi.margin() as f32;
        // Layers (mag × phase² combinations) are independent side²-entry
        // slices, so the build parallelizes over them; each entry is the
        // same expression the sequential loop evaluated, so the table is
        // bit-identical regardless of worker count.
        let phases = params.phases;
        let layers = params.mag_bins * phases * phases;
        let mut data = vec![0.0f32; layers * side * side];
        gpusim::pool::parallel_fill_chunks(
            &mut data,
            side * side,
            gpusim::pool::default_workers(),
            |layer, out| {
                let mb = layer / (phases * phases);
                let rem = layer % (phases * phases);
                let (py, px) = (rem / phases, rem % phases);
                let g = brightness.at_bin(mb);
                let fy = Self::phase_centre(py, phases);
                let fx = Self::phase_centre(px, phases);
                for j in 0..side {
                    let dy = j as f32 - margin - fy;
                    for i in 0..side {
                        let dx = i as f32 - margin - fx;
                        // μ evaluated at the ROI offset relative to the
                        // (possibly sub-pixel) star centre.
                        out[j * side + i] = g * model_psf.eval(dx, dy, 0.0, 0.0);
                    }
                }
            },
        );
        Ok(LookupTable {
            params,
            roi,
            brightness,
            data,
        })
    }

    /// Centre of phase bin `p` of `n` over the fractional range `[−0.5, 0.5)`.
    #[inline]
    fn phase_centre(p: usize, n: usize) -> f32 {
        if n == 1 {
            0.0
        } else {
            -0.5 + (p as f32 + 0.5) / n as f32
        }
    }

    /// Size in bytes of a table with these parameters (f32 entries).
    pub fn size_bytes(params: &LutParams, roi: Roi) -> usize {
        params.mag_bins * params.phases * params.phases * roi.area() * 4
    }

    /// The largest magnitude-bin count that fits in `max_bytes` for this ROI
    /// and phase count — the paper's "maximum star magnitude range that the
    /// simulator can simulate with the fixed size of texture memory".
    pub fn max_mag_bins(roi: Roi, phases: usize, max_bytes: usize) -> usize {
        max_bytes / (phases * phases * roi.area() * 4).max(1)
    }

    /// Build parameters.
    pub fn params(&self) -> &LutParams {
        &self.params
    }

    /// The ROI the table was built for.
    pub fn roi(&self) -> Roi {
        self.roi
    }

    /// The underlying brightness table.
    pub fn brightness(&self) -> &BrightnessTable {
        &self.brightness
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the table has no entries (never true for built tables).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw table data, flattened `[mag][py][px][j][i]` — this is the buffer
    /// uploaded to texture memory.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The number of texture *layers* (mag × phase² combinations); each
    /// layer is a `side × side` 2-D slice fetched with 2-D locality.
    pub fn layers(&self) -> usize {
        self.params.mag_bins * self.params.phases * self.params.phases
    }

    /// The layer index a given star fetches from.
    pub fn layer_of(&self, star: &Star) -> usize {
        let mb = self.brightness.bin_of(star.mag.value());
        let (px, py) = self.phase_of(star);
        (mb * self.params.phases + py) * self.params.phases + px
    }

    /// The sub-pixel phase bin `(px, py)` of a star (both 0 when phases=1).
    pub fn phase_of(&self, star: &Star) -> (usize, usize) {
        if self.params.phases == 1 {
            return (0, 0);
        }
        let frac = |v: f32| {
            // Fractional offset in [−0.5, 0.5): v − round(v).
            let f = v - v.round();
            let t = (f + 0.5) * self.params.phases as f32;
            (t.floor() as isize).clamp(0, self.params.phases as isize - 1) as usize
        };
        (frac(star.pos.x), frac(star.pos.y))
    }

    /// Table value at `(layer, j, i)`.
    ///
    /// # Panics
    /// Panics when any index is out of range.
    #[inline]
    pub fn at(&self, layer: usize, j: usize, i: usize) -> f32 {
        let side = self.roi.side();
        assert!(layer < self.layers() && j < side && i < side);
        self.data[(layer * side + j) * side + i]
    }

    /// Convenience: the precomputed contribution of `star` at ROI offset
    /// `(i, j)` — what the adaptive kernel fetches from texture memory.
    #[inline]
    pub fn fetch(&self, star: &Star, i: usize, j: usize) -> f32 {
        self.at(self.layer_of(star), j, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::IntensityModel;

    fn table(phases: usize, bins: usize) -> LookupTable {
        LookupTable::build(
            &PsfModel::point(2.0),
            1000.0,
            Roi::new(10),
            LutParams {
                mag_bins: bins,
                phases,
                mag_range: (0.0, 15.0),
            },
            None,
        )
        .unwrap()
    }

    #[test]
    fn parallel_build_matches_sequential_loop_bitwise() {
        // The build fans layers out across workers; every entry must still
        // be the exact bits the original single-threaded loop produced.
        let model = PsfModel::integrated(1.2);
        let a_factor = 800.0;
        let roi = Roi::new(7);
        let params = LutParams {
            mag_bins: 9,
            phases: 3,
            mag_range: (1.0, 12.0),
        };
        let t = LookupTable::build(&model, a_factor, roi, params, None).unwrap();

        let brightness = BrightnessTable::build(
            params.mag_range.0,
            params.mag_range.1,
            params.mag_bins,
            a_factor,
        );
        let side = roi.side();
        let margin = roi.margin() as f32;
        let mut expect = Vec::with_capacity(t.len());
        for mb in 0..params.mag_bins {
            let g = brightness.at_bin(mb);
            for py in 0..params.phases {
                let fy = LookupTable::phase_centre(py, params.phases);
                for px in 0..params.phases {
                    let fx = LookupTable::phase_centre(px, params.phases);
                    for j in 0..side {
                        let dy = j as f32 - margin - fy;
                        for i in 0..side {
                            let dx = i as f32 - margin - fx;
                            expect.push(g * model.eval(dx, dy, 0.0, 0.0));
                        }
                    }
                }
            }
        }
        assert_eq!(expect.len(), t.len());
        for (k, (&got, &want)) in t.data().iter().zip(&expect).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "entry {k} diverged");
        }
    }

    #[test]
    fn dimensions_and_size() {
        let t = table(1, 256);
        assert_eq!(t.len(), 256 * 10 * 10);
        assert_eq!(t.layers(), 256);
        assert!(!t.is_empty());
        assert_eq!(LookupTable::size_bytes(t.params(), t.roi()), 256 * 100 * 4);
        let t2 = table(4, 64);
        assert_eq!(t2.layers(), 64 * 16);
    }

    #[test]
    fn matches_direct_evaluation_at_bin_centres() {
        let t = table(1, 256);
        let model = IntensityModel::new(1000.0, 2.0, 10);
        // A pixel-centred star whose magnitude sits exactly on a bin centre.
        let m = t.brightness().bin_centre(40);
        let star = Star::new(500.0, 500.0, m);
        let clip = model.roi.clip(500.0, 500.0, 1024, 1024).unwrap();
        for (x, y, i, j) in clip.pixels() {
            let direct = model.contribution(&star, x as f32, y as f32);
            let fetched = t.fetch(&star, i, j);
            assert!(
                (direct - fetched).abs() <= 1e-6 * direct.max(1e-12),
                "mismatch at ({i},{j}): direct={direct} lut={fetched}"
            );
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        let t = table(1, 512);
        let model = IntensityModel::new(1000.0, 2.0, 10);
        let bound = t.brightness().max_relative_error() * 1.05;
        for k in 0..100 {
            let m = k as f32 * 0.149;
            let star = Star::new(500.0, 500.0, m);
            let direct = model.contribution(&star, 500.0, 500.0);
            let fetched = t.fetch(&star, 5, 5);
            let rel = (fetched - direct).abs() / direct;
            assert!(rel <= bound, "m={m}: rel err {rel} > bound {bound}");
        }
    }

    #[test]
    fn phase_bins_reduce_subpixel_error() {
        let model = IntensityModel::new(1000.0, 2.0, 10);
        let t1 = table(1, 4096);
        let t8 = LookupTable::build(
            &PsfModel::point(2.0),
            1000.0,
            Roi::new(10),
            LutParams {
                mag_bins: 4096,
                phases: 8,
                mag_range: (0.0, 15.0),
            },
            None,
        )
        .unwrap();
        // A star well off pixel centre.
        let star = Star::new(500.37, 500.41, 3.0);
        let clip = model.roi.clip(star.pos.x, star.pos.y, 1024, 1024).unwrap();
        let (mut err1, mut err8) = (0.0f64, 0.0f64);
        for (x, y, i, j) in clip.pixels() {
            let direct = model.contribution(&star, x as f32, y as f32) as f64;
            err1 += (t1.fetch(&star, i, j) as f64 - direct).abs();
            err8 += (t8.fetch(&star, i, j) as f64 - direct).abs();
        }
        assert!(
            err8 < err1 * 0.5,
            "8-phase error {err8} should be well under 1-phase error {err1}"
        );
    }

    #[test]
    fn phase_of_quantizes_fraction() {
        let t = table(4, 8);
        // Fraction −0.5 → phase 0; ~0 → phase 2 (bins at −0.5,−0.25,0,0.25).
        assert_eq!(t.phase_of(&Star::new(10.5, 20.0, 1.0)), (0, 2));
        assert_eq!(t.phase_of(&Star::new(10.0, 20.26, 1.0)), (2, 3));
        let t1 = table(1, 8);
        assert_eq!(t1.phase_of(&Star::new(10.37, 20.9, 1.0)), (0, 0));
    }

    #[test]
    fn size_cap_enforced() {
        let err = LookupTable::build(
            &PsfModel::point(2.0),
            1000.0,
            Roi::new(10),
            LutParams::default(),
            Some(1024), // far too small
        );
        match err {
            Err(PsfError::LutTooLarge { needed, available }) => {
                assert_eq!(available, 1024);
                assert_eq!(needed, 256 * 100 * 4);
            }
            other => panic!("expected LutTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn max_mag_bins_inverse_of_size() {
        let roi = Roi::new(10);
        let cap = 1 << 20; // 1 MiB
        let bins = LookupTable::max_mag_bins(roi, 1, cap);
        let params = LutParams {
            mag_bins: bins,
            phases: 1,
            mag_range: (0.0, 15.0),
        };
        assert!(LookupTable::size_bytes(&params, roi) <= cap);
        let params_over = LutParams {
            mag_bins: bins + 1,
            ..params
        };
        assert!(LookupTable::size_bytes(&params_over, roi) > cap);
    }

    #[test]
    fn invalid_params_rejected() {
        let bad_bins = LookupTable::build(
            &PsfModel::point(2.0),
            1000.0,
            Roi::new(10),
            LutParams {
                mag_bins: 0,
                phases: 1,
                mag_range: (0.0, 15.0),
            },
            None,
        );
        assert!(matches!(bad_bins, Err(PsfError::InvalidParameter(_))));
        let bad_range = LookupTable::build(
            &PsfModel::point(2.0),
            1000.0,
            Roi::new(10),
            LutParams {
                mag_bins: 4,
                phases: 1,
                mag_range: (5.0, 5.0),
            },
            None,
        );
        assert!(matches!(bad_range, Err(PsfError::InvalidParameter(_))));
    }
}
