//! Moffat PSF — an alternative stellar profile (extension).
//!
//! The Gaussian of eq. 2 underestimates the broad wings real optics
//! produce; astronomical practice often fits a Moffat profile
//! (Moffat 1969):
//!
//! ```text
//! μ(r) = (β − 1)/(π α²) · [1 + r²/α²]^(−β)
//! ```
//!
//! normalized to unit total energy for `β > 1`. Smaller `β` ⇒ heavier
//! wings; `β → ∞` recovers a Gaussian of σ = α/√(2β). Offering it as a
//! [`crate::integrated::PsfModel`] alternative lets the simulators be
//! compared under a more realistic blur, and stresses the ROI-truncation
//! trade-off (heavy wings lose more energy to the ROI cut).

/// A Moffat point-spread function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoffatPsf {
    alpha: f32,
    beta: f32,
    /// Precomputed normalization (β−1)/(πα²).
    norm: f32,
    inv_alpha_sq: f32,
}

impl MoffatPsf {
    /// Creates a Moffat PSF with core width `alpha` (pixels) and wing
    /// exponent `beta`.
    ///
    /// # Panics
    /// Panics unless `alpha > 0` and `beta > 1` (finite), the condition for
    /// a normalizable profile.
    pub fn new(alpha: f32, beta: f32) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "Moffat alpha must be positive and finite, got {alpha}"
        );
        assert!(
            beta.is_finite() && beta > 1.0,
            "Moffat beta must exceed 1 for finite energy, got {beta}"
        );
        MoffatPsf {
            alpha,
            beta,
            norm: (beta - 1.0) / (std::f32::consts::PI * alpha * alpha),
            inv_alpha_sq: 1.0 / (alpha * alpha),
        }
    }

    /// A Moffat whose full-width-half-maximum matches a Gaussian of the
    /// given sigma (for like-for-like simulator comparisons):
    /// `FWHM = 2α√(2^(1/β) − 1) = 2.3548 σ`.
    pub fn with_gaussian_fwhm(sigma: f32, beta: f32) -> Self {
        assert!(beta > 1.0);
        let fwhm = 2.354_82_f32 * sigma;
        let alpha = fwhm / (2.0 * (2f32.powf(1.0 / beta) - 1.0).sqrt());
        MoffatPsf::new(alpha, beta)
    }

    /// Core width α in pixels.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Wing exponent β.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// The peak value `μ(0) = (β−1)/(πα²)`.
    pub fn peak(&self) -> f32 {
        self.norm
    }

    /// Evaluates μ at pixel `(x, y)` for a star centred at `(cx, cy)`.
    #[inline]
    pub fn eval(&self, x: f32, y: f32, cx: f32, cy: f32) -> f32 {
        let dx = x - cx;
        let dy = y - cy;
        let r2 = dx * dx + dy * dy;
        self.norm * (1.0 + r2 * self.inv_alpha_sq).powf(-self.beta)
    }

    /// Encircled energy within radius `r`: `1 − (1 + r²/α²)^(1−β)`.
    pub fn encircled_energy(&self, r: f32) -> f32 {
        1.0 - (1.0 + (r * r) * self.inv_alpha_sq).powf(1.0 - self.beta)
    }

    /// Smallest ROI margin capturing `fraction` of the energy:
    /// `r = α·√((1−fraction)^(1/(1−β)) − 1)`.
    pub fn margin_for_energy(&self, fraction: f32) -> usize {
        assert!(
            (0.0..1.0).contains(&fraction),
            "energy fraction must be in [0, 1), got {fraction}"
        );
        let r = self.alpha * ((1.0 - fraction).powf(1.0 / (1.0 - self.beta)) - 1.0).sqrt();
        (r.ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::GaussianPsf;

    #[test]
    fn peak_and_normalization() {
        let psf = MoffatPsf::new(2.0, 2.5);
        assert_eq!(psf.eval(0.0, 0.0, 0.0, 0.0), psf.peak());
        assert_eq!(psf.alpha(), 2.0);
        assert_eq!(psf.beta(), 2.5);
        // Numerical integral ≈ 1 over a wide grid (wings are heavy, so a
        // large grid and a loose tolerance).
        let mut sum = 0.0f64;
        let half = 60;
        for y in -half..=half {
            for x in -half..=half {
                sum += psf.eval(x as f32, y as f32, 0.0, 0.0) as f64;
            }
        }
        assert!((sum - 1.0).abs() < 0.02, "integral {sum}");
    }

    #[test]
    fn radial_monotone_decay() {
        let psf = MoffatPsf::new(1.5, 3.0);
        let mut prev = f32::INFINITY;
        for k in 0..50 {
            let v = psf.eval(k as f32 * 0.4, 0.0, 0.0, 0.0);
            assert!(v < prev || k == 0);
            assert!(v > 0.0, "Moffat wings never truncate to zero");
            prev = v;
        }
    }

    #[test]
    fn heavier_wings_for_smaller_beta() {
        let narrow = MoffatPsf::with_gaussian_fwhm(2.0, 6.0);
        let heavy = MoffatPsf::with_gaussian_fwhm(2.0, 1.5);
        // Same FWHM, but at 5 FWHM the β=1.5 profile carries far more.
        let r = 5.0 * 2.3548 * 2.0;
        assert!(
            heavy.eval(r, 0.0, 0.0, 0.0) > 10.0 * narrow.eval(r, 0.0, 0.0, 0.0),
            "β=1.5 wings should dominate β=6"
        );
        // And it needs a bigger ROI for the same energy.
        assert!(heavy.margin_for_energy(0.95) > narrow.margin_for_energy(0.95));
    }

    #[test]
    fn encircled_energy_is_cdf() {
        let psf = MoffatPsf::new(2.0, 2.5);
        assert_eq!(psf.encircled_energy(0.0), 0.0);
        let mut prev = 0.0;
        for k in 1..40 {
            let e = psf.encircled_energy(k as f32);
            assert!(e > prev && e < 1.0);
            prev = e;
        }
    }

    #[test]
    fn margin_for_energy_is_sufficient() {
        let psf = MoffatPsf::new(2.0, 3.0);
        for target in [0.5f32, 0.9, 0.99] {
            let m = psf.margin_for_energy(target);
            assert!(psf.encircled_energy(m as f32) >= target);
        }
    }

    #[test]
    fn large_beta_approaches_gaussian_core() {
        let sigma = 2.0;
        let moffat = MoffatPsf::with_gaussian_fwhm(sigma, 50.0);
        let gauss = GaussianPsf::new(sigma);
        // Within ~1σ the profiles agree to a few percent.
        for r in [0.0f32, 1.0, 2.0] {
            let m = moffat.eval(r, 0.0, 0.0, 0.0);
            let g = gauss.eval(r, 0.0, 0.0, 0.0);
            assert!(
                (m - g).abs() / g < 0.05,
                "r={r}: moffat {m} vs gaussian {g}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn beta_at_most_one_rejected() {
        let _ = MoffatPsf::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_alpha_rejected() {
        let _ = MoffatPsf::new(0.0, 2.0);
    }
}
