//! Property-based tests of the star-field substrate.

use proptest::prelude::*;
use starfield::magnitude::{brightness, magnitude_from_brightness, BrightnessTable};
use starfield::triad::{attitude_error, triad, Observation};
use starfield::{
    Attitude, AttitudeDynamics, Camera, FieldGenerator, SkyStar, Star, StarCatalog, Vec2,
};

proptest! {
    /// Brightness is strictly decreasing and positive over the magnitude
    /// range, for any positive proportionality factor.
    #[test]
    fn brightness_monotone(a in 0.1f32..1e6, m1 in 0.0f32..15.0, m2 in 0.0f32..15.0) {
        prop_assume!((m1 - m2).abs() > 1e-3);
        let (lo, hi) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(brightness(lo, a) > brightness(hi, a));
        prop_assert!(brightness(hi, a) > 0.0);
    }

    /// Brightness inverts exactly.
    #[test]
    fn brightness_inverse(a in 0.1f32..1e5, m in 0.0f32..15.0) {
        let g = brightness(m, a);
        let back = magnitude_from_brightness(g, a).unwrap();
        prop_assert!((back - m).abs() < 1e-3, "m={m} back={back}");
    }

    /// Table lookups sit between the brightnesses of the bin edges.
    #[test]
    fn table_lookup_brackets(m in 0.0f32..15.0, bins in 1usize..512) {
        let t = BrightnessTable::build(0.0, 15.0, bins, 1000.0);
        let bin = t.bin_of(m);
        let width = 15.0 / bins as f32;
        let lo_edge = bin as f32 * width;
        let hi_edge = lo_edge + width;
        let v = t.lookup(m);
        prop_assert!(v <= brightness(lo_edge, 1000.0) + 1e-3);
        prop_assert!(v >= brightness(hi_edge, 1000.0) - 1e-3);
    }

    /// Camera projection round-trips through unprojection for any interior
    /// pixel and any sane focal length.
    #[test]
    fn project_unproject(
        focal in 200.0f64..5000.0,
        x in 0.0f32..1024.0,
        y in 0.0f32..1024.0,
    ) {
        let cam = Camera::new(focal, 1024, 1024).unwrap();
        let dir = cam.unproject(Vec2::new(x, y));
        let back = cam.project(dir).unwrap();
        prop_assert!((back.x - x).abs() < 1e-2 && (back.y - y).abs() < 1e-2);
    }

    /// Attitude rotations preserve vector length and invert exactly.
    #[test]
    fn attitude_is_orthonormal(
        ax in -1.0f64..1.0, ay in -1.0f64..1.0, az in -1.0f64..1.0,
        angle in -6.0f64..6.0,
        vx in -2.0f64..2.0, vy in -2.0f64..2.0, vz in -2.0f64..2.0,
    ) {
        prop_assume!(ax.abs() + ay.abs() + az.abs() > 1e-6);
        let q = Attitude::from_axis_angle([ax, ay, az], angle);
        let v = [vx, vy, vz];
        let r = q.rotate(v);
        let n0 = (vx * vx + vy * vy + vz * vz).sqrt();
        let n1 = (r[0] * r[0] + r[1] * r[1] + r[2] * r[2]).sqrt();
        prop_assert!((n0 - n1).abs() < 1e-9);
        let back = q.conjugate().rotate(r);
        for i in 0..3 {
            prop_assert!((back[i] - v[i]).abs() < 1e-9);
        }
    }

    /// Pointing attitudes put the target on the boresight for all sane
    /// (ra, dec, roll).
    #[test]
    fn pointing_hits_target(
        ra in 0.0f64..6.28,
        dec in -1.4f64..1.4,
        roll in 0.0f64..6.28,
    ) {
        let q = Attitude::pointing(ra, dec, roll);
        let body = q.to_body(SkyStar::new(ra, dec, 0.0).direction());
        prop_assert!((body[0].abs()) < 1e-8 && (body[1].abs()) < 1e-8);
        prop_assert!((body[2] - 1.0).abs() < 1e-8);
    }

    /// Generated fields honour their bounds and are seed-deterministic.
    #[test]
    fn generator_bounds(count in 0usize..300, seed in 0u64..1000) {
        let g = FieldGenerator::new(200, 100);
        let a = g.generate(count, seed);
        prop_assert_eq!(a.len(), count);
        for s in a.stars() {
            prop_assert!(s.in_image(200, 100));
            prop_assert!((0.0..=15.0).contains(&s.mag.value()));
        }
        prop_assert_eq!(a, g.generate(count, seed));
    }

    /// Catalogue text serialization round-trips arbitrary finite stars.
    #[test]
    fn catalog_text_roundtrip(
        stars in prop::collection::vec(
            (-1e6f32..1e6, -1e6f32..1e6, 0.0f32..15.0),
            0..50,
        ),
    ) {
        let cat: StarCatalog = stars
            .into_iter()
            .map(|(x, y, m)| Star::new(x, y, m))
            .collect();
        let mut buf = Vec::new();
        cat.write_text(&mut buf).unwrap();
        let back = StarCatalog::read_text(&buf[..]).unwrap();
        prop_assert_eq!(back, cat);
    }

    /// TRIAD recovers any attitude from any two well-separated stars.
    #[test]
    fn triad_recovers_any_attitude(
        ra in 0.0f64..6.28,
        dec in -1.4f64..1.4,
        roll in 0.0f64..6.28,
        s1_ra in 0.0f64..6.28,
        s1_dec in -1.2f64..1.2,
        sep in 0.1f64..1.0,
    ) {
        let truth = Attitude::pointing(ra, dec, roll);
        let d1 = SkyStar::new(s1_ra, s1_dec, 0.0).direction();
        let d2 = SkyStar::new(s1_ra + sep, s1_dec - sep / 3.0, 0.0).direction();
        let obs = vec![
            Observation { body: truth.to_body(d1), inertial: d1 },
            Observation { body: truth.to_body(d2), inertial: d2 },
        ];
        let est = triad(&obs).unwrap();
        // The acos in attitude_error has a ~3e-8 precision floor near zero;
        // 1e-6 is far below any genuine estimation error.
        prop_assert!(attitude_error(est, truth) < 1e-6);
    }

    /// Attitude propagation preserves unit norm and composes: stepping
    /// twice by dt equals stepping once by 2·dt for constant rate.
    #[test]
    fn dynamics_compose(
        wx in -0.2f64..0.2,
        wy in -0.2f64..0.2,
        wz in -0.2f64..0.2,
        dt in 0.01f64..5.0,
    ) {
        prop_assume!(wx.abs() + wy.abs() + wz.abs() > 1e-6);
        let start = Attitude::pointing(1.0, 0.3, 0.2);
        let d = AttitudeDynamics::new(start, [wx, wy, wz]);
        let once = d.at(2.0 * dt);
        let mut twice = d;
        twice.step(dt);
        twice.step(dt);
        let v = [0.2, -0.4, 0.89];
        let a = once.rotate(v);
        let b = twice.attitude.rotate(v);
        for i in 0..3 {
            prop_assert!((a[i] - b[i]).abs() < 1e-9);
        }
        // Norm preserved.
        let q = twice.attitude;
        let n = (q.w * q.w + q.x * q.x + q.y * q.y + q.z * q.z).sqrt();
        prop_assert!((n - 1.0).abs() < 1e-9);
    }

    /// Rectangle queries return exactly the stars inside the rectangle.
    #[test]
    fn rect_query_exact(
        stars in prop::collection::vec((0.0f32..100.0, 0.0f32..100.0), 0..80),
        x0 in 0.0f32..50.0,
        y0 in 0.0f32..50.0,
        w in 1.0f32..50.0,
        h in 1.0f32..50.0,
    ) {
        let cat: StarCatalog = stars.iter().map(|&(x, y)| Star::new(x, y, 5.0)).collect();
        let hits = cat.in_rect(x0, y0, x0 + w, y0 + h);
        let expect = stars
            .iter()
            .filter(|&&(x, y)| x >= x0 && x < x0 + w && y >= y0 && y < y0 + h)
            .count();
        prop_assert_eq!(hits.len(), expect);
    }
}
