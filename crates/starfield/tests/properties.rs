//! Property-style tests of the star-field substrate.
//!
//! Hand-rolled deterministic property loops (seeded `simrng`) instead of
//! `proptest`, so the workspace tests run with no registry access.

use simrng::Rng64;
use starfield::magnitude::{brightness, magnitude_from_brightness, BrightnessTable};
use starfield::triad::{attitude_error, triad, Observation};
use starfield::{
    Attitude, AttitudeDynamics, Camera, FieldGenerator, SkyStar, Star, StarCatalog, Vec2,
};

/// Brightness is strictly decreasing and positive over the magnitude
/// range, for any positive proportionality factor.
#[test]
fn brightness_monotone() {
    let mut rng = Rng64::new(0xB1);
    for _ in 0..256 {
        let a = rng.range_f32(0.1, 1e6);
        let m1 = rng.range_f32(0.0, 15.0);
        let m2 = rng.range_f32(0.0, 15.0);
        if (m1 - m2).abs() <= 1e-3 {
            continue;
        }
        let (lo, hi) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
        assert!(brightness(lo, a) > brightness(hi, a));
        assert!(brightness(hi, a) > 0.0);
    }
}

/// Brightness inverts exactly.
#[test]
fn brightness_inverse() {
    let mut rng = Rng64::new(0xB2);
    for _ in 0..256 {
        let a = rng.range_f32(0.1, 1e5);
        let m = rng.range_f32(0.0, 15.0);
        let g = brightness(m, a);
        let back = magnitude_from_brightness(g, a).unwrap();
        assert!((back - m).abs() < 1e-3, "m={m} back={back}");
    }
}

/// Table lookups sit between the brightnesses of the bin edges.
#[test]
fn table_lookup_brackets() {
    let mut rng = Rng64::new(0xB3);
    for _ in 0..128 {
        let m = rng.range_f32(0.0, 15.0);
        let bins = rng.range_usize(1, 512);
        let t = BrightnessTable::build(0.0, 15.0, bins, 1000.0);
        let bin = t.bin_of(m);
        let width = 15.0 / bins as f32;
        let lo_edge = bin as f32 * width;
        let hi_edge = lo_edge + width;
        let v = t.lookup(m);
        assert!(v <= brightness(lo_edge, 1000.0) + 1e-3);
        assert!(v >= brightness(hi_edge, 1000.0) - 1e-3);
    }
}

/// Camera projection round-trips through unprojection for any interior
/// pixel and any sane focal length.
#[test]
fn project_unproject() {
    let mut rng = Rng64::new(0xCA);
    for _ in 0..256 {
        let focal = rng.range_f64(200.0, 5000.0);
        let x = rng.range_f32(0.0, 1024.0);
        let y = rng.range_f32(0.0, 1024.0);
        let cam = Camera::new(focal, 1024, 1024).unwrap();
        let dir = cam.unproject(Vec2::new(x, y));
        let back = cam.project(dir).unwrap();
        assert!((back.x - x).abs() < 1e-2 && (back.y - y).abs() < 1e-2);
    }
}

/// Attitude rotations preserve vector length and invert exactly.
#[test]
fn attitude_is_orthonormal() {
    let mut rng = Rng64::new(0xA7);
    for _ in 0..256 {
        let ax = rng.range_f64(-1.0, 1.0);
        let ay = rng.range_f64(-1.0, 1.0);
        let az = rng.range_f64(-1.0, 1.0);
        if ax.abs() + ay.abs() + az.abs() <= 1e-6 {
            continue;
        }
        let angle = rng.range_f64(-6.0, 6.0);
        let (vx, vy, vz) = (
            rng.range_f64(-2.0, 2.0),
            rng.range_f64(-2.0, 2.0),
            rng.range_f64(-2.0, 2.0),
        );
        let q = Attitude::from_axis_angle([ax, ay, az], angle);
        let v = [vx, vy, vz];
        let r = q.rotate(v);
        let n0 = (vx * vx + vy * vy + vz * vz).sqrt();
        let n1 = (r[0] * r[0] + r[1] * r[1] + r[2] * r[2]).sqrt();
        assert!((n0 - n1).abs() < 1e-9);
        let back = q.conjugate().rotate(r);
        for i in 0..3 {
            assert!((back[i] - v[i]).abs() < 1e-9);
        }
    }
}

/// Pointing attitudes put the target on the boresight for all sane
/// (ra, dec, roll).
#[test]
fn pointing_hits_target() {
    let mut rng = Rng64::new(0x50);
    for _ in 0..256 {
        let ra = rng.range_f64(0.0, std::f64::consts::TAU);
        let dec = rng.range_f64(-1.4, 1.4);
        let roll = rng.range_f64(0.0, std::f64::consts::TAU);
        let q = Attitude::pointing(ra, dec, roll);
        let body = q.to_body(SkyStar::new(ra, dec, 0.0).direction());
        assert!((body[0].abs()) < 1e-8 && (body[1].abs()) < 1e-8);
        assert!((body[2] - 1.0).abs() < 1e-8);
    }
}

/// Generated fields honour their bounds and are seed-deterministic.
#[test]
fn generator_bounds() {
    let mut rng = Rng64::new(0x6E);
    for _ in 0..48 {
        let count = rng.range_usize(0, 300);
        let seed = rng.range_u64(0, 1000);
        let g = FieldGenerator::new(200, 100);
        let a = g.generate(count, seed);
        assert_eq!(a.len(), count);
        for s in a.stars() {
            assert!(s.in_image(200, 100));
            assert!((0.0..=15.0).contains(&s.mag.value()));
        }
        assert_eq!(a, g.generate(count, seed));
    }
}

/// Catalogue text serialization round-trips arbitrary finite stars.
#[test]
fn catalog_text_roundtrip() {
    let mut rng = Rng64::new(0x7E);
    for _ in 0..64 {
        let n = rng.range_usize(0, 50);
        let cat: StarCatalog = (0..n)
            .map(|_| {
                Star::new(
                    rng.range_f32(-1e6, 1e6),
                    rng.range_f32(-1e6, 1e6),
                    rng.range_f32(0.0, 15.0),
                )
            })
            .collect();
        let mut buf = Vec::new();
        cat.write_text(&mut buf).unwrap();
        let back = StarCatalog::read_text(&buf[..]).unwrap();
        assert_eq!(back, cat);
    }
}

/// TRIAD recovers any attitude from any two well-separated stars.
#[test]
fn triad_recovers_any_attitude() {
    let mut rng = Rng64::new(0x731);
    for _ in 0..256 {
        let ra = rng.range_f64(0.0, std::f64::consts::TAU);
        let dec = rng.range_f64(-1.4, 1.4);
        let roll = rng.range_f64(0.0, std::f64::consts::TAU);
        let s1_ra = rng.range_f64(0.0, std::f64::consts::TAU);
        let s1_dec = rng.range_f64(-1.2, 1.2);
        let sep = rng.range_f64(0.1, 1.0);
        let truth = Attitude::pointing(ra, dec, roll);
        let d1 = SkyStar::new(s1_ra, s1_dec, 0.0).direction();
        let d2 = SkyStar::new(s1_ra + sep, s1_dec - sep / 3.0, 0.0).direction();
        let obs = vec![
            Observation {
                body: truth.to_body(d1),
                inertial: d1,
            },
            Observation {
                body: truth.to_body(d2),
                inertial: d2,
            },
        ];
        let est = triad(&obs).unwrap();
        // The acos in attitude_error has a ~3e-8 precision floor near zero;
        // 1e-6 is far below any genuine estimation error.
        assert!(attitude_error(est, truth) < 1e-6);
    }
}

/// Attitude propagation preserves unit norm and composes: stepping
/// twice by dt equals stepping once by 2·dt for constant rate.
#[test]
fn dynamics_compose() {
    let mut rng = Rng64::new(0xD7);
    for _ in 0..256 {
        let wx = rng.range_f64(-0.2, 0.2);
        let wy = rng.range_f64(-0.2, 0.2);
        let wz = rng.range_f64(-0.2, 0.2);
        let dt = rng.range_f64(0.01, 5.0);
        if wx.abs() + wy.abs() + wz.abs() <= 1e-6 {
            continue;
        }
        let start = Attitude::pointing(1.0, 0.3, 0.2);
        let d = AttitudeDynamics::new(start, [wx, wy, wz]);
        let once = d.at(2.0 * dt);
        let mut twice = d;
        twice.step(dt);
        twice.step(dt);
        let v = [0.2, -0.4, 0.89];
        let a = once.rotate(v);
        let b = twice.attitude.rotate(v);
        for i in 0..3 {
            assert!((a[i] - b[i]).abs() < 1e-9);
        }
        // Norm preserved.
        let q = twice.attitude;
        let n = (q.w * q.w + q.x * q.x + q.y * q.y + q.z * q.z).sqrt();
        assert!((n - 1.0).abs() < 1e-9);
    }
}

/// Rectangle queries return exactly the stars inside the rectangle.
#[test]
fn rect_query_exact() {
    let mut rng = Rng64::new(0x9EC7);
    for _ in 0..128 {
        let n = rng.range_usize(0, 80);
        let stars: Vec<(f32, f32)> = (0..n)
            .map(|_| (rng.range_f32(0.0, 100.0), rng.range_f32(0.0, 100.0)))
            .collect();
        let x0 = rng.range_f32(0.0, 50.0);
        let y0 = rng.range_f32(0.0, 50.0);
        let w = rng.range_f32(1.0, 50.0);
        let h = rng.range_f32(1.0, 50.0);
        let cat: StarCatalog = stars.iter().map(|&(x, y)| Star::new(x, y, 5.0)).collect();
        let hits = cat.in_rect(x0, y0, x0 + w, y0 + h);
        let expect = stars
            .iter()
            .filter(|&&(x, y)| x >= x0 && x < x0 + w && y >= y0 && y < y0 + h)
            .count();
        assert_eq!(hits.len(), expect);
    }
}
