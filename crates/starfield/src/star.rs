//! The star record used throughout the simulators.

use crate::magnitude::Magnitude;
use crate::vec2::Vec2;

/// A star projected onto the image plane.
///
/// This is the record format the paper's benchmarks use: "The star
/// information at image plane generates in such format file by configuring
/// the two parameters: the magnitude of the star, the 2-dimensional
/// coordinate in image plane" (§IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Star {
    /// Position on the image plane, in pixels. May be sub-pixel.
    pub pos: Vec2,
    /// Catalogue magnitude (lower = brighter).
    pub mag: Magnitude,
}

impl Star {
    /// Creates a star at `(x, y)` with magnitude `mag`.
    #[inline]
    pub fn new(x: f32, y: f32, mag: f32) -> Self {
        Star {
            pos: Vec2::new(x, y),
            mag: Magnitude(mag),
        }
    }

    /// Brightness under the paper's law with proportionality factor `A`.
    #[inline]
    pub fn brightness(&self, a_factor: f32) -> f32 {
        self.mag.brightness(a_factor)
    }

    /// A copy of this star snapped to the nearest integer pixel centre.
    ///
    /// Used by the adaptive simulator when the lookup table has no sub-pixel
    /// phase bins: the table stores the PSF relative to a pixel-centred star.
    #[inline]
    pub fn snapped(&self) -> Star {
        Star {
            pos: self.pos.round(),
            mag: self.mag,
        }
    }

    /// True when the star's centre lies inside a `width × height` image.
    #[inline]
    pub fn in_image(&self, width: usize, height: usize) -> bool {
        self.pos.x >= 0.0
            && self.pos.y >= 0.0
            && self.pos.x < width as f32
            && self.pos.y < height as f32
    }
}

/// A star on the celestial sphere, before projection onto an image plane.
///
/// Right ascension and declination are in radians. This is the substrate
/// record for the FOV-retrieval pipeline the paper references (\[4\]) but does
/// not describe; see [`crate::fov`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkyStar {
    /// Right ascension, radians in `[0, 2π)`.
    pub ra: f64,
    /// Declination, radians in `[−π/2, π/2]`.
    pub dec: f64,
    /// Catalogue magnitude.
    pub mag: Magnitude,
}

impl SkyStar {
    /// Creates a sky star; `ra`/`dec` are radians.
    #[inline]
    pub fn new(ra: f64, dec: f64, mag: f32) -> Self {
        SkyStar {
            ra,
            dec,
            mag: Magnitude(mag),
        }
    }

    /// Unit direction vector in the equatorial frame (x toward vernal
    /// equinox, z toward the north celestial pole).
    #[inline]
    pub fn direction(&self) -> [f64; 3] {
        let (sd, cd) = self.dec.sin_cos();
        let (sr, cr) = self.ra.sin_cos();
        [cd * cr, cd * sr, sd]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_construction_and_brightness() {
        let s = Star::new(100.5, 200.25, 3.0);
        assert_eq!(s.pos, Vec2::new(100.5, 200.25));
        assert_eq!(s.mag.value(), 3.0);
        let g = s.brightness(1000.0);
        assert!((g - crate::magnitude::brightness(3.0, 1000.0)).abs() < 1e-6);
    }

    #[test]
    fn snapping_rounds_to_pixel_centres() {
        let s = Star::new(10.6, 20.4, 5.0);
        let snapped = s.snapped();
        assert_eq!(snapped.pos, Vec2::new(11.0, 20.0));
        assert_eq!(snapped.mag, s.mag);
    }

    #[test]
    fn in_image_bounds() {
        let s = Star::new(0.0, 0.0, 1.0);
        assert!(s.in_image(10, 10));
        assert!(!Star::new(-0.1, 5.0, 1.0).in_image(10, 10));
        assert!(!Star::new(10.0, 5.0, 1.0).in_image(10, 10));
        assert!(Star::new(9.99, 9.99, 1.0).in_image(10, 10));
    }

    #[test]
    fn sky_star_direction_is_unit() {
        for (ra, dec) in [(0.0, 0.0), (1.0, 0.5), (4.0, -1.2), (6.3, 1.57)] {
            let d = SkyStar::new(ra, dec, 3.0).direction();
            let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sky_star_cardinal_directions() {
        let vernal = SkyStar::new(0.0, 0.0, 0.0).direction();
        assert!((vernal[0] - 1.0).abs() < 1e-12);
        let pole = SkyStar::new(0.0, std::f64::consts::FRAC_PI_2, 0.0).direction();
        assert!((pole[2] - 1.0).abs() < 1e-12);
    }
}
