//! The paper's two benchmark workloads.
//!
//! * **test 1** (paper §IV-A): star count sweeps `2^5 .. 2^17`; ROI side
//!   fixed at 10 (100 threads/block); image fixed at 1024×1024.
//! * **test 2** (paper §IV-B): ROI side sweeps up to 32×32 (1024
//!   threads/block, the CUDA 2.0 cap); star count fixed at 8192 (= 2^13);
//!   image fixed at 1024×1024.

use crate::catalog::StarCatalog;
use crate::generator::FieldGenerator;

/// Image edge used by both benchmarks (pixels).
pub const BENCH_IMAGE_SIZE: usize = 1024;
/// ROI side fixed by test 1.
pub const TEST1_ROI_SIDE: usize = 10;
/// Star count fixed by test 2 (2^13, the paper's 8192).
pub const TEST2_STARS: usize = 8192;
/// Star-count exponents swept by test 1 (2^5 ..= 2^17).
pub const TEST1_EXPONENTS: std::ops::RangeInclusive<u32> = 5..=17;
/// ROI sides swept by test 2 (even sides 2 ..= 32; the paper's x-axis).
pub const TEST2_ROI_SIDES: [usize; 16] =
    [2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32];

/// One benchmark configuration: a star field plus the ROI side to simulate.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable workload label, e.g. `test1/stars=2^13`.
    pub label: String,
    /// The star field.
    pub catalog: StarCatalog,
    /// ROI side length in pixels.
    pub roi_side: usize,
    /// Image width = height, pixels.
    pub image_size: usize,
}

impl Workload {
    /// Number of stars.
    pub fn star_count(&self) -> usize {
        self.catalog.len()
    }
}

/// Builds the test-1 workload with `2^exponent` stars.
///
/// # Panics
/// Panics if `exponent` exceeds 26 (guard against absurd allocations).
pub fn test1(exponent: u32, seed: u64) -> Workload {
    assert!(exponent <= 26, "test1 exponent {exponent} too large");
    let count = 1usize << exponent;
    let catalog = FieldGenerator::new(BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE).generate(count, seed);
    Workload {
        label: format!("test1/stars=2^{exponent}"),
        catalog,
        roi_side: TEST1_ROI_SIDE,
        image_size: BENCH_IMAGE_SIZE,
    }
}

/// Builds the test-2 workload with the given ROI side.
///
/// # Panics
/// Panics if `roi_side` is zero or exceeds 32 (the 1024-threads/block limit
/// of compute capability 2.0: 32×32 = 1024).
pub fn test2(roi_side: usize, seed: u64) -> Workload {
    assert!(
        (1..=32).contains(&roi_side),
        "test2 ROI side {roi_side} outside 1..=32 (1024 threads/block cap)"
    );
    let catalog =
        FieldGenerator::new(BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE).generate(TEST2_STARS, seed);
    Workload {
        label: format!("test2/roi={roi_side}"),
        catalog,
        roi_side,
        image_size: BENCH_IMAGE_SIZE,
    }
}

/// All test-1 workloads in sweep order.
pub fn test1_sweep(seed: u64) -> Vec<Workload> {
    TEST1_EXPONENTS.map(|e| test1(e, seed)).collect()
}

/// All test-2 workloads in sweep order.
pub fn test2_sweep(seed: u64) -> Vec<Workload> {
    TEST2_ROI_SIDES.iter().map(|&r| test2(r, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test1_parameters_match_paper() {
        let w = test1(13, 0);
        assert_eq!(w.star_count(), 8192);
        assert_eq!(w.roi_side, 10);
        assert_eq!(w.image_size, 1024);
        assert!(w.label.contains("2^13"));
    }

    #[test]
    fn test2_parameters_match_paper() {
        let w = test2(32, 0);
        assert_eq!(w.star_count(), 8192);
        assert_eq!(w.roi_side, 32);
        assert_eq!(w.image_size, 1024);
    }

    #[test]
    fn sweeps_have_expected_lengths() {
        assert_eq!(test1_sweep(0).len(), 13); // 2^5 ..= 2^17
        assert_eq!(test2_sweep(0).len(), 16); // sides 2..=32 step 2
    }

    #[test]
    fn same_seed_same_field_across_roi() {
        // test2 varies only the ROI side; the star field must be identical
        // across the sweep so times are comparable (paper fixes the field).
        let a = test2(4, 99);
        let b = test2(20, 99);
        assert_eq!(a.catalog, b.catalog);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn test1_rejects_huge_exponent() {
        let _ = test1(27, 0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=32")]
    fn test2_rejects_oversize_roi() {
        let _ = test2(33, 0);
    }
}
