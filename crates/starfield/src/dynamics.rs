//! Rigid-body attitude dynamics: propagating the sensor's orientation
//! through time so the simulator can produce the "real-time star imaging
//! under any time and any attitude" of the paper's introduction.
//!
//! The spacecraft's angular velocity `ω` (rad/s, body frame) advances the
//! attitude quaternion by the standard kinematic equation; we integrate
//! with the exact single-step solution for constant `ω` over `dt`
//! (rotation by `|ω|·dt` about `ω̂`), which composes exactly for piecewise
//! constant rates.

use crate::attitude::Attitude;

/// A constant-rate attitude propagator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttitudeDynamics {
    /// Current attitude.
    pub attitude: Attitude,
    /// Body-frame angular velocity, rad/s.
    pub omega: [f64; 3],
}

impl AttitudeDynamics {
    /// Starts a propagation from `attitude` with body rate `omega`.
    pub fn new(attitude: Attitude, omega: [f64; 3]) -> Self {
        AttitudeDynamics { attitude, omega }
    }

    /// The rotation rate magnitude, rad/s.
    pub fn rate(&self) -> f64 {
        let [x, y, z] = self.omega;
        (x * x + y * y + z * z).sqrt()
    }

    /// Advances the attitude by `dt` seconds (exact for constant rate).
    pub fn step(&mut self, dt: f64) {
        let rate = self.rate();
        if rate * dt.abs() < 1e-15 {
            return;
        }
        // Body-frame rate: the increment right-multiplies the attitude.
        let dq = Attitude::from_axis_angle(self.omega, rate * dt);
        self.attitude = self.attitude.mul(dq).normalized();
    }

    /// Returns the attitude `t` seconds ahead without mutating the state.
    pub fn at(&self, t: f64) -> Attitude {
        let mut copy = *self;
        copy.step(t);
        copy.attitude
    }

    /// Approximate star-streak length (pixels) that an exposure of
    /// `exposure_s` produces for a camera of `focal_px` focal length —
    /// the cross-boresight rate projected through the optics. Feed this to
    /// the smeared-PSF configuration.
    pub fn streak_length_px(&self, focal_px: f64, exposure_s: f64) -> f64 {
        // Only the component of ω perpendicular to the boresight (+z body)
        // translates stars; rotation about the boresight rotates the field
        // (negligible streak near the centre).
        let cross_rate = (self.omega[0] * self.omega[0] + self.omega[1] * self.omega[1]).sqrt();
        cross_rate * exposure_s * focal_px
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: [f64; 3], b: [f64; 3], eps: f64) -> bool {
        (0..3).all(|i| (a[i] - b[i]).abs() < eps)
    }

    #[test]
    fn zero_rate_is_stationary() {
        let mut d = AttitudeDynamics::new(Attitude::pointing(1.0, 0.2, 0.0), [0.0; 3]);
        let before = d.attitude;
        d.step(100.0);
        assert_eq!(d.attitude, before);
        assert_eq!(d.rate(), 0.0);
    }

    #[test]
    fn quarter_turn_about_boresight() {
        // Rolling about +z (boresight) must keep the boresight fixed.
        let start = Attitude::pointing(0.7, -0.1, 0.0);
        let mut d = AttitudeDynamics::new(start, [0.0, 0.0, FRAC_PI_2]);
        let bore0 = d.attitude.boresight();
        d.step(1.0); // 90° roll
        assert!(close(d.attitude.boresight(), bore0, 1e-12));
        assert_ne!(d.attitude, start, "the field must have rotated");
    }

    #[test]
    fn slew_moves_the_boresight_by_the_rate() {
        // Pitching about body +y moves the boresight by ω·t radians.
        let mut d = AttitudeDynamics::new(Attitude::IDENTITY, [0.0, 0.01, 0.0]);
        let bore0 = d.attitude.boresight();
        d.step(10.0); // 0.1 rad
        let bore1 = d.attitude.boresight();
        let dot: f64 = (0..3).map(|i| bore0[i] * bore1[i]).sum();
        assert!((dot.acos() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn integration_composes_exactly() {
        let d0 = AttitudeDynamics::new(Attitude::pointing(2.0, 0.5, 1.0), [0.02, -0.01, 0.03]);
        // One big step equals many small steps for constant rate.
        let big = d0.at(5.0);
        let mut small = d0;
        for _ in 0..500 {
            small.step(0.01);
        }
        let v = [0.3, -0.5, 0.81];
        assert!(close(big.rotate(v), small.attitude.rotate(v), 1e-9));
    }

    #[test]
    fn at_does_not_mutate() {
        let d = AttitudeDynamics::new(Attitude::IDENTITY, [0.1, 0.0, 0.0]);
        let _ = d.at(3.0);
        assert_eq!(d.attitude, Attitude::IDENTITY);
    }

    #[test]
    fn full_revolution_returns_home() {
        let start = Attitude::pointing(1.0, 0.3, 0.2);
        let d = AttitudeDynamics::new(start, [0.0, 0.0, 2.0 * PI]);
        let after = d.at(1.0);
        let v = [0.1, 0.2, 0.97];
        assert!(close(start.rotate(v), after.rotate(v), 1e-9));
    }

    #[test]
    fn streak_length_projects_cross_rate() {
        let d = AttitudeDynamics::new(Attitude::IDENTITY, [0.001, 0.0, 5.0]);
        // Boresight roll (z) contributes nothing; x-rate of 1 mrad/s over
        // 0.1 s through a 5000 px focal length = 0.5 px.
        let streak = d.streak_length_px(5000.0, 0.1);
        assert!((streak - 0.5).abs() < 1e-9);
        let still = AttitudeDynamics::new(Attitude::IDENTITY, [0.0, 0.0, 1.0]);
        assert_eq!(still.streak_length_px(5000.0, 0.1), 0.0);
    }
}
