//! Optimal attitude estimation — Davenport's q-method (the estimator
//! behind QUEST).
//!
//! [`crate::triad`] is exact for two observations but ignores the rest;
//! with many noisy centroids the optimal (Wahba-problem) attitude is the
//! eigenvector of Davenport's 4×4 `K` matrix for its largest eigenvalue:
//!
//! ```text
//! B = Σ wᵢ · bᵢ rᵢᵀ,   z = Σ wᵢ (bᵢ × rᵢ)
//! K = [ B + Bᵀ − tr(B)·I   z ]
//!     [ zᵀ                tr(B) ]
//! ```
//!
//! where `bᵢ` are body-frame and `rᵢ` inertial-frame unit vectors. We find
//! the dominant eigenvector by shifted power iteration (`K + ΣwᵢI` makes
//! the top eigenvalue strictly dominant for any realistic observation
//! set), which avoids pulling in an eigenvalue library.

use crate::attitude::Attitude;
use crate::error::FieldError;
use crate::triad::Observation;

type V3 = [f64; 3];

fn cross(a: V3, b: V3) -> V3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

/// Estimates the attitude from ≥ 2 weighted observations by the q-method.
///
/// `weights` may be empty (uniform weights) or must match
/// `observations.len()`; use inverse-variance weights when centroid
/// quality differs between stars.
pub fn quest(observations: &[Observation], weights: &[f64]) -> Result<Attitude, FieldError> {
    if observations.len() < 2 {
        return Err(FieldError::InvalidParameter(format!(
            "q-method needs at least 2 observations, got {}",
            observations.len()
        )));
    }
    if !weights.is_empty() && weights.len() != observations.len() {
        return Err(FieldError::InvalidParameter(format!(
            "{} weights for {} observations",
            weights.len(),
            observations.len()
        )));
    }
    if weights.iter().any(|&w| !(w.is_finite() && w > 0.0)) {
        return Err(FieldError::InvalidParameter(
            "weights must be positive and finite".into(),
        ));
    }

    // The problem is well-posed only when the body directions span at
    // least two distinct lines; a single (possibly repeated) direction
    // leaves the rotation about it unconstrained, and the power iteration
    // would silently return an arbitrary minimizer.
    let spans_two = observations.iter().skip(1).any(|o| {
        let c = cross(observations[0].body, o.body);
        (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt() > 1e-9
    });
    if !spans_two {
        return Err(FieldError::InvalidParameter(
            "q-method observations are collinear".into(),
        ));
    }

    // Attitude profile matrix B and the z vector.
    let mut b = [[0.0f64; 3]; 3];
    let mut z = [0.0f64; 3];
    let mut w_total = 0.0f64;
    for (k, obs) in observations.iter().enumerate() {
        let w = if weights.is_empty() { 1.0 } else { weights[k] };
        w_total += w;
        for (r, row) in b.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell += w * obs.body[r] * obs.inertial[c];
            }
        }
        let cr = cross(obs.body, obs.inertial);
        for (zi, ci) in z.iter_mut().zip(cr) {
            *zi += w * ci;
        }
    }
    let tr_b = b[0][0] + b[1][1] + b[2][2];

    // Davenport K (4×4 symmetric), quaternion ordered (x, y, z, w).
    let mut k = [[0.0f64; 4]; 4];
    for r in 0..3 {
        for c in 0..3 {
            k[r][c] = b[r][c] + b[c][r];
        }
        k[r][r] -= tr_b;
        k[r][3] = z[r];
        k[3][r] = z[r];
    }
    k[3][3] = tr_b;

    // Shifted power iteration: eigenvalues of K lie in [−w_total, w_total];
    // adding (w_total + 1)·I makes the largest strictly dominant and all
    // eigenvalues positive.
    let shift = w_total + 1.0;
    for (r, row) in k.iter_mut().enumerate() {
        row[r] += shift;
    }
    let matvec = |v: &[f64; 4]| {
        let mut out = [0.0f64; 4];
        for r in 0..4 {
            for c in 0..4 {
                out[r] += k[r][c] * v[c];
            }
        }
        out
    };
    let mut v = [0.5f64, 0.5, 0.5, 0.5];
    let mut converged = false;
    for _ in 0..20_000 {
        let mut next = matvec(&v);
        let n = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n < 1e-30 {
            return Err(FieldError::InvalidParameter(
                "q-method degenerate observation set".into(),
            ));
        }
        for x in &mut next {
            *x /= n;
        }
        v = next;
        // Converged when v is an eigenvector: ‖Kv − (vᵀKv)·v‖ ≈ 0. (A
        // successive-iterate test would stop early when convergence is
        // merely slow, e.g. for two-observation sets with a small gap.)
        let kv = matvec(&v);
        let lambda: f64 = v.iter().zip(&kv).map(|(a, b)| a * b).sum();
        let resid: f64 = kv
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - lambda * b).powi(2))
            .sum::<f64>()
            .sqrt();
        if resid < 1e-12 * lambda.abs().max(1.0) {
            converged = true;
            break;
        }
    }
    if !converged {
        // Never return an unconverged eigenvector as if it were the
        // attitude — a stalled iteration (degenerate gap, pathological
        // start) must surface as an error.
        return Err(FieldError::InvalidParameter(
            "q-method power iteration did not converge".into(),
        ));
    }

    // Davenport's attitude matrix is A(q) = R(q)ᵀ in this crate's Hamilton
    // active convention (the −2q₄[q_v×] cross term), i.e. b = conj(q)·r·q.
    // `Attitude::to_body` also rotates by the conjugate, so the eigenvector
    // *is* the stored attitude — no extra conjugation.
    let q = Attitude {
        w: v[3],
        x: v[0],
        y: v[1],
        z: v[2],
    };
    Ok(q.normalized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::SkyStar;
    use crate::triad::{attitude_error, triad};

    fn observe(q: Attitude, dirs: &[V3]) -> Vec<Observation> {
        dirs.iter()
            .map(|&d| Observation {
                body: q.to_body(d),
                inertial: d,
            })
            .collect()
    }

    fn star_dirs(n: usize) -> Vec<V3> {
        (0..n)
            .map(|k| SkyStar::new(0.3 + 0.17 * k as f64, 0.4 - 0.09 * k as f64, 3.0).direction())
            .collect()
    }

    #[test]
    fn recovers_attitudes_exactly_from_clean_observations() {
        let dirs = star_dirs(6);
        for (ra, dec, roll) in [(0.0, 0.0, 0.0), (1.3, 0.4, 2.0), (4.0, -1.0, 5.5)] {
            let truth = Attitude::pointing(ra, dec, roll);
            let est = quest(&observe(truth, &dirs), &[]).unwrap();
            let err = attitude_error(est, truth);
            assert!(err < 1e-6, "({ra},{dec},{roll}): error {err}");
        }
    }

    #[test]
    fn matches_triad_on_two_observations() {
        let dirs = star_dirs(2);
        let truth = Attitude::pointing(2.0, -0.3, 1.1);
        let obs = observe(truth, &dirs);
        let q_est = quest(&obs, &[]).unwrap();
        let t_est = triad(&obs).unwrap();
        assert!(attitude_error(q_est, t_est) < 1e-6);
    }

    #[test]
    fn beats_triad_under_noise_with_many_stars() {
        // Deterministic pseudo-noise on 10 observations: the optimal
        // estimator should average it down; TRIAD (best pair only) cannot.
        let dirs = star_dirs(10);
        let truth = Attitude::pointing(0.9, 0.2, 0.7);
        let mut obs = observe(truth, &dirs);
        for (k, o) in obs.iter_mut().enumerate() {
            // Equal-magnitude noise, varying axis and sign, so no pair is
            // accidentally noise-free (TRIAD would pick it and win on luck).
            let e = 2e-4 * if k % 2 == 0 { 1.0 } else { -1.0 };
            o.body[k % 3] += e;
            let n = (o.body[0].powi(2) + o.body[1].powi(2) + o.body[2].powi(2)).sqrt();
            for x in &mut o.body {
                *x /= n;
            }
        }
        let q_err = attitude_error(quest(&obs, &[]).unwrap(), truth);
        let t_err = attitude_error(triad(&obs).unwrap(), truth);
        assert!(
            q_err < t_err,
            "q-method {q_err:.2e} should beat TRIAD {t_err:.2e} under noise"
        );
        assert!(q_err < 3e-4, "q-method error {q_err:.2e}");
    }

    #[test]
    fn weights_downweight_bad_observations() {
        let dirs = star_dirs(5);
        let truth = Attitude::pointing(1.5, 0.1, 0.3);
        let mut obs = observe(truth, &dirs);
        // Corrupt one observation badly.
        obs[2].body[0] += 0.01;
        let n = (obs[2].body[0].powi(2) + obs[2].body[1].powi(2) + obs[2].body[2].powi(2)).sqrt();
        for x in &mut obs[2].body {
            *x /= n;
        }
        let uniform = attitude_error(quest(&obs, &[]).unwrap(), truth);
        let weighted = attitude_error(quest(&obs, &[1.0, 1.0, 1e-6, 1.0, 1.0]).unwrap(), truth);
        assert!(
            weighted < uniform / 10.0,
            "downweighting the outlier: {weighted:.2e} vs {uniform:.2e}"
        );
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(quest(&[], &[]).is_err());
        let one = Observation {
            body: [0.0, 0.0, 1.0],
            inertial: [0.0, 0.0, 1.0],
        };
        assert!(quest(&[one], &[]).is_err());
        let two = vec![one, one];
        assert!(quest(&two, &[1.0]).is_err(), "weight count mismatch");
        assert!(quest(&two, &[1.0, -1.0]).is_err(), "negative weight");
        // A duplicated observation leaves the attitude underdetermined.
        assert!(quest(&two, &[]).is_err(), "collinear set must be rejected");
    }
}
