//! Error type for the star-field substrate.

use std::fmt;

/// Errors produced by catalogue IO and field-of-view operations.
#[derive(Debug)]
pub enum FieldError {
    /// Underlying IO failure while reading or writing a catalogue.
    Io(std::io::Error),
    /// A malformed catalogue line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An invalid parameter (e.g. non-positive focal length or FOV).
    InvalidParameter(String),
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::Io(e) => write!(f, "catalogue IO error: {e}"),
            FieldError::Parse { line, message } => {
                write!(f, "catalogue parse error at line {line}: {message}")
            }
            FieldError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for FieldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FieldError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FieldError {
    fn from(e: std::io::Error) -> Self {
        FieldError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_formats() {
        let e = FieldError::Parse {
            line: 7,
            message: "bad magnitude".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = FieldError::InvalidParameter("fov".into());
        assert!(e.to_string().contains("fov"));
        let io: FieldError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(io.source().is_some());
    }
}
