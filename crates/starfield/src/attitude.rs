//! Spacecraft attitude as a unit quaternion.
//!
//! The star-simulator use case from the paper's introduction is a star
//! sensor producing imagery "under any time and any attitude"; attitude here
//! rotates the equatorial frame into the camera body frame (boresight = +z,
//! image +x = body +x, image +y = body +y).

/// A unit quaternion `w + xi + yj + zk` representing a rotation from the
/// inertial (equatorial) frame into the camera body frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attitude {
    /// Scalar part.
    pub w: f64,
    /// Vector part, i component.
    pub x: f64,
    /// Vector part, j component.
    pub y: f64,
    /// Vector part, k component.
    pub z: f64,
}

impl Attitude {
    /// The identity attitude: camera boresight points at `(ra, dec) = (90°, 0)`
    /// ... more precisely, body frame equals the inertial frame.
    pub const IDENTITY: Attitude = Attitude {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Quaternion from an axis (need not be normalized) and angle (radians).
    pub fn from_axis_angle(axis: [f64; 3], angle: f64) -> Self {
        let n = (axis[0] * axis[0] + axis[1] * axis[1] + axis[2] * axis[2]).sqrt();
        assert!(n > 0.0, "rotation axis must be non-zero");
        let (s, c) = (angle / 2.0).sin_cos();
        Attitude {
            w: c,
            x: axis[0] / n * s,
            y: axis[1] / n * s,
            z: axis[2] / n * s,
        }
        .normalized()
    }

    /// Attitude whose boresight (+z body axis) points at right ascension
    /// `ra` / declination `dec`, with roll angle `roll` about the boresight.
    ///
    /// All angles in radians. This is the conventional 3-1-3-like pointing
    /// construction for star trackers.
    pub fn pointing(ra: f64, dec: f64, roll: f64) -> Self {
        // Rotate +z onto the target direction: first rotate about y by
        // (π/2 − dec)… compose as Rz(ra) · Ry(π/2 − dec) applied to +z, then
        // roll about the final boresight.
        let q_ra = Attitude::from_axis_angle([0.0, 0.0, 1.0], ra);
        let q_dec = Attitude::from_axis_angle([0.0, 1.0, 0.0], std::f64::consts::FRAC_PI_2 - dec);
        let point = q_ra.mul(q_dec);
        let boresight = point.rotate([0.0, 0.0, 1.0]);
        let q_roll = Attitude::from_axis_angle(boresight, roll);
        q_roll.mul(point)
    }

    /// Hamilton product `self · rhs` (apply `rhs` first, then `self`).
    // An inherent `mul` is intentional: quaternion composition is the
    // Hamilton product and reads naturally as `a.mul(b)` without importing
    // `std::ops::Mul`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Attitude) -> Attitude {
        Attitude {
            w: self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            x: self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            y: self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            z: self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        }
    }

    /// The inverse rotation (conjugate, assuming unit norm).
    pub fn conjugate(self) -> Attitude {
        Attitude {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Renormalizes to a unit quaternion.
    pub fn normalized(self) -> Attitude {
        let n = (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt();
        assert!(n > 0.0, "cannot normalize the zero quaternion");
        Attitude {
            w: self.w / n,
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        }
    }

    /// Rotates a vector by this quaternion: `v' = q v q*`.
    pub fn rotate(self, v: [f64; 3]) -> [f64; 3] {
        // Optimised sandwich product: v' = v + 2·u×(u×v + w·v), u = (x,y,z).
        let u = [self.x, self.y, self.z];
        let cross = |a: [f64; 3], b: [f64; 3]| {
            [
                a[1] * b[2] - a[2] * b[1],
                a[2] * b[0] - a[0] * b[2],
                a[0] * b[1] - a[1] * b[0],
            ]
        };
        let t = cross(u, [v[0] * 1.0, v[1] * 1.0, v[2] * 1.0]);
        let t = [
            t[0] + self.w * v[0],
            t[1] + self.w * v[1],
            t[2] + self.w * v[2],
        ];
        let c = cross(u, t);
        [v[0] + 2.0 * c[0], v[1] + 2.0 * c[1], v[2] + 2.0 * c[2]]
    }

    /// Transforms an inertial-frame direction into the camera body frame.
    ///
    /// A star visible on-boresight maps to `[0, 0, 1]`.
    pub fn to_body(self, inertial: [f64; 3]) -> [f64; 3] {
        self.conjugate().rotate(inertial)
    }

    /// The inertial direction of the camera boresight (+z body axis).
    pub fn boresight(self) -> [f64; 3] {
        self.rotate([0.0, 0.0, 1.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: [f64; 3], b: [f64; 3], eps: f64) -> bool {
        (0..3).all(|i| (a[i] - b[i]).abs() < eps)
    }

    #[test]
    fn identity_rotation() {
        let v = [0.3, -0.4, 0.5];
        assert!(close(Attitude::IDENTITY.rotate(v), v, 1e-15));
    }

    #[test]
    fn axis_angle_quarter_turn() {
        let q = Attitude::from_axis_angle([0.0, 0.0, 1.0], FRAC_PI_2);
        // z-rotation by 90°: x → y.
        assert!(close(q.rotate([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0], 1e-12));
        assert!(close(q.rotate([0.0, 0.0, 1.0]), [0.0, 0.0, 1.0], 1e-12));
    }

    #[test]
    fn conjugate_inverts() {
        let q = Attitude::from_axis_angle([1.0, 2.0, 3.0], 0.73);
        let v = [0.1, 0.2, 0.3];
        let back = q.conjugate().rotate(q.rotate(v));
        assert!(close(back, v, 1e-12));
    }

    #[test]
    fn product_composes() {
        let a = Attitude::from_axis_angle([0.0, 0.0, 1.0], 0.4);
        let b = Attitude::from_axis_angle([0.0, 1.0, 0.0], 0.9);
        let v = [0.5, -0.2, 0.8];
        let composed = a.mul(b).rotate(v);
        let sequential = a.rotate(b.rotate(v));
        assert!(close(composed, sequential, 1e-12));
    }

    #[test]
    fn pointing_places_target_on_boresight() {
        for (ra, dec, roll) in [
            (0.0, 0.0, 0.0),
            (1.2, 0.4, 0.0),
            (4.0, -0.9, 1.1),
            (PI, FRAC_PI_2 - 0.01, 2.0),
        ] {
            let q = Attitude::pointing(ra, dec, roll);
            let target = crate::star::SkyStar::new(ra, dec, 0.0).direction();
            // The boresight must point at the target irrespective of roll.
            assert!(
                close(q.boresight(), target, 1e-10),
                "boresight={:?} target={:?}",
                q.boresight(),
                target
            );
            // And the star must appear on-axis in the body frame.
            assert!(close(q.to_body(target), [0.0, 0.0, 1.0], 1e-10));
        }
    }

    #[test]
    fn roll_spins_field_but_not_boresight() {
        let (ra, dec) = (0.7, 0.2);
        let q0 = Attitude::pointing(ra, dec, 0.0);
        let q1 = Attitude::pointing(ra, dec, 1.0);
        assert!(close(q0.boresight(), q1.boresight(), 1e-10));
        // An off-axis star lands at a different body position under roll.
        let off = crate::star::SkyStar::new(ra + 0.05, dec, 0.0).direction();
        let b0 = q0.to_body(off);
        let b1 = q1.to_body(off);
        assert!(!close(b0, b1, 1e-6));
        // But with the same off-axis angle (z component).
        assert!((b0[2] - b1[2]).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_axis_rejected() {
        let _ = Attitude::from_axis_angle([0.0, 0.0, 0.0], 1.0);
    }
}
