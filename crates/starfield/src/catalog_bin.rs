//! Compact binary catalogue format.
//!
//! The text format (`magnitude x y` per line) is human-friendly but ~3×
//! larger and slow to parse for the paper's 2^17-star benchmark fields.
//! This module defines a simple little-endian binary container:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"STARCAT1"
//! 8       8     star count (u64 LE)
//! 16      12·N  records: mag f32, x f32, y f32 (LE)
//! 16+12N  4     checksum: XOR of all record words (u32 LE)
//! ```
//!
//! The checksum catches truncation and bit corruption cheaply; it is not
//! cryptographic.

use std::io::{Read, Write};

use crate::catalog::StarCatalog;
use crate::error::FieldError;
use crate::star::Star;

const MAGIC: &[u8; 8] = b"STARCAT1";

/// Serializes a catalogue in the binary format.
pub fn write_binary<W: Write>(catalog: &StarCatalog, mut w: W) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(20 + catalog.len() * 12);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(catalog.len() as u64).to_le_bytes());
    let mut checksum = 0u32;
    for s in catalog.stars() {
        for word in [s.mag.value(), s.pos.x, s.pos.y] {
            let bits = word.to_bits();
            checksum ^= bits;
            out.extend_from_slice(&bits.to_le_bytes());
        }
    }
    out.extend_from_slice(&checksum.to_le_bytes());
    w.write_all(&out)
}

/// Deserializes the binary format, verifying magic, length and checksum.
pub fn read_binary<R: Read>(mut r: R) -> Result<StarCatalog, FieldError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf).map_err(FieldError::Io)?;
    if buf.len() < 20 {
        return Err(FieldError::Parse {
            line: 0,
            message: format!("binary catalogue truncated: {} bytes", buf.len()),
        });
    }
    if &buf[0..8] != MAGIC {
        return Err(FieldError::Parse {
            line: 0,
            message: "bad magic: not a STARCAT1 file".into(),
        });
    }
    let count = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
    let expected_len = 16 + count * 12 + 4;
    if buf.len() != expected_len {
        return Err(FieldError::Parse {
            line: 0,
            message: format!(
                "length mismatch: header says {count} stars ({expected_len} bytes), file has {}",
                buf.len()
            ),
        });
    }
    let mut stars = Vec::with_capacity(count);
    let mut checksum = 0u32;
    let mut off = 16;
    for _ in 0..count {
        let mut words = [0f32; 3];
        for w in &mut words {
            let bits = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
            checksum ^= bits;
            *w = f32::from_bits(bits);
            off += 4;
        }
        stars.push(Star::new(words[1], words[2], words[0]));
    }
    let stored = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
    if stored != checksum {
        return Err(FieldError::Parse {
            line: 0,
            message: format!("checksum mismatch: stored {stored:#010x}, computed {checksum:#010x}"),
        });
    }
    Ok(StarCatalog::from_stars(stars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::FieldGenerator;

    #[test]
    fn roundtrip_preserves_everything() {
        let cat = FieldGenerator::new(1024, 1024).generate(500, 9);
        let mut buf = Vec::new();
        write_binary(&cat, &mut buf).unwrap();
        assert_eq!(buf.len(), 20 + 500 * 12);
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, cat);
    }

    #[test]
    fn empty_catalogue_roundtrips() {
        let cat = StarCatalog::new();
        let mut buf = Vec::new();
        write_binary(&cat, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), cat);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let cat = FieldGenerator::new(1024, 1024).generate(1000, 3);
        let mut bin = Vec::new();
        write_binary(&cat, &mut bin).unwrap();
        let mut text = Vec::new();
        cat.write_text(&mut text).unwrap();
        assert!(
            bin.len() * 2 < text.len(),
            "binary {} vs text {}",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_binary(&StarCatalog::new(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_binary(&buf[..]),
            Err(FieldError::Parse { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let cat = FieldGenerator::new(64, 64).generate(10, 1);
        let mut buf = Vec::new();
        write_binary(&cat, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("length mismatch"));
        assert!(read_binary(&buf[..4]).is_err());
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let cat = FieldGenerator::new(64, 64).generate(10, 1);
        let mut buf = Vec::new();
        write_binary(&cat, &mut buf).unwrap();
        buf[20] ^= 0x40; // flip a bit in the first record
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }
}
