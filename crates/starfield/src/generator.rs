//! Seeded synthetic star-field generators.
//!
//! The paper's benchmarks use randomly generated star files ("these stars
//! are the simulated data which have been generated randomly", §IV). These
//! generators reproduce that setup deterministically, plus two more
//! realistic distributions used by the examples.

use simrng::Rng64;

use crate::catalog::StarCatalog;
use crate::fov::SkyCatalog;
use crate::magnitude::{MAG_MAX, MAG_MIN};
use crate::star::{SkyStar, Star};

/// How star positions are distributed across the image plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PositionModel {
    /// Uniform over the full image (the paper's benchmark setup).
    Uniform,
    /// Uniform, but snapped to integer pixel centres. Makes the adaptive
    /// simulator's lookup table exact, which is useful for validation.
    UniformPixelCentred,
    /// Gaussian clusters: `clusters` cluster centres drawn uniformly, each
    /// star assigned to a random cluster with positional std-dev `sigma_px`.
    /// Models dense fields (e.g. pointing near the galactic plane) and
    /// stresses the atomic-contention path of the parallel simulator.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
        /// Positional standard deviation around a centre, pixels.
        sigma_px: f32,
    },
}

/// How magnitudes are distributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MagnitudeModel {
    /// Uniform in `[min, max]` (the paper's benchmark setup, 0..15).
    Uniform {
        /// Dimmest-allowed magnitude bound (lower value = brighter).
        min: f32,
        /// Brightest-allowed magnitude bound.
        max: f32,
    },
    /// Realistic cumulative star-count law `N(<m) ∝ 10^(0.51·m)`: dim stars
    /// vastly outnumber bright ones, as in real catalogues.
    Realistic {
        /// Brightest magnitude to generate.
        min: f32,
        /// Dimmest magnitude to generate.
        max: f32,
    },
}

/// A deterministic star-field generator.
#[derive(Debug, Clone)]
pub struct FieldGenerator {
    width: usize,
    height: usize,
    positions: PositionModel,
    magnitudes: MagnitudeModel,
}

impl FieldGenerator {
    /// Generator for a `width × height` image with the paper's default
    /// models (uniform positions, uniform magnitudes in `[0, 15]`).
    pub fn new(width: usize, height: usize) -> Self {
        FieldGenerator {
            width,
            height,
            positions: PositionModel::Uniform,
            magnitudes: MagnitudeModel::Uniform {
                min: MAG_MIN,
                max: MAG_MAX,
            },
        }
    }

    /// Sets the position model.
    pub fn positions(mut self, model: PositionModel) -> Self {
        self.positions = model;
        self
    }

    /// Sets the magnitude model.
    pub fn magnitudes(mut self, model: MagnitudeModel) -> Self {
        self.magnitudes = model;
        self
    }

    /// Generates `count` stars with RNG seed `seed`.
    ///
    /// The same `(seed, count, models, image size)` always produces the same
    /// catalogue, so experiments are reproducible run-to-run.
    pub fn generate(&self, count: usize, seed: u64) -> StarCatalog {
        let mut rng = Rng64::new(seed);
        let mut stars = Vec::with_capacity(count);

        // Pre-draw cluster centres if needed so cluster layout is stable in
        // `count` (adding stars doesn't reshuffle centres).
        let centres: Vec<(f32, f32)> = match self.positions {
            PositionModel::Clustered { clusters, .. } => (0..clusters.max(1))
                .map(|_| {
                    (
                        rng.range_f32(0.0, self.width as f32),
                        rng.range_f32(0.0, self.height as f32),
                    )
                })
                .collect(),
            _ => Vec::new(),
        };

        for _ in 0..count {
            let (x, y) = self.sample_position(&mut rng, &centres);
            let m = self.sample_magnitude(&mut rng);
            stars.push(Star::new(x, y, m));
        }
        StarCatalog::from_stars(stars)
    }

    fn sample_position(&self, rng: &mut Rng64, centres: &[(f32, f32)]) -> (f32, f32) {
        let w = self.width as f32;
        let h = self.height as f32;
        match self.positions {
            PositionModel::Uniform => (rng.range_f32(0.0, w), rng.range_f32(0.0, h)),
            PositionModel::UniformPixelCentred => (
                rng.range_usize(0, self.width) as f32,
                rng.range_usize(0, self.height) as f32,
            ),
            PositionModel::Clustered { sigma_px, .. } => {
                let (cx, cy) = centres[rng.range_usize(0, centres.len())];
                // Box–Muller normal deviates.
                let u1 = rng.f32().max(f32::EPSILON);
                let u2 = rng.f32();
                let r = (-2.0 * u1.ln()).sqrt() * sigma_px;
                let theta = std::f32::consts::TAU * u2;
                let x = (cx + r * theta.cos()).clamp(0.0, w - 1.0);
                let y = (cy + r * theta.sin()).clamp(0.0, h - 1.0);
                (x, y)
            }
        }
    }

    fn sample_magnitude(&self, rng: &mut Rng64) -> f32 {
        match self.magnitudes {
            MagnitudeModel::Uniform { min, max } => {
                if max > min {
                    rng.range_f32(min, max)
                } else {
                    min
                }
            }
            MagnitudeModel::Realistic { min, max } => {
                // Inverse-CDF sampling of N(<m) ∝ 10^(0.51 m) on [min, max]:
                // F(m) = (10^(k·m) − 10^(k·min)) / (10^(k·max) − 10^(k·min)).
                const K: f32 = 0.51;
                let lo = 10.0f32.powf(K * min);
                let hi = 10.0f32.powf(K * max);
                let u = rng.f32();
                ((lo + u * (hi - lo)).log10() / K).clamp(min, max)
            }
        }
    }
}

/// Generates a synthetic full-sky catalogue of `count` stars, uniformly
/// distributed over the celestial sphere with the realistic magnitude law.
///
/// Used by the star-tracker example as a stand-in for a real catalogue
/// (e.g. Hipparcos), which we do not ship.
pub fn synthetic_sky(count: usize, mag_min: f32, mag_max: f32, seed: u64) -> SkyCatalog {
    let mut rng = Rng64::new(seed);
    let gen = FieldGenerator::new(1, 1).magnitudes(MagnitudeModel::Realistic {
        min: mag_min,
        max: mag_max,
    });
    (0..count)
        .map(|_| {
            let ra = rng.range_f64(0.0, std::f64::consts::TAU);
            // Uniform on the sphere: dec = asin(u), u ∈ [−1, 1].
            let dec = rng.range_f64(-1.0, 1.0).asin();
            let m = gen.sample_magnitude(&mut rng);
            SkyStar::new(ra, dec, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let g = FieldGenerator::new(1024, 1024);
        let a = g.generate(100, 42);
        let b = g.generate(100, 42);
        assert_eq!(a, b);
        let c = g.generate(100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_positions_cover_image() {
        let g = FieldGenerator::new(256, 128);
        let cat = g.generate(5000, 7);
        for s in cat.stars() {
            assert!(s.in_image(256, 128), "star out of bounds: {:?}", s.pos);
        }
        // Rough coverage: each quadrant should get a decent share.
        let q = cat.in_rect(0.0, 0.0, 128.0, 64.0).len();
        assert!(q > 900 && q < 1600, "quadrant share {q} of 5000");
    }

    #[test]
    fn pixel_centred_positions_are_integers() {
        let g = FieldGenerator::new(64, 64).positions(PositionModel::UniformPixelCentred);
        let cat = g.generate(500, 3);
        for s in cat.stars() {
            assert_eq!(s.pos.x.fract(), 0.0);
            assert_eq!(s.pos.y.fract(), 0.0);
        }
    }

    #[test]
    fn clustered_positions_cluster() {
        let g = FieldGenerator::new(1024, 1024).positions(PositionModel::Clustered {
            clusters: 3,
            sigma_px: 5.0,
        });
        let cat = g.generate(3000, 11);
        // With σ=5 around 3 centres, the mean pairwise spread is far below
        // a uniform field's. Check mean distance to nearest centre proxy:
        // stars should be concentrated — the bounding box of a random 100
        // stars from one run is not the whole image. Use variance heuristic.
        let mean_x: f32 = cat.stars().iter().map(|s| s.pos.x).sum::<f32>() / cat.len() as f32;
        let var_x: f32 = cat
            .stars()
            .iter()
            .map(|s| (s.pos.x - mean_x).powi(2))
            .sum::<f32>()
            / cat.len() as f32;
        // Uniform variance would be 1024²/12 ≈ 87k; clusters give much less
        // unless centres happen to be maximally spread (3 centres ⇒ still
        // below ~3x). Loose bound:
        assert!(var_x < 250_000.0);
        for s in cat.stars() {
            assert!(s.in_image(1024, 1024));
        }
    }

    #[test]
    fn uniform_magnitudes_in_range() {
        let g =
            FieldGenerator::new(64, 64).magnitudes(MagnitudeModel::Uniform { min: 2.0, max: 6.0 });
        let cat = g.generate(2000, 5);
        for s in cat.stars() {
            assert!((2.0..6.0).contains(&s.mag.value()));
        }
    }

    #[test]
    fn degenerate_uniform_magnitude_range() {
        let g =
            FieldGenerator::new(64, 64).magnitudes(MagnitudeModel::Uniform { min: 4.0, max: 4.0 });
        let cat = g.generate(10, 5);
        for s in cat.stars() {
            assert_eq!(s.mag.value(), 4.0);
        }
    }

    #[test]
    fn realistic_magnitudes_skew_dim() {
        let g = FieldGenerator::new(64, 64).magnitudes(MagnitudeModel::Realistic {
            min: 0.0,
            max: 10.0,
        });
        let cat = g.generate(10_000, 9);
        let dim = cat.stars().iter().filter(|s| s.mag.value() > 8.0).count();
        let bright = cat.stars().iter().filter(|s| s.mag.value() < 2.0).count();
        // 10^(0.51·10) / 10^(0.51·2) ≈ 1.2e4: dim stars dominate massively.
        assert!(
            dim > bright * 50,
            "dim={dim} bright={bright}: distribution should be dim-heavy"
        );
        for s in cat.stars() {
            assert!((0.0..=10.0).contains(&s.mag.value()));
        }
    }

    #[test]
    fn synthetic_sky_is_deterministic_and_on_sphere() {
        let a = synthetic_sky(1000, 0.0, 6.0, 1);
        let b = synthetic_sky(1000, 0.0, 6.0, 1);
        assert_eq!(a.len(), 1000);
        for (x, y) in a.stars().iter().zip(b.stars()) {
            assert_eq!(x.ra, y.ra);
            assert_eq!(x.dec, y.dec);
        }
        for s in a.stars() {
            assert!((0.0..std::f64::consts::TAU).contains(&s.ra));
            assert!(s.dec.abs() <= std::f64::consts::FRAC_PI_2);
            assert!((0.0..=6.0).contains(&s.mag.value()));
        }
    }

    #[test]
    fn sky_declination_is_area_uniform() {
        // asin sampling: |dec| < 30° should hold ~half the stars (sin 30° = 0.5).
        let sky = synthetic_sky(20_000, 0.0, 6.0, 2);
        let low = sky
            .stars()
            .iter()
            .filter(|s| s.dec.abs() < 30.0f64.to_radians())
            .count();
        assert!(
            (low as f64 / 20_000.0 - 0.5).abs() < 0.03,
            "fraction below 30° was {}",
            low as f64 / 20_000.0
        );
    }
}
