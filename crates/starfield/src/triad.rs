//! Attitude determination from star observations — the TRIAD algorithm.
//!
//! The paper's motivating device, the star sensor, is "an important
//! instrument of attitude determination on satellite that primarily uses
//! star image for real-time attitude adjustment" (§I). This module closes
//! that loop: given two (or more) stars identified in the image — unit
//! vectors in the camera body frame — and their catalogue directions in
//! the inertial frame, TRIAD (Black 1964) reconstructs the attitude.
//!
//! TRIAD builds an orthonormal triad from each vector pair and equates
//! them; it is exact for two noiseless observations and is the classical
//! baseline against which QUEST-class estimators are measured. With more
//! than two observations we pick the pair with the widest angular
//! separation (best conditioning).

use crate::attitude::Attitude;
use crate::error::FieldError;

type V3 = [f64; 3];

fn dot(a: V3, b: V3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn cross(a: V3, b: V3) -> V3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn normalize(v: V3) -> Option<V3> {
    let n = dot(v, v).sqrt();
    if n < 1e-12 {
        None
    } else {
        Some([v[0] / n, v[1] / n, v[2] / n])
    }
}

/// One matched star: its direction in the camera body frame (from
/// centroiding + unprojection) and in the inertial frame (from the
/// catalogue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Unit direction in the camera body frame.
    pub body: V3,
    /// Unit direction in the inertial frame.
    pub inertial: V3,
}

/// Estimates the attitude from ≥ 2 observations with TRIAD.
///
/// Returns the quaternion `q` such that `q.to_body(inertial) ≈ body` for
/// every observation. Errors when fewer than two observations are given or
/// the chosen pair is (near-)collinear.
pub fn triad(observations: &[Observation]) -> Result<Attitude, FieldError> {
    if observations.len() < 2 {
        return Err(FieldError::InvalidParameter(format!(
            "TRIAD needs at least 2 observations, got {}",
            observations.len()
        )));
    }
    // Pick the best-conditioned pair: smallest |cos| between body vectors.
    let (mut best_i, mut best_j, mut best_cos) = (0, 1, f64::INFINITY);
    for i in 0..observations.len() {
        for j in (i + 1)..observations.len() {
            let c = dot(observations[i].body, observations[j].body).abs();
            if c < best_cos {
                (best_i, best_j, best_cos) = (i, j, c);
            }
        }
    }
    if best_cos > 1.0 - 1e-9 {
        return Err(FieldError::InvalidParameter(
            "TRIAD observations are collinear".into(),
        ));
    }
    let (a, b) = (observations[best_i], observations[best_j]);

    // Body triad.
    let t1b = normalize(a.body).ok_or_else(bad_vector)?;
    let t2b = normalize(cross(a.body, b.body)).ok_or_else(bad_vector)?;
    let t3b = cross(t1b, t2b);
    // Inertial triad.
    let t1i = normalize(a.inertial).ok_or_else(bad_vector)?;
    let t2i = normalize(cross(a.inertial, b.inertial)).ok_or_else(bad_vector)?;
    let t3i = cross(t1i, t2i);

    // Rotation matrix R (inertial → body): R = Σ t_kb · t_kiᵀ.
    let mut m = [[0.0f64; 3]; 3];
    for (tb, ti) in [(t1b, t1i), (t2b, t2i), (t3b, t3i)] {
        for r in 0..3 {
            for c in 0..3 {
                m[r][c] += tb[r] * ti[c];
            }
        }
    }

    // Matrix → quaternion (Shepperd's method, branch on the largest term).
    // `m` maps inertial to body; Attitude rotates body→inertial via
    // `rotate` and inertial→body via `to_body`, i.e. `to_body` applies the
    // conjugate. So build q from R and conjugate at the end.
    let trace = m[0][0] + m[1][1] + m[2][2];
    let q = if trace > 0.0 {
        let s = (trace + 1.0).sqrt() * 2.0;
        Attitude {
            w: s / 4.0,
            x: (m[2][1] - m[1][2]) / s,
            y: (m[0][2] - m[2][0]) / s,
            z: (m[1][0] - m[0][1]) / s,
        }
    } else if m[0][0] > m[1][1] && m[0][0] > m[2][2] {
        let s = (1.0 + m[0][0] - m[1][1] - m[2][2]).sqrt() * 2.0;
        Attitude {
            w: (m[2][1] - m[1][2]) / s,
            x: s / 4.0,
            y: (m[0][1] + m[1][0]) / s,
            z: (m[0][2] + m[2][0]) / s,
        }
    } else if m[1][1] > m[2][2] {
        let s = (1.0 + m[1][1] - m[0][0] - m[2][2]).sqrt() * 2.0;
        Attitude {
            w: (m[0][2] - m[2][0]) / s,
            x: (m[0][1] + m[1][0]) / s,
            y: s / 4.0,
            z: (m[1][2] + m[2][1]) / s,
        }
    } else {
        let s = (1.0 + m[2][2] - m[0][0] - m[1][1]).sqrt() * 2.0;
        Attitude {
            w: (m[1][0] - m[0][1]) / s,
            x: (m[0][2] + m[2][0]) / s,
            y: (m[1][2] + m[2][1]) / s,
            z: s / 4.0,
        }
    };
    // q built above represents the inertial→body rotation as an active
    // rotation; Attitude stores body→inertial, so conjugate.
    Ok(q.conjugate().normalized())
}

fn bad_vector() -> FieldError {
    FieldError::InvalidParameter("TRIAD observation vector is degenerate".into())
}

/// The angular error between two attitudes, radians — the rotation angle
/// of `a⁻¹·b`.
pub fn attitude_error(a: Attitude, b: Attitude) -> f64 {
    let d = a.conjugate().mul(b);
    2.0 * d.w.abs().min(1.0).acos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::SkyStar;

    fn observe(q: Attitude, dirs: &[V3]) -> Vec<Observation> {
        dirs.iter()
            .map(|&d| Observation {
                body: q.to_body(d),
                inertial: d,
            })
            .collect()
    }

    #[test]
    fn recovers_identity() {
        let dirs = [
            SkyStar::new(0.1, 0.2, 0.0).direction(),
            SkyStar::new(1.0, -0.3, 0.0).direction(),
        ];
        let obs = observe(Attitude::IDENTITY, &dirs);
        let est = triad(&obs).unwrap();
        assert!(attitude_error(est, Attitude::IDENTITY) < 1e-10);
    }

    #[test]
    fn recovers_arbitrary_attitudes_exactly() {
        let dirs = [
            SkyStar::new(0.3, 0.1, 0.0).direction(),
            SkyStar::new(0.5, 0.25, 0.0).direction(),
            SkyStar::new(5.9, -0.7, 0.0).direction(),
        ];
        for (ra, dec, roll) in [(0.0, 0.0, 0.0), (1.3, 0.4, 2.0), (4.0, -1.0, 5.5)] {
            let truth = Attitude::pointing(ra, dec, roll);
            let est = triad(&observe(truth, &dirs)).unwrap();
            let err = attitude_error(est, truth);
            assert!(err < 1e-9, "({ra},{dec},{roll}): error {err} rad");
        }
    }

    #[test]
    fn small_observation_noise_gives_small_attitude_error() {
        let dirs = [
            SkyStar::new(0.3, 0.1, 0.0).direction(),
            SkyStar::new(0.6, 0.4, 0.0).direction(),
        ];
        let truth = Attitude::pointing(2.0, 0.3, 1.0);
        let mut obs = observe(truth, &dirs);
        // Perturb one body vector by ~10 µrad.
        obs[0].body[0] += 1e-5;
        let est = triad(&obs).unwrap();
        let err = attitude_error(est, truth);
        assert!(err < 1e-4, "error {err} rad for 1e-5 perturbation");
        assert!(err > 0.0);
    }

    #[test]
    fn picks_the_widest_pair() {
        // Two nearly collinear stars plus one far away: TRIAD must use the
        // far one and stay accurate.
        let dirs = [
            SkyStar::new(0.300, 0.100, 0.0).direction(),
            SkyStar::new(0.3001, 0.1001, 0.0).direction(),
            SkyStar::new(1.8, -0.5, 0.0).direction(),
        ];
        let truth = Attitude::pointing(0.9, 0.2, 0.4);
        let est = triad(&observe(truth, &dirs)).unwrap();
        assert!(attitude_error(est, truth) < 1e-9);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(triad(&[]).is_err());
        let one = Observation {
            body: [0.0, 0.0, 1.0],
            inertial: [0.0, 0.0, 1.0],
        };
        assert!(triad(&[one]).is_err());
        // Collinear pair.
        let obs = vec![one, one];
        assert!(triad(&obs).is_err());
    }

    #[test]
    fn attitude_error_metric() {
        let a = Attitude::pointing(1.0, 0.2, 0.0);
        assert!(attitude_error(a, a) < 1e-12);
        let b = Attitude::from_axis_angle([0.0, 1.0, 0.0], 0.01).mul(a);
        assert!((attitude_error(a, b) - 0.01).abs() < 1e-9);
    }
}
