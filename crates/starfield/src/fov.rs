//! Field-of-view retrieval: from a sky catalogue and an attitude to the
//! image-plane star list the simulators consume.
//!
//! The paper delegates this step to reference \[4\] ("The star obtaining
//! process will not be discussed in this paper"); we implement it as a
//! substrate so the star-tracker example can run end-to-end.

use crate::attitude::Attitude;
use crate::catalog::StarCatalog;
use crate::projection::Camera;
use crate::star::{SkyStar, Star};

/// A catalogue of stars on the celestial sphere.
#[derive(Debug, Clone, Default)]
pub struct SkyCatalog {
    stars: Vec<SkyStar>,
}

impl SkyCatalog {
    /// Empty sky catalogue.
    pub fn new() -> Self {
        SkyCatalog { stars: Vec::new() }
    }

    /// Catalogue from an existing list.
    pub fn from_stars(stars: Vec<SkyStar>) -> Self {
        SkyCatalog { stars }
    }

    /// Number of stars.
    pub fn len(&self) -> usize {
        self.stars.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.stars.is_empty()
    }

    /// The stars.
    pub fn stars(&self) -> &[SkyStar] {
        &self.stars
    }

    /// Appends a star.
    pub fn push(&mut self, star: SkyStar) {
        self.stars.push(star);
    }

    /// Retrieves the stars visible to `camera` under `attitude`, projected
    /// onto the image plane.
    ///
    /// `margin_px` extends the acceptance window beyond the image bounds so
    /// stars whose centre falls just outside but whose ROI still clips the
    /// image are retained (set it to the ROI margin).
    pub fn view(&self, attitude: Attitude, camera: &Camera, margin_px: f32) -> StarCatalog {
        // Coarse cull: angular cone test against the image diagonal plus the
        // pixel margin, then exact projection.
        let margin_angle = (margin_px as f64 / camera.focal_px).atan();
        let cos_limit = (camera.diagonal_half_angle() + margin_angle).cos();
        let boresight = attitude.boresight();

        let mut out = StarCatalog::new();
        for s in &self.stars {
            let dir = s.direction();
            let cos = dir[0] * boresight[0] + dir[1] * boresight[1] + dir[2] * boresight[2];
            if cos < cos_limit {
                continue;
            }
            let body = attitude.to_body(dir);
            if let Some(p) = camera.project(body) {
                let in_window = p.x >= -margin_px
                    && p.y >= -margin_px
                    && p.x < camera.width as f32 + margin_px
                    && p.y < camera.height as f32 + margin_px;
                if in_window {
                    out.push(Star { pos: p, mag: s.mag });
                }
            }
        }
        out
    }
}

impl FromIterator<SkyStar> for SkyCatalog {
    fn from_iter<T: IntoIterator<Item = SkyStar>>(iter: T) -> Self {
        SkyCatalog {
            stars: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> Camera {
        Camera::from_fov(10.0f64.to_radians(), 1024, 1024).unwrap()
    }

    #[test]
    fn boresight_star_lands_at_centre() {
        let (ra, dec) = (1.0, 0.3);
        let sky = SkyCatalog::from_stars(vec![SkyStar::new(ra, dec, 3.0)]);
        let att = Attitude::pointing(ra, dec, 0.0);
        let cat = sky.view(att, &camera(), 0.0);
        assert_eq!(cat.len(), 1);
        let p = cat.stars()[0].pos;
        assert!((p.x - 512.0).abs() < 1e-2 && (p.y - 512.0).abs() < 1e-2);
    }

    #[test]
    fn stars_behind_are_culled() {
        let (ra, dec) = (1.0, 0.3);
        // A star diametrically opposite the boresight.
        let anti = SkyStar::new(ra + std::f64::consts::PI, -dec, 3.0);
        let sky = SkyCatalog::from_stars(vec![anti]);
        let att = Attitude::pointing(ra, dec, 0.0);
        assert!(sky.view(att, &camera(), 0.0).is_empty());
    }

    #[test]
    fn off_fov_star_is_culled_but_margin_keeps_edge_star() {
        let cam = camera();
        let att = Attitude::pointing(0.0, 0.0, 0.0);
        // A star ~half FOV + a few pixels off axis: just outside the image.
        let half_fov = cam.horizontal_fov() / 2.0;
        let just_out = SkyStar::new(0.0 + 1e-9, half_fov + 8.0 / cam.focal_px, 3.0);
        let sky = SkyCatalog::from_stars(vec![just_out]);
        assert!(sky.view(att, &cam, 0.0).is_empty());
        let with_margin = sky.view(att, &cam, 16.0);
        assert_eq!(with_margin.len(), 1, "margin window should keep the star");
    }

    #[test]
    fn dense_sky_visible_fraction_is_plausible() {
        // A ring of stars around the equator; pointing at the equator should
        // see roughly fov/2π of them.
        let n = 3600;
        let sky: SkyCatalog = (0..n)
            .map(|i| SkyStar::new(i as f64 / n as f64 * std::f64::consts::TAU, 0.0, 3.0))
            .collect();
        let cam = camera();
        let att = Attitude::pointing(1.0, 0.0, 0.0);
        let seen = sky.view(att, &cam, 0.0).len();
        let expect = (cam.horizontal_fov() / std::f64::consts::TAU * n as f64) as usize;
        assert!(
            (seen as i64 - expect as i64).unsigned_abs() as usize <= expect / 5 + 2,
            "saw {seen}, expected about {expect}"
        );
    }

    #[test]
    fn collection_basics() {
        let mut sky = SkyCatalog::new();
        assert!(sky.is_empty());
        sky.push(SkyStar::new(0.0, 0.0, 1.0));
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.stars().len(), 1);
    }
}
