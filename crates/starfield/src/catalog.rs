//! Star catalogues: in-memory storage, range queries, and the text format
//! used to exchange the paper's benchmark star files.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

use crate::error::FieldError;
use crate::star::Star;

/// An in-memory catalogue of image-plane stars.
///
/// The sequential simulator's *Star generation* stage (paper §III-A)
/// retrieves stars in the FOV from a catalogue; this type is its output and
/// the common input of all three simulators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StarCatalog {
    stars: Vec<Star>,
}

impl StarCatalog {
    /// Empty catalogue.
    pub fn new() -> Self {
        StarCatalog { stars: Vec::new() }
    }

    /// Catalogue from an existing star list.
    pub fn from_stars(stars: Vec<Star>) -> Self {
        StarCatalog { stars }
    }

    /// Number of stars.
    #[inline]
    pub fn len(&self) -> usize {
        self.stars.len()
    }

    /// True when no stars are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stars.is_empty()
    }

    /// The stars, in catalogue order.
    #[inline]
    pub fn stars(&self) -> &[Star] {
        &self.stars
    }

    /// Mutable access to the stars.
    #[inline]
    pub fn stars_mut(&mut self) -> &mut [Star] {
        &mut self.stars
    }

    /// Appends a star.
    pub fn push(&mut self, star: Star) {
        self.stars.push(star);
    }

    /// Stars whose centre lies inside the axis-aligned rectangle
    /// `[x0, x1) × [y0, y1)`.
    pub fn in_rect(&self, x0: f32, y0: f32, x1: f32, y1: f32) -> Vec<Star> {
        self.stars
            .iter()
            .copied()
            .filter(|s| s.pos.x >= x0 && s.pos.x < x1 && s.pos.y >= y0 && s.pos.y < y1)
            .collect()
    }

    /// Stars brighter than (magnitude strictly below) `mag_limit`.
    pub fn brighter_than(&self, mag_limit: f32) -> Vec<Star> {
        self.stars
            .iter()
            .copied()
            .filter(|s| s.mag.value() < mag_limit)
            .collect()
    }

    /// Sorts stars brightest-first (ascending magnitude). Stable.
    pub fn sort_by_brightness(&mut self) {
        self.stars
            .sort_by(|a, b| a.mag.value().total_cmp(&b.mag.value()));
    }

    /// Total brightness of the catalogue under factor `A` (useful as a flux
    /// conservation reference in tests).
    pub fn total_brightness(&self, a_factor: f32) -> f64 {
        self.stars
            .iter()
            .map(|s| s.brightness(a_factor) as f64)
            .sum()
    }

    /// Serializes to the benchmark text format: one star per line,
    /// `magnitude x y`, '#'-prefixed comment lines allowed.
    pub fn write_text<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let mut buf = String::with_capacity(self.stars.len() * 24 + 64);
        buf.push_str("# starsim catalogue: magnitude x y\n");
        for s in &self.stars {
            // `write!` into a String never fails.
            let _ = writeln!(buf, "{} {} {}", s.mag.value(), s.pos.x, s.pos.y);
        }
        w.write_all(buf.as_bytes())
    }

    /// Parses the benchmark text format produced by [`Self::write_text`].
    pub fn read_text<R: Read>(r: R) -> Result<Self, FieldError> {
        let reader = BufReader::new(r);
        let mut stars = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line.map_err(FieldError::Io)?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let parse = |tok: Option<&str>, what: &str| -> Result<f32, FieldError> {
                let tok = tok.ok_or_else(|| FieldError::Parse {
                    line: lineno + 1,
                    message: format!("missing {what}"),
                })?;
                tok.parse::<f32>().map_err(|e| FieldError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what} `{tok}`: {e}"),
                })
            };
            let mag = parse(it.next(), "magnitude")?;
            let x = parse(it.next(), "x coordinate")?;
            let y = parse(it.next(), "y coordinate")?;
            if it.next().is_some() {
                return Err(FieldError::Parse {
                    line: lineno + 1,
                    message: "trailing fields after `magnitude x y`".into(),
                });
            }
            stars.push(Star::new(x, y, mag));
        }
        Ok(StarCatalog { stars })
    }
}

impl FromIterator<Star> for StarCatalog {
    fn from_iter<T: IntoIterator<Item = Star>>(iter: T) -> Self {
        StarCatalog {
            stars: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a StarCatalog {
    type Item = &'a Star;
    type IntoIter = std::slice::Iter<'a, Star>;
    fn into_iter(self) -> Self::IntoIter {
        self.stars.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StarCatalog {
        StarCatalog::from_stars(vec![
            Star::new(10.0, 20.0, 3.5),
            Star::new(100.0, 50.0, 1.0),
            Star::new(500.5, 900.25, 7.75),
        ])
    }

    #[test]
    fn basic_accessors() {
        let mut c = sample();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(StarCatalog::new().is_empty());
        c.push(Star::new(1.0, 1.0, 0.0));
        assert_eq!(c.len(), 4);
        c.stars_mut()[0].mag = crate::magnitude::Magnitude(9.0);
        assert_eq!(c.stars()[0].mag.value(), 9.0);
    }

    #[test]
    fn rect_query() {
        let c = sample();
        let hits = c.in_rect(0.0, 0.0, 200.0, 100.0);
        assert_eq!(hits.len(), 2);
        // Half-open: a star exactly on x1 is excluded.
        let edge = c.in_rect(0.0, 0.0, 100.0, 100.0);
        assert_eq!(edge.len(), 1);
    }

    #[test]
    fn brightness_filter_and_sort() {
        let mut c = sample();
        assert_eq!(c.brighter_than(4.0).len(), 2);
        c.sort_by_brightness();
        let mags: Vec<f32> = c.stars().iter().map(|s| s.mag.value()).collect();
        assert_eq!(mags, vec![1.0, 3.5, 7.75]);
    }

    #[test]
    fn total_brightness_adds_up() {
        let c = sample();
        let expect: f64 = c.stars().iter().map(|s| s.brightness(1000.0) as f64).sum();
        assert!((c.total_brightness(1000.0) - expect).abs() < 1e-9);
    }

    #[test]
    fn text_roundtrip() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_text(&mut buf).unwrap();
        let back = StarCatalog::read_text(&buf[..]).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn text_parsing_tolerates_comments_and_blanks() {
        let text = "# header\n\n 3.5 10 20 \n# mid comment\n1 100 50\n";
        let c = StarCatalog::read_text(text.as_bytes()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.stars()[1].pos.x, 100.0);
    }

    #[test]
    fn text_parsing_rejects_malformed_lines() {
        assert!(matches!(
            StarCatalog::read_text("3.5 10".as_bytes()),
            Err(FieldError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            StarCatalog::read_text("a b c".as_bytes()),
            Err(FieldError::Parse { .. })
        ));
        assert!(matches!(
            StarCatalog::read_text("1 2 3 4".as_bytes()),
            Err(FieldError::Parse { .. })
        ));
    }

    #[test]
    fn from_iterator_and_borrowing_iter() {
        let c: StarCatalog = (0..5).map(|i| Star::new(i as f32, 0.0, 1.0)).collect();
        assert_eq!(c.len(), 5);
        let xs: Vec<f32> = (&c).into_iter().map(|s| s.pos.x).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
