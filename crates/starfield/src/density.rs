//! Star-count statistics: how many stars a field of view should contain.
//!
//! The paper's "large-scale" regime (tens of thousands of stars per frame)
//! corresponds to deep magnitude limits; this module provides the standard
//! cumulative star-count law so workloads can be sized realistically:
//!
//! ```text
//! N(<m) ≈ N₀ · 10^(k·m)   stars per steradian brighter than m,
//! ```
//!
//! with `k ≈ 0.51` and `N₀` normalized so the whole sky holds ≈ 6 000
//! stars brighter than m = 6 (the classical naked-eye count). Real
//! catalogues vary with galactic latitude by ~3×; this is the
//! latitude-averaged law, adequate for sizing benchmarks.

use crate::projection::Camera;

/// Slope of the cumulative star-count law (dex per magnitude).
pub const COUNT_SLOPE: f64 = 0.51;

/// Whole-sky star count brighter than magnitude 6 (the normalization).
pub const NAKED_EYE_COUNT: f64 = 6000.0;

/// Steradians on the whole sphere.
const SPHERE_SR: f64 = 4.0 * std::f64::consts::PI;

/// Whole-sky cumulative count of stars brighter than magnitude `m`.
pub fn sky_count_brighter_than(m: f64) -> f64 {
    NAKED_EYE_COUNT * 10f64.powf(COUNT_SLOPE * (m - 6.0))
}

/// Stars per steradian brighter than magnitude `m`.
pub fn density_per_sr(m: f64) -> f64 {
    sky_count_brighter_than(m) / SPHERE_SR
}

/// Solid angle (steradians) of a camera's rectangular field of view
/// (planar small-angle approximation, good below ~30°).
pub fn fov_solid_angle(camera: &Camera) -> f64 {
    let w = 2.0 * ((camera.width as f64 / 2.0) / camera.focal_px).atan();
    let h = 2.0 * ((camera.height as f64 / 2.0) / camera.focal_px).atan();
    w * h
}

/// Expected number of stars brighter than `mag_limit` in a camera's FOV.
pub fn expected_stars_in_fov(camera: &Camera, mag_limit: f64) -> f64 {
    density_per_sr(mag_limit) * fov_solid_angle(camera)
}

/// The magnitude limit needed to see roughly `count` stars in the FOV —
/// the inverse of [`expected_stars_in_fov`]; useful for sizing a
/// "large-scale" workload.
pub fn mag_limit_for_count(camera: &Camera, count: f64) -> f64 {
    assert!(count > 0.0, "count must be positive");
    let per_sr = count / fov_solid_angle(camera);
    let whole_sky = per_sr * SPHERE_SR;
    6.0 + (whole_sky / NAKED_EYE_COUNT).log10() / COUNT_SLOPE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> Camera {
        Camera::from_fov(12.0f64.to_radians(), 1024, 1024).unwrap()
    }

    #[test]
    fn normalization_matches_naked_eye() {
        assert!((sky_count_brighter_than(6.0) - 6000.0).abs() < 1e-9);
    }

    #[test]
    fn counts_grow_by_the_slope() {
        // One magnitude deeper ⇒ ×10^0.51 ≈ 3.24.
        let ratio = sky_count_brighter_than(7.0) / sky_count_brighter_than(6.0);
        assert!((ratio - 10f64.powf(0.51)).abs() < 1e-9);
    }

    #[test]
    fn fov_solid_angle_sane() {
        // A 12°×12° FOV ≈ 0.0439 sr.
        let sr = fov_solid_angle(&camera());
        let expect = 12.0f64.to_radians() * 12.0f64.to_radians();
        assert!((sr - expect).abs() / expect < 0.01, "{sr} vs {expect}");
    }

    #[test]
    fn star_tracker_magnitudes_give_hundreds_of_stars() {
        // A 12° tracker at m=6.5 sees a few tens of stars; the paper's
        // tens-of-thousands regime needs m ≈ 10+.
        let cam = camera();
        let at_6_5 = expected_stars_in_fov(&cam, 6.5);
        assert!(
            (10.0..200.0).contains(&at_6_5),
            "m=6.5 expectation {at_6_5}"
        );
        let at_11 = expected_stars_in_fov(&cam, 11.0);
        assert!(at_11 > 5_000.0, "m=11 expectation {at_11}");
    }

    #[test]
    fn mag_limit_inverts_expected_count() {
        let cam = camera();
        for count in [100.0f64, 8192.0, 131072.0] {
            let m = mag_limit_for_count(&cam, count);
            let back = expected_stars_in_fov(&cam, m);
            assert!(
                (back - count).abs() / count < 1e-9,
                "count {count}: m={m}, back={back}"
            );
        }
    }

    #[test]
    fn paper_scale_needs_deep_limits() {
        // 2^17 stars in one 12° frame corresponds to m ≈ 13–14 — inside
        // the paper's 0..15 magnitude range, confirming the benchmark's
        // realism.
        let m = mag_limit_for_count(&camera(), 131072.0);
        assert!(
            (12.0..15.0).contains(&m),
            "2^17 stars needs m ≈ {m}, expected 12..15"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_count_rejected() {
        let _ = mag_limit_for_count(&camera(), 0.0);
    }
}
