//! Stellar magnitudes and the paper's brightness law.
//!
//! The paper (eq. 1) relates a star's catalogue magnitude `m` to the
//! intensity `g` it deposits on the imaging device:
//!
//! ```text
//! g(m) = A · 2.512^(−m)
//! ```
//!
//! where `A` is a proportionality factor of the optical system and `m`
//! typically ranges over `0..=15`. Each step of one magnitude dims the star
//! by a factor of 2.512 (the classic Pogson ratio, rounded as in the paper).

/// The magnitude ratio used by the paper: one magnitude step = ×2.512 flux.
///
/// (The exact Pogson ratio is `100^(1/5) ≈ 2.51189`; the paper rounds to
/// 2.512 and we follow the paper.)
pub const MAGNITUDE_RATIO: f64 = 2.512;

/// Default lower bound of the simulated magnitude range.
pub const MAG_MIN: f32 = 0.0;
/// Default upper bound of the simulated magnitude range (paper: 0..15).
pub const MAG_MAX: f32 = 15.0;

/// A stellar magnitude (lower = brighter).
///
/// Thin newtype over `f32` so magnitudes cannot be silently mixed up with
/// brightnesses or coordinates.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Magnitude(pub f32);

impl Magnitude {
    /// Creates a magnitude, clamping into the simulator's supported range
    /// `[MAG_MIN, MAG_MAX]`.
    #[inline]
    pub fn clamped(value: f32) -> Self {
        Magnitude(value.clamp(MAG_MIN, MAG_MAX))
    }

    /// Raw magnitude value.
    #[inline]
    pub fn value(self) -> f32 {
        self.0
    }

    /// Brightness under the paper's law `g(m) = A · 2.512^(−m)`.
    #[inline]
    pub fn brightness(self, a_factor: f32) -> f32 {
        brightness(self.0, a_factor)
    }

    /// True if the magnitude lies in the simulator's supported range.
    #[inline]
    pub fn in_range(self) -> bool {
        (MAG_MIN..=MAG_MAX).contains(&self.0) && self.0.is_finite()
    }
}

impl From<f32> for Magnitude {
    fn from(v: f32) -> Self {
        Magnitude(v)
    }
}

/// Brightness of a star of magnitude `m` with proportionality factor `A`:
/// `g(m) = A · 2.512^(−m)` (paper eq. 1).
#[inline]
pub fn brightness(m: f32, a_factor: f32) -> f32 {
    a_factor * (MAGNITUDE_RATIO as f32).powf(-m)
}

/// Inverse of [`brightness`]: the magnitude whose brightness is `g` given `A`.
///
/// Returns `None` when `g` or `A` is non-positive (no real magnitude exists).
#[inline]
pub fn magnitude_from_brightness(g: f32, a_factor: f32) -> Option<f32> {
    if g <= 0.0 || a_factor <= 0.0 {
        return None;
    }
    // g = A · r^(−m)  ⇒  m = −log_r(g/A) = −ln(g/A)/ln(r)
    Some(-((g / a_factor).ln() / (MAGNITUDE_RATIO as f32).ln()))
}

/// A precomputed brightness table over binned magnitudes.
///
/// The adaptive simulator (paper §III-C) relies on the fact that a star
/// simulator is labelled with a *fixed magnitude range*, so brightnesses can
/// be tabulated once: "A fixed-length array can be used to store the star
/// brightness of different star magnitudes."
///
/// Magnitudes are quantized to `bins` equal-width bins across
/// `[mag_min, mag_max]`; each bin stores the brightness of its centre.
#[derive(Debug, Clone)]
pub struct BrightnessTable {
    mag_min: f32,
    mag_max: f32,
    a_factor: f32,
    values: Vec<f32>,
}

impl BrightnessTable {
    /// Builds a table of `bins` entries covering `[mag_min, mag_max]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `mag_max <= mag_min`.
    pub fn build(mag_min: f32, mag_max: f32, bins: usize, a_factor: f32) -> Self {
        assert!(bins > 0, "brightness table needs at least one bin");
        assert!(
            mag_max > mag_min,
            "magnitude range must be non-empty: [{mag_min}, {mag_max}]"
        );
        let width = (mag_max - mag_min) / bins as f32;
        let values = (0..bins)
            .map(|i| {
                let centre = mag_min + (i as f32 + 0.5) * width;
                brightness(centre, a_factor)
            })
            .collect();
        BrightnessTable {
            mag_min,
            mag_max,
            a_factor,
            values,
        }
    }

    /// Number of magnitude bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.values.len()
    }

    /// The proportionality factor the table was built with.
    #[inline]
    pub fn a_factor(&self) -> f32 {
        self.a_factor
    }

    /// The covered magnitude range.
    #[inline]
    pub fn range(&self) -> (f32, f32) {
        (self.mag_min, self.mag_max)
    }

    /// Bin index for magnitude `m` (clamped into range).
    #[inline]
    pub fn bin_of(&self, m: f32) -> usize {
        let bins = self.values.len();
        let t = (m - self.mag_min) / (self.mag_max - self.mag_min);
        let idx = (t * bins as f32).floor() as isize;
        idx.clamp(0, bins as isize - 1) as usize
    }

    /// The magnitude at the centre of bin `bin`.
    #[inline]
    pub fn bin_centre(&self, bin: usize) -> f32 {
        let width = (self.mag_max - self.mag_min) / self.values.len() as f32;
        self.mag_min + (bin as f32 + 0.5) * width
    }

    /// Tabulated brightness for magnitude `m` (nearest-bin lookup).
    #[inline]
    pub fn lookup(&self, m: f32) -> f32 {
        self.values[self.bin_of(m)]
    }

    /// Tabulated brightness of bin `bin`.
    ///
    /// # Panics
    /// Panics if `bin >= self.bins()`.
    #[inline]
    pub fn at_bin(&self, bin: usize) -> f32 {
        self.values[bin]
    }

    /// Raw table contents (one brightness per bin, brightest first).
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Worst-case relative error of nearest-bin quantization.
    ///
    /// A bin spans `w` magnitudes, so the quantized magnitude is off by at
    /// most `w/2`, and brightness by a factor of at most `2.512^(w/2)`.
    pub fn max_relative_error(&self) -> f32 {
        let w = (self.mag_max - self.mag_min) / self.values.len() as f32;
        (MAGNITUDE_RATIO as f32).powf(w / 2.0) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brightness_law_matches_paper() {
        // g(0) = A, one magnitude dims by 2.512.
        assert!((brightness(0.0, 1000.0) - 1000.0).abs() < 1e-3);
        let g1 = brightness(1.0, 1000.0);
        assert!((1000.0 / g1 - 2.512).abs() < 1e-3);
        // Five magnitudes ≈ ×100 (Pogson).
        let g5 = brightness(5.0, 1000.0);
        assert!((1000.0 / g5 - 2.512f32.powi(5)).abs() < 1e-2);
    }

    #[test]
    fn brightness_is_monotone_decreasing() {
        let mut prev = f32::INFINITY;
        for i in 0..=150 {
            let g = brightness(i as f32 * 0.1, 500.0);
            assert!(g < prev, "brightness must strictly decrease with magnitude");
            assert!(g > 0.0);
            prev = g;
        }
    }

    #[test]
    fn magnitude_inverse_roundtrip() {
        for m in [0.0f32, 0.5, 3.0, 7.25, 14.9] {
            let g = brightness(m, 1000.0);
            let back = magnitude_from_brightness(g, 1000.0).unwrap();
            assert!((back - m).abs() < 1e-4, "m={m} back={back}");
        }
        assert_eq!(magnitude_from_brightness(-1.0, 1000.0), None);
        assert_eq!(magnitude_from_brightness(1.0, 0.0), None);
    }

    #[test]
    fn magnitude_newtype() {
        assert_eq!(Magnitude::clamped(-3.0).value(), MAG_MIN);
        assert_eq!(Magnitude::clamped(99.0).value(), MAG_MAX);
        assert!(Magnitude(5.0).in_range());
        assert!(!Magnitude(15.1).in_range());
        assert!(!Magnitude(f32::NAN).in_range());
        let m: Magnitude = 4.5f32.into();
        assert_eq!(m.value(), 4.5);
        assert_eq!(m.brightness(100.0), brightness(4.5, 100.0));
    }

    #[test]
    fn table_bins_and_lookup() {
        let t = BrightnessTable::build(0.0, 15.0, 16, 1000.0);
        assert_eq!(t.bins(), 16);
        assert_eq!(t.range(), (0.0, 15.0));
        assert_eq!(t.a_factor(), 1000.0);
        // Bin 0 covers [0, 0.9375); centre 0.46875.
        assert_eq!(t.bin_of(0.0), 0);
        assert_eq!(t.bin_of(15.0), 15); // clamped top edge
        assert_eq!(t.bin_of(-5.0), 0);
        assert_eq!(t.bin_of(50.0), 15);
        let centre = t.bin_centre(3);
        assert!((t.at_bin(3) - brightness(centre, 1000.0)).abs() < 1e-6);
        assert_eq!(t.lookup(centre), t.at_bin(3));
        assert_eq!(t.values().len(), 16);
    }

    #[test]
    fn table_values_decrease() {
        let t = BrightnessTable::build(0.0, 15.0, 64, 1.0);
        for w in t.values().windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn table_quantization_error_bound() {
        let t = BrightnessTable::build(0.0, 15.0, 256, 1000.0);
        let bound = t.max_relative_error();
        for i in 0..1000 {
            let m = i as f32 * 0.015;
            let exact = brightness(m, 1000.0);
            let approx = t.lookup(m);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= bound * 1.01,
                "relative error {rel} exceeds bound {bound} at m={m}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn table_rejects_zero_bins() {
        let _ = BrightnessTable::build(0.0, 15.0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn table_rejects_empty_range() {
        let _ = BrightnessTable::build(5.0, 5.0, 4, 1.0);
    }
}
