//! Lost-in-space star identification.
//!
//! A star tracker that boots with *no* attitude estimate must identify the
//! stars in its image before it can solve the attitude (the pipeline the
//! paper's §I motivates: star image → identification → attitude). The
//! classical approach matches *angular distances*, which are invariant
//! under the unknown rotation: a pair of observed stars separated by angle
//! θ can only be a catalogue pair with the same separation.
//!
//! [`PairCatalog`] precomputes all catalogue pairs below a separation cap
//! for a bright subset, sorted by angle for binary search;
//! [`PairCatalog::identify`] votes over the observed pairs and returns a
//! consistent assignment. Verification (e.g. TRIAD + reprojection, see
//! [`crate::triad`]) is the caller's second stage.

use crate::fov::SkyCatalog;
use crate::star::SkyStar;

type V3 = [f64; 3];

fn dot(a: V3, b: V3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// One catalogue pair: separation angle and the two star indices.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PairEntry {
    angle: f64,
    i: u32,
    j: u32,
}

/// A searchable catalogue of pairwise angular separations.
#[derive(Debug, Clone)]
pub struct PairCatalog {
    /// The bright subset the pairs index into.
    stars: Vec<SkyStar>,
    /// Unit directions of `stars` (precomputed).
    directions: Vec<V3>,
    /// All pairs with separation ≤ `max_angle`, sorted by angle.
    pairs: Vec<PairEntry>,
    max_angle: f64,
}

impl PairCatalog {
    /// Builds the pair catalogue from stars brighter than `mag_limit`,
    /// keeping pairs separated by at most `max_angle` radians (set it to
    /// the sensor's diagonal FOV).
    ///
    /// # Panics
    /// Panics unless `max_angle` is in `(0, π]`.
    pub fn build(sky: &SkyCatalog, mag_limit: f32, max_angle: f64) -> Self {
        assert!(
            max_angle > 0.0 && max_angle <= std::f64::consts::PI,
            "max angle must be in (0, π], got {max_angle}"
        );
        let stars: Vec<SkyStar> = sky
            .stars()
            .iter()
            .copied()
            .filter(|s| s.mag.value() < mag_limit)
            .collect();
        let directions: Vec<V3> = stars.iter().map(|s| s.direction()).collect();
        let cos_min = max_angle.cos();
        let mut pairs = Vec::new();
        for i in 0..stars.len() {
            for j in (i + 1)..stars.len() {
                let c = dot(directions[i], directions[j]);
                if c >= cos_min {
                    pairs.push(PairEntry {
                        angle: c.clamp(-1.0, 1.0).acos(),
                        i: i as u32,
                        j: j as u32,
                    });
                }
            }
        }
        pairs.sort_by(|a, b| a.angle.total_cmp(&b.angle));
        PairCatalog {
            stars,
            directions,
            pairs,
            max_angle,
        }
    }

    /// The bright subset the identification maps into.
    pub fn stars(&self) -> &[SkyStar] {
        &self.stars
    }

    /// Number of stored pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Catalogue pairs whose separation lies within `tol` of `angle`.
    fn pairs_near(&self, angle: f64, tol: f64) -> &[PairEntry] {
        let lo = self.pairs.partition_point(|p| p.angle < angle - tol);
        let hi = self.pairs.partition_point(|p| p.angle <= angle + tol);
        &self.pairs[lo..hi]
    }

    /// Identifies observed stars given their unit directions in the body
    /// frame. Returns, per observation, the index into [`Self::stars`] of
    /// the winning catalogue star, or `None` when no assignment wins
    /// decisively.
    ///
    /// `tol` is the angular match tolerance in radians (centroid noise ×
    /// plate scale; a few×10⁻⁴ rad for a 1024-px 12° sensor).
    pub fn identify(&self, body_dirs: &[V3], tol: f64) -> Vec<Option<usize>> {
        let k = body_dirs.len();
        if k < 2 {
            return vec![None; k];
        }
        // votes[obs] : catalogue star index → count.
        let mut votes: Vec<std::collections::HashMap<u32, u32>> =
            vec![std::collections::HashMap::new(); k];
        for a in 0..k {
            for b in (a + 1)..k {
                let c = dot(body_dirs[a], body_dirs[b]);
                let angle = c.clamp(-1.0, 1.0).acos();
                if angle > self.max_angle {
                    continue;
                }
                for p in self.pairs_near(angle, tol) {
                    // Both orientations are plausible.
                    *votes[a].entry(p.i).or_insert(0) += 1;
                    *votes[b].entry(p.j).or_insert(0) += 1;
                    *votes[a].entry(p.j).or_insert(0) += 1;
                    *votes[b].entry(p.i).or_insert(0) += 1;
                }
            }
        }
        // Decisive winner: strictly more votes than any runner-up and at
        // least 2 (a single accidental pair match is not evidence).
        let winners: Vec<Option<usize>> = votes
            .iter()
            .map(|v| {
                let mut best: Option<(u32, u32)> = None;
                let mut runner_up = 0u32;
                for (&star, &count) in v {
                    match best {
                        None => best = Some((star, count)),
                        Some((_, bc)) if count > bc => {
                            runner_up = bc;
                            best = Some((star, count));
                        }
                        Some(_) => runner_up = runner_up.max(count),
                    }
                }
                match best {
                    Some((star, count)) if count >= 2 && count > runner_up => Some(star as usize),
                    _ => None,
                }
            })
            .collect();
        // Consistency: a catalogue star may win at most one observation;
        // duplicated winners are all rejected.
        let mut seen = std::collections::HashMap::new();
        for (obs, w) in winners.iter().enumerate() {
            if let Some(s) = w {
                seen.entry(*s).or_insert_with(Vec::new).push(obs);
            }
        }
        let mut out = winners;
        for (_, obs_list) in seen {
            if obs_list.len() > 1 {
                for o in obs_list {
                    out[o] = None;
                }
            }
        }
        out
    }

    /// Convenience: identified (body, inertial) pairs ready for
    /// [`crate::triad::triad`].
    pub fn observations(&self, body_dirs: &[V3], tol: f64) -> Vec<crate::triad::Observation> {
        self.identify(body_dirs, tol)
            .iter()
            .zip(body_dirs)
            .filter_map(|(id, &body)| {
                id.map(|s| crate::triad::Observation {
                    body,
                    inertial: self.directions[s],
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attitude::Attitude;
    use crate::generator::synthetic_sky;
    use crate::triad::{attitude_error, triad};

    fn setup() -> (SkyCatalog, PairCatalog) {
        // Seed chosen so each pointing used below has ≥6 bright catalogue
        // stars inside its 6° observation cone (the tests probe
        // identification, not the statistics of a sparse sky).
        let sky = synthetic_sky(4000, 0.0, 5.0, 224);
        let pc = PairCatalog::build(&sky, 4.0, 15.0f64.to_radians());
        (sky, pc)
    }

    /// Body directions of the `n` brightest catalogue stars within
    /// `cone` of the boresight under attitude `q`.
    fn observe(pc: &PairCatalog, q: Attitude, cone: f64, n: usize) -> (Vec<V3>, Vec<usize>) {
        let bore = q.boresight();
        let mut visible: Vec<(usize, f32)> = pc
            .stars()
            .iter()
            .enumerate()
            .filter(|(i, _)| dot(pc.directions[*i], bore) > cone.cos())
            .map(|(i, s)| (i, s.mag.value()))
            .collect();
        visible.sort_by(|a, b| a.1.total_cmp(&b.1));
        visible.truncate(n);
        let ids: Vec<usize> = visible.iter().map(|&(i, _)| i).collect();
        let dirs = ids.iter().map(|&i| q.to_body(pc.directions[i])).collect();
        (dirs, ids)
    }

    #[test]
    fn pair_catalog_geometry() {
        let (_, pc) = setup();
        assert!(pc.pair_count() > 0);
        // Pairs are sorted and within the cap.
        for w in pc.pairs.windows(2) {
            assert!(w[0].angle <= w[1].angle);
        }
        assert!(pc.pairs.last().unwrap().angle <= 15.0f64.to_radians());
    }

    #[test]
    fn identifies_noiseless_observations_exactly() {
        let (_, pc) = setup();
        let q = Attitude::pointing(1.0, 0.2, 0.5);
        let (dirs, truth) = observe(&pc, q, 6.0f64.to_radians(), 6);
        assert!(
            dirs.len() >= 4,
            "need stars in the cone, got {}",
            dirs.len()
        );
        let ids = pc.identify(&dirs, 1e-4);
        let mut correct = 0;
        for (got, want) in ids.iter().zip(&truth) {
            if let Some(g) = got {
                assert_eq!(g, want, "misidentification");
                correct += 1;
            }
        }
        assert!(
            correct * 10 >= truth.len() * 8,
            "only {correct}/{} identified",
            truth.len()
        );
    }

    #[test]
    fn identification_feeds_triad_lost_in_space() {
        // The full lost-in-space solve: no attitude prior anywhere.
        let (_, pc) = setup();
        let truth = Attitude::pointing(4.1, -0.6, 2.2);
        let (dirs, _) = observe(&pc, truth, 6.0f64.to_radians(), 7);
        let obs = pc.observations(&dirs, 1e-4);
        assert!(obs.len() >= 2, "need identified stars, got {}", obs.len());
        let est = triad(&obs).unwrap();
        assert!(
            attitude_error(est, truth) < 1e-6,
            "lost-in-space error {} rad",
            attitude_error(est, truth)
        );
    }

    #[test]
    fn noisy_observations_still_identify() {
        let (_, pc) = setup();
        let q = Attitude::pointing(2.5, 0.1, 0.0);
        let (mut dirs, truth) = observe(&pc, q, 6.0f64.to_radians(), 6);
        // ~20 arcsec of noise on each direction (renormalized: observed
        // directions are always unit vectors).
        for (k, d) in dirs.iter_mut().enumerate() {
            d[k % 3] += 1e-4;
            let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            *d = [d[0] / n, d[1] / n, d[2] / n];
        }
        let ids = pc.identify(&dirs, 5e-4);
        let correct = ids
            .iter()
            .zip(&truth)
            .filter(|(got, want)| got.as_ref() == Some(want))
            .count();
        assert!(
            correct >= truth.len() / 2,
            "only {correct}/{} identified under noise",
            truth.len()
        );
        // No misidentification (None is acceptable; wrong is not).
        for (got, want) in ids.iter().zip(&truth) {
            if let Some(g) = got {
                assert_eq!(g, want);
            }
        }
    }

    #[test]
    fn too_few_observations_return_none() {
        let (_, pc) = setup();
        assert!(pc.identify(&[], 1e-4).is_empty());
        let one = pc.identify(&[[0.0, 0.0, 1.0]], 1e-4);
        assert_eq!(one, vec![None]);
    }

    #[test]
    fn random_directions_do_not_misidentify() {
        // Directions that correspond to no catalogue configuration should
        // mostly come back None (votes scatter).
        let (_, pc) = setup();
        let dirs: Vec<V3> = (0..5)
            .map(|k| {
                let t = k as f64 * 0.003;
                let v = [t.sin() * 0.01, (t * 1.7).cos() * 0.012, 1.0];
                let n = (v[0] * v[0] + v[1] * v[1] + 1.0f64).sqrt();
                [v[0] / n, v[1] / n, v[2] / n]
            })
            .collect();
        let ids = pc.identify(&dirs, 1e-6); // very tight tolerance
        let assigned = ids.iter().filter(|x| x.is_some()).count();
        assert!(
            assigned <= 1,
            "bogus field should not identify, got {assigned} assignments"
        );
    }

    #[test]
    #[should_panic(expected = "max angle")]
    fn bad_max_angle_rejected() {
        let sky = SkyCatalog::new();
        let _ = PairCatalog::build(&sky, 5.0, 0.0);
    }
}
