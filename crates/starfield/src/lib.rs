//! # starfield — star catalogue substrate
//!
//! Everything upstream of the intensity model: star records, the
//! magnitude→brightness law (paper eq. 1), seeded synthetic field
//! generation, celestial-sphere catalogues, attitude (quaternion) and
//! gnomonic projection for field-of-view retrieval, and the paper's two
//! benchmark workload builders.
//!
//! The paper under reproduction is Li, Zhang, Zheng & Hu, *Implementing
//! High-performance Intensity Model with Blur Effect on GPUs for Large-scale
//! Star Image Simulation* (IPDPS Workshops 2012). Its simulators consume a
//! star file of `(magnitude, x, y)` records; [`catalog::StarCatalog`] is
//! that file in memory, and [`generator::FieldGenerator`] recreates the
//! randomly-generated benchmark inputs deterministically.

#![warn(missing_docs)]

pub mod attitude;
pub mod catalog;
pub mod catalog_bin;
pub mod density;
pub mod dynamics;
pub mod error;
pub mod fov;
pub mod generator;
pub mod identify;
pub mod magnitude;
pub mod projection;
pub mod quest;
pub mod star;
pub mod triad;
pub mod vec2;
pub mod workload;

pub use attitude::Attitude;
pub use catalog::StarCatalog;
pub use dynamics::AttitudeDynamics;
pub use error::FieldError;
pub use fov::SkyCatalog;
pub use generator::{FieldGenerator, MagnitudeModel, PositionModel};
pub use identify::PairCatalog;
pub use magnitude::{brightness, BrightnessTable, Magnitude};
pub use projection::Camera;
pub use quest::quest;
pub use star::{SkyStar, Star};
pub use triad::{attitude_error, triad, Observation};
pub use vec2::Vec2;
pub use workload::Workload;
