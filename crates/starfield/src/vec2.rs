//! Minimal 2-D vector used for image-plane positions.

use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point in image-plane coordinates (pixels).
///
/// `x` grows to the right, `y` grows downwards, matching the raster layout of
/// [`starimage`](https://docs.rs/starimage) buffers (row-major, row = `y`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal (column) coordinate in pixels.
    pub x: f32,
    /// Vertical (row) coordinate in pixels.
    pub y: f32,
}

impl Vec2 {
    /// The origin `(0, 0)`.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Creates a vector with both components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec2 { x: v, y: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Squared distance to `other`.
    #[inline]
    pub fn distance_squared(self, other: Vec2) -> f32 {
        (self - other).length_squared()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec2) -> f32 {
        self.distance_squared(other).sqrt()
    }

    /// Component-wise rounding to the nearest integer pixel centre.
    #[inline]
    pub fn round(self) -> Vec2 {
        Vec2::new(self.x.round(), self.y.round())
    }

    /// Rounds to integer pixel indices `(col, row)`.
    #[inline]
    pub fn to_pixel(self) -> (i64, i64) {
        (self.x.round() as i64, self.y.round() as i64)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f32 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f32> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec2::new(3.0, -4.0);
        let b = Vec2::new(1.0, 2.0);
        assert_eq!(a + b, Vec2::new(4.0, -2.0));
        assert_eq!(a - b, Vec2::new(2.0, -6.0));
        assert_eq!(a * 2.0, Vec2::new(6.0, -8.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(1.5, -2.0));
        assert_eq!(-a, Vec2::new(-3.0, 4.0));
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Vec2::new(1.0, 1.0);
        a += Vec2::new(2.0, 3.0);
        assert_eq!(a, Vec2::new(3.0, 4.0));
        a -= Vec2::new(1.0, 1.0);
        assert_eq!(a, Vec2::new(2.0, 3.0));
    }

    #[test]
    fn length_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.length_squared(), 25.0);
        assert_eq!(a.length(), 5.0);
        assert_eq!(a.distance(Vec2::ZERO), 5.0);
        assert_eq!(Vec2::ZERO.distance_squared(a), 25.0);
    }

    #[test]
    fn dot_product() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, 4.0);
        assert_eq!(a.dot(b), 11.0);
        // Orthogonal vectors.
        assert_eq!(Vec2::new(1.0, 0.0).dot(Vec2::new(0.0, 5.0)), 0.0);
    }

    #[test]
    fn pixel_rounding() {
        assert_eq!(Vec2::new(10.4, 7.6).to_pixel(), (10, 8));
        assert_eq!(Vec2::new(-0.6, 0.5).to_pixel(), (-1, 1));
        assert_eq!(Vec2::new(10.4, 7.6).round(), Vec2::new(10.0, 8.0));
    }

    #[test]
    fn splat_and_finite() {
        assert_eq!(Vec2::splat(2.5), Vec2::new(2.5, 2.5));
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f32::NAN, 2.0).is_finite());
        assert!(!Vec2::new(1.0, f32::INFINITY).is_finite());
    }
}
