//! Pinhole / gnomonic projection of body-frame directions onto the image
//! plane of a star sensor.

use crate::error::FieldError;
use crate::vec2::Vec2;

/// The optical geometry of the simulated star sensor.
///
/// Directions in the camera body frame (boresight = +z) are projected
/// gnomonically: a direction `(dx, dy, dz)` with `dz > 0` lands at
/// `(cx + f·dx/dz, cy + f·dy/dz)` where `f` is the focal length in pixels
/// and `(cx, cy)` the principal point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Focal length in pixels.
    pub focal_px: f64,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
}

impl Camera {
    /// Camera with the principal point at the image centre.
    ///
    /// Returns an error for non-positive focal length or empty image.
    pub fn new(focal_px: f64, width: usize, height: usize) -> Result<Self, FieldError> {
        // NaN must fail too, hence the explicit finiteness check.
        if !focal_px.is_finite() || focal_px <= 0.0 {
            return Err(FieldError::InvalidParameter(format!(
                "focal length must be positive, got {focal_px}"
            )));
        }
        if width == 0 || height == 0 {
            return Err(FieldError::InvalidParameter(format!(
                "image must be non-empty, got {width}x{height}"
            )));
        }
        Ok(Camera {
            focal_px,
            width,
            height,
        })
    }

    /// Camera sized so the *horizontal* field of view is `fov_rad` radians.
    pub fn from_fov(fov_rad: f64, width: usize, height: usize) -> Result<Self, FieldError> {
        if !(fov_rad > 0.0 && fov_rad < std::f64::consts::PI) {
            return Err(FieldError::InvalidParameter(format!(
                "horizontal FOV must be in (0, π), got {fov_rad}"
            )));
        }
        let focal_px = width as f64 / 2.0 / (fov_rad / 2.0).tan();
        Camera::new(focal_px, width, height)
    }

    /// Principal point (image centre).
    #[inline]
    pub fn principal_point(&self) -> Vec2 {
        Vec2::new(self.width as f32 / 2.0, self.height as f32 / 2.0)
    }

    /// Horizontal field of view in radians.
    pub fn horizontal_fov(&self) -> f64 {
        2.0 * (self.width as f64 / 2.0 / self.focal_px).atan()
    }

    /// Half-angle of the cone that circumscribes the full image diagonal —
    /// any star within this angle of the boresight *may* fall on the sensor.
    pub fn diagonal_half_angle(&self) -> f64 {
        let half_diag =
            ((self.width as f64 / 2.0).powi(2) + (self.height as f64 / 2.0).powi(2)).sqrt();
        (half_diag / self.focal_px).atan()
    }

    /// Projects a body-frame direction onto the image plane.
    ///
    /// Returns `None` for directions behind the camera (`dz <= 0`). The
    /// returned point may lie outside the image bounds; callers decide
    /// whether marginal stars (whose ROI still clips the image) matter.
    pub fn project(&self, body_dir: [f64; 3]) -> Option<Vec2> {
        let [dx, dy, dz] = body_dir;
        if dz <= 0.0 {
            return None;
        }
        let pp = self.principal_point();
        Some(Vec2::new(
            pp.x + (self.focal_px * dx / dz) as f32,
            pp.y + (self.focal_px * dy / dz) as f32,
        ))
    }

    /// Back-projects an image point into a unit body-frame direction.
    pub fn unproject(&self, p: Vec2) -> [f64; 3] {
        let pp = self.principal_point();
        let dx = (p.x - pp.x) as f64 / self.focal_px;
        let dy = (p.y - pp.y) as f64 / self.focal_px;
        let n = (dx * dx + dy * dy + 1.0).sqrt();
        [dx / n, dy / n, 1.0 / n]
    }

    /// True when point `p` lies inside the image bounds.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x < self.width as f32 && p.y < self.height as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::new(1000.0, 1024, 1024).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Camera::new(0.0, 10, 10).is_err());
        assert!(Camera::new(-5.0, 10, 10).is_err());
        assert!(Camera::new(10.0, 0, 10).is_err());
        assert!(Camera::from_fov(0.0, 10, 10).is_err());
        assert!(Camera::from_fov(4.0, 10, 10).is_err());
    }

    #[test]
    fn boresight_projects_to_centre() {
        let c = cam();
        let p = c.project([0.0, 0.0, 1.0]).unwrap();
        assert_eq!(p, Vec2::new(512.0, 512.0));
    }

    #[test]
    fn behind_camera_is_rejected() {
        let c = cam();
        assert!(c.project([0.0, 0.0, -1.0]).is_none());
        assert!(c.project([0.1, 0.1, 0.0]).is_none());
    }

    #[test]
    fn fov_construction_roundtrip() {
        let fov = 12.0f64.to_radians();
        let c = Camera::from_fov(fov, 1024, 1024).unwrap();
        assert!((c.horizontal_fov() - fov).abs() < 1e-12);
    }

    #[test]
    fn project_unproject_roundtrip() {
        let c = cam();
        for &(x, y) in &[(512.0, 512.0), (0.0, 0.0), (1000.0, 300.0), (13.5, 900.25)] {
            let p = Vec2::new(x, y);
            let d = c.unproject(p);
            let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!(
                (n - 1.0).abs() < 1e-12,
                "unproject must return unit vectors"
            );
            let back = c.project(d).unwrap();
            assert!((back.x - p.x).abs() < 1e-3 && (back.y - p.y).abs() < 1e-3);
        }
    }

    #[test]
    fn diagonal_half_angle_bounds_fov() {
        let c = cam();
        assert!(c.diagonal_half_angle() > c.horizontal_fov() / 2.0);
        assert!(c.diagonal_half_angle() < std::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn contains_respects_bounds() {
        let c = cam();
        assert!(c.contains(Vec2::new(0.0, 0.0)));
        assert!(c.contains(Vec2::new(1023.9, 1023.9)));
        assert!(!c.contains(Vec2::new(1024.0, 10.0)));
        assert!(!c.contains(Vec2::new(-0.1, 10.0)));
    }
}
