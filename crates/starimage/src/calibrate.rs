//! Detector calibration: bias/dark subtraction and flat-field correction.
//!
//! A deployed star simulator (the paper's closing use case) feeds imagery
//! to processing chains that expect *calibrated* frames; conversely, to
//! emulate a real sensor the simulator must be able to *apply* the
//! instrument signature. This module does both directions:
//!
//! * [`InstrumentSignature::apply`] — superimpose bias, dark current and
//!   pixel-response non-uniformity (PRNU / vignetting) onto a clean frame;
//! * [`InstrumentSignature::calibrate`] — the standard reduction
//!   `(raw − bias − dark·t) / flat`.
//!
//! Round-tripping a frame through `apply` then `calibrate` recovers it to
//! floating-point precision, which is exactly the property the tests pin.

use crate::buffer::ImageF32;

/// The fixed-pattern signature of a detector.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentSignature {
    /// Bias (offset) frame — the zero-exposure readout level per pixel.
    pub bias: ImageF32,
    /// Dark-current rate frame, intensity per second per pixel.
    pub dark_rate: ImageF32,
    /// Flat field (relative pixel response, ~1.0; must be positive).
    pub flat: ImageF32,
}

impl InstrumentSignature {
    /// A perfectly uniform detector (identity signature).
    pub fn ideal(width: usize, height: usize) -> Self {
        InstrumentSignature {
            bias: ImageF32::new(width, height),
            dark_rate: ImageF32::new(width, height),
            flat: ImageF32::from_data(width, height, vec![1.0; width * height]),
        }
    }

    /// A plausible CCD: constant bias, constant dark rate, and a radial
    /// vignette falling to `edge_response` at the corners.
    pub fn vignetted(
        width: usize,
        height: usize,
        bias_level: f32,
        dark_rate: f32,
        edge_response: f32,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&edge_response) && edge_response > 0.0,
            "edge response must be in (0, 1], got {edge_response}"
        );
        let bias = ImageF32::from_data(width, height, vec![bias_level; width * height]);
        let dark = ImageF32::from_data(width, height, vec![dark_rate; width * height]);
        let (cx, cy) = (width as f32 / 2.0, height as f32 / 2.0);
        let r_max2 = cx * cx + cy * cy;
        let mut flat = ImageF32::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let r2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                flat.set(x, y, 1.0 - (1.0 - edge_response) * (r2 / r_max2));
            }
        }
        InstrumentSignature {
            bias,
            dark_rate: dark,
            flat,
        }
    }

    /// Checks the dimensions agree and the flat is strictly positive.
    pub fn validate(&self) -> Result<(), String> {
        let dims = (self.bias.width(), self.bias.height());
        if (self.dark_rate.width(), self.dark_rate.height()) != dims
            || (self.flat.width(), self.flat.height()) != dims
        {
            return Err("signature frames have mismatched dimensions".into());
        }
        if self.flat.data().iter().any(|&v| !v.is_finite() || v <= 0.0) {
            return Err("flat field must be strictly positive".into());
        }
        Ok(())
    }

    /// Applies the signature to a clean scene with exposure `exposure_s`:
    /// `raw = scene·flat + bias + dark·t`.
    ///
    /// # Panics
    /// Panics when dimensions mismatch or the signature is invalid.
    pub fn apply(&self, scene: &ImageF32, exposure_s: f32) -> ImageF32 {
        self.validate().expect("valid signature");
        assert_eq!(
            (scene.width(), scene.height()),
            (self.bias.width(), self.bias.height()),
            "scene dimensions must match the signature"
        );
        let data = scene
            .data()
            .iter()
            .zip(self.flat.data())
            .zip(self.bias.data().iter().zip(self.dark_rate.data()))
            .map(|((&s, &f), (&b, &d))| s * f + b + d * exposure_s)
            .collect();
        ImageF32::from_data(scene.width(), scene.height(), data)
    }

    /// Standard reduction: `(raw − bias − dark·t) / flat`.
    ///
    /// # Panics
    /// Panics when dimensions mismatch or the signature is invalid.
    pub fn calibrate(&self, raw: &ImageF32, exposure_s: f32) -> ImageF32 {
        self.validate().expect("valid signature");
        assert_eq!(
            (raw.width(), raw.height()),
            (self.bias.width(), self.bias.height()),
            "raw dimensions must match the signature"
        );
        let data = raw
            .data()
            .iter()
            .zip(self.flat.data())
            .zip(self.bias.data().iter().zip(self.dark_rate.data()))
            .map(|((&r, &f), (&b, &d))| (r - b - d * exposure_s) / f)
            .collect();
        ImageF32::from_data(raw.width(), raw.height(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> ImageF32 {
        let mut img = ImageF32::new(32, 32);
        img.set(10, 12, 5.0);
        img.set(20, 8, 2.5);
        img
    }

    #[test]
    fn ideal_signature_is_identity() {
        let sig = InstrumentSignature::ideal(32, 32);
        let s = scene();
        assert_eq!(sig.apply(&s, 1.0), s);
        assert_eq!(sig.calibrate(&s, 1.0), s);
    }

    #[test]
    fn apply_then_calibrate_roundtrips() {
        let sig = InstrumentSignature::vignetted(32, 32, 0.3, 0.02, 0.6);
        let s = scene();
        let raw = sig.apply(&s, 2.5);
        let back = sig.calibrate(&raw, 2.5);
        for (a, b) in s.data().iter().zip(back.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn bias_and_dark_raise_the_floor() {
        let sig = InstrumentSignature::vignetted(32, 32, 0.3, 0.1, 1.0);
        let raw = sig.apply(&ImageF32::new(32, 32), 2.0);
        for &v in raw.data() {
            assert!((v - (0.3 + 0.2)).abs() < 1e-6);
        }
    }

    #[test]
    fn vignette_dims_corners_more_than_centre() {
        let sig = InstrumentSignature::vignetted(64, 64, 0.0, 0.0, 0.5);
        let flat_centre = sig.flat.get(32, 32);
        let flat_corner = sig.flat.get(0, 0);
        assert!(flat_centre > 0.99);
        assert!((flat_corner - 0.5).abs() < 0.02);
        // A uniform scene comes out dimmer at the corner.
        let uniform = ImageF32::from_data(64, 64, vec![1.0; 64 * 64]);
        let raw = sig.apply(&uniform, 0.0);
        assert!(raw.get(0, 0) < raw.get(32, 32));
    }

    #[test]
    fn validation_catches_bad_signatures() {
        let mut sig = InstrumentSignature::ideal(8, 8);
        sig.flat.set(3, 3, 0.0);
        assert!(sig.validate().is_err());
        let sig = InstrumentSignature {
            bias: ImageF32::new(8, 8),
            dark_rate: ImageF32::new(8, 9),
            flat: ImageF32::from_data(8, 8, vec![1.0; 64]),
        };
        assert!(sig.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_scene_panics() {
        let sig = InstrumentSignature::ideal(8, 8);
        let _ = sig.apply(&ImageF32::new(9, 8), 1.0);
    }
}
