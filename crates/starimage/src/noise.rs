//! Sensor noise model — an extension toward the realistic imaging chain of
//! the star sensors the paper's introduction targets.
//!
//! The intensity model produces a noiseless irradiance map. A real CCD/CMOS
//! detector adds, per pixel:
//!
//! * a uniform **background** level (stray light, dark current),
//! * **shot noise** — Poisson fluctuation of the collected photoelectrons,
//!   approximated by a Gaussian of variance equal to the signal (exact in
//!   the bright limit, and star pixels are bright by construction),
//! * Gaussian **read noise** from the output amplifier.
//!
//! All randomness is drawn from a seeded generator so noisy frames are
//! reproducible.

use simrng::Rng64;

use crate::buffer::ImageF32;

/// Detector noise parameters, in the same intensity units as the image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Uniform background level added to every pixel.
    pub background: f32,
    /// Photon-to-intensity gain: shot-noise variance = `signal / gain`
    /// scaled back, i.e. σ_shot = sqrt(signal · gain). `0` disables shot
    /// noise.
    pub shot_gain: f32,
    /// Read-noise standard deviation. `0` disables read noise.
    pub read_sigma: f32,
}

impl NoiseModel {
    /// A quiet sensor: small background, mild shot and read noise.
    pub fn quiet() -> Self {
        NoiseModel {
            background: 0.001,
            shot_gain: 0.01,
            read_sigma: 0.002,
        }
    }

    /// No noise at all (identity transform).
    pub fn none() -> Self {
        NoiseModel {
            background: 0.0,
            shot_gain: 0.0,
            read_sigma: 0.0,
        }
    }
}

/// Applies the noise model in place with a seeded RNG.
///
/// Pixels are clamped at zero afterwards (a detector cannot report negative
/// charge after bias subtraction).
pub fn apply_noise(img: &mut ImageF32, model: NoiseModel, seed: u64) {
    let mut rng = Rng64::new(seed);
    for v in img.data_mut().iter_mut() {
        let signal = *v + model.background;
        let shot_sigma = if model.shot_gain > 0.0 {
            (signal.max(0.0) * model.shot_gain).sqrt()
        } else {
            0.0
        };
        let sigma = (shot_sigma * shot_sigma + model.read_sigma * model.read_sigma).sqrt();
        let noisy = if sigma > 0.0 {
            signal + rng.normal_f32() * sigma
        } else {
            signal
        };
        *v = noisy.max(0.0);
    }
}

/// Signal-to-noise ratio of a star of total flux `flux` spread over
/// `pixels` pixels under `model` — the standard CCD SNR equation, useful
/// for choosing detection thresholds.
pub fn star_snr(flux: f64, pixels: usize, model: NoiseModel) -> f64 {
    let shot_var = flux * model.shot_gain as f64;
    let bg_var = pixels as f64 * model.background as f64 * model.shot_gain as f64;
    let read_var = pixels as f64 * (model.read_sigma as f64).powi(2);
    let denom = (shot_var + bg_var + read_var).sqrt();
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        flux / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(level: f32) -> ImageF32 {
        ImageF32::from_data(64, 64, vec![level; 64 * 64])
    }

    #[test]
    fn none_is_identity() {
        let mut img = flat(0.5);
        let before = img.clone();
        apply_noise(&mut img, NoiseModel::none(), 1);
        assert_eq!(img, before);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = flat(0.5);
        let mut b = flat(0.5);
        apply_noise(&mut a, NoiseModel::quiet(), 42);
        apply_noise(&mut b, NoiseModel::quiet(), 42);
        assert_eq!(a, b);
        let mut c = flat(0.5);
        apply_noise(&mut c, NoiseModel::quiet(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn background_raises_the_mean() {
        let mut img = flat(0.0);
        apply_noise(
            &mut img,
            NoiseModel {
                background: 0.2,
                shot_gain: 0.0,
                read_sigma: 0.0,
            },
            7,
        );
        for &v in img.data() {
            assert_eq!(v, 0.2);
        }
    }

    #[test]
    fn read_noise_statistics_match() {
        let mut img = flat(1.0);
        let sigma = 0.05f32;
        apply_noise(
            &mut img,
            NoiseModel {
                background: 0.0,
                shot_gain: 0.0,
                read_sigma: sigma,
            },
            11,
        );
        let n = img.len() as f64;
        let mean: f64 = img.data().iter().map(|&v| v as f64).sum::<f64>() / n;
        let var: f64 = img
            .data()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!(
            (var.sqrt() - sigma as f64).abs() < 0.005,
            "sd {} vs {}",
            var.sqrt(),
            sigma
        );
    }

    #[test]
    fn shot_noise_scales_with_signal() {
        // Bright pixels must fluctuate more than dim pixels.
        let measure = |level: f32| {
            let mut img = flat(level);
            apply_noise(
                &mut img,
                NoiseModel {
                    background: 0.0,
                    shot_gain: 0.1,
                    read_sigma: 0.0,
                },
                5,
            );
            let n = img.len() as f64;
            let mean: f64 = img.data().iter().map(|&v| v as f64).sum::<f64>() / n;
            (img.data()
                .iter()
                .map(|&v| (v as f64 - mean).powi(2))
                .sum::<f64>()
                / n)
                .sqrt()
        };
        let dim = measure(0.1);
        let bright = measure(10.0);
        // σ ∝ √signal: 10× brighter ⇒ ~10× ... √100 = 10× the σ.
        assert!(
            bright / dim > 5.0,
            "bright σ {bright} should be ~10x dim σ {dim}"
        );
    }

    #[test]
    fn pixels_never_go_negative() {
        let mut img = flat(0.0);
        apply_noise(
            &mut img,
            NoiseModel {
                background: 0.001,
                shot_gain: 0.0,
                read_sigma: 0.5, // huge read noise around zero
            },
            3,
        );
        assert!(img.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn snr_equation_behaviour() {
        let m = NoiseModel {
            background: 0.01,
            shot_gain: 0.1,
            read_sigma: 0.01,
        };
        let low = star_snr(1.0, 100, m);
        let high = star_snr(100.0, 100, m);
        assert!(high > low, "more flux, more SNR");
        // Read-noise-limited regime: SNR ∝ flux.
        let rn = NoiseModel {
            background: 0.0,
            shot_gain: 0.0,
            read_sigma: 0.01,
        };
        let r1 = star_snr(1.0, 100, rn);
        let r2 = star_snr(2.0, 100, rn);
        assert!((r2 / r1 - 2.0).abs() < 1e-9);
        // Noiseless sensor: infinite SNR.
        assert!(star_snr(1.0, 100, NoiseModel::none()).is_infinite());
    }
}
