//! # starimage — star image substrate
//!
//! Gray-value image buffers and everything the simulators' *Output* stage
//! needs: a plain [`ImageF32`] buffer, a lock-free [`AtomicImage`] matching
//! CUDA's `atomicAdd(float*)` semantics for the parallel kernel, tone
//! mapping to 8/16-bit gray, self-contained BMP and PGM IO, image
//! statistics/diffing for cross-simulator validation, and star centroiding
//! to close the star-tracker loop.

#![warn(missing_docs)]

pub mod atomic;
pub mod buffer;
pub mod calibrate;
pub mod centroid;
pub mod convert;
pub mod diff;
pub mod error;
pub mod io;
pub mod label;
pub mod noise;
pub mod photometry;
pub mod stats;

pub use atomic::AtomicImage;
pub use buffer::ImageF32;
pub use calibrate::InstrumentSignature;
pub use centroid::{detect_stars, CentroidParams, Detection};
pub use convert::{to_gray16, to_gray8, GrayMap};
pub use diff::{compare, images_close, ImageDiff};
pub use error::ImageError;
pub use label::{label_blobs, Blob};
pub use noise::{apply_noise, star_snr, NoiseModel};
pub use photometry::{magnitude_from_flux, measure, Aperture, Photometry};
pub use stats::{histogram, stats, ImageStats};
