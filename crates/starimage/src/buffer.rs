//! The gray-value image buffer every simulator writes into.

/// A row-major `f32` gray image.
///
/// Gray values are unbounded non-negative intensities; conversion to
/// display formats happens in [`crate::convert`].
#[derive(Debug, Clone, PartialEq)]
pub struct ImageF32 {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl ImageF32 {
    /// A zero-filled image.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        ImageF32 {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    /// Panics when `data.len() != width * height` or a dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        assert_eq!(
            data.len(),
            width * height,
            "data length {} does not match {width}x{height}",
            data.len()
        );
        ImageF32 {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the image holds no pixels (never true: dimensions are
    /// validated positive).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major pixel slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major pixel slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the image, returning its pixels.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Linear index of `(x, y)`.
    ///
    /// # Panics
    /// Panics (in debug) when out of bounds.
    #[inline]
    pub fn index(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] = v;
    }

    /// Adds `v` to pixel `(x, y)` — the sequential simulator's accumulation.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, v: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] += v;
    }

    /// Row `y` as a slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[f32] {
        assert!(y < self.height, "row {y} out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Resets every pixel to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Iterates `(x, y, value)` in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i % w, i / w, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = ImageF32::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.len(), 12);
        assert!(!img.is_empty());
        assert_eq!(img.get(0, 0), 0.0);
        img.set(2, 1, 5.0);
        assert_eq!(img.get(2, 1), 5.0);
        assert_eq!(img.data()[img.index(2, 1)], 5.0);
        img.add(2, 1, 1.5);
        assert_eq!(img.get(2, 1), 6.5);
    }

    #[test]
    fn from_data_roundtrip() {
        let img = ImageF32::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(img.get(1, 0), 2.0);
        assert_eq!(img.get(0, 1), 3.0);
        assert_eq!(img.into_data(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rows_are_contiguous() {
        let img = ImageF32::from_data(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(img.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(img.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn clear_keeps_dimensions() {
        let mut img = ImageF32::from_data(2, 1, vec![1.0, 2.0]);
        img.clear();
        assert_eq!(img.data(), &[0.0, 0.0]);
        assert_eq!(img.width(), 2);
    }

    #[test]
    fn pixel_iteration_order() {
        let img = ImageF32::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let px: Vec<_> = img.pixels().collect();
        assert_eq!(px, vec![(0, 0, 1.0), (1, 0, 2.0), (0, 1, 3.0), (1, 1, 4.0)]);
    }

    #[test]
    fn data_mut_writes_through() {
        let mut img = ImageF32::new(2, 2);
        img.data_mut()[3] = 9.0;
        assert_eq!(img.get(1, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_width_rejected() {
        let _ = ImageF32::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_data_rejected() {
        let _ = ImageF32::from_data(2, 2, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let img = ImageF32::new(2, 2);
        let _ = img.get(2, 0);
    }
}
