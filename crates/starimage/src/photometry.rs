//! Aperture photometry: measuring star brightness back out of the image.
//!
//! The intensity model deposits `g(m)·μ` per pixel; photometry inverts
//! that — sum the flux in a circular aperture around the star, subtract
//! the local background estimated from a surrounding annulus, and the
//! result approximates `g(m)` (times the aperture's encircled-energy
//! fraction). Together with the magnitude law's inverse this closes the
//! radiometric loop: the magnitude written into the catalogue comes back
//! out of the rendered frame.

use crate::buffer::ImageF32;

/// An aperture/annulus geometry, radii in pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aperture {
    /// Flux-summing aperture radius.
    pub radius: f32,
    /// Inner radius of the background annulus.
    pub annulus_inner: f32,
    /// Outer radius of the background annulus.
    pub annulus_outer: f32,
}

impl Aperture {
    /// A conventional geometry: aperture of `radius`, annulus from
    /// `radius+2` to `radius+5`.
    pub fn new(radius: f32) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "radius must be positive"
        );
        Aperture {
            radius,
            annulus_inner: radius + 2.0,
            annulus_outer: radius + 5.0,
        }
    }

    /// Validates the geometry.
    pub fn validate(&self) -> Result<(), String> {
        if !self.radius.is_finite() || self.radius <= 0.0 {
            return Err(format!("aperture radius {} must be positive", self.radius));
        }
        if !(self.annulus_inner >= self.radius && self.annulus_outer > self.annulus_inner) {
            return Err(format!(
                "annulus [{}, {}] must lie outside the aperture {}",
                self.annulus_inner, self.annulus_outer, self.radius
            ));
        }
        Ok(())
    }
}

/// One photometric measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Photometry {
    /// Background-subtracted flux inside the aperture.
    pub flux: f64,
    /// Estimated background level per pixel (annulus median).
    pub background: f32,
    /// Pixels inside the aperture.
    pub aperture_pixels: usize,
    /// Pixels in the annulus used for the background estimate.
    pub annulus_pixels: usize,
}

/// Measures the star at `(cx, cy)` with geometry `ap`.
///
/// Pixels belong to a region by the distance of their centre. Apertures
/// clipped by the image border use whatever pixels remain (flagged by a
/// reduced `aperture_pixels`).
///
/// # Panics
/// Panics when the aperture geometry is invalid.
pub fn measure(img: &ImageF32, cx: f32, cy: f32, ap: Aperture) -> Photometry {
    ap.validate().expect("valid aperture");
    let (w, h) = (img.width() as i64, img.height() as i64);
    // Clamp the scan window to the image diagonal: a larger annulus can
    // only add out-of-bounds pixels, and an unclamped radius would make
    // the loop below scale with the radius squared.
    let r_out = (ap.annulus_outer.ceil() as i64).min(w + h);
    let (icx, icy) = (cx.round() as i64, cy.round() as i64);

    let mut flux_sum = 0.0f64;
    let mut n_ap = 0usize;
    let mut annulus: Vec<f32> = Vec::new();
    for dy in -r_out..=r_out {
        for dx in -r_out..=r_out {
            let (x, y) = (icx + dx, icy + dy);
            if x < 0 || y < 0 || x >= w || y >= h {
                continue;
            }
            let r = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
            let v = img.get(x as usize, y as usize);
            if r <= ap.radius {
                flux_sum += v as f64;
                n_ap += 1;
            } else if r >= ap.annulus_inner && r <= ap.annulus_outer {
                annulus.push(v);
            }
        }
    }
    // Median background: robust to neighbouring stars in the annulus.
    let background = if annulus.is_empty() {
        0.0
    } else {
        let mid = annulus.len() / 2;
        let (_, m, _) = annulus.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
        *m
    };
    Photometry {
        flux: flux_sum - background as f64 * n_ap as f64,
        background,
        aperture_pixels: n_ap,
        annulus_pixels: annulus.len(),
    }
}

/// Recovers a catalogue magnitude from a measurement: inverts
/// `g(m) = A·2.512^(−m)` after correcting for the aperture's encircled
/// energy `ee_fraction` (from the PSF model; 1.0 if uncorrected).
///
/// Returns `None` for non-positive flux (sky-dominated or empty aperture).
pub fn magnitude_from_flux(flux: f64, a_factor: f32, ee_fraction: f64) -> Option<f32> {
    if flux <= 0.0 || ee_fraction <= 0.0 {
        return None;
    }
    let g = (flux / ee_fraction) as f32;
    starfield_magnitude_inverse(g, a_factor)
}

// Local reimplementation note: starimage deliberately does not depend on
// starfield; the inverse of eq. 1 is three lines.
fn starfield_magnitude_inverse(g: f32, a_factor: f32) -> Option<f32> {
    if g <= 0.0 || a_factor <= 0.0 {
        return None;
    }
    Some(-((g / a_factor).ln() / 2.512f32.ln()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gaussian star + flat background, total blob flux = `total`.
    fn scene(cx: f32, cy: f32, total: f32, sigma: f32, bg: f32) -> ImageF32 {
        let mut img = ImageF32::new(96, 96);
        let norm = total / (2.0 * std::f32::consts::PI * sigma * sigma);
        for y in 0..96 {
            for x in 0..96 {
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                img.set(x, y, bg + norm * (-d2 / (2.0 * sigma * sigma)).exp());
            }
        }
        img
    }

    #[test]
    fn measures_flux_with_background_subtraction() {
        let img = scene(48.0, 48.0, 100.0, 1.5, 0.25);
        let p = measure(&img, 48.0, 48.0, Aperture::new(6.0));
        // r = 6 = 4σ: >99.97% of the energy; background subtracted.
        assert!((p.flux - 100.0).abs() < 1.0, "flux {}", p.flux);
        assert!((p.background - 0.25).abs() < 1e-3);
        assert!(p.aperture_pixels > 100);
        assert!(p.annulus_pixels > 50);
    }

    #[test]
    fn no_background_no_bias() {
        let img = scene(48.0, 48.0, 50.0, 1.5, 0.0);
        let p = measure(&img, 48.0, 48.0, Aperture::new(6.0));
        assert!((p.flux - 50.0).abs() < 0.5);
        // The annulus sits on the PSF's far wings: ~1e-8, not exactly zero.
        assert!(p.background < 1e-6, "background {}", p.background);
    }

    #[test]
    fn annulus_median_rejects_a_neighbour() {
        // A second star sitting in the annulus would bias a *mean*
        // background; the median shrugs it off.
        let mut img = scene(48.0, 48.0, 100.0, 1.5, 0.1);
        let neighbour = scene(56.0, 48.0, 80.0, 1.0, 0.0);
        for (dst, src) in img.data_mut().iter_mut().zip(neighbour.data()) {
            *dst += src;
        }
        let p = measure(&img, 48.0, 48.0, Aperture::new(5.0));
        assert!(
            (p.background - 0.1).abs() < 0.02,
            "median background {} should ignore the neighbour",
            p.background
        );
    }

    #[test]
    fn magnitude_roundtrip() {
        // g(m) with A=1000, m=4 → flux 1000·2.512^-4 ≈ 25.1.
        let a = 1000.0f32;
        let m_true = 4.0f32;
        let g = a * 2.512f32.powf(-m_true);
        let img = scene(48.0, 48.0, g, 1.5, 0.05);
        let p = measure(&img, 48.0, 48.0, Aperture::new(6.0));
        let m = magnitude_from_flux(p.flux, a, 0.9997).unwrap();
        assert!(
            (m - m_true).abs() < 0.02,
            "recovered m={m} vs true {m_true}"
        );
    }

    #[test]
    fn non_positive_flux_yields_none() {
        assert_eq!(magnitude_from_flux(0.0, 1000.0, 1.0), None);
        assert_eq!(magnitude_from_flux(-1.0, 1000.0, 1.0), None);
        assert_eq!(magnitude_from_flux(1.0, 1000.0, 0.0), None);
        assert_eq!(magnitude_from_flux(1.0, 0.0, 1.0), None);
    }

    #[test]
    fn border_clipping_reduces_pixel_counts() {
        let img = scene(2.0, 2.0, 100.0, 1.5, 0.0);
        let p = measure(&img, 2.0, 2.0, Aperture::new(6.0));
        let interior = measure(
            &scene(48.0, 48.0, 100.0, 1.5, 0.0),
            48.0,
            48.0,
            Aperture::new(6.0),
        );
        assert!(p.aperture_pixels < interior.aperture_pixels);
    }

    #[test]
    fn huge_annulus_is_clamped_not_hung() {
        // A pathological outer radius must terminate promptly (scan window
        // clamps to the image diagonal) and still measure correctly.
        let img = scene(48.0, 48.0, 10.0, 1.5, 0.0);
        let ap = Aperture {
            radius: 6.0,
            annulus_inner: 8.0,
            annulus_outer: 1e9,
        };
        let t = std::time::Instant::now();
        let p = measure(&img, 48.0, 48.0, ap);
        assert!(t.elapsed().as_secs_f64() < 5.0, "must not hang");
        assert!((p.flux - 10.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "annulus")]
    fn invalid_geometry_panics() {
        let img = ImageF32::new(8, 8);
        let bad = Aperture {
            radius: 5.0,
            annulus_inner: 3.0,
            annulus_outer: 4.0,
        };
        let _ = measure(&img, 4.0, 4.0, bad);
    }
}
