//! Lock-free atomic accumulation image.
//!
//! The parallel simulator's kernel ends with
//! `atomicAdd(&imagePixel[y*width+x], grayDistribution)` (paper Fig. 6,
//! step 8): concurrent thread blocks whose ROIs overlap must accumulate
//! into the same pixel without losing updates. Rust has no `AtomicF32`, so
//! we implement the standard compare-exchange loop over the `f32` bit
//! pattern stored in an [`AtomicU32`] — semantically identical to CUDA's
//! pre-sm_20 software `atomicAdd(float*)`.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::buffer::ImageF32;

/// A row-major image of atomically-updatable `f32` pixels.
///
/// Shared by reference across worker threads during kernel execution; the
/// finished image is extracted with [`Self::snapshot`] or
/// [`Self::into_image`].
#[derive(Debug)]
pub struct AtomicImage {
    width: usize,
    height: usize,
    data: Vec<AtomicU32>,
    /// Number of adds that had to retry their CAS at least once — a direct
    /// measure of the write-collision pressure the paper discusses
    /// ("queuing for the same memory modification").
    contended: AtomicU64,
}

impl AtomicImage {
    /// A zero-filled atomic image.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        let mut data = Vec::with_capacity(width * height);
        data.resize_with(width * height, || AtomicU32::new(0f32.to_bits()));
        AtomicImage {
            width,
            height,
            data,
            contended: AtomicU64::new(0),
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the image holds no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Atomically adds `v` to the pixel at linear index `idx`, returning the
    /// previous value. Lock-free CAS loop; `Relaxed` ordering suffices
    /// because pixel values carry no inter-thread control dependences — the
    /// executor joins all workers before the image is read.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    #[inline]
    pub fn fetch_add(&self, idx: usize, v: f32) -> f32 {
        let cell = &self.data[idx];
        let mut current = cell.load(Ordering::Relaxed);
        let mut retried = false;
        loop {
            let new = (f32::from_bits(current) + v).to_bits();
            match cell.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(prev) => {
                    if retried {
                        self.contended.fetch_add(1, Ordering::Relaxed);
                    }
                    return f32::from_bits(prev);
                }
                Err(observed) => {
                    retried = true;
                    current = observed;
                }
            }
        }
    }

    /// Atomically adds `v` at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn add(&self, x: usize, y: usize, v: f32) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.fetch_add(y * self.width + x, v)
    }

    /// Non-atomic read of pixel `(x, y)` (exact once workers have joined).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        f32::from_bits(self.data[y * self.width + x].load(Ordering::Relaxed))
    }

    /// Number of adds that observed contention (retried their CAS).
    pub fn contended_adds(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Copies the current contents into a plain [`ImageF32`].
    pub fn snapshot(&self) -> ImageF32 {
        let data = self
            .data
            .iter()
            .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
            .collect();
        ImageF32::from_data(self.width, self.height, data)
    }

    /// Consumes the atomic image into a plain [`ImageF32`] without copying
    /// per-pixel atomics (single allocation move).
    pub fn into_image(self) -> ImageF32 {
        let data = self
            .data
            .into_iter()
            .map(|c| f32::from_bits(c.into_inner()))
            .collect();
        ImageF32::from_data(self.width, self.height, data)
    }

    /// Loads a plain image's contents (used to seed background gray).
    pub fn load_from(&self, img: &ImageF32) {
        assert_eq!(
            (img.width(), img.height()),
            (self.width, self.height),
            "image dimensions must match"
        );
        for (cell, &v) in self.data.iter().zip(img.data()) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn basic_add_and_get() {
        let img = AtomicImage::new(4, 4);
        assert_eq!(img.len(), 16);
        assert!(!img.is_empty());
        let prev = img.add(1, 2, 3.5);
        assert_eq!(prev, 0.0);
        let prev = img.add(1, 2, 1.0);
        assert_eq!(prev, 3.5);
        assert_eq!(img.get(1, 2), 4.5);
        assert_eq!((img.width(), img.height()), (4, 4));
    }

    #[test]
    fn snapshot_matches_contents() {
        let img = AtomicImage::new(3, 2);
        img.add(0, 0, 1.0);
        img.add(2, 1, 2.0);
        let snap = img.snapshot();
        assert_eq!(snap.get(0, 0), 1.0);
        assert_eq!(snap.get(2, 1), 2.0);
        assert_eq!(snap.get(1, 0), 0.0);
        let owned = img.into_image();
        assert_eq!(owned, snap);
    }

    #[test]
    fn load_from_seeds_contents() {
        let mut base = ImageF32::new(2, 2);
        base.set(1, 1, 7.0);
        let img = AtomicImage::new(2, 2);
        img.load_from(&base);
        img.add(1, 1, 1.0);
        assert_eq!(img.get(1, 1), 8.0);
    }

    #[test]
    fn concurrent_adds_lose_nothing() {
        // The core atomicAdd guarantee: N threads × M adds of 1.0 into one
        // pixel must total exactly N·M (f32 exactly represents these sums).
        let img = AtomicImage::new(8, 8);
        let threads = 8;
        let adds = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for i in 0..adds {
                        img.fetch_add(i % 64, 1.0);
                    }
                });
            }
        });
        let total: f64 = img.snapshot().data().iter().map(|&v| v as f64).sum();
        assert_eq!(total, (threads * adds) as f64);
    }

    #[test]
    fn contention_counter_fires_under_pressure() {
        let img = AtomicImage::new(1, 1);
        let spins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..20_000 {
                        img.fetch_add(0, 0.001);
                        spins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // With true parallelism, 8 threads hammering one address are certain
        // to retry. On a single-core host the OS serializes the threads and
        // CAS may never observe interference, so only assert when the
        // machine can actually run threads concurrently.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 2 {
            assert!(
                img.contended_adds() > 0,
                "expected contention on a single hot pixel"
            );
        }
    }

    #[test]
    fn no_contention_single_threaded() {
        let img = AtomicImage::new(2, 2);
        for _ in 0..1000 {
            img.add(0, 0, 1.0);
        }
        assert_eq!(img.contended_adds(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_add_panics() {
        let img = AtomicImage::new(2, 2);
        img.add(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn load_from_mismatched_panics() {
        let img = AtomicImage::new(2, 2);
        img.load_from(&ImageF32::new(3, 2));
    }
}
