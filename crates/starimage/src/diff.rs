//! Image comparison used to validate simulators against each other.
//!
//! The paper's correctness argument is implicit ("there must be mistakes in
//! either simulator" if their results disagree, §IV-C); we make it explicit
//! by comparing parallel/adaptive output against the sequential baseline.

use crate::buffer::ImageF32;

/// The result of comparing two images.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageDiff {
    /// Maximum absolute per-pixel difference.
    pub max_abs: f32,
    /// Maximum relative difference `|a−b| / max(|a|, |b|, eps)`.
    pub max_rel: f32,
    /// Root-mean-square difference.
    pub rmse: f64,
    /// Number of pixels whose absolute difference exceeds `tolerance`
    /// passed to [`compare`].
    pub pixels_over_tolerance: usize,
}

/// Compares two images of identical dimensions.
///
/// `tolerance` only affects the `pixels_over_tolerance` count.
///
/// # Panics
/// Panics when dimensions differ.
pub fn compare(a: &ImageF32, b: &ImageF32, tolerance: f32) -> ImageDiff {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "cannot compare images of different sizes"
    );
    const EPS: f32 = 1e-20;
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut sq = 0.0f64;
    let mut over = 0usize;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        let d = (x - y).abs();
        max_abs = max_abs.max(d);
        max_rel = max_rel.max(d / x.abs().max(y.abs()).max(EPS));
        sq += (d as f64) * (d as f64);
        if d > tolerance {
            over += 1;
        }
    }
    ImageDiff {
        max_abs,
        max_rel,
        rmse: (sq / a.len() as f64).sqrt(),
        pixels_over_tolerance: over,
    }
}

/// True when every pixel of `a` and `b` agrees within `abs_tol` absolutely
/// *or* `rel_tol` relatively — the standard mixed tolerance for floating
/// point accumulation order differences.
pub fn images_close(a: &ImageF32, b: &ImageF32, abs_tol: f32, rel_tol: f32) -> bool {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "cannot compare images of different sizes"
    );
    a.data().iter().zip(b.data()).all(|(&x, &y)| {
        let d = (x - y).abs();
        d <= abs_tol || d <= rel_tol * x.abs().max(y.abs())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_diff_zero() {
        let img = ImageF32::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let d = compare(&img, &img.clone(), 0.0);
        assert_eq!(d.max_abs, 0.0);
        assert_eq!(d.max_rel, 0.0);
        assert_eq!(d.rmse, 0.0);
        assert_eq!(d.pixels_over_tolerance, 0);
        assert!(images_close(&img, &img.clone(), 0.0, 0.0));
    }

    #[test]
    fn known_difference() {
        let a = ImageF32::from_data(2, 1, vec![1.0, 2.0]);
        let b = ImageF32::from_data(2, 1, vec![1.5, 2.0]);
        let d = compare(&a, &b, 0.1);
        assert_eq!(d.max_abs, 0.5);
        assert!((d.max_rel - 0.5 / 1.5).abs() < 1e-6);
        assert!((d.rmse - (0.25f64 / 2.0).sqrt()).abs() < 1e-12);
        assert_eq!(d.pixels_over_tolerance, 1);
    }

    #[test]
    fn mixed_tolerance_accepts_small_relative_error() {
        let a = ImageF32::from_data(1, 1, vec![1000.0]);
        let b = ImageF32::from_data(1, 1, vec![1000.5]);
        // 0.5 absolute is large, but 5e-4 relative is fine.
        assert!(!images_close(&a, &b, 0.1, 0.0));
        assert!(images_close(&a, &b, 0.1, 1e-3));
        assert!(images_close(&a, &b, 1.0, 0.0));
    }

    #[test]
    fn zero_pixels_compare_absolutely() {
        let a = ImageF32::from_data(1, 1, vec![0.0]);
        let b = ImageF32::from_data(1, 1, vec![1e-9]);
        assert!(images_close(&a, &b, 1e-8, 0.0));
        assert!(!images_close(&a, &b, 1e-10, 0.5));
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn size_mismatch_panics() {
        let _ = compare(&ImageF32::new(2, 2), &ImageF32::new(2, 3), 0.0);
    }
}
