//! Star centroiding: recovering sub-pixel star positions from a rendered
//! image.
//!
//! This closes the loop the paper's introduction motivates: a star sensor
//! images the sky, then *extracts* star positions for attitude
//! determination. The star-tracker example simulates an image with the
//! intensity model and uses this module to recover the injected stars.

use crate::buffer::ImageF32;

/// A detected star: centre-of-mass position and integrated flux.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Sub-pixel x (column) position.
    pub x: f32,
    /// Sub-pixel y (row) position.
    pub y: f32,
    /// Integrated flux over the detection window.
    pub flux: f64,
    /// Peak pixel value.
    pub peak: f32,
}

/// Detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentroidParams {
    /// A pixel must exceed this value to seed a detection.
    pub threshold: f32,
    /// Half-size of the square centroiding window around a local maximum.
    pub window: usize,
}

impl Default for CentroidParams {
    fn default() -> Self {
        CentroidParams {
            threshold: 1e-3,
            window: 4,
        }
    }
}

/// Finds local maxima above threshold and centroids each with an
/// intensity-weighted centre of mass over a `(2·window+1)²` box.
///
/// Detections are returned brightest-first. Neighbouring maxima closer than
/// `window` pixels merge into the brighter one (simple non-max suppression),
/// which mirrors how real star trackers treat blended pairs.
pub fn detect_stars(img: &ImageF32, params: CentroidParams) -> Vec<Detection> {
    let (w, h) = (img.width(), img.height());
    let win = params.window as i64;
    let mut seeds: Vec<(usize, usize, f32)> = Vec::new();

    for y in 0..h {
        for x in 0..w {
            let v = img.get(x, y);
            if v <= params.threshold {
                continue;
            }
            // 8-neighbour local maximum (ties broken toward the first in
            // raster order by using >= for earlier neighbours).
            let mut is_max = true;
            'scan: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                    if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                        continue;
                    }
                    let nv = img.get(nx as usize, ny as usize);
                    let earlier = dy < 0 || (dy == 0 && dx < 0);
                    if nv > v || (earlier && nv == v) {
                        is_max = false;
                        break 'scan;
                    }
                }
            }
            if is_max {
                seeds.push((x, y, v));
            }
        }
    }

    // Brightest first, then suppress seeds within `window` of a kept one.
    seeds.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut kept: Vec<(usize, usize, f32)> = Vec::new();
    'seed: for s in seeds {
        for k in &kept {
            let dx = s.0 as i64 - k.0 as i64;
            let dy = s.1 as i64 - k.1 as i64;
            if dx.abs() <= win && dy.abs() <= win {
                continue 'seed;
            }
        }
        kept.push(s);
    }

    kept.into_iter()
        .map(|(sx, sy, peak)| {
            let mut flux = 0.0f64;
            let mut mx = 0.0f64;
            let mut my = 0.0f64;
            for dy in -win..=win {
                for dx in -win..=win {
                    let (nx, ny) = (sx as i64 + dx, sy as i64 + dy);
                    if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                        continue;
                    }
                    let v = img.get(nx as usize, ny as usize) as f64;
                    flux += v;
                    mx += v * nx as f64;
                    my += v * ny as f64;
                }
            }
            Detection {
                x: (mx / flux) as f32,
                y: (my / flux) as f32,
                flux,
                peak,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deposits a symmetric Gaussian blob for testing.
    fn blob(img: &mut ImageF32, cx: f32, cy: f32, amp: f32, sigma: f32) {
        let (w, h) = (img.width(), img.height());
        for y in 0..h {
            for x in 0..w {
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                let v = amp * (-d2 / (2.0 * sigma * sigma)).exp();
                img.add(x, y, v);
            }
        }
    }

    #[test]
    fn single_centred_star_recovered_exactly() {
        let mut img = ImageF32::new(64, 64);
        blob(&mut img, 32.0, 32.0, 10.0, 2.0);
        let dets = detect_stars(&img, CentroidParams::default());
        assert_eq!(dets.len(), 1);
        let d = dets[0];
        assert!((d.x - 32.0).abs() < 1e-3, "x={}", d.x);
        assert!((d.y - 32.0).abs() < 1e-3);
        assert!(d.peak > 9.0);
        assert!(d.flux > 0.0);
    }

    #[test]
    fn subpixel_position_recovered() {
        let mut img = ImageF32::new(64, 64);
        blob(&mut img, 20.3, 40.7, 10.0, 2.0);
        let dets = detect_stars(&img, CentroidParams::default());
        assert_eq!(dets.len(), 1);
        // Centre of mass over a symmetric window recovers sub-pixel centres
        // to a few hundredths of a pixel.
        assert!((dets[0].x - 20.3).abs() < 0.05, "x={}", dets[0].x);
        assert!((dets[0].y - 40.7).abs() < 0.05, "y={}", dets[0].y);
    }

    #[test]
    fn multiple_separated_stars_detected_brightest_first() {
        let mut img = ImageF32::new(128, 128);
        blob(&mut img, 30.0, 30.0, 5.0, 1.5);
        blob(&mut img, 90.0, 100.0, 20.0, 1.5);
        blob(&mut img, 100.0, 20.0, 10.0, 1.5);
        let dets = detect_stars(&img, CentroidParams::default());
        assert_eq!(dets.len(), 3);
        assert!(dets[0].peak > dets[1].peak && dets[1].peak > dets[2].peak);
        assert!((dets[0].x - 90.0).abs() < 0.1 && (dets[0].y - 100.0).abs() < 0.1);
    }

    #[test]
    fn close_pair_merges_into_one_detection() {
        let mut img = ImageF32::new(64, 64);
        blob(&mut img, 30.0, 30.0, 10.0, 1.5);
        blob(&mut img, 32.0, 30.0, 8.0, 1.5);
        let dets = detect_stars(
            &img,
            CentroidParams {
                threshold: 1e-3,
                window: 4,
            },
        );
        assert_eq!(dets.len(), 1, "blended pair should merge");
        // Centroid lands between the two, weighted toward the brighter.
        assert!(dets[0].x > 30.0 && dets[0].x < 32.0);
    }

    #[test]
    fn empty_image_detects_nothing() {
        let img = ImageF32::new(32, 32);
        assert!(detect_stars(&img, CentroidParams::default()).is_empty());
    }

    #[test]
    fn threshold_suppresses_faint_stars() {
        let mut img = ImageF32::new(64, 64);
        blob(&mut img, 20.0, 20.0, 0.5, 1.5);
        blob(&mut img, 45.0, 45.0, 50.0, 1.5);
        let dets = detect_stars(
            &img,
            CentroidParams {
                threshold: 1.0,
                window: 4,
            },
        );
        assert_eq!(dets.len(), 1);
        assert!((dets[0].x - 45.0).abs() < 0.1);
    }

    #[test]
    fn star_near_edge_still_centroids() {
        let mut img = ImageF32::new(64, 64);
        blob(&mut img, 1.0, 1.0, 10.0, 1.5);
        let dets = detect_stars(&img, CentroidParams::default());
        assert_eq!(dets.len(), 1);
        // Window clips at the border, biasing slightly inward; allow 0.5 px.
        assert!((dets[0].x - 1.0).abs() < 0.5);
        assert!((dets[0].y - 1.0).abs() < 0.5);
    }
}
