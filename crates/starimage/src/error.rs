//! Error type for image IO.

use std::fmt;

/// Errors produced by image readers/writers.
#[derive(Debug)]
pub enum ImageError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Malformed or unsupported file contents.
    Format(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Io(e) => write!(f, "image IO error: {e}"),
            ImageError::Format(m) => write!(f, "image format error: {m}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = ImageError::Format("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(e.source().is_none());
        let io: ImageError = std::io::Error::other("x").into();
        assert!(io.source().is_some());
    }
}
