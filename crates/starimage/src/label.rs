//! Connected-component labeling: blob extraction that works on *streaked*
//! stars, where local-maximum centroiding (see [`crate::centroid`])
//! fragments or misses elongated images.
//!
//! Classic two-pass 8-connected labeling with a union–find over
//! provisional labels, followed by per-component moment accumulation. The
//! second moments give each blob's elongation — exactly what a tracker
//! needs to detect slew-smeared frames.

use crate::buffer::ImageF32;

/// One labeled blob with its intensity moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blob {
    /// Pixel count.
    pub area: usize,
    /// Integrated intensity.
    pub flux: f64,
    /// Intensity-weighted centroid x.
    pub cx: f32,
    /// Intensity-weighted centroid y.
    pub cy: f32,
    /// Peak pixel value.
    pub peak: f32,
    /// Major-axis length (2σ of the intensity distribution), pixels.
    pub major_axis: f32,
    /// Minor-axis length (2σ), pixels.
    pub minor_axis: f32,
    /// Major-axis orientation, radians from +x in `(-π/2, π/2]`.
    pub orientation: f32,
}

impl Blob {
    /// Elongation ratio ≥ 1; ≈1 for round (static) stars, ≫1 for streaks.
    pub fn elongation(&self) -> f32 {
        if self.minor_axis < 1e-6 {
            f32::INFINITY
        } else {
            self.major_axis / self.minor_axis
        }
    }
}

/// Union–find with path halving.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new() -> Self {
        Dsu { parent: Vec::new() }
    }
    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }
}

/// Labels 8-connected components of pixels above `threshold` and returns
/// their blobs, brightest (by flux) first. Components smaller than
/// `min_area` pixels are dropped (noise rejection).
pub fn label_blobs(img: &ImageF32, threshold: f32, min_area: usize) -> Vec<Blob> {
    let (w, h) = (img.width(), img.height());
    const NONE: u32 = u32::MAX;
    let mut labels = vec![NONE; w * h];
    let mut dsu = Dsu::new();

    // Pass 1: provisional labels; union with the west and the three
    // northern neighbours.
    for y in 0..h {
        for x in 0..w {
            if img.get(x, y) <= threshold {
                continue;
            }
            let idx = y * w + x;
            let mut assigned = NONE;
            let neighbours = [
                (x.wrapping_sub(1), y),
                (x.wrapping_sub(1), y.wrapping_sub(1)),
                (x, y.wrapping_sub(1)),
                (x + 1, y.wrapping_sub(1)),
            ];
            for (nx, ny) in neighbours {
                if nx < w && ny < h {
                    let nl = labels[ny * w + nx];
                    if nl != NONE {
                        if assigned == NONE {
                            assigned = nl;
                        } else {
                            dsu.union(assigned, nl);
                        }
                    }
                }
            }
            labels[idx] = if assigned == NONE {
                dsu.make()
            } else {
                assigned
            };
        }
    }

    // Pass 2: accumulate moments per root label.
    #[derive(Default, Clone)]
    struct Acc {
        area: usize,
        flux: f64,
        sx: f64,
        sy: f64,
        sxx: f64,
        syy: f64,
        sxy: f64,
        peak: f32,
    }
    let mut acc: std::collections::HashMap<u32, Acc> = std::collections::HashMap::new();
    for y in 0..h {
        for x in 0..w {
            let l = labels[y * w + x];
            if l == NONE {
                continue;
            }
            let root = dsu.find(l);
            let v = img.get(x, y) as f64;
            let a = acc.entry(root).or_default();
            a.area += 1;
            a.flux += v;
            a.sx += v * x as f64;
            a.sy += v * y as f64;
            a.sxx += v * (x as f64) * (x as f64);
            a.syy += v * (y as f64) * (y as f64);
            a.sxy += v * (x as f64) * (y as f64);
            a.peak = a.peak.max(img.get(x, y));
        }
    }

    let mut blobs: Vec<Blob> = acc
        .values()
        .filter(|a| a.area >= min_area && a.flux > 0.0)
        .map(|a| {
            let cx = a.sx / a.flux;
            let cy = a.sy / a.flux;
            // Central second moments.
            let mxx = (a.sxx / a.flux - cx * cx).max(0.0);
            let myy = (a.syy / a.flux - cy * cy).max(0.0);
            let mxy = a.sxy / a.flux - cx * cy;
            // Eigenvalues of the 2×2 covariance.
            let tr = mxx + myy;
            let det = mxx * myy - mxy * mxy;
            let disc = (tr * tr / 4.0 - det).max(0.0).sqrt();
            let l1 = (tr / 2.0 + disc).max(0.0);
            let l2 = (tr / 2.0 - disc).max(0.0);
            let orientation = 0.5 * (2.0 * mxy).atan2(mxx - myy);
            Blob {
                area: a.area,
                flux: a.flux,
                cx: cx as f32,
                cy: cy as f32,
                peak: a.peak,
                major_axis: (2.0 * l1.sqrt()) as f32,
                minor_axis: (2.0 * l2.sqrt()) as f32,
                orientation: orientation as f32,
            }
        })
        .collect();
    blobs.sort_by(|a, b| b.flux.total_cmp(&a.flux));
    blobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blob(img: &mut ImageF32, cx: f32, cy: f32, amp: f32, sx: f32, sy: f32, theta: f32) {
        let (c, s) = (theta.cos(), theta.sin());
        for y in 0..img.height() {
            for x in 0..img.width() {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let u = c * dx + s * dy;
                let v = -s * dx + c * dy;
                let e = (-(u * u) / (2.0 * sx * sx) - (v * v) / (2.0 * sy * sy)).exp();
                img.add(x, y, amp * e);
            }
        }
    }

    #[test]
    fn single_round_blob() {
        let mut img = ImageF32::new(64, 64);
        gaussian_blob(&mut img, 30.0, 34.0, 10.0, 2.0, 2.0, 0.0);
        let blobs = label_blobs(&img, 0.01, 3);
        assert_eq!(blobs.len(), 1);
        let b = blobs[0];
        assert!((b.cx - 30.0).abs() < 0.1 && (b.cy - 34.0).abs() < 0.1);
        assert!(b.elongation() < 1.2, "round blob, got {}", b.elongation());
        assert!(b.peak > 9.0);
        assert!(b.area > 10);
    }

    #[test]
    fn separated_blobs_counted_brightest_first() {
        let mut img = ImageF32::new(96, 96);
        gaussian_blob(&mut img, 20.0, 20.0, 5.0, 1.5, 1.5, 0.0);
        gaussian_blob(&mut img, 70.0, 70.0, 20.0, 1.5, 1.5, 0.0);
        let blobs = label_blobs(&img, 0.01, 3);
        assert_eq!(blobs.len(), 2);
        assert!(blobs[0].flux > blobs[1].flux);
        assert!((blobs[0].cx - 70.0).abs() < 0.2);
    }

    #[test]
    fn touching_blobs_merge() {
        let mut img = ImageF32::new(64, 64);
        gaussian_blob(&mut img, 30.0, 30.0, 10.0, 2.0, 2.0, 0.0);
        gaussian_blob(&mut img, 33.0, 30.0, 10.0, 2.0, 2.0, 0.0);
        let blobs = label_blobs(&img, 0.01, 3);
        assert_eq!(blobs.len(), 1, "overlapping images form one component");
        assert!((blobs[0].cx - 31.5).abs() < 0.2);
    }

    #[test]
    fn streak_detected_as_elongated_with_orientation() {
        let mut img = ImageF32::new(96, 96);
        let theta = 0.5f32;
        gaussian_blob(&mut img, 48.0, 48.0, 10.0, 6.0, 1.5, theta);
        let blobs = label_blobs(&img, 0.01, 5);
        assert_eq!(blobs.len(), 1);
        let b = blobs[0];
        assert!(b.elongation() > 2.5, "elongation {}", b.elongation());
        assert!(
            (b.orientation - theta).abs() < 0.05,
            "orientation {} vs {theta}",
            b.orientation
        );
        assert!(b.major_axis > b.minor_axis);
    }

    #[test]
    fn min_area_rejects_specks() {
        let mut img = ImageF32::new(32, 32);
        img.set(5, 5, 1.0); // single-pixel noise hit
        gaussian_blob(&mut img, 20.0, 20.0, 10.0, 2.0, 2.0, 0.0);
        let blobs = label_blobs(&img, 0.01, 4);
        assert_eq!(blobs.len(), 1);
        assert!((blobs[0].cx - 20.0).abs() < 0.2);
    }

    #[test]
    fn empty_image_has_no_blobs() {
        let img = ImageF32::new(32, 32);
        assert!(label_blobs(&img, 0.0, 1).is_empty());
    }

    #[test]
    fn u_shaped_component_merges_across_provisional_labels() {
        // A 'U' forces two provisional labels that only merge at the
        // bottom row — the union–find's job.
        let mut img = ImageF32::new(16, 16);
        for y in 2..10 {
            img.set(3, y, 1.0);
            img.set(9, y, 1.0);
        }
        for x in 3..=9 {
            img.set(x, 10, 1.0);
        }
        let blobs = label_blobs(&img, 0.5, 1);
        assert_eq!(blobs.len(), 1, "U shape must be one component");
        assert_eq!(blobs[0].area, 8 + 8 + 7);
    }
}
