//! Conversion from raw intensity to displayable gray levels.
//!
//! The simulators accumulate unbounded `f32` intensities; the *Output*
//! stage (paper §III-A) maps them into 8-bit (or 16-bit) gray for picture
//! formats "like JPG, BMP, etc".

use crate::buffer::ImageF32;

/// Tone-mapping settings for the output stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayMap {
    /// Intensity mapped to full white. Values above saturate.
    pub white_level: f32,
    /// Gamma applied after normalization (1.0 = linear).
    pub gamma: f32,
}

impl GrayMap {
    /// Linear map saturating at `white_level`.
    pub fn linear(white_level: f32) -> Self {
        GrayMap {
            white_level,
            gamma: 1.0,
        }
    }

    /// Map with gamma correction.
    ///
    /// # Panics
    /// Panics unless `white_level` and `gamma` are positive and finite.
    pub fn with_gamma(white_level: f32, gamma: f32) -> Self {
        assert!(
            white_level.is_finite() && white_level > 0.0,
            "white level must be positive, got {white_level}"
        );
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "gamma must be positive, got {gamma}"
        );
        GrayMap { white_level, gamma }
    }

    /// A map whose white level is the image's maximum (auto-exposure).
    /// Falls back to 1.0 for an all-black image.
    pub fn auto(img: &ImageF32) -> Self {
        let max = img.data().iter().copied().fold(0.0f32, f32::max);
        GrayMap::linear(if max > 0.0 { max } else { 1.0 })
    }

    /// Auto-exposure at a percentile of the *lit* pixels: robust against a
    /// single saturating star dominating the stretch in dense fields.
    /// `percentile` is in `(0, 100]`; 99.5 is a good survey default.
    /// Falls back to 1.0 for an all-black image.
    ///
    /// # Panics
    /// Panics when `percentile` is out of range.
    pub fn auto_percentile(img: &ImageF32, percentile: f32) -> Self {
        assert!(
            percentile > 0.0 && percentile <= 100.0,
            "percentile must be in (0, 100], got {percentile}"
        );
        let mut lit: Vec<f32> = img.data().iter().copied().filter(|&v| v > 0.0).collect();
        if lit.is_empty() {
            return GrayMap::linear(1.0);
        }
        let k = ((percentile / 100.0 * lit.len() as f32).ceil() as usize).clamp(1, lit.len()) - 1;
        let (_, kth, _) = lit.select_nth_unstable_by(k, |a, b| a.total_cmp(b));
        GrayMap::linear(*kth)
    }

    /// Maps one intensity into `[0, 1]`.
    #[inline]
    pub fn normalize(&self, v: f32) -> f32 {
        let t = (v / self.white_level).clamp(0.0, 1.0);
        if self.gamma == 1.0 {
            t
        } else {
            t.powf(1.0 / self.gamma)
        }
    }

    /// Maps one intensity to an 8-bit gray level.
    #[inline]
    pub fn to_u8(&self, v: f32) -> u8 {
        (self.normalize(v) * 255.0).round() as u8
    }

    /// Maps one intensity to a 16-bit gray level.
    #[inline]
    pub fn to_u16(&self, v: f32) -> u16 {
        (self.normalize(v) * 65535.0).round() as u16
    }
}

/// Converts a whole image to 8-bit gray, row-major.
pub fn to_gray8(img: &ImageF32, map: GrayMap) -> Vec<u8> {
    img.data().iter().map(|&v| map.to_u8(v)).collect()
}

/// Converts a whole image to 16-bit gray, row-major.
pub fn to_gray16(img: &ImageF32, map: GrayMap) -> Vec<u16> {
    img.data().iter().map(|&v| map.to_u16(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_map_endpoints() {
        let m = GrayMap::linear(10.0);
        assert_eq!(m.to_u8(0.0), 0);
        assert_eq!(m.to_u8(10.0), 255);
        assert_eq!(m.to_u8(5.0), 128); // 0.5·255 rounds to 128
                                       // Saturation.
        assert_eq!(m.to_u8(100.0), 255);
        assert_eq!(m.to_u8(-1.0), 0);
    }

    #[test]
    fn sixteen_bit_resolution() {
        let m = GrayMap::linear(1.0);
        assert_eq!(m.to_u16(1.0), 65535);
        assert_eq!(m.to_u16(0.5), 32768);
        assert!(m.to_u16(1e-4) > 0, "16-bit should resolve 1e-4 of white");
    }

    #[test]
    fn gamma_brightens_midtones() {
        let lin = GrayMap::linear(1.0);
        let g22 = GrayMap::with_gamma(1.0, 2.2);
        assert!(g22.to_u8(0.2) > lin.to_u8(0.2));
        assert_eq!(g22.to_u8(0.0), 0);
        assert_eq!(g22.to_u8(1.0), 255);
    }

    #[test]
    fn auto_exposure_uses_max() {
        let mut img = ImageF32::new(2, 2);
        img.set(1, 1, 40.0);
        let m = GrayMap::auto(&img);
        assert_eq!(m.white_level, 40.0);
        assert_eq!(m.to_u8(40.0), 255);
        // All-black image falls back to a sane white level.
        let black = ImageF32::new(2, 2);
        assert_eq!(GrayMap::auto(&black).white_level, 1.0);
    }

    #[test]
    fn percentile_exposure_ignores_outliers() {
        // 99 pixels at 1.0 and a 1000× outlier: the 99th percentile stretch
        // keeps the field visible where the max-stretch would crush it.
        let mut data = vec![1.0f32; 99];
        data.push(1000.0);
        let img = ImageF32::from_data(10, 10, data);
        let robust = GrayMap::auto_percentile(&img, 99.0);
        assert_eq!(robust.white_level, 1.0);
        assert_eq!(robust.to_u8(1.0), 255);
        let naive = GrayMap::auto(&img);
        assert_eq!(naive.to_u8(1.0), 0, "max-stretch crushes the field");
        // 100th percentile equals the max.
        assert_eq!(GrayMap::auto_percentile(&img, 100.0).white_level, 1000.0);
    }

    #[test]
    fn percentile_exposure_edge_cases() {
        let black = ImageF32::new(4, 4);
        assert_eq!(GrayMap::auto_percentile(&black, 99.0).white_level, 1.0);
        let mut one = ImageF32::new(2, 2);
        one.set(0, 0, 7.0);
        assert_eq!(GrayMap::auto_percentile(&one, 50.0).white_level, 7.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_rejected() {
        let _ = GrayMap::auto_percentile(&ImageF32::new(1, 1), 0.0);
    }

    #[test]
    fn whole_image_conversion() {
        let img = ImageF32::from_data(2, 2, vec![0.0, 1.0, 2.0, 4.0]);
        let g = to_gray8(&img, GrayMap::linear(4.0));
        assert_eq!(g, vec![0, 64, 128, 255]);
        let g16 = to_gray16(&img, GrayMap::linear(4.0));
        assert_eq!(g16[3], 65535);
        assert_eq!(g16.len(), 4);
    }

    #[test]
    fn normalize_is_monotone() {
        let m = GrayMap::with_gamma(10.0, 2.2);
        let mut prev = -1.0;
        for i in 0..=100 {
            let v = m.normalize(i as f32 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn bad_gamma_rejected() {
        let _ = GrayMap::with_gamma(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "white level must be positive")]
    fn bad_white_rejected() {
        let _ = GrayMap::with_gamma(0.0, 1.0);
    }
}
