//! Self-contained image file IO (no external image crates).

pub mod bmp;
pub mod pgm;
