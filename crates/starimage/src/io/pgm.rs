//! Minimal PGM (portable graymap) writer/reader, binary (`P5`) and ASCII
//! (`P2`), 8- and 16-bit.
//!
//! PGM is the simplest interchange format for grayscale scientific imagery;
//! examples use it when 16-bit depth matters (BMP is 8-bit only).

use std::io::{self, Read, Write};

use crate::buffer::ImageF32;
use crate::convert::{to_gray16, to_gray8, GrayMap};
use crate::error::ImageError;

/// Writes a binary 8-bit PGM (`P5`, maxval 255).
pub fn write_pgm8<W: Write>(w: &mut W, img: &ImageF32, map: GrayMap) -> io::Result<()> {
    let gray = to_gray8(img, map);
    let mut out = io::BufWriter::new(w);
    write!(out, "P5\n{} {}\n255\n", img.width(), img.height())?;
    out.write_all(&gray)?;
    out.flush()
}

/// Writes a binary 16-bit PGM (`P5`, maxval 65535, big-endian samples).
pub fn write_pgm16<W: Write>(w: &mut W, img: &ImageF32, map: GrayMap) -> io::Result<()> {
    let gray = to_gray16(img, map);
    let mut out = io::BufWriter::new(w);
    write!(out, "P5\n{} {}\n65535\n", img.width(), img.height())?;
    let mut bytes = Vec::with_capacity(gray.len() * 2);
    for v in gray {
        bytes.extend_from_slice(&v.to_be_bytes());
    }
    out.write_all(&bytes)?;
    out.flush()
}

/// Writes an ASCII PGM (`P2`) — human-inspectable, used in docs and tests.
pub fn write_pgm_ascii<W: Write>(w: &mut W, img: &ImageF32, map: GrayMap) -> io::Result<()> {
    let gray = to_gray8(img, map);
    let mut out = io::BufWriter::new(w);
    write!(out, "P2\n{} {}\n255\n", img.width(), img.height())?;
    for row in gray.chunks(img.width()) {
        let line: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        writeln!(out, "{}", line.join(" "))?;
    }
    out.flush()
}

/// Upper bound on decoded pixels (2²⁸ ≈ 268 M, a 16k×16k frame): a
/// malformed header cannot make the reader reserve memory for dimensions
/// the payload could never back.
pub const MAX_PIXELS: usize = 1 << 28;

/// A decoded PGM image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pgm {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Maximum sample value (255 or 65535).
    pub maxval: u32,
    /// Row-major samples (8-bit values widened to u16 for uniformity).
    pub samples: Vec<u16>,
}

/// Reads a binary (`P5`) or ASCII (`P2`) PGM.
pub fn read_pgm<R: Read>(r: &mut R) -> Result<Pgm, ImageError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    let mut pos = 0usize;

    fn skip_ws(buf: &[u8], mut pos: usize) -> usize {
        loop {
            while pos < buf.len() && buf[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < buf.len() && buf[pos] == b'#' {
                while pos < buf.len() && buf[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                return pos;
            }
        }
    }
    fn token(buf: &[u8], pos: usize) -> Result<(usize, usize), ImageError> {
        let start = skip_ws(buf, pos);
        let mut end = start;
        while end < buf.len() && !buf[end].is_ascii_whitespace() {
            end += 1;
        }
        if start == end {
            return Err(ImageError::Format("PGM truncated header".into()));
        }
        Ok((start, end))
    }
    fn number(buf: &[u8], pos: usize) -> Result<(u32, usize), ImageError> {
        let (s, e) = token(buf, pos)?;
        let text = std::str::from_utf8(&buf[s..e])
            .map_err(|_| ImageError::Format("PGM: non-UTF8 header".into()))?;
        let v = text
            .parse::<u32>()
            .map_err(|_| ImageError::Format(format!("PGM: bad number `{text}`")))?;
        Ok((v, e))
    }

    let (ms, me) = token(&buf, pos)?;
    let magic = &buf[ms..me];
    let binary = match magic {
        b"P5" => true,
        b"P2" => false,
        _ => {
            return Err(ImageError::Format(format!(
                "not a PGM (magic {:?})",
                String::from_utf8_lossy(magic)
            )))
        }
    };
    pos = me;
    let (width, p) = number(&buf, pos)?;
    let (height, p) = number(&buf, p)?;
    let (maxval, p) = number(&buf, p)?;
    pos = p;
    if width == 0 || height == 0 {
        return Err(ImageError::Format("PGM: empty image".into()));
    }
    if maxval == 0 || maxval > 65535 {
        return Err(ImageError::Format(format!("PGM: bad maxval {maxval}")));
    }
    let n = (width as usize)
        .checked_mul(height as usize)
        .filter(|&n| n <= MAX_PIXELS)
        .ok_or_else(|| {
            ImageError::Format(format!(
                "PGM: declared size {width}x{height} exceeds the {MAX_PIXELS}-pixel cap"
            ))
        })?;
    // Validate the payload BEFORE reserving sample memory: a malformed
    // header must fail with a format error, never an allocation.
    let samples = if binary {
        pos += 1; // single whitespace after maxval
        let wide = maxval > 255;
        let bytes_needed = n * if wide { 2 } else { 1 };
        if buf.len() < pos + bytes_needed {
            return Err(ImageError::Format(format!(
                "PGM: truncated pixel data (need {bytes_needed} bytes, have {})",
                buf.len().saturating_sub(pos)
            )));
        }
        let mut samples = Vec::with_capacity(n);
        if wide {
            for c in buf[pos..pos + bytes_needed].chunks_exact(2) {
                samples.push(u16::from_be_bytes([c[0], c[1]]));
            }
        } else {
            samples.extend(buf[pos..pos + bytes_needed].iter().map(|&b| b as u16));
        }
        samples
    } else {
        // ASCII samples need at least one digit plus a separator each, so
        // the remaining bytes bound the sample count before any reserve.
        let remaining = buf.len().saturating_sub(skip_ws(&buf, pos));
        if remaining < 2 * n - 1 {
            return Err(ImageError::Format(format!(
                "PGM: truncated ASCII pixel data ({remaining} bytes cannot hold {n} samples)"
            )));
        }
        let mut samples = Vec::with_capacity(n);
        let mut p = pos;
        for _ in 0..n {
            let (v, np) = number(&buf, p)?;
            if v > maxval {
                return Err(ImageError::Format(format!(
                    "PGM: sample {v} exceeds maxval {maxval}"
                )));
            }
            samples.push(v as u16);
            p = np;
        }
        samples
    };
    Ok(Pgm {
        width: width as usize,
        height: height as usize,
        maxval,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> ImageF32 {
        let data = (0..w * h).map(|i| i as f32).collect();
        ImageF32::from_data(w, h, data)
    }

    #[test]
    fn pgm8_roundtrip() {
        let img = ramp(4, 3);
        let mut buf = Vec::new();
        write_pgm8(&mut buf, &img, GrayMap::linear(11.0)).unwrap();
        let pgm = read_pgm(&mut &buf[..]).unwrap();
        assert_eq!((pgm.width, pgm.height, pgm.maxval), (4, 3, 255));
        assert_eq!(pgm.samples[0], 0);
        assert_eq!(pgm.samples[11], 255);
    }

    #[test]
    fn pgm16_roundtrip_preserves_depth() {
        let img = ramp(3, 2);
        let mut buf = Vec::new();
        write_pgm16(&mut buf, &img, GrayMap::linear(5.0)).unwrap();
        let pgm = read_pgm(&mut &buf[..]).unwrap();
        assert_eq!(pgm.maxval, 65535);
        assert_eq!(pgm.samples[5], 65535);
        assert_eq!(pgm.samples[1], ((1.0 / 5.0) * 65535.0f32).round() as u16);
    }

    #[test]
    fn ascii_roundtrip_and_comments() {
        let img = ramp(2, 2);
        let mut buf = Vec::new();
        write_pgm_ascii(&mut buf, &img, GrayMap::linear(3.0)).unwrap();
        let pgm = read_pgm(&mut &buf[..]).unwrap();
        assert_eq!(pgm.samples.len(), 4);
        assert_eq!(pgm.samples[3], 255);
        // A hand-written file with comments parses too.
        let text = b"P2 # comment\n# another\n2 1\n255\n7 9\n";
        let pgm = read_pgm(&mut &text[..]).unwrap();
        assert_eq!(pgm.samples, vec![7, 9]);
    }

    #[test]
    fn reader_rejects_bad_input() {
        assert!(read_pgm(&mut &b"P6\n1 1\n255\nx"[..]).is_err());
        assert!(read_pgm(&mut &b"P5\n0 1\n255\n"[..]).is_err());
        assert!(read_pgm(&mut &b"P5\n2 2\n255\nab"[..]).is_err()); // truncated
        assert!(read_pgm(&mut &b"P2\n1 1\n255\n300\n"[..]).is_err()); // > maxval
        assert!(read_pgm(&mut &b"P5\n1 1\n99999\nx"[..]).is_err()); // maxval
    }

    #[test]
    fn truncated_headers_fail_cleanly() {
        for fixture in [
            &b""[..],
            &b"P5"[..],
            &b"P5\n4"[..],
            &b"P5\n4 4"[..],
            &b"P5\n4 4\n255"[..],        // header complete, zero payload
            &b"P2\n2 2\n255\n1 2 3"[..], // one ASCII sample short
        ] {
            let err = read_pgm(&mut &fixture[..]).unwrap_err();
            assert!(
                matches!(err, ImageError::Format(_)),
                "fixture {fixture:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn oversized_declared_dimensions_fail_before_allocating() {
        // 4 G × 4 G pixels declared in an 18-byte file: the reader must
        // reject the header, not reserve the claimed memory.
        let huge = b"P5\n4294967295 4294967295\n255\nxx";
        let err = read_pgm(&mut &huge[..]).unwrap_err();
        assert!(
            err.to_string().contains("cap"),
            "expected the pixel-cap error, got {err}"
        );
        // Same for the ASCII variant.
        let huge = b"P2\n100000 100000\n255\n1 2 3\n";
        assert!(read_pgm(&mut &huge[..]).is_err());
    }

    #[test]
    fn short_binary_payload_reports_byte_counts() {
        let short = b"P5\n4 4\n255\nabcde"; // 5 of 16 bytes
        let msg = read_pgm(&mut &short[..]).unwrap_err().to_string();
        assert!(msg.contains("16"), "message should name the need: {msg}");
    }
}
