//! Minimal self-contained 8-bit grayscale BMP writer/reader.
//!
//! The paper's *Output* stage writes "a kind of common picture type like
//! JPG, BMP" — we implement BMP (BITMAPINFOHEADER, 8 bpp, 256-entry gray
//! palette, uncompressed) with no external crates. The reader accepts only
//! the files this writer produces; it exists for round-trip tests and for
//! examples that reload rendered images.

use std::io::{self, Read, Write};

use crate::buffer::ImageF32;
use crate::convert::{to_gray8, GrayMap};
use crate::error::ImageError;

const FILE_HEADER_LEN: u32 = 14;
const INFO_HEADER_LEN: u32 = 40;
const PALETTE_LEN: u32 = 256 * 4;

/// Writes an 8-bit grayscale BMP.
pub fn write_bmp<W: Write>(w: &mut W, img: &ImageF32, map: GrayMap) -> io::Result<()> {
    write_bmp_gray8(w, img.width(), img.height(), &to_gray8(img, map))
}

/// Writes raw 8-bit gray data (row-major, top-down in memory) as a BMP.
///
/// # Panics
/// Panics when `gray.len() != width * height`.
pub fn write_bmp_gray8<W: Write>(
    w: &mut W,
    width: usize,
    height: usize,
    gray: &[u8],
) -> io::Result<()> {
    assert_eq!(gray.len(), width * height, "gray data does not match size");
    let row_stride = (width + 3) & !3; // rows padded to 4 bytes
    let pixel_bytes = (row_stride * height) as u32;
    let data_offset = FILE_HEADER_LEN + INFO_HEADER_LEN + PALETTE_LEN;
    let file_size = data_offset + pixel_bytes;

    let mut out = io::BufWriter::new(w);
    // BITMAPFILEHEADER
    out.write_all(b"BM")?;
    out.write_all(&file_size.to_le_bytes())?;
    out.write_all(&0u32.to_le_bytes())?; // reserved
    out.write_all(&data_offset.to_le_bytes())?;
    // BITMAPINFOHEADER
    out.write_all(&INFO_HEADER_LEN.to_le_bytes())?;
    out.write_all(&(width as i32).to_le_bytes())?;
    out.write_all(&(height as i32).to_le_bytes())?; // positive: bottom-up
    out.write_all(&1u16.to_le_bytes())?; // planes
    out.write_all(&8u16.to_le_bytes())?; // bpp
    out.write_all(&0u32.to_le_bytes())?; // BI_RGB
    out.write_all(&pixel_bytes.to_le_bytes())?;
    out.write_all(&2835u32.to_le_bytes())?; // 72 dpi
    out.write_all(&2835u32.to_le_bytes())?;
    out.write_all(&256u32.to_le_bytes())?; // colours used
    out.write_all(&0u32.to_le_bytes())?; // important colours
                                         // Gray palette: BGRA entries.
    for i in 0..=255u8 {
        out.write_all(&[i, i, i, 0])?;
    }
    // Pixel rows, bottom-up, padded.
    let pad = [0u8; 3];
    for y in (0..height).rev() {
        out.write_all(&gray[y * width..(y + 1) * width])?;
        out.write_all(&pad[..row_stride - width])?;
    }
    out.flush()
}

/// Reads an 8-bit grayscale BMP produced by [`write_bmp_gray8`].
///
/// Returns `(width, height, gray)` with `gray` row-major top-down.
pub fn read_bmp_gray8<R: Read>(r: &mut R) -> Result<(usize, usize, Vec<u8>), ImageError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    let need = |n: usize| -> Result<(), ImageError> {
        if buf.len() < n {
            Err(ImageError::Format(format!(
                "BMP truncated: need {n} bytes, have {}",
                buf.len()
            )))
        } else {
            Ok(())
        }
    };
    need(FILE_HEADER_LEN as usize + INFO_HEADER_LEN as usize)?;
    if &buf[0..2] != b"BM" {
        return Err(ImageError::Format("not a BMP (missing BM magic)".into()));
    }
    let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
    let u16_at = |o: usize| u16::from_le_bytes(buf[o..o + 2].try_into().unwrap());
    let i32_at = |o: usize| i32::from_le_bytes(buf[o..o + 4].try_into().unwrap());

    let data_offset = u32_at(10) as usize;
    let width = i32_at(18);
    let height = i32_at(22);
    let bpp = u16_at(28);
    let compression = u32_at(30);
    if bpp != 8 || compression != 0 {
        return Err(ImageError::Format(format!(
            "unsupported BMP: bpp={bpp} compression={compression} (expect 8/0)"
        )));
    }
    if width <= 0 || height <= 0 {
        return Err(ImageError::Format(format!(
            "unsupported BMP dimensions {width}x{height}"
        )));
    }
    let (width, height) = (width as usize, height as usize);
    // Cap declared dimensions (16k per side) so a malformed header can
    // neither overflow the size arithmetic nor reserve absurd memory.
    const MAX_DIM: usize = 1 << 14;
    if width > MAX_DIM || height > MAX_DIM {
        return Err(ImageError::Format(format!(
            "BMP dimensions {width}x{height} exceed the {MAX_DIM}-pixel-per-side cap"
        )));
    }
    let row_stride = (width + 3) & !3;
    let pixel_end = row_stride
        .checked_mul(height)
        .and_then(|px| px.checked_add(data_offset))
        .ok_or_else(|| ImageError::Format("BMP size arithmetic overflows".into()))?;
    need(pixel_end)?;

    let mut gray = vec![0u8; width * height];
    for y in 0..height {
        // File rows are bottom-up.
        let src = data_offset + (height - 1 - y) * row_stride;
        gray[y * width..(y + 1) * width].copy_from_slice(&buf[src..src + width]);
    }
    Ok((width, height, gray))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let (w, h) = (5, 3); // width 5 forces row padding
        let gray: Vec<u8> = (0..w * h).map(|i| (i * 17 % 256) as u8).collect();
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, w, h, &gray).unwrap();
        let (rw, rh, back) = read_bmp_gray8(&mut &buf[..]).unwrap();
        assert_eq!((rw, rh), (w, h));
        assert_eq!(back, gray);
    }

    #[test]
    fn header_fields() {
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, 4, 2, &[0; 8]).unwrap();
        assert_eq!(&buf[0..2], b"BM");
        // File size field matches actual length.
        let size = u32::from_le_bytes(buf[2..6].try_into().unwrap());
        assert_eq!(size as usize, buf.len());
        // 8 bpp.
        assert_eq!(u16::from_le_bytes(buf[28..30].try_into().unwrap()), 8);
    }

    #[test]
    fn image_f32_entry_point() {
        let mut img = ImageF32::new(3, 3);
        img.set(1, 1, 1.0);
        let mut buf = Vec::new();
        write_bmp(&mut buf, &img, GrayMap::linear(1.0)).unwrap();
        let (_, _, gray) = read_bmp_gray8(&mut &buf[..]).unwrap();
        assert_eq!(gray[4], 255);
        assert_eq!(gray[0], 0);
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(read_bmp_gray8(&mut &b"not a bmp at all"[..]).is_err());
        assert!(read_bmp_gray8(&mut &b"BM"[..]).is_err());
        // Corrupt a valid file's bpp field.
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, 2, 2, &[0; 4]).unwrap();
        buf[28] = 24;
        match read_bmp_gray8(&mut &buf[..]) {
            Err(ImageError::Format(m)) => assert!(m.contains("bpp=24")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_pixel_data_detected() {
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, 4, 4, &[7; 16]).unwrap();
        buf.truncate(buf.len() - 8);
        assert!(matches!(
            read_bmp_gray8(&mut &buf[..]),
            Err(ImageError::Format(_))
        ));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_payload_panics() {
        let mut buf = Vec::new();
        let _ = write_bmp_gray8(&mut buf, 4, 4, &[0; 3]);
    }

    #[test]
    fn truncated_header_detected() {
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, 4, 4, &[1; 16]).unwrap();
        for cut in [1usize, 13, 30, 53] {
            let short = &buf[..cut];
            assert!(
                matches!(read_bmp_gray8(&mut &short[..]), Err(ImageError::Format(_))),
                "cut at {cut} must fail cleanly"
            );
        }
    }

    #[test]
    fn oversized_declared_dimensions_rejected() {
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, 2, 2, &[0; 4]).unwrap();
        // Declare i32::MAX × i32::MAX in the header of a tiny file.
        buf[18..22].copy_from_slice(&i32::MAX.to_le_bytes());
        buf[22..26].copy_from_slice(&i32::MAX.to_le_bytes());
        let msg = read_bmp_gray8(&mut &buf[..]).unwrap_err().to_string();
        assert!(
            msg.contains("cap"),
            "expected the dimension cap, got: {msg}"
        );
    }

    #[test]
    fn short_pixel_payload_names_the_shortfall() {
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, 8, 8, &[3; 64]).unwrap();
        buf.truncate(buf.len() - 40);
        let msg = read_bmp_gray8(&mut &buf[..]).unwrap_err().to_string();
        assert!(msg.contains("need"), "got: {msg}");
    }
}
