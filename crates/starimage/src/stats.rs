//! Image statistics used by validation tests and the benchmark harness.

use crate::buffer::ImageF32;

/// Summary statistics of an intensity image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageStats {
    /// Minimum pixel value.
    pub min: f32,
    /// Maximum pixel value.
    pub max: f32,
    /// Mean pixel value.
    pub mean: f64,
    /// Total flux (sum of all pixels), in f64 to avoid cancellation.
    pub total: f64,
    /// Number of strictly positive pixels.
    pub lit_pixels: usize,
}

/// Computes summary statistics in one pass.
pub fn stats(img: &ImageF32) -> ImageStats {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut total = 0.0f64;
    let mut lit = 0usize;
    for &v in img.data() {
        min = min.min(v);
        max = max.max(v);
        total += v as f64;
        if v > 0.0 {
            lit += 1;
        }
    }
    ImageStats {
        min,
        max,
        mean: total / img.len() as f64,
        total,
        lit_pixels: lit,
    }
}

/// A histogram of pixel intensities over `bins` equal-width bins spanning
/// `[0, max]` (values above `max` land in the last bin).
pub fn histogram(img: &ImageF32, bins: usize, max: f32) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(max > 0.0, "histogram max must be positive");
    let mut h = vec![0usize; bins];
    let scale = bins as f32 / max;
    for &v in img.data() {
        let b = ((v.max(0.0) * scale) as usize).min(bins - 1);
        h[b] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_image() {
        let img = ImageF32::from_data(2, 2, vec![0.0, 1.0, 2.0, 5.0]);
        let s = stats(&img);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.total, 8.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.lit_pixels, 3);
    }

    #[test]
    fn stats_of_black_image() {
        let s = stats(&ImageF32::new(4, 4));
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.total, 0.0);
        assert_eq!(s.lit_pixels, 0);
    }

    #[test]
    fn histogram_bins_correctly() {
        let img = ImageF32::from_data(2, 3, vec![0.0, 0.5, 1.5, 2.5, 3.5, 99.0]);
        let h = histogram(&img, 4, 4.0);
        assert_eq!(h, vec![2, 1, 1, 2]); // 99 clamps to last bin
        assert_eq!(h.iter().sum::<usize>(), img.len());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = histogram(&ImageF32::new(1, 1), 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn histogram_rejects_bad_max() {
        let _ = histogram(&ImageF32::new(1, 1), 4, 0.0);
    }
}
