//! Property-style tests of the image substrate.
//!
//! Hand-rolled deterministic property loops (seeded `simrng`) instead of
//! `proptest`, so the workspace tests run with no registry access.

use simrng::Rng64;
use starimage::io::bmp::{read_bmp_gray8, write_bmp_gray8};
use starimage::io::pgm::{read_pgm, write_pgm8};
use starimage::{apply_noise, AtomicImage, GrayMap, ImageF32, NoiseModel};

/// Atomic accumulation equals sequential accumulation for any deposit
/// pattern (the core `atomicAdd` guarantee, single-threaded case is
/// order-exact).
#[test]
fn atomic_matches_sequential() {
    let mut rng = Rng64::new(0xA70);
    for _ in 0..64 {
        let n = rng.range_usize(0, 500);
        let deposits: Vec<(usize, f32)> = (0..n)
            .map(|_| (rng.range_usize(0, 256), rng.range_f32(0.0, 10.0)))
            .collect();
        let atomic = AtomicImage::new(16, 16);
        let mut plain = ImageF32::new(16, 16);
        for &(idx, v) in &deposits {
            atomic.fetch_add(idx, v);
            let (x, y) = (idx % 16, idx / 16);
            plain.add(x, y, v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }
}

/// Gray mapping is monotone and saturating for any positive white level
/// and gamma.
#[test]
fn gray_map_monotone() {
    let mut rng = Rng64::new(0x69A);
    for _ in 0..256 {
        let white = rng.range_f32(0.01, 1e6);
        let gamma = rng.range_f32(0.2, 5.0);
        let a = rng.range_f32(0.0, 1e6);
        let b = rng.range_f32(0.0, 1e6);
        let m = GrayMap::with_gamma(white, gamma);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(m.to_u8(lo) <= m.to_u8(hi));
        assert!(m.to_u16(lo) <= m.to_u16(hi));
        assert_eq!(m.to_u8(white * 2.0), 255);
        assert_eq!(m.to_u8(0.0), 0);
    }
}

/// BMP round-trips arbitrary gray payloads at arbitrary (small) sizes,
/// including widths that need row padding.
#[test]
fn bmp_roundtrip() {
    let mut rng = Rng64::new(0xB9);
    for _ in 0..128 {
        let w = rng.range_usize(1, 40);
        let h = rng.range_usize(1, 40);
        let seed = rng.range_u64(0, 1000);
        let gray: Vec<u8> = (0..w * h)
            .map(|i| ((i as u64 * 31 + seed) % 256) as u8)
            .collect();
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, w, h, &gray).unwrap();
        let (rw, rh, back) = read_bmp_gray8(&mut &buf[..]).unwrap();
        assert_eq!((rw, rh), (w, h));
        assert_eq!(back, gray);
    }
}

/// PGM round-trips arbitrary images.
#[test]
fn pgm_roundtrip() {
    let mut rng = Rng64::new(0x96);
    for _ in 0..128 {
        let w = rng.range_usize(1, 40);
        let h = rng.range_usize(1, 40);
        let white = rng.range_f32(1.0, 100.0);
        let data: Vec<f32> = (0..w * h).map(|i| (i % 97) as f32).collect();
        let img = ImageF32::from_data(w, h, data);
        let map = GrayMap::linear(white);
        let mut buf = Vec::new();
        write_pgm8(&mut buf, &img, map).unwrap();
        let pgm = read_pgm(&mut &buf[..]).unwrap();
        assert_eq!((pgm.width, pgm.height), (w, h));
        let expect: Vec<u16> = img.data().iter().map(|&v| map.to_u8(v) as u16).collect();
        assert_eq!(pgm.samples, expect);
    }
}

/// The image readers never panic on arbitrary byte soup — malformed
/// input is an `Err`, not a crash.
#[test]
fn readers_never_panic() {
    let mut rng = Rng64::new(0x4EAD);
    for _ in 0..128 {
        let n = rng.range_usize(0, 2048);
        let bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let _ = read_bmp_gray8(&mut &bytes[..]);
        let _ = read_pgm(&mut &bytes[..]);
    }
}

/// The readers also survive corrupted versions of *valid* files.
#[test]
fn readers_survive_corruption() {
    let mut rng = Rng64::new(0xC04);
    for _ in 0..256 {
        let flip_at = rng.range_usize(0, 500);
        let flip_to = rng.next_u64() as u8;
        let gray: Vec<u8> = (0..64).map(|i| i as u8 * 4).collect();
        let mut bmp = Vec::new();
        write_bmp_gray8(&mut bmp, 8, 8, &gray).unwrap();
        if flip_at < bmp.len() {
            bmp[flip_at] = flip_to;
        }
        let _ = read_bmp_gray8(&mut &bmp[..]); // must not panic

        let img = ImageF32::from_data(8, 8, gray.iter().map(|&g| g as f32).collect());
        let mut pgm = Vec::new();
        write_pgm8(&mut pgm, &img, GrayMap::linear(255.0)).unwrap();
        if flip_at < pgm.len() {
            pgm[flip_at] = flip_to;
        }
        let _ = read_pgm(&mut &pgm[..]); // must not panic
    }
}

/// Noise keeps pixels finite and non-negative and is seed-stable.
#[test]
fn noise_invariants() {
    let mut rng = Rng64::new(0x401);
    for _ in 0..64 {
        let level = rng.range_f32(0.0, 100.0);
        let model = NoiseModel {
            background: rng.range_f32(0.0, 1.0),
            shot_gain: rng.range_f32(0.0, 1.0),
            read_sigma: rng.range_f32(0.0, 1.0),
        };
        let seed = rng.range_u64(0, 1000);
        let mut a = ImageF32::from_data(8, 8, vec![level; 64]);
        apply_noise(&mut a, model, seed);
        assert!(a.data().iter().all(|v| v.is_finite() && *v >= 0.0));
        let mut b = ImageF32::from_data(8, 8, vec![level; 64]);
        apply_noise(&mut b, model, seed);
        assert_eq!(a, b);
    }
}
