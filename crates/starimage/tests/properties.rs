//! Property-based tests of the image substrate.

use proptest::prelude::*;
use starimage::io::bmp::{read_bmp_gray8, write_bmp_gray8};
use starimage::io::pgm::{read_pgm, write_pgm8};
use starimage::{apply_noise, AtomicImage, GrayMap, ImageF32, NoiseModel};

proptest! {
    /// Atomic accumulation equals sequential accumulation for any deposit
    /// pattern (the core `atomicAdd` guarantee, single-threaded case is
    /// order-exact).
    #[test]
    fn atomic_matches_sequential(
        deposits in prop::collection::vec((0usize..256, 0.0f32..10.0), 0..500),
    ) {
        let atomic = AtomicImage::new(16, 16);
        let mut plain = ImageF32::new(16, 16);
        for &(idx, v) in &deposits {
            atomic.fetch_add(idx, v);
            let (x, y) = (idx % 16, idx / 16);
            plain.add(x, y, v);
        }
        prop_assert_eq!(atomic.snapshot(), plain);
    }

    /// Gray mapping is monotone and saturating for any positive white level
    /// and gamma.
    #[test]
    fn gray_map_monotone(
        white in 0.01f32..1e6,
        gamma in 0.2f32..5.0,
        a in 0.0f32..1e6,
        b in 0.0f32..1e6,
    ) {
        let m = GrayMap::with_gamma(white, gamma);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.to_u8(lo) <= m.to_u8(hi));
        prop_assert!(m.to_u16(lo) <= m.to_u16(hi));
        prop_assert_eq!(m.to_u8(white * 2.0), 255);
        prop_assert_eq!(m.to_u8(0.0), 0);
    }

    /// BMP round-trips arbitrary gray payloads at arbitrary (small) sizes,
    /// including widths that need row padding.
    #[test]
    fn bmp_roundtrip(w in 1usize..40, h in 1usize..40, seed in 0u64..1000) {
        let gray: Vec<u8> = (0..w * h).map(|i| ((i as u64 * 31 + seed) % 256) as u8).collect();
        let mut buf = Vec::new();
        write_bmp_gray8(&mut buf, w, h, &gray).unwrap();
        let (rw, rh, back) = read_bmp_gray8(&mut &buf[..]).unwrap();
        prop_assert_eq!((rw, rh), (w, h));
        prop_assert_eq!(back, gray);
    }

    /// PGM round-trips arbitrary images.
    #[test]
    fn pgm_roundtrip(w in 1usize..40, h in 1usize..40, white in 1.0f32..100.0) {
        let data: Vec<f32> = (0..w * h).map(|i| (i % 97) as f32).collect();
        let img = ImageF32::from_data(w, h, data);
        let map = GrayMap::linear(white);
        let mut buf = Vec::new();
        write_pgm8(&mut buf, &img, map).unwrap();
        let pgm = read_pgm(&mut &buf[..]).unwrap();
        prop_assert_eq!((pgm.width, pgm.height), (w, h));
        let expect: Vec<u16> = img.data().iter().map(|&v| map.to_u8(v) as u16).collect();
        prop_assert_eq!(pgm.samples, expect);
    }

    /// The image readers never panic on arbitrary byte soup — malformed
    /// input is an `Err`, not a crash.
    #[test]
    fn readers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = read_bmp_gray8(&mut &bytes[..]);
        let _ = read_pgm(&mut &bytes[..]);
    }

    /// The readers also survive corrupted versions of *valid* files.
    #[test]
    fn readers_survive_corruption(
        flip_at in 0usize..500,
        flip_to in any::<u8>(),
    ) {
        let gray: Vec<u8> = (0..64).map(|i| i as u8 * 4).collect();
        let mut bmp = Vec::new();
        write_bmp_gray8(&mut bmp, 8, 8, &gray).unwrap();
        if flip_at < bmp.len() {
            bmp[flip_at] = flip_to;
        }
        let _ = read_bmp_gray8(&mut &bmp[..]); // must not panic

        let img = ImageF32::from_data(8, 8, gray.iter().map(|&g| g as f32).collect());
        let mut pgm = Vec::new();
        write_pgm8(&mut pgm, &img, GrayMap::linear(255.0)).unwrap();
        if flip_at < pgm.len() {
            pgm[flip_at] = flip_to;
        }
        let _ = read_pgm(&mut &pgm[..]); // must not panic
    }

    /// Noise keeps pixels finite and non-negative and is seed-stable.
    #[test]
    fn noise_invariants(
        level in 0.0f32..100.0,
        bg in 0.0f32..1.0,
        shot in 0.0f32..1.0,
        read in 0.0f32..1.0,
        seed in 0u64..1000,
    ) {
        let model = NoiseModel { background: bg, shot_gain: shot, read_sigma: read };
        let mut a = ImageF32::from_data(8, 8, vec![level; 64]);
        apply_noise(&mut a, model, seed);
        prop_assert!(a.data().iter().all(|v| v.is_finite() && *v >= 0.0));
        let mut b = ImageF32::from_data(8, 8, vec![level; 64]);
        apply_noise(&mut b, model, seed);
        prop_assert_eq!(a, b);
    }
}
