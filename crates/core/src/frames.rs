//! Frame sequences: the deployed star simulator as one object.
//!
//! "The developed code is currently used for simulating complex star images
//! in a realistic large-scale star simulator" (paper §V) — i.e. as a box
//! that, given a clock and an attitude trajectory, emits sensor frames in
//! real time. [`FrameSequencer`] wires the whole workspace together:
//! sky catalogue → [`starfield::AttitudeDynamics`] propagation → FOV
//! retrieval → the persistent [`crate::AdaptiveSession`] (lookup table
//! resident across frames) → one [`SimulationReport`] per frame, with the
//! slew-dependent smear applied automatically when it matters.
//!
//! Two frame-loop schedules are offered. [`FrameSequencer::run_frames`] is
//! the sequential reference: each frame's star generation, upload, kernel
//! and download run back to back on the calling thread.
//! [`FrameSequencer::run_frames_pipelined`] double-buffers the loop —
//! frame `N+1`'s attitude propagation, FOV retrieval and star upload run
//! on a producer thread while frame `N`'s kernel and download execute on
//! the caller — and is required to be *bit-identical* to the sequential
//! schedule: same images, same counters, same modeled times, for every
//! seed, worker count and kernel backend.

use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Instant;

use gpusim::{GpuDiagnostics, VirtualGpu};
use psf::smear::SmearedGaussianPsf;
use starfield::dynamics::AttitudeDynamics;
use starfield::fov::SkyCatalog;
use starfield::projection::Camera;

use crate::config::{PsfKind, SimConfig};
use crate::error::SimError;
use crate::report::SimulationReport;
use crate::resilience::{CancelToken, ResilienceReport, RetryPolicy};
use crate::session::{AdaptiveSession, FrameTiming, LutCache, LutCacheStats, PreparedStars};
use crate::streams::{frame_overlap_estimate, StreamedEstimate};
use crate::telemetry::{maybe_span, FrameTelemetry, Telemetry};

/// A clocked, attitude-propagating frame source.
pub struct FrameSequencer {
    sky: SkyCatalog,
    camera: Camera,
    dynamics: AttitudeDynamics,
    base_config: SimConfig,
    /// Exposure time per frame, seconds (sets the smear length).
    exposure_s: f64,
    /// Frame period, seconds.
    frame_dt: f64,
    session: AdaptiveSession,
    time_s: f64,
    /// Shared LUT cache, when attached: pipelined bursts (re)validate the
    /// table off the render critical path and reports carry its counters.
    lut_cache: Option<Arc<LutCache>>,
    /// The two rotating device images of the pipelined schedule, allocated
    /// on first use and reused for the sequencer's lifetime — the steady
    /// state allocates nothing.
    pipeline_images: Option<[gpusim::GlobalAtomicF32; 2]>,
}

impl FrameSequencer {
    /// Creates a sequencer. `config.width/height` must match the camera.
    ///
    /// The smear PSF is engaged automatically whenever the commanded rate
    /// streaks stars by more than half a pixel over the exposure.
    pub fn new(
        sky: SkyCatalog,
        camera: Camera,
        dynamics: AttitudeDynamics,
        config: SimConfig,
        exposure_s: f64,
        frame_dt: f64,
    ) -> Result<Self, SimError> {
        Self::on_device(
            VirtualGpu::gtx480(),
            sky,
            camera,
            dynamics,
            config,
            exposure_s,
            frame_dt,
        )
    }

    /// Creates a sequencer on a caller-provided device — the injection
    /// point for fault plans, watchdog deadlines, and worker counts.
    pub fn on_device(
        gpu: VirtualGpu,
        sky: SkyCatalog,
        camera: Camera,
        dynamics: AttitudeDynamics,
        config: SimConfig,
        exposure_s: f64,
        frame_dt: f64,
    ) -> Result<Self, SimError> {
        if (camera.width, camera.height) != (config.width, config.height) {
            return Err(SimError::InvalidConfig(format!(
                "camera {}x{} does not match config {}x{}",
                camera.width, camera.height, config.width, config.height
            )));
        }
        if !(exposure_s > 0.0 && frame_dt > 0.0 && exposure_s <= frame_dt) {
            return Err(SimError::InvalidConfig(format!(
                "need 0 < exposure ({exposure_s}) ≤ frame period ({frame_dt})"
            )));
        }
        let session = AdaptiveSession::on(
            gpu,
            Self::frame_config(&config, &camera, &dynamics, exposure_s),
        )?;
        Ok(FrameSequencer {
            sky,
            camera,
            dynamics,
            base_config: config,
            exposure_s,
            frame_dt,
            session,
            time_s: 0.0,
            lut_cache: None,
            pipeline_images: None,
        })
    }

    /// Wraps an already-open session — the server path, where the session
    /// was opened through a shared tenant-attributed [`LutCache`]
    /// ([`AdaptiveSession::on_cached_tenant`]) before the sequencer
    /// exists. The session's config becomes the base config; the attitude
    /// rate must not engage the smear PSF (the session's lookup table was
    /// built for the base optics), or construction fails.
    pub fn on_session(
        session: AdaptiveSession,
        sky: SkyCatalog,
        camera: Camera,
        dynamics: AttitudeDynamics,
        exposure_s: f64,
        frame_dt: f64,
    ) -> Result<Self, SimError> {
        let base_config = session.config().clone();
        if (camera.width, camera.height) != (base_config.width, base_config.height) {
            return Err(SimError::InvalidConfig(format!(
                "camera {}x{} does not match session config {}x{}",
                camera.width, camera.height, base_config.width, base_config.height
            )));
        }
        if !(exposure_s > 0.0 && frame_dt > 0.0 && exposure_s <= frame_dt) {
            return Err(SimError::InvalidConfig(format!(
                "need 0 < exposure ({exposure_s}) ≤ frame period ({frame_dt})"
            )));
        }
        if Self::frame_config(&base_config, &camera, &dynamics, exposure_s) != base_config {
            return Err(SimError::InvalidConfig(
                "attitude rate engages the smear PSF, but the session's lookup \
                 table was built for the unsmeared optics; open the session on \
                 the smeared config or slow the slew"
                    .into(),
            ));
        }
        Ok(FrameSequencer {
            sky,
            camera,
            dynamics,
            base_config,
            exposure_s,
            frame_dt,
            session,
            time_s: 0.0,
            lut_cache: None,
            pipeline_images: None,
        })
    }

    /// The per-frame config: the base config plus the rate-derived smear.
    fn frame_config(
        base: &SimConfig,
        camera: &Camera,
        dynamics: &AttitudeDynamics,
        exposure_s: f64,
    ) -> SimConfig {
        let mut config = base.clone();
        let streak = dynamics.streak_length_px(camera.focal_px, exposure_s) as f32;
        if streak > 0.5 {
            // Image-plane drift direction of a boresight star: with the
            // boresight on +z, d(dir_body)/dt = −ω × ẑ = (−ω_y, +ω_x, 0),
            // so the streak runs at atan2(ω_x, −ω_y) from image +x.
            let angle = (dynamics.omega[0]).atan2(-dynamics.omega[1]) as f32;
            config.psf = PsfKind::Smeared {
                length: streak,
                angle,
            };
            // Grow the ROI to keep the streak's energy, staying under the
            // device's thread-block cap.
            let margin = SmearedGaussianPsf::new(config.sigma, streak, 0.0).margin_for_energy(0.95);
            config.roi_side = (2 * margin + 1).clamp(config.roi_side, 32);
        }
        config
    }

    /// Enables the bounded-retry degradation ladder for
    /// [`Self::run_frames`] bursts.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.session.set_retry_policy(Some(policy));
        self
    }

    /// Attaches a telemetry sink: every frame records spans, metrics and
    /// device launch traces, and [`Self::run_frames`] reports carry a
    /// [`FrameTelemetry`] rollup.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.session.set_telemetry(Some(telemetry));
        self
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.session.telemetry()
    }

    /// Attaches or detaches the telemetry sink in place — servers shed
    /// telemetry detail under load by detaching it, without rebuilding
    /// the sequencer.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<Telemetry>>) {
        self.session.set_telemetry(telemetry);
    }

    /// The underlying session (shed floor, diagnostics, config).
    pub fn session(&self) -> &AdaptiveSession {
        &self.session
    }

    /// Sets the session's load-shedding floor (see
    /// [`AdaptiveSession::set_shed_floor`]).
    pub fn set_shed_floor(&self, floor: crate::resilience::Rung) {
        self.session.set_shed_floor(floor);
    }

    /// Attaches a shared [`LutCache`]. Pipelined bursts prefetch (and
    /// revalidate) the lookup table on the producer thread before the
    /// first frame — off the kernel/download critical path — and every
    /// [`ThroughputReport`] carries the cache's hit/miss/eviction
    /// counters plus the time that prefetch took.
    pub fn with_lut_cache(mut self, cache: Arc<LutCache>) -> Self {
        self.lut_cache = Some(cache);
        self
    }

    /// Cumulative resilience accounting for the underlying session.
    pub fn resilience_report(&self) -> ResilienceReport {
        self.session.resilience_report()
    }

    /// Simulation time of the *next* frame, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The active per-frame configuration.
    pub fn config(&self) -> SimConfig {
        Self::frame_config(
            &self.base_config,
            &self.camera,
            &self.dynamics,
            self.exposure_s,
        )
    }

    /// Renders the next frame and advances the clock and attitude.
    pub fn next_frame(&mut self) -> Result<Frame, SimError> {
        let _frame_span = maybe_span(self.session.telemetry(), "frame");
        let attitude = self.dynamics.attitude;
        let config = self.config();
        let star_gen = maybe_span(self.session.telemetry(), "star-gen");
        let catalog = self
            .sky
            .view(attitude, &self.camera, config.roi_side as f32);
        drop(star_gen);
        let report = self.session.render(&catalog)?;
        let frame = Frame {
            index: (self.time_s / self.frame_dt).round() as u64,
            time_s: self.time_s,
            attitude,
            stars_in_view: catalog.len(),
            report,
        };
        self.dynamics.step(self.frame_dt);
        self.time_s += self.frame_dt;
        Ok(frame)
    }

    /// Whether the modeled per-frame cost fits the frame period — the
    /// real-time criterion of the paper's introduction.
    pub fn meets_real_time(&self, frame: &Frame) -> bool {
        frame.report.app_time_s <= self.frame_dt
    }

    /// Renders `n` frames back-to-back through the zero-allocation path
    /// ([`AdaptiveSession::render_into`]) and reports sustained host
    /// throughput. The clock and attitude advance exactly as with
    /// [`Self::next_frame`]; only the per-frame `SimulationReport` (and its
    /// image allocation) is skipped — one pixel buffer serves all frames.
    pub fn run_frames(&mut self, n: usize) -> Result<ThroughputReport, SimError> {
        assert!(n > 0, "need at least one frame");
        let mut host = Vec::new();
        let mut latencies_s = Vec::with_capacity(n);
        let mut app_time_s = 0.0;
        let mut totals = PhaseTotals::default();
        let mut produce_busy_s = 0.0;
        let mut consume_busy_s = 0.0;
        let start = std::time::Instant::now();
        for _ in 0..n {
            let _frame_span = maybe_span(self.session.telemetry(), "frame");
            let t0 = Instant::now();
            let attitude = self.dynamics.attitude;
            let config = self.config();
            let star_gen = maybe_span(self.session.telemetry(), "star-gen");
            let catalog = self
                .sky
                .view(attitude, &self.camera, config.roi_side as f32);
            drop(star_gen);
            produce_busy_s += t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let timing = self.session.render_into(&catalog, &mut host)?;
            consume_busy_s += t1.elapsed().as_secs_f64();
            latencies_s.push(timing.wall_time_s);
            app_time_s += timing.app_time_s;
            totals.absorb(&timing);
            self.dynamics.step(self.frame_dt);
            self.time_s += self.frame_dt;
        }
        let elapsed_s = start.elapsed().as_secs_f64();
        latencies_s.sort_by(f64::total_cmp);
        Ok(ThroughputReport {
            frames: n,
            elapsed_s,
            p50_ms: percentile_ms(&latencies_s, 50.0),
            p99_ms: percentile_ms(&latencies_s, 99.0),
            mean_app_time_s: app_time_s / n as f64,
            resilience: self.session.resilience_report(),
            diagnostics: self.session.diagnostics(),
            overlap: Some(overlap_report(
                n,
                &totals,
                produce_busy_s,
                consume_busy_s,
                elapsed_s,
            )),
            lut_cache: self.lut_cache.as_ref().map(|c| c.stats()),
            lut_prefetch_s: 0.0,
            telemetry: self
                .session
                .telemetry()
                .map(|t| t.frame_telemetry())
                .map(Box::new),
        })
    }

    /// Renders `n` frames through the frame-pipelined schedule: a scoped
    /// producer thread runs frame `N+1`'s attitude propagation, FOV
    /// retrieval, star generation and star upload while the calling thread
    /// executes frame `N`'s kernel and download. Two device images rotate
    /// between in-flight frames (allocated once, on the first pipelined
    /// burst), so the steady state performs no new allocation.
    ///
    /// **Invariant:** the emitted images, device counters and modeled
    /// times are bit-equal to [`Self::run_frames`] for every seed, worker
    /// count and [`gpusim::KernelBackend`]; faults retry and degrade
    /// through the same [`RetryPolicy`] ladder on the consuming thread, in
    /// frame order, so recovery is bit-identical on rungs 0–1 too.
    pub fn run_frames_pipelined(&mut self, n: usize) -> Result<ThroughputReport, SimError> {
        let token = CancelToken::new();
        self.run_frames_pipelined_observed(n, &token, |_| {})
    }

    /// [`Self::run_frames_pipelined`] with an observer: `on_frame` runs on
    /// the consuming thread after each frame completes, seeing the frame's
    /// pixels in place. Cancelling `token` (from the observer or another
    /// thread) stops production; frames already in flight drain
    /// deterministically, the clock stops exactly after the last completed
    /// frame, and the burst returns [`SimError::Cancelled`]. A later burst
    /// (or [`Self::next_frame`]) resumes bit-identically with where an
    /// uninterrupted run would have been.
    pub fn run_frames_pipelined_observed(
        &mut self,
        n: usize,
        token: &CancelToken,
        mut on_frame: impl FnMut(&PipelinedFrame<'_>),
    ) -> Result<ThroughputReport, SimError> {
        assert!(n > 0, "need at least one frame");
        if self.pipeline_images.is_none() {
            self.pipeline_images = Some([
                self.session.alloc_frame_image(),
                self.session.alloc_frame_image(),
            ]);
        }
        // Let the retry ladder see the burst's token: a deadline expiring
        // mid-retry stops burning attempts at the next between-attempt
        // checkpoint instead of descending the whole ladder first.
        self.session.set_cancel_token(Some(token.clone()));
        let images = self.pipeline_images.as_ref().expect("just allocated");
        let session = &self.session;
        let sky = &self.sky;
        let camera = &self.camera;
        let base_config = &self.base_config;
        let exposure_s = self.exposure_s;
        let frame_dt = self.frame_dt;
        let start_time_s = self.time_s;
        let start_dynamics = self.dynamics;
        let lut_cache = self.lut_cache.clone();

        let mut host = Vec::new();
        let mut latencies_s = Vec::with_capacity(n);
        let mut app_time_s = 0.0;
        let mut totals = PhaseTotals::default();
        let mut consume_busy_s = 0.0;
        let mut completed = 0usize;
        let mut error: Option<SimError> = None;
        let mut produce_busy_s = 0.0;
        let mut lut_prefetch_s = 0.0;
        let mut produced: Result<(), SimError> = Ok(());

        let start = Instant::now();
        std::thread::scope(|scope| {
            // Producer stage: stars for frame N+1 while frame N renders.
            // Capacity 1 bounds the producer to at most two prepared
            // frames ahead of the render stage (one queued, one in hand).
            let (tx, rx) = sync_channel::<PreparedStars>(1);
            let producer = scope.spawn(move || -> (f64, f64, Result<(), SimError>) {
                let mut busy_s = 0.0;
                let mut prefetch_s = 0.0;
                if let Some(cache) = &lut_cache {
                    let t0 = Instant::now();
                    let span = maybe_span(session.telemetry(), "lut-prefetch");
                    let result = cache.prefetch(session.gpu(), session.config());
                    drop(span);
                    prefetch_s = t0.elapsed().as_secs_f64();
                    if let Err(e) = result {
                        return (busy_s, prefetch_s, Err(e));
                    }
                }
                let mut dynamics = start_dynamics;
                for _ in 0..n {
                    if token.is_cancelled() {
                        break;
                    }
                    let t0 = Instant::now();
                    let produce_span = maybe_span(session.telemetry(), "frame-produce");
                    let attitude = dynamics.attitude;
                    let config = Self::frame_config(base_config, camera, &dynamics, exposure_s);
                    let star_gen = maybe_span(session.telemetry(), "star-gen");
                    let catalog = sky.view(attitude, camera, config.roi_side as f32);
                    drop(star_gen);
                    let prepared = session.prepare_stars(&catalog);
                    drop(produce_span);
                    dynamics.step(frame_dt);
                    busy_s += t0.elapsed().as_secs_f64();
                    if tx.send(prepared).is_err() {
                        break; // consumer stopped early
                    }
                }
                (busy_s, prefetch_s, Ok(()))
            });

            // Consumer stage (this thread): kernel + download for frame N.
            while let Ok(prepared) = rx.recv() {
                let t0 = Instant::now();
                let frame_span = maybe_span(session.telemetry(), "frame");
                let image_dev = &images[completed % 2];
                match session.render_prepared_into(&prepared, image_dev, &mut host) {
                    Ok(timing) => {
                        drop(frame_span);
                        latencies_s.push(timing.wall_time_s);
                        app_time_s += timing.app_time_s;
                        totals.absorb(&timing);
                        let time_s = start_time_s + completed as f64 * frame_dt;
                        let frame = PipelinedFrame {
                            index: (time_s / frame_dt).round() as u64,
                            time_s,
                            stars_in_view: prepared.star_count(),
                            pixels: &host,
                            timing,
                        };
                        completed += 1;
                        consume_busy_s += t0.elapsed().as_secs_f64();
                        on_frame(&frame);
                    }
                    Err(e) => {
                        drop(frame_span);
                        // A failed attempt may have left partial deposits
                        // in the rotating image; zero it so a later burst
                        // resumes from a clean device state.
                        image_dev.fill_zero();
                        consume_busy_s += t0.elapsed().as_secs_f64();
                        error = Some(e);
                        break;
                    }
                }
            }
            drop(rx); // unblock a producer mid-send
            let (busy_s, prefetch_s, result) = producer.join().expect("producer thread panicked");
            produce_busy_s = busy_s;
            lut_prefetch_s = prefetch_s;
            produced = result;
        });
        let elapsed_s = start.elapsed().as_secs_f64();
        self.session.set_cancel_token(None);

        // The producer propagated its own attitude copy (possibly a frame
        // ahead); re-step the sequencer's state to exactly the completed
        // frames so a later burst resumes bit-identically.
        let mut dynamics = start_dynamics;
        for _ in 0..completed {
            dynamics.step(frame_dt);
        }
        self.dynamics = dynamics;
        self.time_s = start_time_s + completed as f64 * frame_dt;

        if let Some(e) = error {
            return Err(e);
        }
        produced?;
        if completed < n {
            // Distinguish an expired deadline budget from an operator
            // cancel; the drain semantics above were identical either way.
            return Err(token.cancel_error());
        }
        latencies_s.sort_by(f64::total_cmp);
        Ok(ThroughputReport {
            frames: n,
            elapsed_s,
            p50_ms: percentile_ms(&latencies_s, 50.0),
            p99_ms: percentile_ms(&latencies_s, 99.0),
            mean_app_time_s: app_time_s / n as f64,
            resilience: self.session.resilience_report(),
            diagnostics: self.session.diagnostics(),
            overlap: Some(overlap_report(
                n,
                &totals,
                produce_busy_s,
                consume_busy_s,
                elapsed_s,
            )),
            lut_cache: self.lut_cache.as_ref().map(|c| c.stats()),
            lut_prefetch_s,
            telemetry: self
                .session
                .telemetry()
                .map(|t| t.frame_telemetry())
                .map(Box::new),
        })
    }
}

/// Modeled per-phase totals over a burst, for the overlap estimate.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseTotals {
    upload_s: f64,
    kernel_s: f64,
    serial_s: f64,
}

impl PhaseTotals {
    fn absorb(&mut self, timing: &FrameTiming) {
        self.upload_s += timing.star_upload_s;
        self.kernel_s += timing.kernel_s;
        self.serial_s += timing.serial_transfer_s;
    }
}

/// Builds the overlap section of a [`ThroughputReport`] from the burst's
/// modeled phase totals and measured stage-busy times.
fn overlap_report(
    frames: usize,
    totals: &PhaseTotals,
    produce_busy_s: f64,
    consume_busy_s: f64,
    elapsed_s: f64,
) -> OverlapReport {
    let modeled = frame_overlap_estimate(frames, totals.upload_s, totals.kernel_s, totals.serial_s);
    OverlapReport {
        modeled_efficiency: {
            let smaller = totals.upload_s.min(totals.kernel_s);
            if smaller <= 0.0 {
                0.0
            } else {
                (modeled.saved_s / smaller).clamp(0.0, 1.0)
            }
        },
        modeled,
        produce_busy_s,
        consume_busy_s,
        measured_efficiency: {
            let smaller = produce_busy_s.min(consume_busy_s);
            if smaller <= 0.0 {
                0.0
            } else {
                ((produce_busy_s + consume_busy_s - elapsed_s).max(0.0) / smaller).clamp(0.0, 1.0)
            }
        },
    }
}

/// Nearest-rank percentile of sorted per-frame latencies, in milliseconds.
fn percentile_ms(sorted_s: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted_s.is_empty());
    let rank = (q / 100.0 * sorted_s.len() as f64).ceil() as usize;
    sorted_s[rank.clamp(1, sorted_s.len()) - 1] * 1e3
}

/// Sustained host throughput over a [`FrameSequencer::run_frames`] burst.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Frames rendered.
    pub frames: usize,
    /// Host wall-clock for the whole burst, seconds.
    pub elapsed_s: f64,
    /// Median per-frame host latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-frame host latency, milliseconds.
    pub p99_ms: f64,
    /// Mean modeled (virtual-GPU) time per frame, seconds.
    pub mean_app_time_s: f64,
    /// Resilience accounting: faults seen, retries spent, rungs used —
    /// cumulative for the session as of the end of the burst (all-zero on
    /// a fault-free run).
    pub resilience: ResilienceReport,
    /// Device resilience counters at the end of the burst, so frame-loop
    /// callers see pool rebuilds / checksum catches / arena drops without
    /// holding a device reference.
    pub diagnostics: GpuDiagnostics,
    /// Modeled-vs-measured overlap accounting for the burst: how much of
    /// the producer stage (star gen + upload) the pipeline could hide
    /// behind the consumer stage (kernel + download), and how much it did.
    pub overlap: Option<OverlapReport>,
    /// Hit/miss/eviction counters of the attached [`LutCache`]
    /// ([`FrameSequencer::with_lut_cache`]); `None` without a cache.
    pub lut_cache: Option<LutCacheStats>,
    /// Wall-clock the pipelined producer spent prefetching the lookup
    /// table before the first frame — LUT work amortized off the render
    /// critical path. Zero for sequential bursts or without a cache.
    pub lut_prefetch_s: f64,
    /// Telemetry rollup (span stages, launch counts, metrics) when a sink
    /// is attached ([`FrameSequencer::with_telemetry`]); `None` otherwise.
    /// Boxed: the rollup is much larger than the scalar fields.
    pub telemetry: Option<Box<FrameTelemetry>>,
}

impl ThroughputReport {
    /// Sustained frames per second (host wall-clock).
    pub fn fps(&self) -> f64 {
        self.frames as f64 / self.elapsed_s
    }
}

/// Overlap accounting for one frame burst: the modeled software-pipeline
/// bound over the burst's phase totals, next to what the host actually
/// overlapped.
#[derive(Debug, Clone, Copy)]
pub struct OverlapReport {
    /// The modeled pipeline bound ([`frame_overlap_estimate`]) over the
    /// burst's star-upload / kernel / serial-transfer totals.
    pub modeled: StreamedEstimate,
    /// `modeled.saved_s` over the smaller of the two overlappable phase
    /// totals, in `[0, 1]`: 1 means the smaller phase disappears entirely
    /// behind the larger.
    pub modeled_efficiency: f64,
    /// Host wall-clock the producer stage (attitude propagation, FOV
    /// retrieval, star generation, star upload) was busy, seconds.
    pub produce_busy_s: f64,
    /// Host wall-clock the consumer stage (kernel + download) was busy,
    /// seconds.
    pub consume_busy_s: f64,
    /// Measured overlap: busy time hidden by running the stages
    /// concurrently, over the smaller stage's busy time, in `[0, 1]`.
    /// Sequential bursts measure ≈ 0; a perfectly overlapped pipeline
    /// measures ≈ 1 (single-core hosts report ≈ 0 either way — the model
    /// above is the capacity estimate).
    pub measured_efficiency: f64,
}

/// One frame as observed in flight by
/// [`FrameSequencer::run_frames_pipelined_observed`]. Borrows the burst's
/// rotating host buffer: the pixels are valid for the callback's duration
/// only.
#[derive(Debug)]
pub struct PipelinedFrame<'a> {
    /// Frame number since the sequencer started.
    pub index: u64,
    /// Simulation time the frame was taken, seconds.
    pub time_s: f64,
    /// Stars the FOV retrieval placed on (or near) the sensor.
    pub stars_in_view: usize,
    /// The rendered image, row-major `width × height`.
    pub pixels: &'a [f32],
    /// Per-frame timing decomposition (bit-equal to the sequential path).
    pub timing: FrameTiming,
}

/// One emitted sensor frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame number since the sequencer started.
    pub index: u64,
    /// Simulation time the frame was taken, seconds.
    pub time_s: f64,
    /// Attitude at the start of the exposure.
    pub attitude: starfield::Attitude,
    /// Stars the FOV retrieval placed on (or near) the sensor.
    pub stars_in_view: usize,
    /// The rendering report (image + timings).
    pub report: SimulationReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfield::generator::synthetic_sky;
    use starfield::Attitude;

    fn camera() -> Camera {
        Camera::from_fov(10.0f64.to_radians(), 256, 256).unwrap()
    }

    fn sequencer(omega: [f64; 3]) -> FrameSequencer {
        FrameSequencer::new(
            synthetic_sky(30_000, 0.0, 6.0, 3),
            camera(),
            AttitudeDynamics::new(Attitude::pointing(1.0, 0.2, 0.0), omega),
            SimConfig::new(256, 256, 10),
            0.1,
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn emits_frames_and_advances_time() {
        let mut seq = sequencer([0.0; 3]);
        let f0 = seq.next_frame().unwrap();
        let f1 = seq.next_frame().unwrap();
        assert_eq!(f0.index, 0);
        assert_eq!(f1.index, 1);
        assert_eq!(f0.time_s, 0.0);
        assert!((f1.time_s - 0.5).abs() < 1e-12);
        assert!(f0.stars_in_view > 0);
        assert!(seq.meets_real_time(&f0), "virtual GPU is far under budget");
    }

    #[test]
    fn stationary_attitude_renders_identical_frames() {
        let mut seq = sequencer([0.0; 3]);
        let f0 = seq.next_frame().unwrap();
        let f1 = seq.next_frame().unwrap();
        assert_eq!(f0.report.image, f1.report.image);
    }

    #[test]
    fn slew_moves_the_field_between_frames() {
        let mut seq = sequencer([0.002, 0.0, 0.0]); // gentle slew, no smear
        let f0 = seq.next_frame().unwrap();
        let f1 = seq.next_frame().unwrap();
        assert_ne!(f0.report.image, f1.report.image, "field must drift");
    }

    #[test]
    fn fast_slew_engages_the_smear_psf_and_grows_the_roi() {
        // 1°/s through a ~1465-px focal length over 0.1 s ≈ 2.6 px streak.
        let seq = sequencer([1.0f64.to_radians(), 0.0, 0.0]);
        let cfg = seq.config();
        assert!(
            matches!(cfg.psf, PsfKind::Smeared { length, .. } if length > 1.0),
            "expected smear, got {:?}",
            cfg.psf
        );
        assert!(cfg.roi_side >= 10);
        // A stationary sequencer keeps the point PSF.
        let still = sequencer([0.0; 3]);
        assert!(matches!(still.config().psf, PsfKind::Point));
    }

    #[test]
    fn smear_angle_tracks_the_slew_axis() {
        // Rotation about body x drifts boresight stars along image +y
        // (angle π/2); about body y, along image −x (angle π).
        let about_x = sequencer([1.0f64.to_radians(), 0.0, 0.0]);
        let PsfKind::Smeared { angle, .. } = about_x.config().psf else {
            panic!("expected smear")
        };
        assert!(
            (angle - std::f32::consts::FRAC_PI_2).abs() < 1e-6,
            "angle {angle}"
        );
        let about_y = sequencer([0.0, 1.0f64.to_radians(), 0.0]);
        let PsfKind::Smeared { angle, .. } = about_y.config().psf else {
            panic!("expected smear")
        };
        assert!(
            (angle.abs() - std::f32::consts::PI).abs() < 1e-6,
            "angle {angle}"
        );
    }

    #[test]
    fn run_frames_reports_throughput_and_advances_the_clock() {
        let mut seq = sequencer([0.002, 0.0, 0.0]);
        let report = seq.run_frames(5).unwrap();
        assert_eq!(report.frames, 5);
        assert!(report.elapsed_s > 0.0);
        assert!(report.fps() > 0.0);
        assert!(report.p50_ms > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.mean_app_time_s > 0.0);
        assert!(
            (seq.time_s() - 2.5).abs() < 1e-12,
            "clock advanced 5 frames"
        );
        // The throughput loop and the report loop see the same sky.
        let f5 = seq.next_frame().unwrap();
        assert_eq!(f5.index, 5);
    }

    #[test]
    fn run_frames_matches_next_frame_timings() {
        let mut by_report = sequencer([0.0; 3]);
        let mut by_burst = sequencer([0.0; 3]);
        let frame = by_report.next_frame().unwrap();
        let burst = by_burst.run_frames(3).unwrap();
        // Stationary attitude: every burst frame models identically to the
        // reported frame (up to the mean's summation rounding).
        let rel = (burst.mean_app_time_s - frame.report.app_time_s).abs() / frame.report.app_time_s;
        assert!(rel < 1e-12, "relative deviation {rel}");
    }

    #[test]
    fn run_frames_recovers_from_faults_with_a_retry_policy() {
        use crate::resilience::RetryPolicy;
        use gpusim::{FaultKind, FaultPlan};
        use std::sync::Arc;
        use std::time::Duration;

        let mut clean = sequencer([0.002, 0.0, 0.0]);
        let baseline = clean.run_frames(4).unwrap();
        assert_eq!(baseline.resilience, ResilienceReport::default());

        let gpu = VirtualGpu::gtx480().with_fault_plan(Arc::new(FaultPlan::single(
            FaultKind::WorkerPanic,
            1,
            2,
        )));
        let mut seq = FrameSequencer::on_device(
            gpu,
            synthetic_sky(30_000, 0.0, 6.0, 3),
            camera(),
            AttitudeDynamics::new(Attitude::pointing(1.0, 0.2, 0.0), [0.002, 0.0, 0.0]),
            SimConfig::new(256, 256, 10),
            0.1,
            0.5,
        )
        .unwrap()
        .with_retry_policy(RetryPolicy {
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        });
        let report = seq.run_frames(4).unwrap();
        assert_eq!(report.frames, 4);
        assert_eq!(report.resilience.panics, 1);
        assert_eq!(report.resilience.retries, 1);
        assert_eq!(
            report.resilience.rung_frames,
            [3, 1, 0, 0],
            "one frame degraded to spawn dispatch, the rest stayed configured"
        );
    }

    #[test]
    fn construction_validation() {
        let sky = synthetic_sky(100, 0.0, 6.0, 1);
        let dynamics = AttitudeDynamics::new(Attitude::IDENTITY, [0.0; 3]);
        // Camera/config mismatch.
        assert!(FrameSequencer::new(
            sky.clone(),
            camera(),
            dynamics,
            SimConfig::new(128, 128, 10),
            0.1,
            0.5,
        )
        .is_err());
        // Exposure longer than the frame period.
        assert!(FrameSequencer::new(
            sky,
            camera(),
            dynamics,
            SimConfig::new(256, 256, 10),
            1.0,
            0.5,
        )
        .is_err());
    }
}
