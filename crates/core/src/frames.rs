//! Frame sequences: the deployed star simulator as one object.
//!
//! "The developed code is currently used for simulating complex star images
//! in a realistic large-scale star simulator" (paper §V) — i.e. as a box
//! that, given a clock and an attitude trajectory, emits sensor frames in
//! real time. [`FrameSequencer`] wires the whole workspace together:
//! sky catalogue → [`starfield::AttitudeDynamics`] propagation → FOV
//! retrieval → the persistent [`crate::AdaptiveSession`] (lookup table
//! resident across frames) → one [`SimulationReport`] per frame, with the
//! slew-dependent smear applied automatically when it matters.

use std::sync::Arc;

use gpusim::{GpuDiagnostics, VirtualGpu};
use psf::smear::SmearedGaussianPsf;
use starfield::dynamics::AttitudeDynamics;
use starfield::fov::SkyCatalog;
use starfield::projection::Camera;

use crate::config::{PsfKind, SimConfig};
use crate::error::SimError;
use crate::report::SimulationReport;
use crate::resilience::{ResilienceReport, RetryPolicy};
use crate::session::AdaptiveSession;
use crate::telemetry::{maybe_span, FrameTelemetry, Telemetry};

/// A clocked, attitude-propagating frame source.
pub struct FrameSequencer {
    sky: SkyCatalog,
    camera: Camera,
    dynamics: AttitudeDynamics,
    base_config: SimConfig,
    /// Exposure time per frame, seconds (sets the smear length).
    exposure_s: f64,
    /// Frame period, seconds.
    frame_dt: f64,
    session: AdaptiveSession,
    time_s: f64,
}

impl FrameSequencer {
    /// Creates a sequencer. `config.width/height` must match the camera.
    ///
    /// The smear PSF is engaged automatically whenever the commanded rate
    /// streaks stars by more than half a pixel over the exposure.
    pub fn new(
        sky: SkyCatalog,
        camera: Camera,
        dynamics: AttitudeDynamics,
        config: SimConfig,
        exposure_s: f64,
        frame_dt: f64,
    ) -> Result<Self, SimError> {
        Self::on_device(
            VirtualGpu::gtx480(),
            sky,
            camera,
            dynamics,
            config,
            exposure_s,
            frame_dt,
        )
    }

    /// Creates a sequencer on a caller-provided device — the injection
    /// point for fault plans, watchdog deadlines, and worker counts.
    pub fn on_device(
        gpu: VirtualGpu,
        sky: SkyCatalog,
        camera: Camera,
        dynamics: AttitudeDynamics,
        config: SimConfig,
        exposure_s: f64,
        frame_dt: f64,
    ) -> Result<Self, SimError> {
        if (camera.width, camera.height) != (config.width, config.height) {
            return Err(SimError::InvalidConfig(format!(
                "camera {}x{} does not match config {}x{}",
                camera.width, camera.height, config.width, config.height
            )));
        }
        if !(exposure_s > 0.0 && frame_dt > 0.0 && exposure_s <= frame_dt) {
            return Err(SimError::InvalidConfig(format!(
                "need 0 < exposure ({exposure_s}) ≤ frame period ({frame_dt})"
            )));
        }
        let session = AdaptiveSession::on(
            gpu,
            Self::frame_config(&config, &camera, &dynamics, exposure_s),
        )?;
        Ok(FrameSequencer {
            sky,
            camera,
            dynamics,
            base_config: config,
            exposure_s,
            frame_dt,
            session,
            time_s: 0.0,
        })
    }

    /// The per-frame config: the base config plus the rate-derived smear.
    fn frame_config(
        base: &SimConfig,
        camera: &Camera,
        dynamics: &AttitudeDynamics,
        exposure_s: f64,
    ) -> SimConfig {
        let mut config = base.clone();
        let streak = dynamics.streak_length_px(camera.focal_px, exposure_s) as f32;
        if streak > 0.5 {
            // Image-plane drift direction of a boresight star: with the
            // boresight on +z, d(dir_body)/dt = −ω × ẑ = (−ω_y, +ω_x, 0),
            // so the streak runs at atan2(ω_x, −ω_y) from image +x.
            let angle = (dynamics.omega[0]).atan2(-dynamics.omega[1]) as f32;
            config.psf = PsfKind::Smeared {
                length: streak,
                angle,
            };
            // Grow the ROI to keep the streak's energy, staying under the
            // device's thread-block cap.
            let margin = SmearedGaussianPsf::new(config.sigma, streak, 0.0).margin_for_energy(0.95);
            config.roi_side = (2 * margin + 1).clamp(config.roi_side, 32);
        }
        config
    }

    /// Enables the bounded-retry degradation ladder for
    /// [`Self::run_frames`] bursts.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.session.set_retry_policy(Some(policy));
        self
    }

    /// Attaches a telemetry sink: every frame records spans, metrics and
    /// device launch traces, and [`Self::run_frames`] reports carry a
    /// [`FrameTelemetry`] rollup.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.session.set_telemetry(Some(telemetry));
        self
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.session.telemetry()
    }

    /// Cumulative resilience accounting for the underlying session.
    pub fn resilience_report(&self) -> ResilienceReport {
        self.session.resilience_report()
    }

    /// Simulation time of the *next* frame, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The active per-frame configuration.
    pub fn config(&self) -> SimConfig {
        Self::frame_config(
            &self.base_config,
            &self.camera,
            &self.dynamics,
            self.exposure_s,
        )
    }

    /// Renders the next frame and advances the clock and attitude.
    pub fn next_frame(&mut self) -> Result<Frame, SimError> {
        let _frame_span = maybe_span(self.session.telemetry(), "frame");
        let attitude = self.dynamics.attitude;
        let config = self.config();
        let star_gen = maybe_span(self.session.telemetry(), "star-gen");
        let catalog = self
            .sky
            .view(attitude, &self.camera, config.roi_side as f32);
        drop(star_gen);
        let report = self.session.render(&catalog)?;
        let frame = Frame {
            index: (self.time_s / self.frame_dt).round() as u64,
            time_s: self.time_s,
            attitude,
            stars_in_view: catalog.len(),
            report,
        };
        self.dynamics.step(self.frame_dt);
        self.time_s += self.frame_dt;
        Ok(frame)
    }

    /// Whether the modeled per-frame cost fits the frame period — the
    /// real-time criterion of the paper's introduction.
    pub fn meets_real_time(&self, frame: &Frame) -> bool {
        frame.report.app_time_s <= self.frame_dt
    }

    /// Renders `n` frames back-to-back through the zero-allocation path
    /// ([`AdaptiveSession::render_into`]) and reports sustained host
    /// throughput. The clock and attitude advance exactly as with
    /// [`Self::next_frame`]; only the per-frame `SimulationReport` (and its
    /// image allocation) is skipped — one pixel buffer serves all frames.
    pub fn run_frames(&mut self, n: usize) -> Result<ThroughputReport, SimError> {
        assert!(n > 0, "need at least one frame");
        let mut host = Vec::new();
        let mut latencies_s = Vec::with_capacity(n);
        let mut app_time_s = 0.0;
        let start = std::time::Instant::now();
        for _ in 0..n {
            let _frame_span = maybe_span(self.session.telemetry(), "frame");
            let attitude = self.dynamics.attitude;
            let config = self.config();
            let star_gen = maybe_span(self.session.telemetry(), "star-gen");
            let catalog = self
                .sky
                .view(attitude, &self.camera, config.roi_side as f32);
            drop(star_gen);
            let timing = self.session.render_into(&catalog, &mut host)?;
            latencies_s.push(timing.wall_time_s);
            app_time_s += timing.app_time_s;
            self.dynamics.step(self.frame_dt);
            self.time_s += self.frame_dt;
        }
        let elapsed_s = start.elapsed().as_secs_f64();
        latencies_s.sort_by(f64::total_cmp);
        Ok(ThroughputReport {
            frames: n,
            elapsed_s,
            p50_ms: percentile_ms(&latencies_s, 50.0),
            p99_ms: percentile_ms(&latencies_s, 99.0),
            mean_app_time_s: app_time_s / n as f64,
            resilience: self.session.resilience_report(),
            diagnostics: self.session.diagnostics(),
            telemetry: self
                .session
                .telemetry()
                .map(|t| t.frame_telemetry())
                .map(Box::new),
        })
    }
}

/// Nearest-rank percentile of sorted per-frame latencies, in milliseconds.
fn percentile_ms(sorted_s: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted_s.is_empty());
    let rank = (q / 100.0 * sorted_s.len() as f64).ceil() as usize;
    sorted_s[rank.clamp(1, sorted_s.len()) - 1] * 1e3
}

/// Sustained host throughput over a [`FrameSequencer::run_frames`] burst.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Frames rendered.
    pub frames: usize,
    /// Host wall-clock for the whole burst, seconds.
    pub elapsed_s: f64,
    /// Median per-frame host latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-frame host latency, milliseconds.
    pub p99_ms: f64,
    /// Mean modeled (virtual-GPU) time per frame, seconds.
    pub mean_app_time_s: f64,
    /// Resilience accounting: faults seen, retries spent, rungs used —
    /// cumulative for the session as of the end of the burst (all-zero on
    /// a fault-free run).
    pub resilience: ResilienceReport,
    /// Device resilience counters at the end of the burst, so frame-loop
    /// callers see pool rebuilds / checksum catches / arena drops without
    /// holding a device reference.
    pub diagnostics: GpuDiagnostics,
    /// Telemetry rollup (span stages, launch counts, metrics) when a sink
    /// is attached ([`FrameSequencer::with_telemetry`]); `None` otherwise.
    /// Boxed: the rollup is much larger than the scalar fields.
    pub telemetry: Option<Box<FrameTelemetry>>,
}

impl ThroughputReport {
    /// Sustained frames per second (host wall-clock).
    pub fn fps(&self) -> f64 {
        self.frames as f64 / self.elapsed_s
    }
}

/// One emitted sensor frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame number since the sequencer started.
    pub index: u64,
    /// Simulation time the frame was taken, seconds.
    pub time_s: f64,
    /// Attitude at the start of the exposure.
    pub attitude: starfield::Attitude,
    /// Stars the FOV retrieval placed on (or near) the sensor.
    pub stars_in_view: usize,
    /// The rendering report (image + timings).
    pub report: SimulationReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfield::generator::synthetic_sky;
    use starfield::Attitude;

    fn camera() -> Camera {
        Camera::from_fov(10.0f64.to_radians(), 256, 256).unwrap()
    }

    fn sequencer(omega: [f64; 3]) -> FrameSequencer {
        FrameSequencer::new(
            synthetic_sky(30_000, 0.0, 6.0, 3),
            camera(),
            AttitudeDynamics::new(Attitude::pointing(1.0, 0.2, 0.0), omega),
            SimConfig::new(256, 256, 10),
            0.1,
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn emits_frames_and_advances_time() {
        let mut seq = sequencer([0.0; 3]);
        let f0 = seq.next_frame().unwrap();
        let f1 = seq.next_frame().unwrap();
        assert_eq!(f0.index, 0);
        assert_eq!(f1.index, 1);
        assert_eq!(f0.time_s, 0.0);
        assert!((f1.time_s - 0.5).abs() < 1e-12);
        assert!(f0.stars_in_view > 0);
        assert!(seq.meets_real_time(&f0), "virtual GPU is far under budget");
    }

    #[test]
    fn stationary_attitude_renders_identical_frames() {
        let mut seq = sequencer([0.0; 3]);
        let f0 = seq.next_frame().unwrap();
        let f1 = seq.next_frame().unwrap();
        assert_eq!(f0.report.image, f1.report.image);
    }

    #[test]
    fn slew_moves_the_field_between_frames() {
        let mut seq = sequencer([0.002, 0.0, 0.0]); // gentle slew, no smear
        let f0 = seq.next_frame().unwrap();
        let f1 = seq.next_frame().unwrap();
        assert_ne!(f0.report.image, f1.report.image, "field must drift");
    }

    #[test]
    fn fast_slew_engages_the_smear_psf_and_grows_the_roi() {
        // 1°/s through a ~1465-px focal length over 0.1 s ≈ 2.6 px streak.
        let seq = sequencer([1.0f64.to_radians(), 0.0, 0.0]);
        let cfg = seq.config();
        assert!(
            matches!(cfg.psf, PsfKind::Smeared { length, .. } if length > 1.0),
            "expected smear, got {:?}",
            cfg.psf
        );
        assert!(cfg.roi_side >= 10);
        // A stationary sequencer keeps the point PSF.
        let still = sequencer([0.0; 3]);
        assert!(matches!(still.config().psf, PsfKind::Point));
    }

    #[test]
    fn smear_angle_tracks_the_slew_axis() {
        // Rotation about body x drifts boresight stars along image +y
        // (angle π/2); about body y, along image −x (angle π).
        let about_x = sequencer([1.0f64.to_radians(), 0.0, 0.0]);
        let PsfKind::Smeared { angle, .. } = about_x.config().psf else {
            panic!("expected smear")
        };
        assert!(
            (angle - std::f32::consts::FRAC_PI_2).abs() < 1e-6,
            "angle {angle}"
        );
        let about_y = sequencer([0.0, 1.0f64.to_radians(), 0.0]);
        let PsfKind::Smeared { angle, .. } = about_y.config().psf else {
            panic!("expected smear")
        };
        assert!(
            (angle.abs() - std::f32::consts::PI).abs() < 1e-6,
            "angle {angle}"
        );
    }

    #[test]
    fn run_frames_reports_throughput_and_advances_the_clock() {
        let mut seq = sequencer([0.002, 0.0, 0.0]);
        let report = seq.run_frames(5).unwrap();
        assert_eq!(report.frames, 5);
        assert!(report.elapsed_s > 0.0);
        assert!(report.fps() > 0.0);
        assert!(report.p50_ms > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.mean_app_time_s > 0.0);
        assert!(
            (seq.time_s() - 2.5).abs() < 1e-12,
            "clock advanced 5 frames"
        );
        // The throughput loop and the report loop see the same sky.
        let f5 = seq.next_frame().unwrap();
        assert_eq!(f5.index, 5);
    }

    #[test]
    fn run_frames_matches_next_frame_timings() {
        let mut by_report = sequencer([0.0; 3]);
        let mut by_burst = sequencer([0.0; 3]);
        let frame = by_report.next_frame().unwrap();
        let burst = by_burst.run_frames(3).unwrap();
        // Stationary attitude: every burst frame models identically to the
        // reported frame (up to the mean's summation rounding).
        let rel = (burst.mean_app_time_s - frame.report.app_time_s).abs() / frame.report.app_time_s;
        assert!(rel < 1e-12, "relative deviation {rel}");
    }

    #[test]
    fn run_frames_recovers_from_faults_with_a_retry_policy() {
        use crate::resilience::RetryPolicy;
        use gpusim::{FaultKind, FaultPlan};
        use std::sync::Arc;
        use std::time::Duration;

        let mut clean = sequencer([0.002, 0.0, 0.0]);
        let baseline = clean.run_frames(4).unwrap();
        assert_eq!(baseline.resilience, ResilienceReport::default());

        let gpu = VirtualGpu::gtx480().with_fault_plan(Arc::new(FaultPlan::single(
            FaultKind::WorkerPanic,
            1,
            2,
        )));
        let mut seq = FrameSequencer::on_device(
            gpu,
            synthetic_sky(30_000, 0.0, 6.0, 3),
            camera(),
            AttitudeDynamics::new(Attitude::pointing(1.0, 0.2, 0.0), [0.002, 0.0, 0.0]),
            SimConfig::new(256, 256, 10),
            0.1,
            0.5,
        )
        .unwrap()
        .with_retry_policy(RetryPolicy {
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        });
        let report = seq.run_frames(4).unwrap();
        assert_eq!(report.frames, 4);
        assert_eq!(report.resilience.panics, 1);
        assert_eq!(report.resilience.retries, 1);
        assert_eq!(
            report.resilience.rung_frames,
            [3, 1, 0, 0],
            "one frame degraded to spawn dispatch, the rest stayed configured"
        );
    }

    #[test]
    fn construction_validation() {
        let sky = synthetic_sky(100, 0.0, 6.0, 1);
        let dynamics = AttitudeDynamics::new(Attitude::IDENTITY, [0.0; 3]);
        // Camera/config mismatch.
        assert!(FrameSequencer::new(
            sky.clone(),
            camera(),
            dynamics,
            SimConfig::new(128, 128, 10),
            0.1,
            0.5,
        )
        .is_err());
        // Exposure longer than the frame period.
        assert!(FrameSequencer::new(
            sky,
            camera(),
            dynamics,
            SimConfig::new(256, 256, 10),
            1.0,
            0.5,
        )
        .is_err());
    }
}
