//! # starsim-core — the paper's star-image simulators
//!
//! Reproduces Li, Zhang, Zheng & Hu, *Implementing High-performance
//! Intensity Model with Blur Effect on GPUs for Large-scale Star Image
//! Simulation* (IPDPS Workshops 2012):
//!
//! * [`SequentialSimulator`] — the single-threaded CPU baseline (§III-A);
//! * [`ParallelSimulator`] — the star-centric CUDA kernel (§III-B, Fig. 6)
//!   on the virtual GPU: block per star, thread per ROI pixel,
//!   shared-memory brightness staging, global `atomicAdd`;
//! * [`AdaptiveSimulator`] — the lookup-table-in-texture-memory variant
//!   (§III-C, Fig. 8);
//! * [`PixelCentricSimulator`] — the decomposition the paper rejects
//!   (Fig. 3a), kept as a quantitative ablation;
//! * [`MultiGpuSimulator`] — the paper's future-work extension;
//! * [`selection`] — Table III's inflection-point simulator choice.
//!
//! All simulators implement [`Simulator`] and return a
//! [`SimulationReport`] carrying the image plus the kernel/non-kernel
//! timing decomposition the paper's evaluation (Figs. 9–16, Tables I–III)
//! is built on.

#![warn(missing_docs)]

pub mod adaptive;
pub mod admission;
pub mod analysis;
pub mod config;
pub mod contention;
pub mod error;
pub mod frames;
pub mod lut_build;
pub mod multi_gpu;
pub mod obsplane;
pub mod parallel;
pub mod pixel_centric;
pub mod protocol;
pub mod report;
pub mod resilience;
pub mod selection;
pub mod sequential;
pub mod server;
pub mod session;
pub mod star_record;
pub mod streams;
pub mod telemetry;
pub mod validate;

pub use adaptive::{AdaptiveKernel, AdaptiveSimulator};
pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, Permit, Rejected, ShedLevel,
};
pub use analysis::{
    audit_adaptive, audit_pixel_centric, audit_production, audit_star_centric, KernelAudit,
};
pub use config::{PsfKind, SimConfig};
pub use error::SimError;
pub use frames::{Frame, FrameSequencer, OverlapReport, PipelinedFrame, ThroughputReport};
pub use gpusim::{ExecMode, KernelBackend};
pub use multi_gpu::MultiGpuSimulator;
pub use obsplane::{
    FlightEntry, FlightRecorder, MetricsSnapshot, ObsPlane, SeriesRing, SloKind, SloReport, SloSpec,
};
pub use parallel::{ParallelSimulator, StarCentricKernel};
pub use pixel_centric::{PixelCentricKernel, PixelCentricSimulator};
pub use protocol::{
    Message, MonitorReply, ProtoError, RejectCode, RenderDone, SessionSpec, SloState,
};
pub use report::SimulationReport;
pub use resilience::{CancelToken, ResilienceReport, RetryPolicy, Rung};
pub use selection::{Choice, InflectionPoint};
pub use sequential::SequentialSimulator;
pub use server::{Client, ServerConfig, ServerHandle, StarServer};
pub use session::{AdaptiveSession, FrameTiming, LutCache, LutCacheStats, PreparedStars};
pub use star_record::{to_device_stars, DeviceStar};
pub use telemetry::{FrameTelemetry, MetricsRegistry, SpanRecord, StageStats, Telemetry};

use starfield::StarCatalog;

/// The common simulator interface.
pub trait Simulator {
    /// Short identifier (`"sequential"`, `"parallel"`, `"adaptive"`, ...).
    fn name(&self) -> &'static str;

    /// Renders `catalog` under `config` and reports image + timings.
    fn simulate(
        &self,
        catalog: &StarCatalog,
        config: &SimConfig,
    ) -> Result<SimulationReport, SimError>;
}
