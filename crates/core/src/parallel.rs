//! The parallel simulator: the paper's star-centric CUDA kernel (§III-B,
//! Fig. 6) on the virtual GPU.
//!
//! Decomposition: one thread **block** per star, one **thread** per pixel
//! of the star's ROI (two levels of data parallelism, Fig. 4). The kernel
//! runs in two barrier-separated phases:
//!
//! 1. thread (0,0) loads the star record from global memory, computes its
//!    brightness, and stages brightness + position in shared memory
//!    (Fig. 6 step 5) — "the global memory access frequency will be reduced
//!    from all threads to one thread per block";
//! 2. after `__syncthreads()` (step 6), every thread reads the staged
//!    values (once, into registers — the Fig. 7 bank-conflict relief),
//!    derives its pixel coordinate, evaluates the Gauss PSF, and
//!    `atomicAdd`s the contribution into the global image (step 8).

use std::time::Instant;

use gpusim::memory::global::{GlobalAtomicF32, GlobalBuffer};
use gpusim::{
    AppProfile, BlockCtx, FlopClass, Kernel, KernelBackend, LaunchConfig, ThreadCtx, VirtualGpu,
};
use psf::integrated::PsfModel;
use psf::roi::Roi;
use starfield::StarCatalog;
use starimage::ImageF32;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::report::SimulationReport;
use crate::star_record::{to_device_stars, DeviceStar};
use crate::Simulator;

/// Shared-memory layout of the kernel: `[brightness, posX, posY]`
/// (the paper's `__shared__ float shareMem[3]`).
pub(crate) const SMEM_WORDS: usize = 3;
const SMEM_BRIGHTNESS: usize = 0;
const SMEM_POS_X: usize = 1;
const SMEM_POS_Y: usize = 2;

/// The star-centric kernel (paper Fig. 6).
pub struct StarCentricKernel<'a> {
    /// Device star array.
    pub stars: &'a GlobalBuffer<DeviceStar>,
    /// Device output image.
    pub image: &'a GlobalAtomicF32,
    /// Number of valid stars (`starCount` guard of step 3).
    pub star_count: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// ROI geometry (side = blockDim.x = blockDim.y).
    pub roi: Roi,
    /// PSF evaluation.
    pub psf: PsfModel,
    /// Brightness proportionality factor.
    pub a_factor: f32,
}

impl Kernel for StarCentricKernel<'_> {
    fn phases(&self) -> usize {
        2
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>) {
        // Step 3: grid round-up guard.
        let block_id = ctx.block_linear();
        if phase == 0 && !ctx.branch(block_id < self.star_count) {
            ctx.exit();
            return;
        }

        match phase {
            0 => {
                // Step 5: one designated thread computes and stages the
                // star's brightness and position.
                let first = ctx.thread_idx.x == 0 && ctx.thread_idx.y == 0;
                if ctx.branch(first) {
                    let star = ctx.global_read(self.stars, block_id);
                    // g(m) = A · 2.512^(−m): one powf call (a software
                    // sequence — count ~8 scalar flops) plus a multiply.
                    let g = starfield::magnitude::brightness(star.mag, self.a_factor);
                    ctx.flops(FlopClass::Special, 8);
                    ctx.flops(FlopClass::Mul, 1);
                    ctx.shared_write(SMEM_BRIGHTNESS, g);
                    ctx.shared_write(SMEM_POS_X, star.x);
                    ctx.shared_write(SMEM_POS_Y, star.y);
                }
                // Step 6: __syncthreads() = the phase boundary.
            }
            _ => {
                // Step 7: read the staged star once into registers.
                let g = ctx.shared_read(SMEM_BRIGHTNESS);
                let pos_x = ctx.shared_read(SMEM_POS_X);
                let pos_y = ctx.shared_read(SMEM_POS_Y);

                // pixel = starPos − MARGIN + threadIdx (Fig. 6 step 7).
                let (x0, y0) = self.roi.origin(pos_x, pos_y);
                let px = x0 + ctx.thread_idx.x as i64;
                let py = y0 + ctx.thread_idx.y as i64;
                ctx.flops(FlopClass::Add, 2);

                // Step 8: image-bounds guard, PSF, atomic accumulation.
                let in_image =
                    px >= 0 && py >= 0 && px < self.width as i64 && py < self.height as i64;
                if ctx.branch(in_image) {
                    let mu = self.psf.eval(px as f32, py as f32, pos_x, pos_y);
                    // dx, dy; dx²+dy² (2 FMA); expf (software sequence,
                    // ~8 scalar flops, one warp call); g·μ scaling.
                    ctx.flops(FlopClass::Add, 2);
                    ctx.flops(FlopClass::Fma, 2);
                    ctx.flops(FlopClass::Special, 8);
                    ctx.flops(FlopClass::Mul, 2);
                    let gray = g * mu;
                    let idx = py as usize * self.width + px as usize;
                    ctx.atomic_add_global(self.image, idx, gray);
                }
            }
        }
    }

    /// Batched fast path: the whole block in one call. Must mirror
    /// [`Self::run`] through the warp analyzer *exactly* — the counter
    /// charges below are the closed forms of what the analyzer derives from
    /// the per-thread event traces (`tests/exec_modes.rs` proves the
    /// equivalence over a launch-shape grid).
    fn run_block<'k>(&'k self, ctx: &mut BlockCtx<'k, '_>) -> bool {
        let side = self.roi.side();
        // Only the canonical star-centric shape (side × side block) is
        // handled; anything else falls back to the reference path. No
        // mutation may precede this check.
        if ctx.block_dim.x as usize != side
            || ctx.block_dim.y as usize != side
            || ctx.block_dim.z != 1
        {
            return false;
        }
        let tpb = side * side;
        let warp = ctx.spec.warp_size as usize;
        let n_warps = tpb.div_ceil(warp) as u64;
        let block_id = ctx.block_linear();

        // Phase 0, step 3: every thread runs the starCount guard (one
        // uniform branch per warp).
        ctx.counters.threads += tpb as u64;
        ctx.counters.warps += n_warps;
        ctx.counters.branches += n_warps;
        if block_id >= self.star_count {
            // Grid-padding block: all threads exit before the barrier.
            return true;
        }

        // Phase 0, step 5: the `first` branch (warp 0 diverges whenever it
        // has more than one lane), one star read by lane 0 (a 12-byte
        // access spanning however many coalescing segments it straddles),
        // the brightness computation, three staging writes.
        ctx.counters.branches += n_warps;
        if tpb > 1 {
            ctx.counters.divergent_branches += 1;
        }
        let star = self.stars.read(block_id);
        let addr = self.stars.addr_of(block_id);
        let bytes = std::mem::size_of::<DeviceStar>() as u64;
        let seg = ctx.spec.coalesce_segment as u64;
        ctx.counters.global_requests += 1;
        ctx.counters.global_transactions += (addr + bytes - 1) / seg - addr / seg + 1;
        let g = starfield::magnitude::brightness(star.mag, self.a_factor);
        ctx.counters.flops_special += 8;
        ctx.counters.special_issues += 1;
        ctx.counters.flops_mul += 1;
        ctx.counters.arith_issues += 1;
        ctx.counters.shared_requests += 3;

        // Phase boundary (step 6): one barrier per live warp. Phase 1:
        // every warp re-reads the three staged words (broadcast, conflict
        // free) and derives its pixel coordinates.
        ctx.counters.barriers += n_warps;
        ctx.counters.warps += n_warps;
        ctx.counters.shared_requests += 3 * n_warps;
        ctx.counters.flops_add += 2 * tpb as u64;
        ctx.counters.arith_issues += n_warps;
        ctx.counters.branches += n_warps; // the in-image guard

        let (x0, y0) = self.roi.origin(star.x, star.y);
        let (w, h) = (self.width as i64, self.height as i64);
        if x0 >= 0 && y0 >= 0 && x0 + side as i64 <= w && y0 + side as i64 <= h {
            // Interior ROI: every lane is in-image, so per-warp charges
            // aggregate to closed form and the deposition is a dense
            // row-major loop (identical accumulation order: threads run in
            // ascending linear id either way).
            ctx.counters.flops_add += 2 * tpb as u64;
            ctx.counters.flops_fma += 2 * tpb as u64;
            ctx.counters.flops_special += 8 * tpb as u64;
            ctx.counters.flops_mul += 2 * tpb as u64;
            ctx.counters.arith_issues += 3 * n_warps;
            ctx.counters.special_issues += n_warps;
            ctx.counters.atomic_requests += n_warps; // distinct addresses
                                                     // Shadow lookup hoisted to a per-row accumulator span: only the
                                                     // PSF evaluation and one add remain per pixel.
            let acc = ctx.shadow.accumulator(self.image);
            match ctx.backend {
                KernelBackend::Scalar => {
                    for j in 0..side {
                        let py = y0 + j as i64;
                        let row = py as usize * self.width + x0 as usize;
                        let row_vals = acc.span_mut(row, row + side);
                        for (i, slot) in row_vals.iter_mut().enumerate() {
                            let mu =
                                self.psf
                                    .eval((x0 + i as i64) as f32, py as f32, star.x, star.y);
                            *slot += g * mu;
                        }
                    }
                }
                KernelBackend::Simd => {
                    // Lane-oriented evaluation: identical counter charges
                    // (all above this match), approximated pixel values
                    // within `psf::lanes`' documented bounds. Separable
                    // PSFs factor into two axis vectors (2·side
                    // transcendentals for the whole block instead of
                    // side²) and deposit via a pure multiply-add outer
                    // product; non-separable models fall back to the
                    // lane row evaluator. Stack buffers cover the
                    // 1024-thread launch cap (side ≤ 32).
                    let mut xs = [0.0f32; 32];
                    let mut ys = [0.0f32; 32];
                    let factors = if side <= 32 {
                        self.psf.axis_factors(
                            &mut xs[..side],
                            &mut ys[..side],
                            x0 as f32,
                            y0 as f32,
                            star.x,
                            star.y,
                        )
                    } else {
                        None
                    };
                    if let Some(scale) = factors {
                        for (j, &fy) in ys[..side].iter().enumerate() {
                            let py = y0 + j as i64;
                            let row = py as usize * self.width + x0 as usize;
                            let row_vals = acc.span_mut(row, row + side);
                            let aj = g * scale * fy;
                            for (slot, &ex) in row_vals.iter_mut().zip(&xs[..side]) {
                                *slot += aj * ex;
                            }
                        }
                    } else {
                        for j in 0..side {
                            let py = y0 + j as i64;
                            let row = py as usize * self.width + x0 as usize;
                            let row_vals = acc.span_mut(row, row + side);
                            self.psf
                                .accumulate_row(row_vals, g, x0 as f32, py as f32, star.x, star.y);
                        }
                    }
                }
            }
        } else {
            // Edge ROI: census each warp's in-image lanes to account
            // divergence and per-warp issues, depositing as we go.
            let acc = ctx.shadow.accumulator(self.image);
            let mut t = 0usize;
            while t < tpb {
                let lanes = warp.min(tpb - t);
                let mut n_in = 0u64;
                for lane in 0..lanes {
                    let tt = t + lane;
                    let px = x0 + (tt % side) as i64;
                    let py = y0 + (tt / side) as i64;
                    if px >= 0 && py >= 0 && px < w && py < h {
                        n_in += 1;
                        let mu = self.psf.eval(px as f32, py as f32, star.x, star.y);
                        let idx = py as usize * self.width + px as usize;
                        acc.add(idx, g * mu);
                    }
                }
                if n_in > 0 {
                    if n_in < lanes as u64 {
                        ctx.counters.divergent_branches += 1;
                    }
                    ctx.counters.flops_add += 2 * n_in;
                    ctx.counters.flops_fma += 2 * n_in;
                    ctx.counters.flops_special += 8 * n_in;
                    ctx.counters.flops_mul += 2 * n_in;
                    ctx.counters.arith_issues += 3;
                    ctx.counters.special_issues += 1;
                    ctx.counters.atomic_requests += 1;
                }
                t += lanes;
            }
        }
        true
    }
}

/// The parallel (star-centric GPU) simulator.
pub struct ParallelSimulator {
    gpu: VirtualGpu,
}

impl ParallelSimulator {
    /// Simulator on the paper's GTX480.
    pub fn new() -> Self {
        ParallelSimulator {
            gpu: VirtualGpu::gtx480(),
        }
    }

    /// Simulator on a caller-provided device.
    pub fn on(gpu: VirtualGpu) -> Self {
        ParallelSimulator { gpu }
    }

    /// The underlying device.
    pub fn gpu(&self) -> &VirtualGpu {
        &self.gpu
    }
}

impl Default for ParallelSimulator {
    fn default() -> Self {
        ParallelSimulator::new()
    }
}

impl Simulator for ParallelSimulator {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn simulate(
        &self,
        catalog: &StarCatalog,
        config: &SimConfig,
    ) -> Result<SimulationReport, SimError> {
        config.validate()?;
        // Static pre-launch validation: an ROI square overrunning the image
        // would send every star's inner loop out of bounds — reject with a
        // typed error before anything is dispatched.
        gpusim::sanitize::validate_roi(config.roi_side, config.width, config.height)?;
        let wall_start = Instant::now();
        let mut profile = AppProfile::new();

        // Host → device: star array and the zeroed image.
        let (stars, t_stars) = self.gpu.try_upload(to_device_stars(catalog.stars()))?;
        let image_dev = self.gpu.alloc_atomic_f32(config.pixels());
        // The paper transfers the pixel array to the device before the
        // kernel (its CUDA 3.2 flow); model that upload as an image-sized
        // host→device copy.
        let t_img_up = self
            .gpu
            .transfer_model()
            .time(gpusim::MemcpyKind::HostToDevice, config.pixels() * 4);

        let star_count = catalog.len();
        let kernel = StarCentricKernel {
            stars: &stars,
            image: &image_dev,
            star_count,
            width: config.width,
            height: config.height,
            roi: Roi::new(config.roi_side),
            psf: config.psf_model(),
            a_factor: config.a_factor,
        };
        let cfg = LaunchConfig::star_centric(star_count.max(1), config.roi_side, self.gpu.spec())
            .with_shared_mem(SMEM_WORDS * 4)
            .with_backend(config.backend);
        let kp = self
            .gpu
            .launch_mode("star-centric", &kernel, cfg, config.exec_mode)?;
        profile.kernels.push(kp);

        // Device → host: the finished image.
        let (host_pixels, t_down) = self.gpu.try_download(&image_dev)?;
        profile.push_overhead("CPU-GPU transmission", t_stars + t_img_up + t_down);

        let image = ImageF32::from_data(config.width, config.height, host_pixels);
        let app_time_s = profile.app_time();
        Ok(SimulationReport {
            simulator: self.name(),
            image,
            profile,
            app_time_s,
            wall_time_s: wall_start.elapsed().as_secs_f64(),
            stars: star_count,
            roi_side: config.roi_side,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSimulator;
    use starfield::{FieldGenerator, Star};
    use starimage::diff::images_close;

    fn small_config() -> SimConfig {
        SimConfig::new(64, 64, 10)
    }

    #[test]
    fn matches_sequential_on_a_single_star() {
        let cat = StarCatalog::from_stars(vec![Star::new(30.5, 31.25, 2.5)]);
        let cfg = small_config();
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        assert!(
            images_close(&seq.image, &par.image, 1e-7, 1e-5),
            "parallel image must match sequential"
        );
    }

    #[test]
    fn matches_sequential_on_a_random_field() {
        let cat = FieldGenerator::new(64, 64).generate(200, 7);
        let cfg = small_config();
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let par = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        // Accumulation order differs (atomics), so allow small relative slack.
        assert!(
            images_close(&seq.image, &par.image, 1e-5, 1e-4),
            "dense-field images must agree"
        );
    }

    #[test]
    fn kernel_counters_reflect_the_decomposition() {
        let n = 50;
        let cat = FieldGenerator::new(64, 64).generate(n, 3);
        let cfg = small_config();
        let report = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        let k = &report.profile.kernels[0];
        // One global star read per block (the shared-memory staging).
        assert_eq!(k.counters.global_requests, n as u64);
        // Brightness: one SFU op per star; PSF: one per in-bounds pixel.
        assert!(k.counters.flops_special >= n as u64);
        // Atomics: one per in-bounds ROI pixel ⇒ ≤ n·side².
        assert!(k.counters.atomic_requests > 0);
        assert!(k.counters.threads >= (n * 100) as u64);
        // Two phases with a barrier between: 4 warps per 100-thread block.
        assert_eq!(k.counters.barriers, (n * 4) as u64);
        assert_eq!(k.counters.shared_hazards, 0, "staging is barrier-safe");
    }

    #[test]
    fn simd_backend_matches_scalar_within_tolerance() {
        let cat = FieldGenerator::new(64, 64).generate(200, 7);
        let cfg = small_config();
        let scalar = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        let mut cfg_simd = cfg.clone();
        cfg_simd.backend = KernelBackend::Simd;
        let simd = ParallelSimulator::new().simulate(&cat, &cfg_simd).unwrap();
        // Counters and modeled times are bit-equal by construction; only
        // the interior-ROI arithmetic differs.
        assert_eq!(
            scalar.profile.kernels[0].counters,
            simd.profile.kernels[0].counters
        );
        assert_eq!(
            scalar.profile.kernels[0].time_s.to_bits(),
            simd.profile.kernels[0].time_s.to_bits()
        );
        assert!(
            images_close(&scalar.image, &simd.image, 1e-5, 1e-4),
            "simd image must stay inside the parallel-vs-sequential gate"
        );
    }

    #[test]
    fn simd_backend_matches_scalar_for_integrated_psf() {
        let cat = FieldGenerator::new(64, 64).generate(120, 13);
        let mut cfg = small_config();
        cfg.psf = crate::config::PsfKind::Integrated;
        let scalar = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        cfg.backend = KernelBackend::Simd;
        let simd = ParallelSimulator::new().simulate(&cat, &cfg).unwrap();
        assert_eq!(
            scalar.profile.kernels[0].counters,
            simd.profile.kernels[0].counters
        );
        // f32 erf rounding scales with a_factor; 1e-4 abs at A=1000 is the
        // documented bound (see psf::lanes).
        assert!(
            images_close(&scalar.image, &simd.image, 1e-4, 1e-4),
            "integrated-psf simd image out of tolerance"
        );
    }

    #[test]
    fn empty_catalog_is_black() {
        let report = ParallelSimulator::new()
            .simulate(&StarCatalog::new(), &small_config())
            .unwrap();
        assert!(report.image.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transfers_appear_as_non_kernel_overhead() {
        let cat = FieldGenerator::new(64, 64).generate(10, 1);
        let report = ParallelSimulator::new()
            .simulate(&cat, &small_config())
            .unwrap();
        let t = report.profile.overhead_named("CPU-GPU transmission");
        assert!(t > 0.0);
        assert_eq!(report.profile.overheads.len(), 1);
        assert!(
            (report.app_time_s - (report.kernel_time_s() + report.non_kernel_time_s())).abs()
                < 1e-12
        );
    }

    #[test]
    fn oversized_roi_propagates_launch_error() {
        let cat = StarCatalog::from_stars(vec![Star::new(32.0, 32.0, 3.0)]);
        let cfg = SimConfig::new(64, 64, 33); // 33² > 1024 threads
        assert!(matches!(
            ParallelSimulator::new().simulate(&cat, &cfg),
            Err(SimError::Gpu(_))
        ));
    }
}
