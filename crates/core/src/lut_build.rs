//! Where should the lookup table be built? — the paper's §IV-D claim,
//! quantified.
//!
//! "When building the lookup table, we run it in CPU platform instead of
//! GPU kernel, due to the small execution overhead and little data
//! parallelism." This module implements the road not taken — a GPU kernel
//! with one thread per table entry — so the claim can be measured: the
//! GPU build must also pay a kernel launch and produces its output in
//! global memory, from which the texture bind still needs a copy, while
//! the table is small enough that the CPU finishes in a fraction of a
//! millisecond.

use gpusim::memory::global::{GlobalAtomicF32, GlobalBuffer};
use gpusim::{FlopClass, Kernel, LaunchConfig, ThreadCtx, VirtualGpu};
use psf::integrated::PsfModel;
use psf::lut::{LookupTable, LutParams};
use psf::roi::Roi;
use starfield::magnitude::BrightnessTable;

use crate::adaptive::LUT_BUILD_S_PER_ENTRY;
use crate::config::SimConfig;
use crate::error::SimError;

/// One thread per lookup-table entry: computes `g(m_bin) · μ(Δx, Δy)`.
pub struct LutBuildKernel<'a> {
    /// Per-bin brightness values (uploaded from the host brightness table).
    pub brightness: &'a GlobalBuffer<f32>,
    /// Output table, flattened `[bin][j][i]`.
    pub out: &'a GlobalAtomicF32,
    /// ROI geometry.
    pub roi: Roi,
    /// PSF to evaluate.
    pub psf: PsfModel,
    /// Total entries (guard).
    pub entries: usize,
}

impl Kernel for LutBuildKernel<'_> {
    fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>) {
        let idx = ctx.block_linear() * ctx.block_dim.count() + ctx.thread_linear();
        if !ctx.branch(idx < self.entries) {
            ctx.exit();
            return;
        }
        let side = self.roi.side();
        let i = idx % side;
        let j = (idx / side) % side;
        let bin = idx / (side * side);
        let g = ctx.global_read(self.brightness, bin);
        let margin = self.roi.margin() as f32;
        let mu = self
            .psf
            .eval(i as f32 - margin, j as f32 - margin, 0.0, 0.0);
        // Same accounting as the pixel kernel's PSF evaluation.
        ctx.flops(FlopClass::Add, 2);
        ctx.flops(FlopClass::Fma, 2);
        ctx.flops(FlopClass::Special, 8);
        ctx.flops(FlopClass::Mul, 2);
        ctx.atomic_add_global(self.out, idx, g * mu);
    }
}

/// Comparison of CPU-side and GPU-side lookup-table construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutBuildComparison {
    /// Table entries.
    pub entries: usize,
    /// Modeled CPU build time (the paper's choice), seconds.
    pub cpu_build_s: f64,
    /// Modeled GPU build: brightness upload + kernel, seconds.
    pub gpu_build_s: f64,
    /// GPU kernel time alone, seconds.
    pub gpu_kernel_s: f64,
}

impl LutBuildComparison {
    /// True when the paper's CPU choice wins.
    pub fn cpu_wins(&self) -> bool {
        self.cpu_build_s < self.gpu_build_s
    }
}

/// Builds the table both ways on a fresh GTX480 and compares.
///
/// Returns the comparison and the GPU-built table data (for equivalence
/// checks against the host build).
pub fn compare_builds(config: &SimConfig) -> Result<(LutBuildComparison, Vec<f32>), SimError> {
    config.validate()?;
    let gpu = VirtualGpu::gtx480();
    let roi = Roi::new(config.roi_side);
    let params = LutParams {
        mag_bins: config.lut_mag_bins,
        phases: 1,
        mag_range: config.mag_range,
    };
    let entries = config.lut_mag_bins * roi.area();

    // Host reference build (also the functional source of truth).
    let host_lut = LookupTable::build(
        &config.psf_model(),
        config.a_factor,
        roi,
        params,
        Some(gpu.spec().texture_mem_bytes),
    )?;
    let cpu_build_s = entries as f64 * LUT_BUILD_S_PER_ENTRY;

    // GPU build: upload the brightness array, run one thread per entry.
    let brightness_table = BrightnessTable::build(
        config.mag_range.0,
        config.mag_range.1,
        config.lut_mag_bins,
        config.a_factor,
    );
    let (brightness, t_up) = gpu.upload(brightness_table.values().to_vec());
    let out = gpu.alloc_atomic_f32(entries);
    let kernel = LutBuildKernel {
        brightness: &brightness,
        out: &out,
        roi,
        psf: config.psf_model(),
        entries,
    };
    let tpb = 128usize;
    let blocks = entries.div_ceil(tpb);
    let grid_x = blocks.min(gpu.spec().max_grid_dim.x as usize).max(1);
    let grid_y = blocks.div_ceil(grid_x).max(1);
    let cfg = LaunchConfig::new(gpusim::Dim3::d2(grid_x as u32, grid_y as u32), tpb as u32);
    let profile = gpu.launch("lut-build", &kernel, cfg)?;
    let gpu_data = out.to_host();

    // Sanity: the two builds agree bit-for-bit (same arithmetic).
    debug_assert_eq!(gpu_data.len(), host_lut.data().len());

    Ok((
        LutBuildComparison {
            entries,
            cpu_build_s,
            gpu_build_s: t_up + profile.time_s,
            gpu_kernel_s: profile.time_s,
        },
        gpu_data,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveSimulator;

    #[test]
    fn gpu_build_computes_the_same_table() {
        let config = SimConfig::new(64, 64, 10);
        let (_, gpu_data) = compare_builds(&config).unwrap();
        let host = AdaptiveSimulator::new().build_lut(&config).unwrap();
        assert_eq!(gpu_data.len(), host.data().len());
        for (k, (&a, &b)) in gpu_data.iter().zip(host.data()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6 * b.abs().max(1e-12),
                "entry {k}: gpu {a} vs host {b}"
            );
        }
    }

    #[test]
    fn cpu_wins_for_small_tables() {
        // §IV-D's "little data parallelism" case: a coarse brightness array
        // (16 bins) leaves the GPU's fixed costs (upload latency + kernel
        // launch) unamortized, so the paper's CPU choice wins.
        let mut config = SimConfig::new(1024, 1024, 10);
        config.lut_mag_bins = 16;
        let (cmp, _) = compare_builds(&config).unwrap();
        assert!(
            cmp.cpu_wins(),
            "CPU {:.6}s should beat GPU {:.6}s at {} entries",
            cmp.cpu_build_s,
            cmp.gpu_build_s,
            cmp.entries
        );
    }

    #[test]
    fn either_build_is_negligible_at_paper_scale() {
        // The paper's stronger point is that the build is a "small
        // execution overhead" either way: both builds are an order of
        // magnitude below the per-frame transfer cost (≈2.5 ms).
        let config = SimConfig::new(1024, 1024, 10);
        let (cmp, _) = compare_builds(&config).unwrap();
        assert!(cmp.cpu_build_s < 0.5e-3);
        assert!(cmp.gpu_build_s < 0.5e-3);
    }

    #[test]
    fn gpu_build_eventually_competitive_for_huge_tables() {
        // The claim is scale-dependent: blow the table up (high magnitude
        // resolution, big ROI) and the GPU's parallelism starts to pay.
        let mut config = SimConfig::new(1024, 1024, 16);
        config.lut_mag_bins = 4096;
        let (cmp, _) = compare_builds(&config).unwrap();
        // ~1M entries: CPU ≈ entries × 10 ns ≈ 10 ms; the GPU kernel
        // parallelizes the same arithmetic across 15 SMs.
        assert!(
            cmp.gpu_kernel_s < cmp.cpu_build_s,
            "GPU kernel {:.4}s vs CPU {:.4}s at {} entries",
            cmp.gpu_kernel_s,
            cmp.cpu_build_s,
            cmp.entries
        );
    }

    #[test]
    fn comparison_fields_consistent() {
        let config = SimConfig::new(64, 64, 8);
        let (cmp, data) = compare_builds(&config).unwrap();
        assert_eq!(cmp.entries, config.lut_mag_bins * 64);
        assert_eq!(data.len(), cmp.entries);
        assert!(cmp.gpu_build_s >= cmp.gpu_kernel_s);
    }
}
