//! The `starsimd` wire protocol: length-prefixed, versioned frames.
//!
//! Every frame is an 11-byte header followed by a payload:
//!
//! | bytes | field | value |
//! |-------|-------|-------|
//! | 0..4  | magic | `b"SSIM"` |
//! | 4..6  | version | [`PROTOCOL_VERSION`], little-endian u16 |
//! | 6     | type  | message discriminant |
//! | 7..11 | payload length | little-endian u32, ≤ [`MAX_PAYLOAD`] |
//!
//! The boundary is **hardened against untrusted clients**: magic, version
//! and payload length are validated *before* any payload allocation, so a
//! hostile length field cannot OOM the server; every numeric field is
//! range-checked on decode; strings are length-prefixed and capped; and
//! [`SessionSpec::validate`] bounds image dimensions, star counts and
//! frame counts (on top of [`crate::SimConfig::validate`]) so a decoded
//! request cannot panic a worker either. Decode never trusts, encode
//! never truncates.

use std::io::{Read, Write};

use gpusim::KernelBackend;

use crate::config::SimConfig;

/// Protocol magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SSIM";
/// Current protocol version. Frames with any other version are rejected
/// at the header, before their payload is read.
pub const PROTOCOL_VERSION: u16 = 1;
/// Hard cap on a frame payload. Checked before allocation.
pub const MAX_PAYLOAD: usize = 1 << 20;
/// Hard cap on requested image width/height, pixels. Aliases
/// [`gpusim::device::MAX_IMAGE_DIM`] — the server boundary and the
/// pre-launch validator (`gpusim::sanitize::validate_roi`) share one
/// source of truth, so the caps cannot drift apart.
pub const MAX_DIM: usize = gpusim::device::MAX_IMAGE_DIM;
/// Hard cap on a session's ROI side, pixels (aliases
/// [`gpusim::device::MAX_ROI_SIDE`], shared like [`MAX_DIM`]).
pub const MAX_ROI: usize = gpusim::device::MAX_ROI_SIDE;
/// Hard cap on a session's synthetic-sky star count.
pub const MAX_STARS: usize = 1 << 20;
/// Hard cap on frames per render request.
pub const MAX_FRAMES_PER_REQUEST: u32 = 1024;
/// Hard cap on a tenant identifier, bytes.
pub const MAX_TENANT_LEN: usize = 64;
/// Header size, bytes.
pub const HEADER_LEN: usize = 11;

/// Errors crossing the protocol boundary.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's version is not [`PROTOCOL_VERSION`].
    Version(u16),
    /// The declared payload length exceeds [`MAX_PAYLOAD`]. Raised before
    /// any allocation.
    Oversized(u32),
    /// The payload ended before (or extended past) its message's fields.
    Truncated,
    /// Unknown message discriminant.
    UnknownType(u8),
    /// A field failed validation.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::Version(v) => write!(
                f,
                "unsupported protocol version {v} (this server speaks {PROTOCOL_VERSION})"
            ),
            ProtoError::Oversized(len) => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            ProtoError::Truncated => write!(f, "payload truncated or over-long for its type"),
            ProtoError::UnknownType(t) => write!(f, "unknown message type {t}"),
            ProtoError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Why a request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// Admission gate at capacity — honor `retry_after_ms` and retry.
    Saturated = 1,
    /// The server is draining for shutdown; find another replica.
    Draining = 2,
    /// The request failed validation; retrying unchanged will not help.
    BadRequest = 3,
    /// The request crashed its handler; the session is gone.
    Internal = 4,
    /// Protocol version mismatch.
    VersionUnsupported = 5,
    /// Per-connection session limit reached.
    SessionLimit = 6,
    /// The referenced session does not exist on this connection.
    UnknownSession = 7,
}

impl RejectCode {
    fn from_u8(v: u8) -> Option<RejectCode> {
        Some(match v {
            1 => RejectCode::Saturated,
            2 => RejectCode::Draining,
            3 => RejectCode::BadRequest,
            4 => RejectCode::Internal,
            5 => RejectCode::VersionUnsupported,
            6 => RejectCode::SessionLimit,
            7 => RejectCode::UnknownSession,
            _ => return None,
        })
    }

    /// Stable wire/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            RejectCode::Saturated => "saturated",
            RejectCode::Draining => "draining",
            RejectCode::BadRequest => "bad-request",
            RejectCode::Internal => "internal",
            RejectCode::VersionUnsupported => "version-unsupported",
            RejectCode::SessionLimit => "session-limit",
            RejectCode::UnknownSession => "unknown-session",
        }
    }
}

/// What a client asks a session to be. The server derives the full
/// [`SimConfig`] (and the deterministic synthetic scene) from this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Image width, pixels (≤ [`MAX_DIM`]).
    pub width: u32,
    /// Image height, pixels (≤ [`MAX_DIM`]).
    pub height: u32,
    /// ROI side length, pixels.
    pub roi_side: u32,
    /// Synthetic-sky star count (≤ [`MAX_STARS`]).
    pub stars: u32,
    /// Scene seed — same spec + seed ⇒ bit-identical frames.
    pub seed: u64,
    /// Kernel backend: 0 = scalar, 1 = SIMD.
    pub backend: u8,
    /// Tenant identifier for cache-quota attribution (≤
    /// [`MAX_TENANT_LEN`] bytes; must be non-empty).
    pub tenant: String,
}

impl SessionSpec {
    /// Validates the spec's caps and derives the session's [`SimConfig`]
    /// (which is itself validated) — the single choke point every
    /// deserialized open-session request passes through.
    pub fn validate(&self) -> Result<SimConfig, ProtoError> {
        let bad = |m: String| Err(ProtoError::Malformed(m));
        if self.width as usize > MAX_DIM || self.height as usize > MAX_DIM {
            return bad(format!(
                "image {}x{} exceeds the {MAX_DIM}px cap",
                self.width, self.height
            ));
        }
        if self.stars as usize > MAX_STARS {
            return bad(format!("{} stars exceeds the {MAX_STARS} cap", self.stars));
        }
        if self.tenant.is_empty() || self.tenant.len() > MAX_TENANT_LEN {
            return bad(format!(
                "tenant must be 1..={MAX_TENANT_LEN} bytes, got {}",
                self.tenant.len()
            ));
        }
        let backend = match self.backend {
            0 => KernelBackend::Scalar,
            1 => KernelBackend::Simd,
            other => return bad(format!("unknown backend {other}")),
        };
        let mut config = SimConfig::new(
            self.width as usize,
            self.height as usize,
            self.roi_side as usize,
        );
        config.backend = backend;
        // The sky the server generates for this spec spans magnitudes
        // [0, 6]; the default rated range covers it.
        config
            .validate()
            .map_err(|e| ProtoError::Malformed(e.to_string()))?;
        if config.roi_side > MAX_ROI {
            // The device's thread-block cap; SimConfig::validate leaves
            // this to the launch validator, but the boundary rejects it
            // eagerly so a worker never sees it.
            return bad(format!(
                "roi_side {} exceeds the {MAX_ROI}px cap",
                self.roi_side
            ));
        }
        Ok(config)
    }
}

/// A render request's completion report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderDone {
    /// The session rendered.
    pub session: u64,
    /// Frames requested.
    pub requested: u32,
    /// Frames completed before the deadline/cancel (= `requested` on a
    /// full burst).
    pub completed: u32,
    /// FNV-1a digest over every frame's pixel bits, **cumulative for the
    /// session** — a deadline-split sequence of bursts ends on the same
    /// digest as one uninterrupted burst iff the frames are bit-identical.
    pub digest: u64,
    /// Modeled GPU time over the burst, microseconds.
    pub app_time_us: u64,
    /// Host wall-clock over the burst, microseconds.
    pub wall_us: u64,
    /// The server's shed level while the burst ran
    /// ([`crate::admission::ShedLevel::index`]).
    pub shed_level: u8,
    /// Whether the burst's deadline budget expired before `requested`
    /// frames completed.
    pub deadline_missed: bool,
}

/// A monitoring snapshot reply. `detail` is false when the shed ladder
/// has coarsened monitoring — headline fields stay, `body` (per-tenant
/// cache stats, metric histograms, GPU diagnostics as JSON text) is
/// empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReply {
    /// Current shed level ([`crate::admission::ShedLevel::index`]).
    pub shed_level: u8,
    /// Admission permits outstanding.
    pub depth: u32,
    /// Admission capacity.
    pub capacity: u32,
    /// Requests admitted since start.
    pub admitted: u64,
    /// Requests rejected since start.
    pub rejected: u64,
    /// Render bursts that missed their deadline.
    pub deadline_misses: u64,
    /// Sessions currently open (across all connections).
    pub sessions: u32,
    /// Whether `body` carries the full-resolution detail.
    pub detail: bool,
    /// One-line resilience-rung summary (frames per rung + retries),
    /// e.g. `rungs configured=12 spawn=1 reference=0 direct-psf=0
    /// retries=1`. **Preserved at every shed level** — coarse monitoring
    /// drops `body`, never this.
    pub rung_summary: String,
    /// JSON text: metrics histograms, GPU diagnostics, per-tenant LUT
    /// cache stats. Empty when `detail` is false.
    pub body: String,
}

/// Aggregate SLO state carried by [`Message::AlertsReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// Every objective is inside budget.
    Ok = 0,
    /// At least one objective's slow burn rate is over budget.
    Warn = 1,
    /// At least one objective's fast burn rate is over budget — page.
    Page = 2,
}

impl SloState {
    fn from_u8(v: u8) -> Option<SloState> {
        Some(match v {
            0 => SloState::Ok,
            1 => SloState::Warn,
            2 => SloState::Page,
            _ => return None,
        })
    }

    /// Stable wire/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Page => "page",
        }
    }

    /// The more severe of two states.
    pub fn max(self, other: SloState) -> SloState {
        if (other as u8) > (self as u8) {
            other
        } else {
            self
        }
    }
}

/// One protocol message. See the module docs for the frame layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client hello: opens version negotiation.
    Hello {
        /// The highest protocol version the client speaks.
        version: u16,
    },
    /// Server accepts: both sides speak `version`.
    HelloAck {
        /// The negotiated version.
        version: u16,
    },
    /// Open a session for the given spec.
    OpenSession(SessionSpec),
    /// A session is open and ready to render.
    SessionOpen {
        /// Server-assigned session id, scoped to this connection.
        session: u64,
        /// Whether the session's lookup table came from the shared cache.
        lut_cache_hit: bool,
    },
    /// Render `frames` frames on `session`, with an optional deadline.
    Render {
        /// The session to render on.
        session: u64,
        /// Frames to render (1..=[`MAX_FRAMES_PER_REQUEST`]).
        frames: u32,
        /// Deadline budget in milliseconds; 0 = no deadline.
        deadline_ms: u32,
    },
    /// A render request completed (fully, or up to its deadline).
    RenderDone(RenderDone),
    /// The server turned a request away.
    Reject {
        /// Why.
        code: RejectCode,
        /// Suggested back-off before retrying, milliseconds (0 = do not
        /// retry).
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
    /// Ask for a monitoring snapshot.
    Monitor,
    /// The monitoring snapshot.
    MonitorReply(MonitorReply),
    /// Begin graceful shutdown: stop admitting, finish in-flight work.
    Drain,
    /// Drain finished; `pending` is the depth still outstanding (0 on a
    /// clean drain).
    DrainAck {
        /// Admission depth at ack time.
        pending: u32,
    },
    /// Close a session and free its resources.
    CloseSession {
        /// The session to close.
        session: u64,
    },
    /// The session is closed.
    SessionClosed {
        /// The closed session.
        session: u64,
    },
    /// Ask for the time-series metrics exposition (the scrape request).
    Metrics,
    /// The scrape reply: a Prometheus-style text exposition of every
    /// counter/gauge/histogram series the observability plane retains.
    MetricsReply {
        /// Snapshots currently held in the server's time-series ring.
        snapshots: u32,
        /// The text exposition (see `obsplane::expose`).
        exposition: String,
    },
    /// Ask for the SLO engine's burn-rate alert evaluation.
    Alerts,
    /// The alert evaluation: aggregate state plus per-objective detail.
    AlertsReply {
        /// Worst state across all objectives.
        state: SloState,
        /// JSON text: one entry per objective with its window value,
        /// budget, and fast/slow burn rates.
        body: String,
    },
}

impl Message {
    fn type_code(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::HelloAck { .. } => 2,
            Message::OpenSession(_) => 3,
            Message::SessionOpen { .. } => 4,
            Message::Render { .. } => 5,
            Message::RenderDone(_) => 6,
            Message::Reject { .. } => 7,
            Message::Monitor => 8,
            Message::MonitorReply(_) => 9,
            Message::Drain => 10,
            Message::DrainAck { .. } => 11,
            Message::CloseSession { .. } => 12,
            Message::SessionClosed { .. } => 13,
            Message::Metrics => 14,
            Message::MetricsReply { .. } => 15,
            Message::Alerts => 16,
            Message::AlertsReply { .. } => 17,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello { version } | Message::HelloAck { version } => {
                put_u16(out, *version);
            }
            Message::OpenSession(spec) => {
                put_u32(out, spec.width);
                put_u32(out, spec.height);
                put_u32(out, spec.roi_side);
                put_u32(out, spec.stars);
                put_u64(out, spec.seed);
                out.push(spec.backend);
                put_str(out, &spec.tenant);
            }
            Message::SessionOpen {
                session,
                lut_cache_hit,
            } => {
                put_u64(out, *session);
                out.push(u8::from(*lut_cache_hit));
            }
            Message::Render {
                session,
                frames,
                deadline_ms,
            } => {
                put_u64(out, *session);
                put_u32(out, *frames);
                put_u32(out, *deadline_ms);
            }
            Message::RenderDone(done) => {
                put_u64(out, done.session);
                put_u32(out, done.requested);
                put_u32(out, done.completed);
                put_u64(out, done.digest);
                put_u64(out, done.app_time_us);
                put_u64(out, done.wall_us);
                out.push(done.shed_level);
                out.push(u8::from(done.deadline_missed));
            }
            Message::Reject {
                code,
                retry_after_ms,
                message,
            } => {
                out.push(*code as u8);
                put_u32(out, *retry_after_ms);
                put_str(out, message);
            }
            Message::Monitor | Message::Drain | Message::Metrics | Message::Alerts => {}
            Message::MonitorReply(reply) => {
                out.push(reply.shed_level);
                put_u32(out, reply.depth);
                put_u32(out, reply.capacity);
                put_u64(out, reply.admitted);
                put_u64(out, reply.rejected);
                put_u64(out, reply.deadline_misses);
                put_u32(out, reply.sessions);
                out.push(u8::from(reply.detail));
                put_str(out, &reply.rung_summary);
                put_long_str(out, &reply.body);
            }
            Message::MetricsReply {
                snapshots,
                exposition,
            } => {
                put_u32(out, *snapshots);
                put_long_str(out, exposition);
            }
            Message::AlertsReply { state, body } => {
                out.push(*state as u8);
                put_long_str(out, body);
            }
            Message::DrainAck { pending } => put_u32(out, *pending),
            Message::CloseSession { session } | Message::SessionClosed { session } => {
                put_u64(out, *session);
            }
        }
    }

    fn decode_payload(code: u8, payload: &[u8]) -> Result<Message, ProtoError> {
        let mut r = Reader::new(payload);
        let message = match code {
            1 => Message::Hello { version: r.u16()? },
            2 => Message::HelloAck { version: r.u16()? },
            3 => Message::OpenSession(SessionSpec {
                width: r.u32()?,
                height: r.u32()?,
                roi_side: r.u32()?,
                stars: r.u32()?,
                seed: r.u64()?,
                backend: r.u8()?,
                tenant: r.str(MAX_TENANT_LEN)?,
            }),
            4 => Message::SessionOpen {
                session: r.u64()?,
                lut_cache_hit: r.bool()?,
            },
            5 => Message::Render {
                session: r.u64()?,
                frames: r.u32()?,
                deadline_ms: r.u32()?,
            },
            6 => Message::RenderDone(RenderDone {
                session: r.u64()?,
                requested: r.u32()?,
                completed: r.u32()?,
                digest: r.u64()?,
                app_time_us: r.u64()?,
                wall_us: r.u64()?,
                shed_level: r.u8()?,
                deadline_missed: r.bool()?,
            }),
            7 => Message::Reject {
                code: RejectCode::from_u8(r.u8()?)
                    .ok_or_else(|| ProtoError::Malformed("unknown reject code".into()))?,
                retry_after_ms: r.u32()?,
                message: r.str(1024)?,
            },
            8 => Message::Monitor,
            9 => Message::MonitorReply(MonitorReply {
                shed_level: r.u8()?,
                depth: r.u32()?,
                capacity: r.u32()?,
                admitted: r.u64()?,
                rejected: r.u64()?,
                deadline_misses: r.u64()?,
                sessions: r.u32()?,
                detail: r.bool()?,
                rung_summary: r.str(1024)?,
                body: r.long_str(MAX_PAYLOAD)?,
            }),
            10 => Message::Drain,
            11 => Message::DrainAck { pending: r.u32()? },
            12 => Message::CloseSession { session: r.u64()? },
            13 => Message::SessionClosed { session: r.u64()? },
            14 => Message::Metrics,
            15 => Message::MetricsReply {
                snapshots: r.u32()?,
                exposition: r.long_str(MAX_PAYLOAD)?,
            },
            16 => Message::Alerts,
            17 => Message::AlertsReply {
                state: SloState::from_u8(r.u8()?)
                    .ok_or_else(|| ProtoError::Malformed("unknown SLO state".into()))?,
                body: r.long_str(MAX_PAYLOAD)?,
            },
            other => return Err(ProtoError::UnknownType(other)),
        };
        r.finish()?;
        Ok(message)
    }
}

/// Writes one framed message to `w` (header + payload, flushed).
pub fn write_message(w: &mut impl Write, message: &Message) -> Result<(), ProtoError> {
    let mut payload = Vec::new();
    message.encode_payload(&mut payload);
    debug_assert!(payload.len() <= MAX_PAYLOAD, "encoder exceeded its own cap");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.push(message.type_code());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one framed message from `r`, validating magic, version and
/// payload length **before** allocating or reading the payload.
pub fn read_message(r: &mut impl Read) -> Result<Message, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::Version(version));
    }
    let code = header[6];
    let len = u32::from_le_bytes(header[7..11].try_into().expect("4-byte slice"));
    if len as usize > MAX_PAYLOAD {
        // The whole point: reject before the allocation a hostile length
        // field is fishing for.
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Message::decode_payload(code, &payload)
}

// ---- little-endian field helpers -----------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// u16 length-prefixed UTF-8 (short fields: tenant ids, messages).
fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    put_u16(out, len as u16);
    out.extend_from_slice(&bytes[..len]);
}

/// u32 length-prefixed UTF-8 (the monitoring body).
fn put_long_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload reader; every accessor fails on truncation
/// instead of panicking, and [`Reader::finish`] rejects trailing bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtoError::Malformed(format!("bool byte {other}"))),
        }
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2-byte slice"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn str(&mut self, cap: usize) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        if len > cap {
            return Err(ProtoError::Malformed(format!(
                "string length {len} exceeds cap {cap}"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("string is not UTF-8".into()))
    }

    fn long_str(&mut self, cap: usize) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(ProtoError::Malformed(format!(
                "string length {len} exceeds cap {cap}"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("string is not UTF-8".into()))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Truncated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(message: Message) {
        let mut wire = Vec::new();
        write_message(&mut wire, &message).unwrap();
        let decoded = read_message(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(message, decoded);
    }

    fn spec() -> SessionSpec {
        SessionSpec {
            width: 256,
            height: 256,
            roi_side: 10,
            stars: 4096,
            seed: 7,
            backend: 0,
            tenant: "tenant-a".into(),
        }
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello { version: 1 });
        round_trip(Message::HelloAck { version: 1 });
        round_trip(Message::OpenSession(spec()));
        round_trip(Message::SessionOpen {
            session: 42,
            lut_cache_hit: true,
        });
        round_trip(Message::Render {
            session: 42,
            frames: 16,
            deadline_ms: 250,
        });
        round_trip(Message::RenderDone(RenderDone {
            session: 42,
            requested: 16,
            completed: 9,
            digest: 0xdead_beef_cafe_f00d,
            app_time_us: 1234,
            wall_us: 5678,
            shed_level: 2,
            deadline_missed: true,
        }));
        round_trip(Message::Reject {
            code: RejectCode::Saturated,
            retry_after_ms: 50,
            message: "come back later".into(),
        });
        round_trip(Message::Monitor);
        round_trip(Message::MonitorReply(MonitorReply {
            shed_level: 1,
            depth: 3,
            capacity: 8,
            admitted: 100,
            rejected: 7,
            deadline_misses: 2,
            sessions: 5,
            detail: true,
            rung_summary: "rungs configured=12 spawn=1 reference=0 direct-psf=0 retries=1".into(),
            body: "{\"metrics\":{}}".into(),
        }));
        round_trip(Message::Drain);
        round_trip(Message::DrainAck { pending: 0 });
        round_trip(Message::CloseSession { session: 42 });
        round_trip(Message::SessionClosed { session: 42 });
        round_trip(Message::Metrics);
        round_trip(Message::MetricsReply {
            snapshots: 12,
            exposition: "# TYPE starsim_frames_rendered counter\n\
                         starsim_frames_rendered 42\n"
                .into(),
        });
        round_trip(Message::Alerts);
        for state in [SloState::Ok, SloState::Warn, SloState::Page] {
            round_trip(Message::AlertsReply {
                state,
                body: "{\"objectives\":[]}".into(),
            });
        }
    }

    #[test]
    fn slo_state_orders_by_severity() {
        assert_eq!(SloState::Ok.max(SloState::Warn), SloState::Warn);
        assert_eq!(SloState::Page.max(SloState::Warn), SloState::Page);
        assert_eq!(SloState::Ok.name(), "ok");
        assert_eq!(SloState::Page.name(), "page");
    }

    #[test]
    fn bad_magic_is_rejected_at_the_header() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Message::Monitor).unwrap();
        wire[0] = b'X';
        assert!(matches!(
            read_message(&mut Cursor::new(&wire)),
            Err(ProtoError::BadMagic(_))
        ));
    }

    #[test]
    fn wrong_version_is_rejected_before_the_payload() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Message::Hello { version: 1 }).unwrap();
        wire[4] = 99; // version LE low byte
        match read_message(&mut Cursor::new(&wire)) {
            Err(ProtoError::Version(99)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_reading_the_payload() {
        // A header declaring a 2 GiB payload, with no payload behind it:
        // the reader must error on the length check, not on a failed
        // allocation or a blocking read.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        wire.push(8); // Monitor
        wire.extend_from_slice(&(2u32 << 30).to_le_bytes());
        match read_message(&mut Cursor::new(&wire)) {
            Err(ProtoError::Oversized(len)) => assert_eq!(len, 2 << 30),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn truncated_and_overlong_payloads_are_rejected() {
        let mut wire = Vec::new();
        write_message(
            &mut wire,
            &Message::Render {
                session: 1,
                frames: 2,
                deadline_ms: 3,
            },
        )
        .unwrap();
        // Truncate the payload but fix the declared length to match.
        let truncated_len = (wire.len() - HEADER_LEN - 4) as u32;
        wire.truncate(wire.len() - 4);
        wire[7..11].copy_from_slice(&truncated_len.to_le_bytes());
        assert!(matches!(
            read_message(&mut Cursor::new(&wire)),
            Err(ProtoError::Truncated)
        ));

        // Trailing garbage after a well-formed payload is also rejected.
        let mut wire = Vec::new();
        write_message(&mut wire, &Message::DrainAck { pending: 1 }).unwrap();
        wire.push(0xff);
        let fixed_len = (wire.len() - HEADER_LEN) as u32;
        wire[7..11].copy_from_slice(&fixed_len.to_le_bytes());
        assert!(matches!(
            read_message(&mut Cursor::new(&wire)),
            Err(ProtoError::Truncated)
        ));
    }

    #[test]
    fn unknown_type_and_bad_enum_bytes_are_rejected() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Message::Monitor).unwrap();
        wire[6] = 200;
        assert!(matches!(
            read_message(&mut Cursor::new(&wire)),
            Err(ProtoError::UnknownType(200))
        ));

        let mut wire = Vec::new();
        write_message(
            &mut wire,
            &Message::Reject {
                code: RejectCode::Draining,
                retry_after_ms: 0,
                message: String::new(),
            },
        )
        .unwrap();
        wire[HEADER_LEN] = 99; // invalid reject code
        assert!(matches!(
            read_message(&mut Cursor::new(&wire)),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_header_reports_io() {
        let wire = [b'S', b'S'];
        assert!(matches!(
            read_message(&mut Cursor::new(&wire[..])),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn session_spec_caps_are_enforced() {
        assert!(spec().validate().is_ok());

        let mut s = spec();
        s.width = MAX_DIM as u32 + 1;
        assert!(matches!(s.validate(), Err(ProtoError::Malformed(_))));

        let mut s = spec();
        s.stars = MAX_STARS as u32 + 1;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.tenant = String::new();
        assert!(s.validate().is_err());

        let mut s = spec();
        s.tenant = "x".repeat(MAX_TENANT_LEN + 1);
        assert!(s.validate().is_err());

        let mut s = spec();
        s.backend = 9;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.roi_side = 0; // SimConfig::validate catches this
        assert!(s.validate().is_err());

        let mut s = spec();
        s.roi_side = 33; // device thread-block cap
        assert!(s.validate().is_err());

        let mut s = spec();
        s.width = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn spec_config_carries_the_backend() {
        let mut s = spec();
        s.backend = 1;
        let config = s.validate().unwrap();
        assert_eq!(config.backend, KernelBackend::Simd);
        assert_eq!((config.width, config.height), (256, 256));
    }

    #[test]
    fn non_utf8_tenant_is_rejected() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Message::OpenSession(spec())).unwrap();
        // The tenant string is the last field; corrupt its bytes.
        let n = wire.len();
        wire[n - 3] = 0xff;
        wire[n - 2] = 0xfe;
        assert!(matches!(
            read_message(&mut Cursor::new(&wire)),
            Err(ProtoError::Malformed(_))
        ));
    }
}
