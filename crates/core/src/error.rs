//! Error type for the simulators.

use std::fmt;

/// Errors raised by simulator construction and execution.
#[derive(Debug)]
pub enum SimError {
    /// A configuration value is out of range.
    InvalidConfig(String),
    /// The virtual GPU rejected a launch or allocation.
    Gpu(gpusim::GpuError),
    /// PSF / lookup-table construction failed.
    Psf(psf::PsfError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(m) => write!(f, "invalid simulation config: {m}"),
            SimError::Gpu(e) => write!(f, "gpu error: {e}"),
            SimError::Psf(e) => write!(f, "psf error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Gpu(e) => Some(e),
            SimError::Psf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gpusim::GpuError> for SimError {
    fn from(e: gpusim::GpuError) -> Self {
        SimError::Gpu(e)
    }
}

impl From<psf::PsfError> for SimError {
    fn from(e: psf::PsfError) -> Self {
        SimError::Psf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_conversion() {
        let e = SimError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let g: SimError = gpusim::GpuError::Other("x".into()).into();
        assert!(g.to_string().contains("x"));
        assert!(g.source().is_some());
        let p: SimError = psf::PsfError::InvalidParameter("y".into()).into();
        assert!(p.to_string().contains("y"));
    }
}
