//! Error type for the simulators.

use std::fmt;

/// Errors raised by simulator construction and execution.
#[derive(Debug)]
pub enum SimError {
    /// A configuration value is out of range.
    InvalidConfig(String),
    /// The virtual GPU rejected a launch or allocation.
    Gpu(gpusim::GpuError),
    /// PSF / lookup-table construction failed.
    Psf(psf::PsfError),
    /// Every retry attempt (and every degradation rung) failed.
    RetriesExhausted {
        /// Number of attempts made before giving up.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<SimError>,
    },
    /// The frame loop was cancelled through a
    /// [`crate::resilience::CancelToken`] before completing its burst.
    /// In-flight frames drained deterministically first; the sequencer's
    /// clock stops exactly after the last completed frame.
    Cancelled,
    /// A per-request deadline budget expired before the burst completed.
    /// Same drain semantics as [`SimError::Cancelled`] — the distinct
    /// variant lets servers count deadline misses separately from
    /// operator cancels.
    DeadlineExceeded,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(m) => write!(f, "invalid simulation config: {m}"),
            SimError::Gpu(e) => write!(f, "gpu error: {e}"),
            SimError::Psf(e) => write!(f, "psf error: {e}"),
            SimError::RetriesExhausted { attempts, last } => write!(
                f,
                "all {attempts} retry attempts exhausted; last error: {last}"
            ),
            SimError::Cancelled => write!(f, "frame loop cancelled"),
            SimError::DeadlineExceeded => write!(f, "deadline budget exceeded"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Gpu(e) => Some(e),
            SimError::Psf(e) => Some(e),
            SimError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<gpusim::GpuError> for SimError {
    fn from(e: gpusim::GpuError) -> Self {
        SimError::Gpu(e)
    }
}

impl From<psf::PsfError> for SimError {
    fn from(e: psf::PsfError) -> Self {
        SimError::Psf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_conversion() {
        let e = SimError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let g: SimError = gpusim::GpuError::Other("x".into()).into();
        assert!(g.to_string().contains("x"));
        assert!(g.source().is_some());
        let p: SimError = psf::PsfError::InvalidParameter("y".into()).into();
        assert!(p.to_string().contains("y"));
    }

    #[test]
    fn cancelled_displays_and_has_no_source() {
        let e = SimError::Cancelled;
        assert!(e.to_string().contains("cancelled"));
        assert!(e.source().is_none());
        let d = SimError::DeadlineExceeded;
        assert!(d.to_string().contains("deadline"));
        assert!(d.source().is_none());
    }

    #[test]
    fn retries_exhausted_chains_the_last_error() {
        let e = SimError::RetriesExhausted {
            attempts: 4,
            last: Box::new(SimError::Gpu(gpusim::GpuError::Other("boom".into()))),
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }
}
