//! The device-side star record uploaded to GPU global memory.

use starfield::Star;

/// A star as laid out in device memory: 12 contiguous bytes, matching the
/// `star* starArray` parameter of the paper's kernel (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct DeviceStar {
    /// Catalogue magnitude.
    pub mag: f32,
    /// Image-plane x, pixels.
    pub x: f32,
    /// Image-plane y, pixels.
    pub y: f32,
}

impl From<&Star> for DeviceStar {
    fn from(s: &Star) -> Self {
        DeviceStar {
            mag: s.mag.value(),
            x: s.pos.x,
            y: s.pos.y,
        }
    }
}

/// Converts a host catalogue into the device array layout.
pub fn to_device_stars(stars: &[Star]) -> Vec<DeviceStar> {
    stars.iter().map(DeviceStar::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_12_bytes() {
        assert_eq!(std::mem::size_of::<DeviceStar>(), 12);
    }

    #[test]
    fn conversion_preserves_fields() {
        let s = Star::new(10.5, 20.25, 3.75);
        let d = DeviceStar::from(&s);
        assert_eq!((d.mag, d.x, d.y), (3.75, 10.5, 20.25));
        let v = to_device_stars(&[s, Star::new(1.0, 2.0, 3.0)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].x, 1.0);
    }
}
