//! Simulator selection (paper §IV-C, Table III).
//!
//! The parallel simulator wins below the inflection point (its non-kernel
//! overhead is smaller); the adaptive simulator wins above it (its kernel
//! is cheaper and kernel time dominates at scale). The paper reports the
//! inflection at **2^13 stars** (test 1, ROI fixed at 10) and **ROI side
//! 10** (test 2, stars fixed at 8192) — "the two tests accord perfectly in
//! the value of two model parameters at the inflection point". The paper
//! also notes (§IV-D) that below ~2^7 stars the sequential CPU simulator is
//! competitive because transfer overhead dominates.

/// The simulators a user can choose among.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// The sequential CPU simulator.
    Sequential,
    /// The star-centric GPU simulator.
    Parallel,
    /// The lookup-table GPU simulator.
    Adaptive,
}

/// The measured inflection point between the two GPU simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InflectionPoint {
    /// Star count at the crossover with the ROI fixed (paper: 2^13).
    pub stars: usize,
    /// ROI side at the crossover with the star count fixed (paper: 10).
    pub roi_side: usize,
    /// Below this star count the sequential simulator is competitive
    /// (paper §IV-D: "0 ~ 2^7").
    pub sequential_below: usize,
}

impl Default for InflectionPoint {
    /// The paper's values.
    fn default() -> Self {
        InflectionPoint {
            stars: 1 << 13,
            roi_side: 10,
            sequential_below: 1 << 7,
        }
    }
}

impl InflectionPoint {
    /// Chooses the best simulator for a workload — Table III, extended with
    /// the §IV-D small-scale sequential advice.
    ///
    /// Table III's rule: with one parameter at its turning-point value, the
    /// other decides; at or below the turning point choose parallel, above
    /// it choose adaptive. For workloads off the table's axes we
    /// generalize by the product rule: the computation scale `stars × roi²`
    /// against the scale at the inflection.
    pub fn choose(&self, stars: usize, roi_side: usize) -> Choice {
        if stars < self.sequential_below {
            return Choice::Sequential;
        }
        // Table III rows: exact-axis cases.
        if stars == self.stars {
            return if roi_side <= self.roi_side {
                Choice::Parallel
            } else {
                Choice::Adaptive
            };
        }
        if roi_side == self.roi_side {
            return if stars <= self.stars {
                Choice::Parallel
            } else {
                Choice::Adaptive
            };
        }
        // Off-axis: compare computational scales.
        let scale = stars as u128 * (roi_side * roi_side) as u128;
        let pivot = self.stars as u128 * (self.roi_side * self.roi_side) as u128;
        if scale <= pivot {
            Choice::Parallel
        } else {
            Choice::Adaptive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_iii_rows() {
        let p = InflectionPoint::default();
        // Row 1: stars at turning point, ROI below ⇒ parallel.
        assert_eq!(p.choose(1 << 13, 8), Choice::Parallel);
        // Row 2: ROI at turning point, stars below ⇒ parallel.
        assert_eq!(p.choose(1 << 12, 10), Choice::Parallel);
        // Row 3: stars at turning point, ROI above ⇒ adaptive.
        assert_eq!(p.choose(1 << 13, 14), Choice::Adaptive);
        // Row 4: ROI at turning point, stars above ⇒ adaptive.
        assert_eq!(p.choose(1 << 15, 10), Choice::Adaptive);
    }

    #[test]
    fn exactly_at_the_inflection_prefers_parallel() {
        // "=" rows of Table III list parallel for the boundary itself.
        let p = InflectionPoint::default();
        assert_eq!(p.choose(1 << 13, 10), Choice::Parallel);
    }

    #[test]
    fn tiny_fields_go_sequential() {
        let p = InflectionPoint::default();
        assert_eq!(p.choose(100, 10), Choice::Sequential);
        assert_eq!(p.choose(127, 20), Choice::Sequential);
        assert_eq!(p.choose(128, 10), Choice::Parallel);
    }

    #[test]
    fn off_axis_uses_scale_product() {
        let p = InflectionPoint::default();
        // 2^15 stars × ROI 6²: scale 2^15·36 < 2^13·100 ⇒ parallel... check:
        // 32768·36 = 1_179_648 > 8192·100 = 819_200 ⇒ adaptive.
        assert_eq!(p.choose(1 << 15, 6), Choice::Adaptive);
        // 2^12 stars × ROI 12²: 4096·144 = 589_824 < 819_200 ⇒ parallel.
        assert_eq!(p.choose(1 << 12, 12), Choice::Parallel);
        // Large both ways ⇒ adaptive.
        assert_eq!(p.choose(1 << 17, 20), Choice::Adaptive);
    }

    #[test]
    fn custom_inflection_points_respected() {
        let p = InflectionPoint {
            stars: 1000,
            roi_side: 8,
            sequential_below: 10,
        };
        assert_eq!(p.choose(5, 8), Choice::Sequential);
        assert_eq!(p.choose(1000, 8), Choice::Parallel);
        assert_eq!(p.choose(1001, 8), Choice::Adaptive);
    }
}
