//! Admission control and load shedding for the `starsimd` server.
//!
//! The server's overload posture is **bounded queues + explicit
//! rejection**: demand beyond [`AdmissionConfig::capacity`] concurrent
//! requests is rejected immediately with a retry-after hint
//! ([`Rejected`]), never buffered — queue depth (and with it memory and
//! tail latency) stays bounded by construction. Admitted work holds a
//! [`Permit`]; dropping it frees the slot.
//!
//! Before shedding *requests*, the server sheds *optional work* through a
//! [`ShedLevel`] ladder that mirrors the fault ladder of
//! [`crate::resilience::Rung`]: telemetry detail first, monitoring
//! resolution second, the adaptive kernel's LUT/texture pressure last
//! ([`crate::session::AdaptiveSession::set_shed_floor`]). The ladder
//! moves on **hysteresis** over utilization observations
//! ([`AdmissionController::observe`]): `shed_hold` consecutive
//! observations at ≥ `shed_high` utilization escalate one level;
//! `shed_hold` consecutive at ≤ `shed_low` de-escalate one — so a single
//! burst neither whipsaws the ladder nor locks it high. Observation
//! counts (not wall-clock) drive the transitions, keeping tests
//! deterministic.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning for one [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum concurrently admitted requests (queued + running). Demand
    /// past this is rejected, never buffered.
    pub capacity: usize,
    /// Retry hint stamped on every [`Rejected`], milliseconds.
    pub retry_after_ms: u64,
    /// Utilization (`depth / capacity`) at or above which an observation
    /// counts toward escalating the shed ladder.
    pub shed_high: f64,
    /// Utilization at or below which an observation counts toward
    /// de-escalating.
    pub shed_low: f64,
    /// Consecutive qualifying observations required to move one level.
    pub shed_hold: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 8,
            retry_after_ms: 50,
            shed_high: 0.75,
            shed_low: 0.25,
            shed_hold: 3,
        }
    }
}

impl AdmissionConfig {
    /// Validates the thresholds (`0 ≤ shed_low < shed_high ≤ 1`,
    /// `capacity ≥ 1`, `shed_hold ≥ 1`).
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("admission capacity must be ≥ 1".into());
        }
        if self.shed_hold == 0 {
            return Err("shed_hold must be ≥ 1".into());
        }
        if !(self.shed_low.is_finite() && self.shed_high.is_finite()) {
            return Err("shed thresholds must be finite".into());
        }
        if !(0.0..=1.0).contains(&self.shed_low)
            || !(0.0..=1.0).contains(&self.shed_high)
            || self.shed_low >= self.shed_high
        {
            return Err(format!(
                "need 0 ≤ shed_low ({}) < shed_high ({}) ≤ 1",
                self.shed_low, self.shed_high
            ));
        }
        Ok(())
    }
}

/// One level of the load-shedding ladder, cheapest shed first. Each level
/// includes every shed above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedLevel {
    /// No shedding: full telemetry, full monitoring, configured kernels.
    Full = 0,
    /// Per-session telemetry detail (spans, launch traces) is detached —
    /// the cheapest work the server can stop doing.
    LeanTelemetry = 1,
    /// Monitoring responses drop per-tenant detail and histograms,
    /// keeping only headline gauges.
    CoarseMonitoring = 2,
    /// Sessions render at the star-centric direct-PSF floor
    /// ([`crate::resilience::Rung::DirectPsf`]), shedding the shared
    /// LUT/texture pressure — the last shed before rejecting requests
    /// outright.
    FallbackRender = 3,
}

impl ShedLevel {
    /// All levels, lightest to heaviest.
    pub const ALL: [ShedLevel; 4] = [
        ShedLevel::Full,
        ShedLevel::LeanTelemetry,
        ShedLevel::CoarseMonitoring,
        ShedLevel::FallbackRender,
    ];

    /// Ladder position, `0..4`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The level at `index`, the inverse of [`Self::index`].
    pub fn from_index(index: usize) -> Option<ShedLevel> {
        ShedLevel::ALL.get(index).copied()
    }

    /// One level heavier, or `None` at the top.
    pub fn escalate(self) -> Option<ShedLevel> {
        ShedLevel::from_index(self.index() + 1)
    }

    /// One level lighter, or `None` at [`ShedLevel::Full`].
    pub fn relax(self) -> Option<ShedLevel> {
        self.index().checked_sub(1).and_then(ShedLevel::from_index)
    }

    /// Stable wire/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            ShedLevel::Full => "full",
            ShedLevel::LeanTelemetry => "lean-telemetry",
            ShedLevel::CoarseMonitoring => "coarse-monitoring",
            ShedLevel::FallbackRender => "fallback-render",
        }
    }
}

/// The admission verdict when no slot is free: come back in
/// `retry_after_ms`. Carrying the hint (rather than timing out the
/// caller) is the contract — rejected clients know to back off, admitted
/// clients keep their latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Suggested client back-off before retrying, milliseconds.
    pub retry_after_ms: u64,
    /// Queue depth at rejection time (= capacity).
    pub depth: usize,
}

/// Hysteresis state for the shed ladder (guarded by one small mutex; the
/// ladder moves on monitoring cadence, never on a render hot path).
#[derive(Debug, Default)]
struct ShedState {
    level_idx: usize,
    high_streak: u32,
    low_streak: u32,
}

/// Shared state behind an [`AdmissionController`] — also held by every
/// outstanding [`Permit`], whose drop releases its slot.
#[derive(Debug)]
struct ControllerInner {
    depth: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    released: AtomicU64,
    shed: Mutex<ShedState>,
}

/// A bounded admission gate plus the shed-ladder controller.
///
/// Cloning shares the state (it is the handle the acceptor, the
/// monitoring endpoint, and every request thread use concurrently).
#[derive(Clone, Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    inner: Arc<ControllerInner>,
}

/// An admitted request's slot. Dropping it releases the slot; keep it
/// alive for the request's full queued + running lifetime.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<ControllerInner>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inner.depth.fetch_sub(1, Ordering::AcqRel);
        self.inner.released.fetch_add(1, Ordering::Relaxed);
    }
}

/// A monitoring snapshot of an [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted since start.
    pub admitted: u64,
    /// Requests rejected since start.
    pub rejected: u64,
    /// Permits released (admitted requests that finished).
    pub released: u64,
    /// Permits currently outstanding.
    pub depth: usize,
    /// The admission bound.
    pub capacity: usize,
    /// The shed ladder's current level.
    pub shed_level: ShedLevel,
}

impl AdmissionController {
    /// A controller over `config`.
    ///
    /// # Panics
    /// Panics when the config does not [`AdmissionConfig::validate`] —
    /// admission bounds are a construction-time decision, not a runtime
    /// input.
    pub fn new(config: AdmissionConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid admission config: {msg}");
        }
        AdmissionController {
            config,
            inner: Arc::new(ControllerInner {
                depth: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                released: AtomicU64::new(0),
                shed: Mutex::new(ShedState::default()),
            }),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Tries to admit one request. `Ok` hands back a [`Permit`] holding a
    /// slot; `Err` means the gate is at capacity and the caller should
    /// relay the retry-after hint. Never blocks, never buffers.
    pub fn try_admit(&self) -> Result<Permit, Rejected> {
        let mut depth = self.inner.depth.load(Ordering::Acquire);
        loop {
            if depth >= self.config.capacity {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(Rejected {
                    retry_after_ms: self.config.retry_after_ms,
                    depth,
                });
            }
            match self.inner.depth.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.inner.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(Permit {
                        inner: Arc::clone(&self.inner),
                    });
                }
                Err(actual) => depth = actual,
            }
        }
    }

    /// Permits currently outstanding.
    pub fn depth(&self) -> usize {
        self.inner.depth.load(Ordering::Acquire)
    }

    /// Current utilization, `depth / capacity` in `[0, ∞)` (transiently
    /// above 1 is impossible — admission is bounded — so effectively
    /// `[0, 1]`).
    pub fn utilization(&self) -> f64 {
        self.depth() as f64 / self.config.capacity as f64
    }

    /// The shed ladder's current level.
    pub fn shed_level(&self) -> ShedLevel {
        let shed = self.inner.shed.lock().unwrap_or_else(|e| e.into_inner());
        ShedLevel::from_index(shed.level_idx).unwrap_or(ShedLevel::Full)
    }

    /// Feeds one utilization observation to the hysteresis ladder and
    /// returns the (possibly moved) level. Call on a steady cadence — the
    /// server observes once per handled message; tests can drive it
    /// directly.
    pub fn observe(&self) -> ShedLevel {
        let util = self.utilization();
        let mut shed = self.inner.shed.lock().unwrap_or_else(|e| e.into_inner());
        if util >= self.config.shed_high {
            shed.low_streak = 0;
            shed.high_streak += 1;
            if shed.high_streak >= self.config.shed_hold {
                shed.high_streak = 0;
                if let Some(next) = ShedLevel::from_index(shed.level_idx)
                    .unwrap_or(ShedLevel::Full)
                    .escalate()
                {
                    shed.level_idx = next.index();
                }
            }
        } else if util <= self.config.shed_low {
            shed.high_streak = 0;
            shed.low_streak += 1;
            if shed.low_streak >= self.config.shed_hold {
                shed.low_streak = 0;
                if let Some(prev) = ShedLevel::from_index(shed.level_idx)
                    .unwrap_or(ShedLevel::Full)
                    .relax()
                {
                    shed.level_idx = prev.index();
                }
            }
        } else {
            // Mid-band: pressure is neither building nor clearly gone.
            // Reset both streaks so only *sustained* signals move the
            // ladder.
            shed.high_streak = 0;
            shed.low_streak = 0;
        }
        ShedLevel::from_index(shed.level_idx).unwrap_or(ShedLevel::Full)
    }

    /// A monitoring snapshot (each field individually exact; the set is
    /// racy under concurrent use, like any monitoring read).
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            released: self.inner.released.load(Ordering::Relaxed),
            depth: self.depth(),
            capacity: self.config.capacity,
            shed_level: self.shed_level(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(capacity: usize) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            capacity,
            retry_after_ms: 25,
            ..AdmissionConfig::default()
        })
    }

    #[test]
    fn admits_to_capacity_then_rejects_with_retry_after() {
        let gate = controller(2);
        let p1 = gate.try_admit().unwrap();
        let p2 = gate.try_admit().unwrap();
        assert_eq!(gate.depth(), 2);
        let rejected = gate.try_admit().unwrap_err();
        assert_eq!(rejected.retry_after_ms, 25);
        assert_eq!(rejected.depth, 2);
        // Releasing a permit frees the slot immediately.
        drop(p1);
        assert_eq!(gate.depth(), 1);
        let p3 = gate.try_admit().unwrap();
        drop((p2, p3));
        let stats = gate.stats();
        assert_eq!(
            (stats.admitted, stats.rejected, stats.released, stats.depth),
            (3, 1, 3, 0)
        );
    }

    #[test]
    fn depth_never_exceeds_capacity_under_concurrent_admits() {
        let gate = controller(4);
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let gate = gate.clone();
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    for _ in 0..200 {
                        if let Ok(permit) = gate.try_admit() {
                            peak.fetch_max(gate.depth(), Ordering::Relaxed);
                            drop(permit);
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) <= 4);
        assert_eq!(gate.depth(), 0);
        let stats = gate.stats();
        assert_eq!(stats.admitted, stats.released);
    }

    #[test]
    fn hysteresis_escalates_only_after_sustained_pressure() {
        let gate = AdmissionController::new(AdmissionConfig {
            capacity: 2,
            shed_high: 0.75,
            shed_low: 0.25,
            shed_hold: 3,
            ..AdmissionConfig::default()
        });
        let _p1 = gate.try_admit().unwrap();
        let _p2 = gate.try_admit().unwrap(); // utilization 1.0
        assert_eq!(gate.observe(), ShedLevel::Full);
        assert_eq!(gate.observe(), ShedLevel::Full);
        assert_eq!(gate.observe(), ShedLevel::LeanTelemetry, "3rd high obs");
        // Next hold escalates again; the ladder tops out at FallbackRender.
        for _ in 0..3 {
            gate.observe();
        }
        assert_eq!(gate.shed_level(), ShedLevel::CoarseMonitoring);
        for _ in 0..6 {
            gate.observe();
        }
        assert_eq!(gate.shed_level(), ShedLevel::FallbackRender);
        for _ in 0..3 {
            gate.observe();
        }
        assert_eq!(gate.shed_level(), ShedLevel::FallbackRender, "clamped");
    }

    #[test]
    fn hysteresis_relaxes_after_sustained_idle_and_midband_resets() {
        let gate = AdmissionController::new(AdmissionConfig {
            capacity: 2,
            shed_high: 0.75,
            shed_low: 0.25,
            shed_hold: 2,
            ..AdmissionConfig::default()
        });
        let p1 = gate.try_admit().unwrap();
        let _p2 = gate.try_admit().unwrap();
        gate.observe();
        gate.observe();
        assert_eq!(gate.shed_level(), ShedLevel::LeanTelemetry);

        // Mid-band (0.5): neither streak builds; one more high obs is not
        // enough to escalate because the streak was reset.
        drop(p1);
        gate.observe();
        let _p3 = gate.try_admit().unwrap();
        gate.observe(); // high again, streak = 1 < hold
        assert_eq!(gate.shed_level(), ShedLevel::LeanTelemetry);

        // Sustained idle de-escalates back to Full.
        drop(_p3);
        drop(_p2);
        assert_eq!(gate.observe(), ShedLevel::LeanTelemetry, "1st low obs");
        assert_eq!(gate.observe(), ShedLevel::Full, "2nd low obs relaxes");
        assert_eq!(gate.observe(), ShedLevel::Full);
    }

    #[test]
    fn shed_level_order_names_and_indexing() {
        assert_eq!(ShedLevel::Full.escalate(), Some(ShedLevel::LeanTelemetry));
        assert_eq!(ShedLevel::FallbackRender.escalate(), None);
        assert_eq!(ShedLevel::Full.relax(), None);
        assert_eq!(
            ShedLevel::FallbackRender.relax(),
            Some(ShedLevel::CoarseMonitoring)
        );
        for level in ShedLevel::ALL {
            assert_eq!(ShedLevel::from_index(level.index()), Some(level));
            assert!(!level.name().is_empty());
        }
        assert_eq!(ShedLevel::from_index(4), None);
        assert!(ShedLevel::Full < ShedLevel::FallbackRender);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(AdmissionConfig::default().validate().is_ok());
        let bad = AdmissionConfig {
            capacity: 0,
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AdmissionConfig {
            shed_low: 0.8,
            shed_high: 0.5,
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AdmissionConfig {
            shed_hold: 0,
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AdmissionConfig {
            shed_high: f64::NAN,
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid admission config")]
    fn controller_panics_on_invalid_config() {
        let _ = AdmissionController::new(AdmissionConfig {
            capacity: 0,
            ..AdmissionConfig::default()
        });
    }
}
