//! Chrome trace-event JSON exporter (the "JSON Array Format" with a
//! `traceEvents` wrapper object), loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Layout of the emitted trace:
//!
//! * **pid 1 — "host"**: every span as a complete (`"ph": "X"`) event,
//!   one tid per recording thread. Nesting falls out of the timestamps;
//!   span/parent IDs are kept in `args` for tooling.
//! * **pid 2 — "gpu"**: per-launch rows — the launch itself on tid 0,
//!   its dispatch window on tid 1, its merge window on tid 2, and every
//!   drained lane event as an instant (`"ph": "i"`) on tid 100+lane.
//!
//! Timestamps are epoch-relative microseconds straight from the shared
//! telemetry clock, so host and device rows line up.

use std::io::Write as _;
use std::path::Path;

use super::Telemetry;

/// Serializes `telemetry` (spans + device launches) as Chrome
/// trace-event JSON.
pub fn chrome_trace_json(telemetry: &Telemetry) -> String {
    let spans = telemetry.snapshot_spans();
    let launches = telemetry.snapshot_gpu_launches();
    let mut events: Vec<String> = Vec::with_capacity(spans.len() + launches.len() * 4 + 4);

    // Process/thread metadata rows.
    for (pid, name) in [(1, "host"), (2, "gpu")] {
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{name}"}}}}"#
        ));
    }
    events.push(
        r#"{"name":"thread_name","ph":"M","pid":2,"tid":0,"args":{"name":"launches"}}"#.to_string(),
    );

    for s in &spans {
        events.push(format!(
            concat!(
                r#"{{"name":{name},"cat":"host","ph":"X","ts":{ts},"dur":{dur},"#,
                r#""pid":1,"tid":{tid},"args":{{"span":{id},"parent":{parent}}}}}"#
            ),
            name = quote(s.name),
            ts = s.start_us,
            dur = s.duration_us().max(1),
            tid = s.thread,
            id = s.id,
            parent = s.parent,
        ));
    }

    for l in &launches {
        events.push(format!(
            concat!(
                r#"{{"name":{name},"cat":"gpu","ph":"X","ts":{ts},"dur":{dur},"#,
                r#""pid":2,"tid":0,"args":{{"launch":{launch},"mode":{mode},"#,
                r#""modeled_kernel_us":{modeled:.3}}}}}"#
            ),
            name = quote(&format!("gpu:{}", l.name)),
            ts = l.start_us,
            dur = gpusim::telemetry::delta_us(l.start_us, l.end_us).max(1),
            launch = l.launch,
            mode = quote(l.mode),
            modeled = l.modeled_kernel_s * 1e6,
        ));
        for (tid, label, window) in [(1, "dispatch", l.dispatch_us), (2, "merge", l.merge_us)] {
            if let Some((start, end)) = window {
                events.push(format!(
                    concat!(
                        r#"{{"name":{name},"cat":"gpu","ph":"X","ts":{ts},"dur":{dur},"#,
                        r#""pid":2,"tid":{tid},"args":{{"launch":{launch}}}}}"#
                    ),
                    name = quote(label),
                    ts = start,
                    dur = gpusim::telemetry::delta_us(start, end).max(1),
                    tid = tid,
                    launch = l.launch,
                ));
            }
        }
        for e in &l.lane_events {
            events.push(format!(
                concat!(
                    r#"{{"name":{name},"cat":"lane","ph":"i","s":"t","ts":{ts},"#,
                    r#""pid":2,"tid":{tid},"args":{{"lane":{lane},"generation":{gen},"#,
                    r#""launch":{launch}}}}}"#
                ),
                name = quote(e.kind.label()),
                ts = e.t_us,
                tid = 100 + e.lane as u64,
                lane = e.lane,
                gen = e.generation,
                launch = l.launch,
            ));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes [`chrome_trace_json`] to `path` (creating parent directories).
pub fn write_chrome_trace(telemetry: &Telemetry, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_json(telemetry).as_bytes())
}

/// JSON string literal with the escapes the trace needs (names are ASCII
/// identifiers in practice; this stays correct for anything).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::super::json;
    use super::*;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn exported_trace_parses_back_with_expected_shape() {
        let t = Telemetry::new();
        {
            let _f = t.span("frame");
            let _r = t.span("render");
        }
        let text = chrome_trace_json(&t);
        let doc = json::parse(&text).expect("exporter must emit valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        for x in xs {
            assert!(x.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(x.get("dur").and_then(|v| v.as_f64()).unwrap() >= 1.0);
            assert_eq!(x.get("pid").and_then(|v| v.as_f64()), Some(1.0));
        }
    }

    #[test]
    fn write_creates_parent_directories() {
        let t = Telemetry::new();
        let dir = std::env::temp_dir().join("starsim_trace_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("trace.json");
        write_chrome_trace(&t, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(json::parse(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
