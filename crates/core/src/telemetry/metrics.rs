//! The metrics layer: named counters, gauges and histograms with a
//! deterministic snapshot order.
//!
//! Keys are `&'static str` (closed vocabulary, no per-record
//! allocation); storage is `BTreeMap` so snapshots iterate in a stable
//! order — reports and tests never depend on hash order. Histograms
//! keep raw samples up to a bound and summarize with nearest-rank
//! percentiles at snapshot time.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Retained samples per histogram; further observations only update the
/// count/sum/max summary (enough for p50/p99 over any realistic frame
/// run while bounding memory).
const HISTOGRAM_SAMPLES: usize = 1 << 16;

#[derive(Default)]
struct Histogram {
    samples: Vec<f64>,
    count: u64,
    sum: f64,
    max: f64,
}

/// Summary statistics of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded (including any past the sample bound).
    pub count: u64,
    /// Nearest-rank 50th percentile of the retained samples.
    pub p50: f64,
    /// Nearest-rank 99th percentile of the retained samples.
    pub p99: f64,
    /// Mean over all observations.
    pub mean: f64,
    /// Maximum over all observations.
    pub max: f64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A registry of counters (monotone), gauges (last value wins) and
/// histograms (distribution summaries), all keyed by static names.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (created at zero).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.insert(name, value);
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let h = inner.histograms.entry(name).or_default();
        if h.samples.len() < HISTOGRAM_SAMPLES {
            h.samples.push(value);
        }
        h.count += 1;
        h.sum += value;
        h.max = if h.count == 1 {
            value
        } else {
            h.max.max(value)
        };
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.get(name).copied()
    }

    /// All counters in name order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// All histograms in name order, summarized.
    pub fn histograms(&self) -> Vec<(&'static str, HistogramSummary)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .histograms
            .iter()
            .map(|(&k, h)| (k, summarize(h)))
            .collect()
    }
}

fn summarize(h: &Histogram) -> HistogramSummary {
    let mut sorted = h.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    HistogramSummary {
        count: h.count,
        p50: percentile(&sorted, 50.0),
        p99: percentile(&sorted, 99.0),
        mean: if h.count == 0 {
            0.0
        } else {
            h.sum / h.count as f64
        },
        max: if h.count == 0 { 0.0 } else { h.max },
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("absent"), 0);
        m.counter_add("hits", 2);
        m.counter_add("hits", 3);
        assert_eq!(m.counter("hits"), 5);
    }

    #[test]
    fn gauges_keep_last_value() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("x"), None);
        m.gauge_set("x", 1.5);
        m.gauge_set("x", 2.5);
        assert_eq!(m.gauge("x"), Some(2.5));
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let m = MetricsRegistry::new();
        for v in 1..=100 {
            m.observe("lat", v as f64);
        }
        let h = m.histograms();
        assert_eq!(h.len(), 1);
        let (name, s) = h[0];
        assert_eq!(name, "lat");
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_iterates_in_name_order() {
        let m = MetricsRegistry::new();
        m.counter_add("zeta", 1);
        m.counter_add("alpha", 1);
        m.counter_add("mid", 1);
        let names: Vec<_> = m.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
    }
}
