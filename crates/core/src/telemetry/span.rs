//! The span layer: RAII guard objects recording named, nested wall-clock
//! intervals onto a shared [`Telemetry`](super::Telemetry) sink.
//!
//! Nesting is tracked per thread with a thread-local parent stack, so a
//! span opened while another is live becomes its child without the call
//! sites having to thread IDs around. Span names are `&'static str` by
//! design: the set of pipeline stages is a closed vocabulary, recording
//! never allocates for the name, and two runs can be compared by name.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpusim::telemetry::{delta_us, now_us};

use super::Telemetry;

thread_local! {
    /// Stack of open span IDs on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Monotone span-ID source shared by every sink (IDs are unique
/// process-wide, so traces from several sinks can be merged safely).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique (process-wide) span ID.
    pub id: u64,
    /// ID of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// Stage name (closed vocabulary, e.g. `"render"`).
    pub name: &'static str,
    /// Start, microseconds since the telemetry epoch.
    pub start_us: u64,
    /// End, microseconds since the telemetry epoch.
    pub end_us: u64,
    /// Recording thread (dense per-process index, 0-based).
    pub thread: u64,
}

impl SpanRecord {
    /// Span duration in microseconds (wrap- and regression-safe: a
    /// wrapped or racing clock clamps to zero instead of going huge).
    pub fn duration_us(&self) -> u64 {
        delta_us(self.start_us, self.end_us)
    }
}

/// Dense per-thread index for trace rows (0 = first thread that ever
/// recorded a span).
pub(super) fn thread_index() -> u64 {
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static INDEX: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|i| *i)
}

/// An open span; records itself onto the sink when dropped.
///
/// Created by [`Telemetry::span`]. Hold it in a `let _guard = …;`
/// binding for the extent of the stage (a bare `let _ = …` drops it
/// immediately and records a zero-length span).
#[must_use = "a span guard records on drop; binding it to `_` closes it immediately"]
pub struct SpanGuard {
    sink: Arc<Telemetry>,
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("id", &self.id)
            .field("parent", &self.parent)
            .finish()
    }
}

impl SpanGuard {
    pub(super) fn open(sink: Arc<Telemetry>, name: &'static str) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        SpanGuard {
            sink,
            id,
            parent,
            name,
            start_us: now_us(),
        }
    }

    /// The span's stage name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_us = now_us();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards normally close LIFO; out-of-order drops (possible
            // with explicitly moved guards) just remove their own entry.
            if s.last() == Some(&self.id) {
                s.pop();
            } else {
                s.retain(|&id| id != self.id);
            }
        });
        self.sink.record_span(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            end_us,
            thread: thread_index(),
        });
    }
}

/// Opens a span on `sink` if telemetry is attached; the `None` path is a
/// no-op. The standard instrumentation idiom for optional telemetry:
///
/// ```ignore
/// let _stage = maybe_span(self.telemetry.as_ref(), "kernel-launch");
/// ```
pub fn maybe_span(sink: Option<&Arc<Telemetry>>, name: &'static str) -> Option<SpanGuard> {
    sink.map(|s| s.span(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let t = Telemetry::new();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
            }
            let _sibling = t.span("sibling");
        }
        let spans = t.snapshot_spans();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let outer = by_name("outer");
        assert_eq!(outer.parent, 0, "outer is a root span");
        assert_eq!(by_name("inner").parent, outer.id);
        assert_eq!(by_name("sibling").parent, outer.id);
        assert!(by_name("inner").end_us <= outer.end_us);
    }

    #[test]
    fn sibling_threads_get_independent_stacks() {
        let t = Telemetry::new();
        let _root = t.span("root");
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || {
            let _other = t2.span("other-thread");
        })
        .join()
        .unwrap();
        drop(_root);
        let spans = t.snapshot_spans();
        let other = spans.iter().find(|s| s.name == "other-thread").unwrap();
        assert_eq!(
            other.parent, 0,
            "a span on another thread must not parent onto this thread's stack"
        );
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_ne!(other.thread, root.thread);
    }

    #[test]
    fn maybe_span_is_noop_without_sink() {
        assert!(maybe_span(None, "x").is_none());
        let t = Telemetry::new();
        let g = maybe_span(Some(&t), "x").unwrap();
        assert_eq!(g.name(), "x");
    }
}
