//! A minimal recursive-descent JSON parser (std-only, reader side of the
//! Chrome trace exporter).
//!
//! The offline-build policy rules out serde, but the trace-export tests
//! and the bench's trace-validation step need to parse the JSON we emit
//! back into structure. This parser accepts full RFC-8259 JSON; it is
//! not performance-critical (traces are megabytes at most, parsed once).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order not preserved; keys sort lexically).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?.get(key)
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing content (other than whitespace) is
/// an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-3.5e2").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": {"d": true}}"#).unwrap();
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&JsonValue::Bool(true))
        );
        let arr = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(|b| b.as_str()), Some("x"));
    }

    #[test]
    fn parses_surrogate_pairs_and_unicode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".into())
        );
        assert_eq!(
            parse("\"héllo\"").unwrap(),
            JsonValue::String("héllo".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01x",
            "{}extra",
            "\"\\u12\"",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(Vec::new()));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
    }
}
