//! End-to-end tracing and metrics for the frame pipeline.
//!
//! Three layers (DESIGN.md §10):
//!
//! 1. **Spans** ([`span`]) — RAII guards recording named, nested
//!    wall-clock intervals (`session-setup` > `lut-build`, `render` >
//!    `kernel-launch`, …) on a shared [`Telemetry`] sink;
//! 2. **Device traces** — the sink owns a [`gpusim::GpuTelemetry`]
//!    shared with the `VirtualGpu`, which records one
//!    [`gpusim::LaunchTrace`] per launch (dispatch/merge windows plus
//!    the per-lane events drained from the worker pool's rings);
//! 3. **Metrics and export** ([`metrics`], [`chrome`]) — counters,
//!    gauges and histograms summarized into a [`FrameTelemetry`]
//!    report, and a Chrome trace-event JSON exporter whose output loads
//!    in Perfetto / `chrome://tracing`.
//!
//! Everything is opt-in: sessions without an attached sink skip all
//! recording (`Option<&Arc<Telemetry>>` checks only), and the bench's
//! `trace` experiment holds the overhead gate at ≤ 3% on the headline
//! throughput workload.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod span;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gpusim::telemetry::now_us;
use gpusim::{GpuTelemetry, LaunchTrace};

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use json::{parse as parse_json, JsonValue};
pub use metrics::{HistogramSummary, MetricsRegistry};
pub use span::{maybe_span, SpanGuard, SpanRecord};

/// Bound on retained span records (a frame records ~10 spans, so this
/// covers >100k frames between exports; beyond it spans are dropped and
/// counted, never reallocated unboundedly).
const SPAN_CAPACITY: usize = 1 << 20;

/// The host-side telemetry sink: spans + metrics + the shared device
/// sink. Cheap to share (`Arc`); all methods take `&self`.
pub struct Telemetry {
    spans: Mutex<Vec<SpanRecord>>,
    dropped_spans: AtomicU64,
    metrics: MetricsRegistry,
    gpu: Arc<GpuTelemetry>,
    /// Launch traces drained from the device sink, retained for export.
    gpu_launches: Mutex<Vec<LaunchTrace>>,
    /// Sink creation time (epoch-relative), the export time origin.
    created_us: u64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("spans", &self.spans.lock().map(|s| s.len()).unwrap_or(0))
            .field("metrics", &self.metrics)
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A fresh sink (wrapped in `Arc`: spans clone the handle).
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Self> {
        Arc::new(Telemetry {
            spans: Mutex::new(Vec::new()),
            dropped_spans: AtomicU64::new(0),
            metrics: MetricsRegistry::new(),
            gpu: Arc::new(GpuTelemetry::new()),
            gpu_launches: Mutex::new(Vec::new()),
            created_us: now_us(),
        })
    }

    /// Opens a span named `name`; the returned guard records the span
    /// when dropped, nested under any span already open on this thread.
    pub fn span(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        SpanGuard::open(Arc::clone(self), name)
    }

    /// The metrics registry (counters / gauges / histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The device-side sink to attach to a `VirtualGpu`
    /// ([`gpusim::VirtualGpu::with_telemetry`]). Shares this sink's
    /// timeline, so host spans and device traces merge into one trace.
    pub fn gpu_sink(&self) -> Arc<GpuTelemetry> {
        Arc::clone(&self.gpu)
    }

    /// Sink creation time, microseconds since the process epoch.
    pub fn created_us(&self) -> u64 {
        self.created_us
    }

    pub(crate) fn record_span(&self, record: SpanRecord) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() < SPAN_CAPACITY {
            spans.push(record);
        } else {
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All recorded spans, in completion order.
    pub fn snapshot_spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Spans dropped because the retention bound was hit.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans.load(Ordering::Relaxed)
    }

    /// Moves launches recorded by the device since the last call into
    /// this sink's retained list, then returns a snapshot of all of
    /// them (launch order).
    pub fn snapshot_gpu_launches(&self) -> Vec<LaunchTrace> {
        let mut retained = self.gpu_launches.lock().unwrap_or_else(|e| e.into_inner());
        retained.extend(self.gpu.take_launches());
        retained.clone()
    }

    /// The per-stage span tree signature: `(parent_name, name, count)`
    /// tuples in deterministic order. Two runs over the same seed and
    /// config produce the same signature even though every timestamp
    /// differs — the determinism contract the telemetry tests pin.
    pub fn span_tree_signature(&self) -> Vec<(&'static str, &'static str, usize)> {
        let spans = self.snapshot_spans();
        let name_of = |id: u64| -> &'static str {
            if id == 0 {
                return "";
            }
            spans
                .iter()
                .find(|s| s.id == id)
                .map(|s| s.name)
                .unwrap_or("")
        };
        let mut counts: std::collections::BTreeMap<(&'static str, &'static str), usize> =
            std::collections::BTreeMap::new();
        for s in &spans {
            *counts.entry((name_of(s.parent), s.name)).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|((parent, name), count)| (parent, name, count))
            .collect()
    }

    /// Summarizes everything recorded so far into a [`FrameTelemetry`]
    /// report (does not drain spans or metrics; device launches are
    /// synced into the retained list).
    pub fn frame_telemetry(&self) -> FrameTelemetry {
        let spans = self.snapshot_spans();
        let launches = self.snapshot_gpu_launches();

        // Per-stage duration summaries, stage = span name.
        let mut by_name: std::collections::BTreeMap<&'static str, Vec<f64>> =
            std::collections::BTreeMap::new();
        for s in &spans {
            by_name
                .entry(s.name)
                .or_default()
                .push(s.duration_us() as f64);
        }
        let stages = by_name
            .into_iter()
            .map(|(name, mut durs)| {
                durs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                StageStats {
                    name,
                    count: durs.len(),
                    p50_us: metrics::percentile(&durs, 50.0) as u64,
                    p99_us: metrics::percentile(&durs, 99.0) as u64,
                    total_us: durs.iter().sum::<f64>() as u64,
                }
            })
            .collect();

        FrameTelemetry {
            spans_recorded: spans.len(),
            spans_dropped: self.dropped_spans(),
            stages,
            gpu_launches: launches.len(),
            lane_events: launches.iter().map(|l| l.lane_events.len()).sum(),
            lane_events_dropped: launches.last().map_or(0, |l| l.events_dropped),
            counters: self
                .metrics
                .counters()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            gauges: self
                .metrics
                .gauges()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            histograms: self
                .metrics
                .histograms()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        }
    }
}

/// Per-stage wall-clock summary (one span name = one stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage (span) name.
    pub name: &'static str,
    /// Spans recorded under this name.
    pub count: usize,
    /// Nearest-rank p50 duration, microseconds.
    pub p50_us: u64,
    /// Nearest-rank p99 duration, microseconds.
    pub p99_us: u64,
    /// Total time in this stage, microseconds.
    pub total_us: u64,
}

/// The telemetry section of a `ThroughputReport`: everything the sink
/// aggregated over a frame run, ready for human-readable printing or
/// structured comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrameTelemetry {
    /// Spans recorded (post-drop).
    pub spans_recorded: usize,
    /// Spans dropped at the retention bound.
    pub spans_dropped: u64,
    /// Per-stage duration summaries, stage-name order.
    pub stages: Vec<StageStats>,
    /// Device launches traced.
    pub gpu_launches: usize,
    /// Per-lane events captured across all launches.
    pub lane_events: usize,
    /// Ring-overflow drops observed at the last drain.
    pub lane_events_dropped: u64,
    /// Counters, name order.
    pub counters: Vec<(String, u64)>,
    /// Gauges, name order.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, name order.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl FrameTelemetry {
    /// Renders the report as a human-readable table (the bench's
    /// `--metrics` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry: {} spans ({} dropped), {} gpu launches, {} lane events",
            self.spans_recorded, self.spans_dropped, self.gpu_launches, self.lane_events
        );
        let _ = writeln!(
            out,
            "  {:<18} {:>7} {:>10} {:>10} {:>12}",
            "stage", "count", "p50_us", "p99_us", "total_us"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<18} {:>7} {:>10} {:>10} {:>12}",
                s.name, s.count, s.p50_us, s.p99_us, s.total_us
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for (n, v) in &self.counters {
                let _ = writeln!(out, "    {n:<28} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  gauges:");
            for (n, v) in &self.gauges {
                let _ = writeln!(out, "    {n:<28} {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "  histograms:");
            for (n, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {n:<28} n={} p50={:.3} p99={:.3} mean={:.3} max={:.3}",
                    h.count, h.p50, h.p99, h.mean, h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_telemetry_summarizes_stages_and_metrics() {
        let t = Telemetry::new();
        for _ in 0..3 {
            let _f = t.span("frame");
            let _r = t.span("render");
        }
        t.metrics().counter_add("frames.rendered", 3);
        t.metrics().gauge_set("arena.pooled", 2.0);
        t.metrics().observe("frame.wall_ms", 1.25);

        let ft = t.frame_telemetry();
        assert_eq!(ft.spans_recorded, 6);
        assert_eq!(ft.spans_dropped, 0);
        let frame = ft.stages.iter().find(|s| s.name == "frame").unwrap();
        assert_eq!(frame.count, 3);
        assert_eq!(ft.counters, vec![("frames.rendered".to_string(), 3)]);
        assert_eq!(ft.gauges, vec![("arena.pooled".to_string(), 2.0)]);
        assert_eq!(ft.histograms.len(), 1);
        let rendered = ft.render();
        assert!(rendered.contains("frame"));
        assert!(rendered.contains("frames.rendered"));
    }

    #[test]
    fn span_tree_signature_is_structural() {
        let build = || {
            let t = Telemetry::new();
            {
                let _a = t.span("frame");
                let _b = t.span("render");
            }
            {
                let _a = t.span("frame");
                let _b = t.span("render");
            }
            t.span_tree_signature()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same structure, same signature");
        assert!(a.contains(&("", "frame", 2)));
        assert!(a.contains(&("frame", "render", 2)));
    }
}
