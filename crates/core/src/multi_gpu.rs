//! Multi-GPU scaling — the paper's stated future work (§V: "Our future
//! work will focus on scaling our simulators to multiple GPUs").
//!
//! Stars partition cleanly (round-robin) across devices because the
//! intensity model is a pure scatter-add: each device renders its share of
//! stars into its own image copy, and the host merges the partial images by
//! pixel-wise addition. Each device pays its own transfers; the kernel
//! phase is perfectly parallel, so the modeled device time is the maximum
//! across devices, plus a host-side merge.

use std::time::Instant;

use gpusim::{AppProfile, VirtualGpu};
use starfield::StarCatalog;
use starimage::ImageF32;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::parallel::ParallelSimulator;
use crate::report::SimulationReport;
use crate::Simulator;

/// A parallel simulator sharded over `n` virtual GPUs.
pub struct MultiGpuSimulator {
    shards: Vec<ParallelSimulator>,
}

impl MultiGpuSimulator {
    /// `n` GTX480 devices.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one device");
        MultiGpuSimulator {
            shards: (0..n)
                .map(|_| ParallelSimulator::on(VirtualGpu::gtx480()))
                .collect(),
        }
    }

    /// Device count.
    pub fn devices(&self) -> usize {
        self.shards.len()
    }
}

impl Simulator for MultiGpuSimulator {
    fn name(&self) -> &'static str {
        "multi-gpu"
    }

    fn simulate(
        &self,
        catalog: &StarCatalog,
        config: &SimConfig,
    ) -> Result<SimulationReport, SimError> {
        config.validate()?;
        let wall_start = Instant::now();
        let n = self.shards.len();

        // Round-robin star partition.
        let mut parts: Vec<StarCatalog> = vec![StarCatalog::new(); n];
        for (i, s) in catalog.stars().iter().enumerate() {
            parts[i % n].push(*s);
        }

        let mut reports = Vec::with_capacity(n);
        for (shard, part) in self.shards.iter().zip(&parts) {
            reports.push(shard.simulate(part, config)?);
        }

        // Host merge of the partial images. The merge is really performed;
        // its time charge is modeled per pixel-add (≈1 ns on the reference
        // host) so reported app times are deterministic across hosts and
        // build profiles, like every other modeled component.
        const MERGE_S_PER_PIXEL_ADD: f64 = 1e-9;
        let mut image = ImageF32::new(config.width, config.height);
        for r in &reports {
            for (dst, src) in image.data_mut().iter_mut().zip(r.image.data()) {
                *dst += src;
            }
        }
        let merge_time = (n - 1).max(1) as f64 * config.pixels() as f64 * MERGE_S_PER_PIXEL_ADD;

        // Devices run concurrently: modeled app time is the slowest shard
        // plus the merge.
        let slowest = reports.iter().map(|r| r.app_time_s).fold(0.0f64, f64::max);
        let mut profile = AppProfile::new();
        for r in reports {
            for k in r.profile.kernels {
                profile.kernels.push(k);
            }
            for o in r.profile.overheads {
                profile.overheads.push(o);
            }
        }
        profile.push_overhead("multi-gpu image merge", merge_time);

        Ok(SimulationReport {
            simulator: self.name(),
            image,
            profile,
            app_time_s: slowest + merge_time,
            wall_time_s: wall_start.elapsed().as_secs_f64(),
            stars: catalog.len(),
            roi_side: config.roi_side,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSimulator;
    use starfield::FieldGenerator;
    use starimage::diff::images_close;

    fn cfg() -> SimConfig {
        SimConfig::new(64, 64, 10)
    }

    #[test]
    fn merged_image_matches_sequential() {
        let cat = FieldGenerator::new(64, 64).generate(120, 5);
        let seq = SequentialSimulator::new().simulate(&cat, &cfg()).unwrap();
        for n in [1, 2, 4] {
            let mg = MultiGpuSimulator::new(n).simulate(&cat, &cfg()).unwrap();
            assert!(
                images_close(&seq.image, &mg.image, 1e-5, 1e-4),
                "{n}-device merge must reproduce the sequential image"
            );
        }
    }

    #[test]
    fn kernel_time_scales_down_with_devices() {
        let cat = FieldGenerator::new(64, 64).generate(3000, 5);
        let one = MultiGpuSimulator::new(1).simulate(&cat, &cfg()).unwrap();
        let four = MultiGpuSimulator::new(4).simulate(&cat, &cfg()).unwrap();
        // Per-device kernel *work* (time minus the fixed launch overhead,
        // which does not shrink with sharding) should drop ~4× on the
        // slowest shard; the app-time advantage is smaller because
        // transfers replicate.
        let overhead = gpusim::CostModel::fermi().launch_overhead_s;
        let work = |r: &SimulationReport| {
            r.profile
                .kernels
                .iter()
                .map(|k| k.time_s - overhead)
                .fold(0.0, f64::max)
        };
        let one_work = work(&one);
        let four_work = work(&four);
        assert!(
            four_work < one_work / 2.0,
            "4-device slowest kernel work {four_work} vs single {one_work}"
        );
    }

    #[test]
    fn uneven_partitions_still_complete() {
        let cat = FieldGenerator::new(64, 64).generate(7, 2);
        let mg = MultiGpuSimulator::new(4).simulate(&cat, &cfg()).unwrap();
        assert_eq!(mg.stars, 7);
        assert_eq!(mg.profile.kernels.len(), 4);
    }

    #[test]
    fn devices_accessor() {
        assert_eq!(MultiGpuSimulator::new(3).devices(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = MultiGpuSimulator::new(0);
    }
}
