//! Simulation configuration shared by all simulators.

use gpusim::{ExecMode, KernelBackend};
use psf::integrated::PsfModel;
use psf::roi::Roi;
use psf::IntensityModel;

use crate::error::SimError;

/// Which PSF evaluation the simulators use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PsfKind {
    /// The paper's point-sampled Gaussian (eq. 2).
    Point,
    /// Pixel-integrated Gaussian (extension; see `psf::integrated`).
    Integrated,
    /// Motion-smeared Gaussian for slewing sensors (extension; see
    /// `psf::smear`). Remember to enlarge `roi_side` to cover the streak.
    Smeared {
        /// Streak length in pixels.
        length: f32,
        /// Streak direction, radians from +x.
        angle: f32,
    },
    /// Moffat profile with heavy wings, FWHM-matched to the configured
    /// sigma (extension; see `psf::moffat`).
    Moffat {
        /// Wing exponent β (> 1; smaller = heavier wings).
        beta: f32,
    },
}

/// Configuration of one star-image simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Image width, pixels.
    pub width: usize,
    /// Image height, pixels.
    pub height: usize,
    /// ROI side length, pixels (= thread-block side on the GPU).
    pub roi_side: usize,
    /// Gaussian PSF standard deviation δ, pixels.
    pub sigma: f32,
    /// Brightness proportionality factor `A` (paper eq. 1).
    pub a_factor: f32,
    /// Magnitude range `[min, max]` the simulator is rated for — fixes the
    /// adaptive simulator's lookup-table extent (paper §III-C).
    pub mag_range: (f32, f32),
    /// Magnitude bins of the adaptive lookup table.
    pub lut_mag_bins: usize,
    /// Sub-pixel phase bins per axis of the lookup table (1 = paper).
    pub lut_phases: usize,
    /// PSF evaluation model.
    pub psf: PsfKind,
    /// Virtual-GPU executor strategy for the kernels this config launches.
    /// Both modes yield identical counters and modeled times; `Batched` is
    /// the fast default, `Reference` the per-thread ground truth.
    pub exec_mode: ExecMode,
    /// Arithmetic backend for the batched executors' interior fast paths.
    /// `Scalar` (default) is the accuracy baseline; `Simd` evaluates the
    /// PSF with lane-oriented polynomial kernels. Counters and modeled
    /// times are bit-equal across backends; only pixel values may differ,
    /// within the documented tolerance (see `psf::lanes`).
    pub backend: KernelBackend,
    /// Host worker threads for the executor (`None` = one per host core).
    /// Functional parallelism only — no effect on counters or modeled
    /// times. The device clamps values beyond its SM count with a warning.
    pub workers: Option<usize>,
    /// Run the static kernel analyzer (`gpusim::analyze`) at session
    /// setup: the pre-launch advisor vets the production kernel once —
    /// deny-level findings reject the session, predictions land in the
    /// metrics registry as gauges. Off by default; the frame hot path is
    /// never touched either way.
    pub analyze: bool,
}

impl Default for SimConfig {
    /// The paper's benchmark setup: 1024×1024 image, ROI 10, σ=2,
    /// magnitudes 0–15.
    fn default() -> Self {
        SimConfig {
            width: 1024,
            height: 1024,
            roi_side: 10,
            sigma: 2.0,
            a_factor: 1000.0,
            mag_range: (0.0, 15.0),
            // 128 bins over 15 magnitudes: the fixed-length brightness
            // array of §III-C at ~0.12-mag resolution. Build time and
            // upload size at this resolution reproduce the paper's Table I
            // non-kernel profile.
            lut_mag_bins: 128,
            lut_phases: 1,
            psf: PsfKind::Point,
            exec_mode: ExecMode::default(),
            backend: KernelBackend::default(),
            workers: None,
            analyze: false,
        }
    }
}

impl SimConfig {
    /// A config with the given image size and ROI side, defaults elsewhere.
    pub fn new(width: usize, height: usize, roi_side: usize) -> Self {
        SimConfig {
            width,
            height,
            roi_side,
            ..SimConfig::default()
        }
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.width == 0 || self.height == 0 {
            return Err(SimError::InvalidConfig(format!(
                "image must be non-empty, got {}x{}",
                self.width, self.height
            )));
        }
        if self.roi_side == 0 {
            return Err(SimError::InvalidConfig("ROI side must be positive".into()));
        }
        if !(self.sigma.is_finite() && self.sigma > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "sigma must be positive, got {}",
                self.sigma
            )));
        }
        if !(self.a_factor.is_finite() && self.a_factor > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "A factor must be positive, got {}",
                self.a_factor
            )));
        }
        if !(self.mag_range.0.is_finite() && self.mag_range.1.is_finite()) {
            return Err(SimError::InvalidConfig(format!(
                "magnitude range must be finite, got [{}, {}]",
                self.mag_range.0, self.mag_range.1
            )));
        }
        if self.mag_range.1 <= self.mag_range.0 {
            return Err(SimError::InvalidConfig(format!(
                "magnitude range must be non-empty: [{}, {}]",
                self.mag_range.0, self.mag_range.1
            )));
        }
        if self.mag_range.0 < 0.0 || self.mag_range.1 > 15.0 {
            return Err(SimError::InvalidConfig(format!(
                "magnitude range [{}, {}] exceeds the rated [0, 15] — the \
                 lookup table and brightness model are calibrated for the \
                 paper's magnitude scale; clamp the catalog or narrow the range",
                self.mag_range.0, self.mag_range.1
            )));
        }
        if self.lut_mag_bins == 0 || self.lut_phases == 0 {
            return Err(SimError::InvalidConfig(
                "lookup table needs ≥1 magnitude bin and ≥1 phase".into(),
            ));
        }
        if self.workers == Some(0) {
            return Err(SimError::InvalidConfig(
                "worker count must be positive (or None for auto)".into(),
            ));
        }
        Ok(())
    }

    /// Pixel count of the image.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// The [`IntensityModel`] this config describes.
    pub fn intensity_model(&self) -> IntensityModel {
        IntensityModel {
            a_factor: self.a_factor,
            psf: self.psf_model(),
            roi: Roi::new(self.roi_side),
        }
    }

    /// The PSF model this config describes.
    pub fn psf_model(&self) -> PsfModel {
        match self.psf {
            PsfKind::Point => PsfModel::point(self.sigma),
            PsfKind::Integrated => PsfModel::integrated(self.sigma),
            PsfKind::Smeared { length, angle } => PsfModel::smeared(self.sigma, length, angle),
            PsfKind::Moffat { beta } => PsfModel::moffat(self.sigma, beta),
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutate-one-field test style
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_benchmarks() {
        let c = SimConfig::default();
        assert_eq!((c.width, c.height), (1024, 1024));
        assert_eq!(c.roi_side, 10);
        assert_eq!(c.mag_range, (0.0, 15.0));
        assert!(c.validate().is_ok());
        assert_eq!(c.pixels(), 1 << 20);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = SimConfig::default();
        c.width = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.roi_side = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.sigma = -1.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.a_factor = f32::NAN;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.mag_range = (5.0, 5.0);
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.lut_mag_bins = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.mag_range = (f32::NAN, f32::NAN);
        assert!(c.validate().is_err(), "NaN range must not slip through");
        let mut c = SimConfig::default();
        c.mag_range = (-1.0, 10.0);
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.mag_range = (0.0, 16.0);
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("[0, 15]"), "actionable message, got: {msg}");
        let mut c = SimConfig::default();
        c.sigma = f32::NAN;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.workers = Some(0);
        assert!(c.validate().is_err());
        c.workers = Some(4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn intensity_model_reflects_config() {
        let c = SimConfig::new(512, 256, 8);
        let m = c.intensity_model();
        assert_eq!(m.roi.side(), 8);
        assert_eq!(m.a_factor, 1000.0);
        assert_eq!(m.psf.sigma(), 2.0);
    }

    #[test]
    fn exec_mode_defaults_to_batched() {
        assert_eq!(SimConfig::default().exec_mode, ExecMode::Batched);
        let mut c = SimConfig::default();
        c.exec_mode = ExecMode::Reference;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn backend_defaults_to_scalar() {
        assert_eq!(SimConfig::default().backend, KernelBackend::Scalar);
        let mut c = SimConfig::default();
        c.backend = KernelBackend::Simd;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn integrated_psf_selectable() {
        let mut c = SimConfig::default();
        c.psf = PsfKind::Integrated;
        assert!(matches!(
            c.psf_model(),
            psf::integrated::PsfModel::Integrated(_)
        ));
    }
}
