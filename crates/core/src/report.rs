//! The result record every simulator returns.

use gpusim::AppProfile;
use starimage::ImageF32;

/// The outcome of one simulation run: the image plus the timing story.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Which simulator produced this (`"sequential"`, `"parallel"`,
    /// `"adaptive"`, ...).
    pub simulator: &'static str,
    /// The rendered intensity image.
    pub image: ImageF32,
    /// Kernel/non-kernel decomposition. For the sequential simulator the
    /// "kernels" list is empty and stages appear as overhead items.
    pub profile: AppProfile,
    /// The simulator's reported application time, seconds. Measured wall
    /// time for CPU simulators; modeled device time for GPU simulators.
    pub app_time_s: f64,
    /// Host wall-clock time the run actually took on this machine, seconds.
    pub wall_time_s: f64,
    /// Stars simulated.
    pub stars: usize,
    /// ROI side used.
    pub roi_side: usize,
}

impl SimulationReport {
    /// Total modeled kernel time, seconds (zero for CPU simulators).
    pub fn kernel_time_s(&self) -> f64 {
        self.profile.kernel_time()
    }

    /// Total non-kernel time, seconds.
    pub fn non_kernel_time_s(&self) -> f64 {
        self.profile.non_kernel_time()
    }

    /// Achieved GFLOPS over all kernels (paper Table II's metric).
    /// Zero when no kernel ran.
    pub fn gflops(&self) -> f64 {
        let t = self.kernel_time_s();
        if t <= 0.0 {
            return 0.0;
        }
        self.profile.total_counters().total_flops() as f64 / t / 1e9
    }

    /// Speedup of this run relative to a baseline application time.
    pub fn speedup_vs(&self, baseline_app_time_s: f64) -> f64 {
        baseline_app_time_s / self.app_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::Counters;

    fn report(app: f64) -> SimulationReport {
        SimulationReport {
            simulator: "test",
            image: ImageF32::new(2, 2),
            profile: AppProfile::new(),
            app_time_s: app,
            wall_time_s: app * 2.0,
            stars: 10,
            roi_side: 10,
        }
    }

    #[test]
    fn speedup_is_ratio_of_app_times() {
        let r = report(0.01);
        assert!((r.speedup_vs(1.0) - 100.0).abs() < 1e-9);
        assert!((r.speedup_vs(0.005) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gflops_zero_without_kernels() {
        assert_eq!(report(1.0).gflops(), 0.0);
    }

    #[test]
    fn gflops_uses_kernel_time() {
        let mut r = report(1.0);
        r.profile.kernels.push(gpusim::KernelProfile {
            name: "k".into(),
            time_s: 0.5,
            cycles: Default::default(),
            counters: Counters {
                flops_add: 1_000_000_000,
                ..Default::default()
            },
            occupancy: gpusim::Occupancy {
                blocks_per_sm: 1,
                warps_per_sm: 1,
                fraction: 1.0,
                active_sms: 1,
                effective_warps: 1.0,
            },
        });
        assert!((r.gflops() - 2.0).abs() < 1e-9);
        assert!((r.kernel_time_s() - 0.5).abs() < 1e-12);
    }
}
