//! ROI-overlap and atomic-contention analysis.
//!
//! The paper's §III-B justifies the star-centric design's atomics with a
//! density argument: "the overhead on atomic operation can be relieved
//! because the possibility of ROI overlaying is relatively low, considering
//! that stars in the image are generally scattered". This module makes that
//! argument checkable for *any* field: it computes the per-pixel ROI
//! multiplicity map (how many stars' ROIs cover each pixel) and derives the
//! atomic-serialization exposure from it.

use psf::roi::Roi;
use starfield::StarCatalog;

use crate::config::SimConfig;

/// The overlap profile of a star field under a given ROI.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapProfile {
    /// Per-pixel ROI multiplicity (how many stars cover each pixel),
    /// row-major `width × height`.
    pub multiplicity: Vec<u32>,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Total in-bounds ROI pixel deposits (= atomic adds issued).
    pub total_deposits: u64,
    /// Deposits that landed on a pixel some other star also writes —
    /// the adds exposed to cross-block atomic serialization.
    pub contended_deposits: u64,
    /// Maximum multiplicity over the image.
    pub max_multiplicity: u32,
}

impl OverlapProfile {
    /// Fraction of atomic adds exposed to contention, in `[0, 1]`.
    pub fn contention_rate(&self) -> f64 {
        if self.total_deposits == 0 {
            0.0
        } else {
            self.contended_deposits as f64 / self.total_deposits as f64
        }
    }

    /// Pixels covered by at least one ROI.
    pub fn covered_pixels(&self) -> usize {
        self.multiplicity.iter().filter(|&&m| m > 0).count()
    }

    /// Pixels covered by at least two ROIs (the overlapped region of
    /// paper Fig. 3a).
    pub fn overlapped_pixels(&self) -> usize {
        self.multiplicity.iter().filter(|&&m| m > 1).count()
    }

    /// Histogram of multiplicities `0 ..= max` (index = multiplicity).
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_multiplicity as usize + 1];
        for &m in &self.multiplicity {
            h[m as usize] += 1;
        }
        h
    }
}

/// Computes the overlap profile of `catalog` under `config`'s ROI.
pub fn analyze(catalog: &StarCatalog, config: &SimConfig) -> OverlapProfile {
    let roi = Roi::new(config.roi_side);
    let (w, h) = (config.width, config.height);
    let mut multiplicity = vec![0u32; w * h];
    for star in catalog.stars() {
        if let Some(clip) = roi.clip(star.pos.x, star.pos.y, w, h) {
            for (x, y, _, _) in clip.pixels() {
                multiplicity[y * w + x] += 1;
            }
        }
    }
    let mut total = 0u64;
    let mut contended = 0u64;
    let mut max_mult = 0u32;
    for &m in &multiplicity {
        total += m as u64;
        if m > 1 {
            contended += m as u64;
        }
        max_mult = max_mult.max(m);
    }
    OverlapProfile {
        multiplicity,
        width: w,
        height: h,
        total_deposits: total,
        contended_deposits: contended,
        max_multiplicity: max_mult,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfield::{FieldGenerator, PositionModel, Star};

    fn cfg() -> SimConfig {
        SimConfig::new(128, 128, 10)
    }

    #[test]
    fn empty_field_has_no_contention() {
        let p = analyze(&StarCatalog::new(), &cfg());
        assert_eq!(p.total_deposits, 0);
        assert_eq!(p.contention_rate(), 0.0);
        assert_eq!(p.covered_pixels(), 0);
        assert_eq!(p.max_multiplicity, 0);
        assert_eq!(p.histogram(), vec![128 * 128]);
    }

    #[test]
    fn single_interior_star_covers_exactly_one_roi() {
        let cat = StarCatalog::from_stars(vec![Star::new(64.0, 64.0, 3.0)]);
        let p = analyze(&cat, &cfg());
        assert_eq!(p.total_deposits, 100);
        assert_eq!(p.covered_pixels(), 100);
        assert_eq!(p.overlapped_pixels(), 0);
        assert_eq!(p.max_multiplicity, 1);
        assert_eq!(p.contention_rate(), 0.0);
    }

    #[test]
    fn coincident_stars_fully_contend() {
        let cat =
            StarCatalog::from_stars(vec![Star::new(64.0, 64.0, 3.0), Star::new(64.0, 64.0, 5.0)]);
        let p = analyze(&cat, &cfg());
        assert_eq!(p.max_multiplicity, 2);
        assert_eq!(p.contention_rate(), 1.0);
        assert_eq!(p.overlapped_pixels(), 100);
        let h = p.histogram();
        assert_eq!(h[2], 100);
    }

    #[test]
    fn disjoint_stars_do_not_contend() {
        let cat = StarCatalog::from_stars(vec![
            Star::new(20.0, 20.0, 3.0),
            Star::new(100.0, 100.0, 3.0),
        ]);
        let p = analyze(&cat, &cfg());
        assert_eq!(p.contention_rate(), 0.0);
        assert_eq!(p.total_deposits, 200);
    }

    #[test]
    fn partial_overlap_counts_shared_pixels() {
        // Stars 5 apart with ROI 10 (origins differ by 5): 5×10 shared.
        let cat =
            StarCatalog::from_stars(vec![Star::new(60.0, 60.0, 3.0), Star::new(65.0, 60.0, 3.0)]);
        let p = analyze(&cat, &cfg());
        assert_eq!(p.overlapped_pixels(), 50);
        assert_eq!(p.contended_deposits, 100); // 50 px × 2 writers
        assert!((p.contention_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scattered_fields_have_low_contention_clustered_high() {
        // The paper's density argument, quantified.
        let uniform = FieldGenerator::new(128, 128).generate(60, 5);
        let clustered = FieldGenerator::new(128, 128)
            .positions(PositionModel::Clustered {
                clusters: 2,
                sigma_px: 6.0,
            })
            .generate(60, 5);
        let pu = analyze(&uniform, &cfg());
        let pc = analyze(&clustered, &cfg());
        assert!(
            pc.contention_rate() > 2.0 * pu.contention_rate(),
            "clustered {:.3} should far exceed uniform {:.3}",
            pc.contention_rate(),
            pu.contention_rate()
        );
        assert!(pc.max_multiplicity > pu.max_multiplicity);
    }

    #[test]
    fn edge_stars_clip_their_deposits() {
        let cat = StarCatalog::from_stars(vec![Star::new(0.0, 0.0, 3.0)]);
        let p = analyze(&cat, &cfg());
        assert_eq!(p.total_deposits, 25); // 5×5 corner clip
    }

    #[test]
    fn histogram_sums_to_image_area() {
        let cat = FieldGenerator::new(128, 128).generate(100, 9);
        let p = analyze(&cat, &cfg());
        assert_eq!(p.histogram().iter().sum::<usize>(), 128 * 128);
    }
}
