//! `starsimd`: the overload-safe star-image render server.
//!
//! One [`StarServer`] owns a TCP listener, a shared tenant-attributed
//! [`LutCache`], a [`Telemetry`] sink and an [`AdmissionController`];
//! each accepted connection gets a handler thread speaking the
//! [`crate::protocol`] frame format. The robustness contract:
//!
//! * **Admission before work.** Every open/render request must win a
//!   bounded [`Permit`] first; at capacity the server answers
//!   `Reject{saturated, retry_after_ms}` immediately instead of queueing
//!   unboundedly or timing the client out.
//! * **Deadline budgets.** A render's `deadline_ms` becomes a
//!   [`CancelToken::with_budget`] threaded through
//!   [`FrameSequencer::run_frames_pipelined_observed`]; an expiring
//!   budget cancels in-flight frames, which drain deterministically, and
//!   the burst stays bit-identically resumable.
//! * **Graceful shedding.** The admission controller's hysteresis ladder
//!   ([`ShedLevel`]) sheds telemetry detail first, then monitoring
//!   resolution, then falls back to the star-centric kernel
//!   ([`Rung::DirectPsf`]) — requests are rejected only once everything
//!   cheaper has been shed.
//! * **Panic isolation.** Request handling runs under `catch_unwind`; a
//!   client-triggered panic discards that client's session and answers
//!   `Reject{internal}` — the acceptor and every other session keep
//!   running. All server-side locks are poison-tolerant.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gpusim::telemetry::now_us;
use gpusim::{DeviceSpec, DeviceUtilization, GpuDiagnostics, UtilizationSink, VirtualGpu};
use starfield::dynamics::AttitudeDynamics;
use starfield::generator::synthetic_sky;
use starfield::projection::Camera;
use starfield::Attitude;

use crate::admission::{AdmissionConfig, AdmissionController, Permit, ShedLevel};
use crate::error::SimError;
use crate::frames::FrameSequencer;
use crate::obsplane::{FlightEntry, ObsPlane, DEFAULT_SAMPLE_PERIOD_US};
use crate::protocol::{
    read_message, write_message, Message, MonitorReply, ProtoError, RejectCode, RenderDone,
    SessionSpec, SloState, MAX_FRAMES_PER_REQUEST, PROTOCOL_VERSION,
};
use crate::resilience::{CancelToken, Rung};
use crate::session::{AdaptiveSession, LutCache};
use crate::telemetry::Telemetry;

/// FNV-1a offset basis — the seed of every session's cumulative digest.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a running hash. Servers fold every rendered
/// frame's pixel bits into the session digest; a deadline-split burst
/// sequence ends on the same digest as an uninterrupted one iff the
/// frames are bit-identical.
pub fn digest_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Server tuning knobs. The defaults are sized for tests and the bench
/// loadgen: small admission window, one shared cache, gentle drift scene.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission gate parameters (queue capacity, retry-after hint, shed
    /// hysteresis thresholds).
    pub admission: AdmissionConfig,
    /// Sessions one connection may hold open at once.
    pub max_sessions_per_conn: usize,
    /// Shared [`LutCache`] capacity, tables.
    pub lut_capacity: usize,
    /// Per-tenant cache quota, tables; `None` disables quotas.
    pub tenant_quota: Option<usize>,
    /// Exposure time per rendered frame, seconds.
    pub exposure_s: f64,
    /// Frame period, seconds.
    pub frame_dt: f64,
    /// Read-poll granularity on connection sockets — bounds how long a
    /// handler thread takes to notice a shutdown, seconds.
    pub poll_interval: Duration,
    /// Fault-injection hook for tests: opening a session for this tenant
    /// panics inside the request handler, exercising the `catch_unwind`
    /// isolation path. `None` in production.
    pub panic_tenant: Option<String>,
    /// Device fault plan attached to every session's virtual GPU — the
    /// PR 3 chaos matrix runs through the server path with this. `None`
    /// in production.
    pub fault_plan: Option<Arc<gpusim::FaultPlan>>,
    /// Watchdog budget attached to every session's device (pairs with
    /// stalling fault plans). `None` leaves the device default.
    pub watchdog: Option<Duration>,
    /// Retry policy for every session's render ladder; faults injected by
    /// `fault_plan` retry/degrade through it exactly as in-process frame
    /// loops do.
    pub retry: Option<crate::resilience::RetryPolicy>,
    /// Directory the flight recorder dumps post-mortems into. `None`
    /// counts dump triggers without writing files.
    pub flight_dir: Option<PathBuf>,
    /// Minimum microseconds between observability-plane ring samples.
    pub sample_period_us: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission: AdmissionConfig::default(),
            max_sessions_per_conn: 8,
            lut_capacity: 8,
            tenant_quota: Some(4),
            exposure_s: 0.05,
            frame_dt: 0.1,
            poll_interval: Duration::from_millis(25),
            panic_tenant: None,
            fault_plan: None,
            watchdog: None,
            retry: None,
            flight_dir: None,
            sample_period_us: DEFAULT_SAMPLE_PERIOD_US,
        }
    }
}

/// State shared by the acceptor and every connection handler.
struct Shared {
    config: ServerConfig,
    admission: AdmissionController,
    cache: Arc<LutCache>,
    telemetry: Arc<Telemetry>,
    draining: AtomicBool,
    stop: AtomicBool,
    sessions_open: AtomicUsize,
    deadline_misses: AtomicU64,
    handler_panics: AtomicU64,
    /// Fleet-aggregated device diagnostics, folded in as per-session
    /// deltas after each render.
    gpu_diags: Mutex<GpuDiagnostics>,
    /// The observability plane: series ring, SLO engine, flight recorder.
    obs: ObsPlane,
    /// Fleet per-device utilization aggregate, shared by every session's
    /// virtual GPU. Its launch count doubles as the request→launch
    /// correlation sequence.
    utilization: Arc<UtilizationSink>,
    /// Server-wide request id, stamped on every inbound message.
    next_request_id: AtomicU64,
    /// Last observed shed level (index); escalations trip a flight dump.
    last_shed: AtomicUsize,
    /// Fleet rung-frame totals, folded in as per-session deltas after
    /// each render — the source of the monitor's rung summary.
    rung_frames: Mutex<[u64; 4]>,
}

/// The `starsimd` server engine. [`StarServer::bind`] starts the acceptor
/// and returns a [`ServerHandle`]; the engine itself is internal.
pub struct StarServer;

impl StarServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), starts
    /// the accept loop on a background thread, and returns a handle.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
        config
            .admission
            .validate()
            .map_err(|m| std::io::Error::new(ErrorKind::InvalidInput, m))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let admission = AdmissionController::new(config.admission);
        let mut cache = LutCache::with_capacity(config.lut_capacity);
        if let Some(quota) = config.tenant_quota {
            cache = cache.with_tenant_quota(quota);
        }
        let obs = ObsPlane::with_sample_period_us(config.sample_period_us);
        obs.recorder().set_dir(config.flight_dir.clone());
        let shared = Arc::new(Shared {
            admission,
            cache: Arc::new(cache),
            telemetry: Telemetry::new(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            sessions_open: AtomicUsize::new(0),
            deadline_misses: AtomicU64::new(0),
            handler_panics: AtomicU64::new(0),
            gpu_diags: Mutex::new(GpuDiagnostics::default()),
            obs,
            utilization: Arc::new(UtilizationSink::new(&DeviceSpec::gtx480())),
            next_request_id: AtomicU64::new(0),
            last_shed: AtomicUsize::new(0),
            rung_frames: Mutex::new([0; 4]),
            config,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("starsimd-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn acceptor");
        Ok(ServerHandle {
            addr: local_addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admission controller — tests saturate it directly by holding
    /// [`Permit`]s to force rejects deterministically.
    pub fn admission(&self) -> &AdmissionController {
        &self.shared.admission
    }

    /// The shared lookup-table cache (per-tenant stats live here).
    pub fn lut_cache(&self) -> &Arc<LutCache> {
        &self.shared.cache
    }

    /// The server's telemetry sink.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// The observability plane (series ring, SLO engine, flight
    /// recorder) — tests and benches read scrape state directly here.
    pub fn obs(&self) -> &ObsPlane {
        &self.shared.obs
    }

    /// A copy of the fleet per-device utilization aggregate.
    pub fn device_utilization(&self) -> DeviceUtilization {
        self.shared.utilization.snapshot()
    }

    /// Request handler panics caught (and isolated) so far.
    pub fn handler_panics(&self) -> u64 {
        self.shared.handler_panics.load(Ordering::Relaxed)
    }

    /// Render bursts that missed their deadline budget so far.
    pub fn deadline_misses(&self) -> u64 {
        self.shared.deadline_misses.load(Ordering::Relaxed)
    }

    /// Sessions currently open across all connections.
    pub fn sessions_open(&self) -> usize {
        self.shared.sessions_open.load(Ordering::Relaxed)
    }

    /// Starts draining: every subsequent open/render is rejected with
    /// [`RejectCode::Draining`] while in-flight work finishes. (Clients
    /// can also request this over the wire with [`Message::Drain`].)
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Stops the acceptor, waits for it to exit, and returns once the
    /// listener is closed. Connection handlers notice within one poll
    /// interval and exit on their own.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let poll = shared.config.poll_interval;
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("starsimd-conn".into())
                    .spawn(move || serve_connection(stream, conn_shared));
                // Out of threads is an overload condition like any other:
                // shed the connection, keep accepting.
                drop(spawned);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// One open session on a connection.
struct SessionState {
    seq: FrameSequencer,
    tenant: String,
    /// Cumulative FNV-1a digest over every frame rendered on this session.
    digest: u64,
    /// Device diagnostics at the last fleet-aggregate fold, for deltas.
    last_diags: GpuDiagnostics,
    /// Rung-frame totals at the last fleet-aggregate fold, for deltas.
    last_rung: [u64; 4],
}

/// Per-connection handler state. Sessions are connection-scoped: ids are
/// meaningless on other connections, and a dropped connection frees them.
struct ConnState {
    sessions: HashMap<u64, SessionState>,
    next_id: u64,
}

fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let mut stream = stream;
    let mut conn = ConnState {
        sessions: HashMap::new(),
        next_id: 1,
    };
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let message = match read_message(&mut stream) {
            Ok(m) => m,
            Err(ProtoError::Io(e))
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                continue; // idle poll tick — check the stop flag and wait on
            }
            Err(ProtoError::Io(_)) => break, // disconnect / EOF mid-frame
            Err(e) => {
                // A framing violation leaves the byte stream unsynchronized:
                // answer once, then close. Crucially the oversized-length
                // case arrives here *without* the payload ever having been
                // allocated or read.
                let code = match e {
                    ProtoError::Version(_) => RejectCode::VersionUnsupported,
                    _ => RejectCode::BadRequest,
                };
                let _ = write_message(
                    &mut stream,
                    &Message::Reject {
                        code,
                        retry_after_ms: 0,
                        message: e.to_string(),
                    },
                );
                break;
            }
        };
        // The session a panic would poison, extracted before the handler
        // runs so the catch_unwind arm knows what to discard.
        let touched = match &message {
            Message::Render { session, .. } | Message::CloseSession { session } => Some(*session),
            Message::OpenSession(_) => None,
            _ => None,
        };
        let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
        let reply = match catch_unwind(AssertUnwindSafe(|| {
            handle_message(message, request_id, &mut conn, &shared)
        })) {
            Ok(reply) => reply,
            Err(_) => {
                shared.handler_panics.fetch_add(1, Ordering::Relaxed);
                shared
                    .telemetry
                    .metrics()
                    .counter_add("server.handler_panics", 1);
                if let Some(id) = touched {
                    if conn.sessions.remove(&id).is_some() {
                        shared.sessions_open.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                shared.obs.recorder().record(FlightEntry {
                    t_us: now_us(),
                    request_id,
                    session: touched.unwrap_or(0),
                    tenant: String::new(),
                    kind: "panic",
                    frames: 0,
                    launch_range: (0, 0),
                    detail: "request handler panicked; session discarded".into(),
                });
                let _ = shared
                    .obs
                    .recorder()
                    .dump("handler panic", Some(&shared.telemetry));
                Message::Reject {
                    code: RejectCode::Internal,
                    retry_after_ms: 0,
                    message: "request handler panicked; the session it touched is discarded".into(),
                }
            }
        };
        if write_message(&mut stream, &reply).is_err() {
            break;
        }
    }
    let dropped = conn.sessions.len();
    if dropped > 0 {
        shared.sessions_open.fetch_sub(dropped, Ordering::Relaxed);
    }
}

fn handle_message(
    message: Message,
    request_id: u64,
    conn: &mut ConnState,
    shared: &Shared,
) -> Message {
    shared.telemetry.metrics().counter_add("server.requests", 1);
    // Pull-through sampling: any request traffic keeps the series ring
    // fresh (one atomic load unless the sample period elapsed).
    shared.obs.maybe_sample(shared.telemetry.metrics());
    match message {
        Message::Hello { version } => {
            if version == PROTOCOL_VERSION {
                Message::HelloAck {
                    version: PROTOCOL_VERSION,
                }
            } else {
                reject(
                    shared,
                    RejectCode::VersionUnsupported,
                    0,
                    format!("server speaks protocol version {PROTOCOL_VERSION}, not {version}"),
                )
            }
        }
        Message::OpenSession(spec) => handle_open(spec, request_id, conn, shared),
        Message::Render {
            session,
            frames,
            deadline_ms,
        } => handle_render(session, frames, deadline_ms, request_id, conn, shared),
        Message::Monitor => Message::MonitorReply(monitor_snapshot(conn, shared)),
        Message::Metrics => {
            let stats = shared.admission.stats();
            shared
                .obs
                .sync_admission(shared.telemetry.metrics(), stats.admitted, stats.rejected);
            let (snapshots, exposition) = shared
                .obs
                .scrape(shared.telemetry.metrics(), &scrape_labels(shared));
            Message::MetricsReply {
                snapshots,
                exposition,
            }
        }
        Message::Alerts => {
            let stats = shared.admission.stats();
            shared
                .obs
                .sync_admission(shared.telemetry.metrics(), stats.admitted, stats.rejected);
            let (state, body) = shared.obs.alerts(shared.telemetry.metrics());
            Message::AlertsReply { state, body }
        }
        Message::Drain => {
            shared.draining.store(true, Ordering::Release);
            // Ack once in-flight work drains (bounded wait — an ack with
            // nonzero pending means somebody is still rendering).
            let deadline = Instant::now() + Duration::from_secs(5);
            while shared.admission.depth() > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            Message::DrainAck {
                pending: shared.admission.depth() as u32,
            }
        }
        Message::CloseSession { session } => {
            if conn.sessions.remove(&session).is_some() {
                shared.sessions_open.fetch_sub(1, Ordering::Relaxed);
                Message::SessionClosed { session }
            } else {
                reject(
                    shared,
                    RejectCode::UnknownSession,
                    0,
                    format!("no session {session} on this connection"),
                )
            }
        }
        // Server-to-client message types arriving at the server are a
        // protocol violation, but a recoverable one.
        other => reject(
            shared,
            RejectCode::BadRequest,
            0,
            format!("unexpected message at the server: {other:?}"),
        ),
    }
}

fn handle_open(
    spec: SessionSpec,
    request_id: u64,
    conn: &mut ConnState,
    shared: &Shared,
) -> Message {
    if shared.draining.load(Ordering::Acquire) {
        return reject(shared, RejectCode::Draining, 0, "server is draining".into());
    }
    if conn.sessions.len() >= shared.config.max_sessions_per_conn {
        return reject(
            shared,
            RejectCode::SessionLimit,
            0,
            format!("connection already holds {} sessions", conn.sessions.len()),
        );
    }
    let config = match spec.validate() {
        Ok(config) => config,
        Err(e) => return reject(shared, RejectCode::BadRequest, 0, e.to_string()),
    };
    // Opening a session builds (or fetches) a lookup table — real work, so
    // it goes through the admission gate like a render does.
    let _permit = match admit(shared) {
        Ok(permit) => permit,
        Err(message) => return message,
    };
    if let Some(panic_tenant) = &shared.config.panic_tenant {
        assert!(
            *panic_tenant != spec.tenant,
            "fault injection: tenant {panic_tenant} panics its handler"
        );
    }
    let mut gpu = VirtualGpu::gtx480().with_utilization(Arc::clone(&shared.utilization));
    if let Some(plan) = &shared.config.fault_plan {
        gpu = gpu.with_fault_plan(Arc::clone(plan));
    }
    if let Some(watchdog) = shared.config.watchdog {
        gpu = gpu.with_watchdog(watchdog);
    }
    let (session, lut_cache_hit) =
        match AdaptiveSession::on_cached_tenant(gpu, config, &shared.cache, &spec.tenant) {
            Ok(pair) => pair,
            Err(e) => return reject(shared, RejectCode::Internal, 0, e.to_string()),
        };
    // The server's deterministic scene: spec.seed fixes the sky, the
    // camera spans a 10° FOV, and the platform drifts gently enough that
    // the smear PSF stays disengaged (a requirement of on_session).
    let sky = synthetic_sky(spec.stars as usize, 0.0, 6.0, spec.seed);
    let camera = match Camera::from_fov(
        10.0f64.to_radians(),
        spec.width as usize,
        spec.height as usize,
    ) {
        Ok(camera) => camera,
        Err(e) => return reject(shared, RejectCode::BadRequest, 0, e.to_string()),
    };
    let dynamics = AttitudeDynamics::new(Attitude::pointing(1.0, 0.2, 0.0), [5e-4, 0.0, 0.0]);
    let seq = match FrameSequencer::on_session(
        session,
        sky,
        camera,
        dynamics,
        shared.config.exposure_s,
        shared.config.frame_dt,
    ) {
        Ok(seq) => seq,
        Err(e) => return reject(shared, RejectCode::Internal, 0, e.to_string()),
    };
    let seq = match shared.config.retry {
        Some(policy) => seq.with_retry_policy(policy),
        None => seq,
    };
    let id = conn.next_id;
    conn.next_id += 1;
    shared.obs.recorder().record(FlightEntry {
        t_us: now_us(),
        request_id,
        session: id,
        tenant: spec.tenant.clone(),
        kind: "open",
        frames: 0,
        launch_range: (0, 0),
        detail: format!("stars={} lut_cache_hit={lut_cache_hit}", spec.stars),
    });
    let mut state = SessionState {
        seq,
        tenant: spec.tenant,
        digest: DIGEST_SEED,
        last_diags: GpuDiagnostics::default(),
        last_rung: [0; 4],
    };
    apply_shed(observe_shed(shared), &mut state, shared);
    conn.sessions.insert(id, state);
    shared.sessions_open.fetch_add(1, Ordering::Relaxed);
    shared
        .telemetry
        .metrics()
        .counter_add("server.sessions_opened", 1);
    Message::SessionOpen {
        session: id,
        lut_cache_hit,
    }
}

fn handle_render(
    id: u64,
    frames: u32,
    deadline_ms: u32,
    request_id: u64,
    conn: &mut ConnState,
    shared: &Shared,
) -> Message {
    if frames == 0 || frames > MAX_FRAMES_PER_REQUEST {
        return reject(
            shared,
            RejectCode::BadRequest,
            0,
            format!("frames must be 1..={MAX_FRAMES_PER_REQUEST}, got {frames}"),
        );
    }
    if shared.draining.load(Ordering::Acquire) {
        return reject(shared, RejectCode::Draining, 0, "server is draining".into());
    }
    if !conn.sessions.contains_key(&id) {
        return reject(
            shared,
            RejectCode::UnknownSession,
            0,
            format!("no session {id} on this connection"),
        );
    }
    let _permit = match admit(shared) {
        Ok(permit) => permit,
        Err(message) => return message,
    };
    let level = observe_shed(shared);
    let state = conn.sessions.get_mut(&id).expect("checked above");
    apply_shed(level, state, shared);

    let token = if deadline_ms > 0 {
        CancelToken::with_budget(Duration::from_millis(u64::from(deadline_ms)))
    } else {
        CancelToken::new()
    };
    let mut digest = state.digest;
    let mut completed: u32 = 0;
    let mut app_time_us: u64 = 0;
    let launch_first = shared.utilization.launches();
    let start = Instant::now();
    let result = state
        .seq
        .run_frames_pipelined_observed(frames as usize, &token, |frame| {
            for px in frame.pixels {
                digest = digest_fold(digest, &px.to_bits().to_le_bytes());
            }
            completed += 1;
            app_time_us += (frame.timing.app_time_s * 1e6) as u64;
        });
    let wall_us = start.elapsed().as_micros() as u64;
    let launch_range = (launch_first, shared.utilization.launches());
    state.digest = digest;

    // Fold this session's device-diagnostics delta into the fleet total.
    let now_diags = state.seq.session().diagnostics();
    let delta = now_diags.since(&state.last_diags);
    state.last_diags = now_diags;
    lock_tolerant(&shared.gpu_diags).absorb(&delta);

    // Same delta fold for rung frames — the monitor's rung summary.
    let report = state.seq.resilience_report();
    {
        let mut fleet = lock_tolerant(&shared.rung_frames);
        for (i, fleet_rung) in fleet.iter_mut().enumerate() {
            *fleet_rung += report.rung_frames[i].saturating_sub(state.last_rung[i]);
        }
    }
    state.last_rung = report.rung_frames;

    let deadline_missed = match result {
        Ok(_) => false,
        Err(SimError::DeadlineExceeded) | Err(SimError::Cancelled) => {
            shared.deadline_misses.fetch_add(1, Ordering::Relaxed);
            if level < ShedLevel::CoarseMonitoring {
                shared
                    .telemetry
                    .metrics()
                    .counter_add("server.deadline_misses", 1);
            }
            true
        }
        Err(e) => {
            // The burst drained deterministically before erroring; the
            // session stays usable, the request is answered with the error.
            shared.obs.recorder().record(FlightEntry {
                t_us: now_us(),
                request_id,
                session: id,
                tenant: state.tenant.clone(),
                kind: "fault",
                frames: u64::from(completed),
                launch_range,
                detail: e.to_string(),
            });
            let _ = shared
                .obs
                .recorder()
                .dump("internal render fault", Some(&shared.telemetry));
            return reject(shared, RejectCode::Internal, 0, e.to_string());
        }
    };
    if level < ShedLevel::CoarseMonitoring {
        let metrics = shared.telemetry.metrics();
        metrics.observe("server.render_wall_ms", wall_us as f64 / 1e3);
        metrics.counter_add("server.renders", 1);
        metrics.counter_add("server.frames_rendered", u64::from(completed));
    }
    shared.obs.recorder().record(FlightEntry {
        t_us: now_us(),
        request_id,
        session: id,
        tenant: state.tenant.clone(),
        kind: if deadline_missed {
            "deadline-miss"
        } else {
            "render"
        },
        frames: u64::from(completed),
        launch_range,
        detail: format!("requested={frames} wall_us={wall_us} shed={}", level.name()),
    });
    if deadline_missed {
        let _ = shared
            .obs
            .recorder()
            .dump("deadline miss", Some(&shared.telemetry));
    }
    Message::RenderDone(RenderDone {
        session: id,
        requested: frames,
        completed,
        digest,
        app_time_us,
        wall_us,
        shed_level: level.index() as u8,
        deadline_missed,
    })
}

/// Takes an admission permit or builds the saturated-reject reply.
fn admit(shared: &Shared) -> Result<Permit, Message> {
    match shared.admission.try_admit() {
        Ok(permit) => Ok(permit),
        Err(rejected) => {
            observe_shed(shared);
            Err(reject(
                shared,
                RejectCode::Saturated,
                rejected.retry_after_ms as u32,
                format!("admission queue full at depth {}", rejected.depth),
            ))
        }
    }
}

fn reject(shared: &Shared, code: RejectCode, retry_after_ms: u32, message: String) -> Message {
    shared.telemetry.metrics().counter_add(
        match code {
            RejectCode::Saturated => "server.rejects.saturated",
            RejectCode::Draining => "server.rejects.draining",
            RejectCode::BadRequest => "server.rejects.bad_request",
            RejectCode::Internal => "server.rejects.internal",
            RejectCode::VersionUnsupported => "server.rejects.version",
            RejectCode::SessionLimit => "server.rejects.session_limit",
            RejectCode::UnknownSession => "server.rejects.unknown_session",
        },
        1,
    );
    Message::Reject {
        code,
        retry_after_ms,
        message,
    }
}

/// Observes the shed ladder and, on an escalation (the level climbing),
/// records a black-box entry and dumps a post-mortem — the flight
/// recorder captures the ladder's climb even when nobody is scraping.
fn observe_shed(shared: &Shared) -> ShedLevel {
    let level = shared.admission.observe();
    let prev = shared.last_shed.swap(level.index(), Ordering::Relaxed);
    if level.index() > prev {
        shared.obs.recorder().record(FlightEntry {
            t_us: now_us(),
            request_id: 0,
            session: 0,
            tenant: String::new(),
            kind: "shed-escalation",
            frames: 0,
            launch_range: (0, 0),
            detail: format!(
                "{} -> {}",
                ShedLevel::from_index(prev).map_or("?", |l| l.name()),
                level.name()
            ),
        });
        let _ = shared
            .obs
            .recorder()
            .dump("shed-ladder escalation", Some(&shared.telemetry));
    }
    level
}

/// The instance-level exposition labels: device, shed level, rung floor,
/// open sessions. (Per-tenant detail stays in counters/monitor bodies.)
fn scrape_labels(shared: &Shared) -> Vec<(String, String)> {
    let level = shared.admission.shed_level();
    vec![
        ("device".to_string(), "gtx480".to_string()),
        ("shed".to_string(), level.name().to_string()),
        ("rung_floor".to_string(), rung_floor(level).to_string()),
        (
            "sessions".to_string(),
            shared.sessions_open.load(Ordering::Relaxed).to_string(),
        ),
    ]
}

/// The render-ladder floor the shed level imposes (mirrors
/// [`apply_shed`]).
fn rung_floor(level: ShedLevel) -> &'static str {
    match level {
        ShedLevel::FallbackRender => "direct-psf",
        _ => "configured",
    }
}

/// Applies the shed ladder to one session, mirroring the degradation
/// order of the retry ladder: observability sheds before work does.
fn apply_shed(level: ShedLevel, state: &mut SessionState, shared: &Shared) {
    match level {
        ShedLevel::Full => {
            state.seq.set_telemetry(Some(Arc::clone(&shared.telemetry)));
            state.seq.set_shed_floor(Rung::Configured);
        }
        ShedLevel::LeanTelemetry | ShedLevel::CoarseMonitoring => {
            state.seq.set_telemetry(None);
            state.seq.set_shed_floor(Rung::Configured);
        }
        ShedLevel::FallbackRender => {
            state.seq.set_telemetry(None);
            // Shed the adaptive kernel's LUT/texture pressure: render
            // star-centric until the load subsides.
            state.seq.set_shed_floor(Rung::DirectPsf);
        }
    }
}

fn monitor_snapshot(conn: &ConnState, shared: &Shared) -> MonitorReply {
    let stats = shared.admission.stats();
    let level = stats.shed_level;
    let detail = level < ShedLevel::CoarseMonitoring;
    let body = if detail {
        monitor_body(conn, shared)
    } else {
        String::new()
    };
    // The rung summary survives every shed level — even at
    // CoarseMonitoring an operator can still see which ladder rungs the
    // fleet is rendering on, in one line.
    let rungs = *lock_tolerant(&shared.rung_frames);
    let rung_summary = format!(
        "shed={} floor={} rung_frames configured={} spawn={} reference={} direct-psf={}",
        level.name(),
        rung_floor(level),
        rungs[0],
        rungs[1],
        rungs[2],
        rungs[3]
    );
    MonitorReply {
        shed_level: level.index() as u8,
        depth: stats.depth as u32,
        capacity: stats.capacity as u32,
        admitted: stats.admitted,
        rejected: stats.rejected,
        deadline_misses: shared.deadline_misses.load(Ordering::Relaxed),
        sessions: shared.sessions_open.load(Ordering::Relaxed) as u32,
        detail,
        rung_summary,
        body,
    }
}

/// The full-detail monitoring body: metrics counters, fleet GPU
/// diagnostics, global and per-tenant LUT-cache stats, as JSON text.
fn monitor_body(conn: &ConnState, shared: &Shared) -> String {
    let mut body = String::from("{\"counters\":{");
    let counters = shared.telemetry.metrics().counters();
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"{name}\":{value}"));
    }
    let diags = *lock_tolerant(&shared.gpu_diags);
    body.push_str(&format!(
        "}},\"gpu\":{{\"pool_rebuilds\":{},\"checksum_catches\":{},\"panics_caught\":{},\
         \"timeouts\":{},\"arena_drops\":{}}}",
        diags.pool_rebuilds,
        diags.checksum_catches,
        diags.panics_caught,
        diags.timeouts,
        diags.arena_drops
    ));
    let cache = shared.cache.stats();
    body.push_str(&format!(
        ",\"lut_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"len\":{},\"capacity\":{}}}",
        cache.hits, cache.misses, cache.evictions, cache.len, cache.capacity
    ));
    body.push_str(",\"tenants\":{");
    for (i, (tenant, stats)) in shared.cache.tenant_stats().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "\"{}\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"len\":{},\"quota\":{}}}",
            json_escape(tenant),
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.len,
            stats.capacity
        ));
    }
    // This connection's sessions, id → tenant, in id order.
    let mut sessions: Vec<_> = conn.sessions.iter().collect();
    sessions.sort_by_key(|(id, _)| **id);
    body.push_str("},\"conn_sessions\":{");
    for (i, (id, state)) in sessions.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"{id}\":\"{}\"", json_escape(&state.tenant)));
    }
    body.push_str("}}");
    body
}

/// Minimal JSON string escaping for tenant names (already valid UTF-8 and
/// length-capped by the protocol boundary).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Poison-tolerant lock: a handler that panicked while holding the lock
/// already had its damage contained by `catch_unwind`; the data here is
/// monotone counters, safe to keep serving.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A minimal blocking client for [`StarServer`] — shared by the bench
/// loadgen, the integration tests and `starsimd --self-test`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and completes the hello handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client { stream };
        match client.request(&Message::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Message::HelloAck { .. } => Ok(client),
            other => Err(ProtoError::Malformed(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Sends one message.
    pub fn send(&mut self, message: &Message) -> Result<(), ProtoError> {
        write_message(&mut self.stream, message)
    }

    /// Receives one message (blocking).
    pub fn recv(&mut self) -> Result<Message, ProtoError> {
        read_message(&mut self.stream)
    }

    /// Sends `message` and returns the server's reply.
    pub fn request(&mut self, message: &Message) -> Result<Message, ProtoError> {
        self.send(message)?;
        self.recv()
    }

    /// Opens a session; returns `(session_id, lut_cache_hit)` or the
    /// server's reject as an error string.
    pub fn open_session(&mut self, spec: &SessionSpec) -> Result<(u64, bool), ProtoError> {
        match self.request(&Message::OpenSession(spec.clone()))? {
            Message::SessionOpen {
                session,
                lut_cache_hit,
            } => Ok((session, lut_cache_hit)),
            Message::Reject { code, message, .. } => Err(ProtoError::Malformed(format!(
                "open rejected ({}): {message}",
                code.name()
            ))),
            other => Err(ProtoError::Malformed(format!(
                "expected SessionOpen, got {other:?}"
            ))),
        }
    }

    /// Renders `frames` frames; returns the raw reply ([`Message::RenderDone`]
    /// or [`Message::Reject`]) so callers can implement retry loops.
    pub fn render(
        &mut self,
        session: u64,
        frames: u32,
        deadline_ms: u32,
    ) -> Result<Message, ProtoError> {
        self.request(&Message::Render {
            session,
            frames,
            deadline_ms,
        })
    }

    /// Fetches a monitoring snapshot.
    pub fn monitor(&mut self) -> Result<MonitorReply, ProtoError> {
        match self.request(&Message::Monitor)? {
            Message::MonitorReply(reply) => Ok(reply),
            other => Err(ProtoError::Malformed(format!(
                "expected MonitorReply, got {other:?}"
            ))),
        }
    }

    /// Scrapes the metrics exposition; returns
    /// `(ring_snapshots, exposition_text)`.
    pub fn metrics(&mut self) -> Result<(u32, String), ProtoError> {
        match self.request(&Message::Metrics)? {
            Message::MetricsReply {
                snapshots,
                exposition,
            } => Ok((snapshots, exposition)),
            other => Err(ProtoError::Malformed(format!(
                "expected MetricsReply, got {other:?}"
            ))),
        }
    }

    /// Fetches the SLO evaluation; returns `(overall_state, json_body)`.
    pub fn alerts(&mut self) -> Result<(SloState, String), ProtoError> {
        match self.request(&Message::Alerts)? {
            Message::AlertsReply { state, body } => Ok((state, body)),
            other => Err(ProtoError::Malformed(format!(
                "expected AlertsReply, got {other:?}"
            ))),
        }
    }

    /// Requests a graceful drain; returns the depth still pending at ack.
    pub fn drain(&mut self) -> Result<u32, ProtoError> {
        match self.request(&Message::Drain)? {
            Message::DrainAck { pending } => Ok(pending),
            other => Err(ProtoError::Malformed(format!(
                "expected DrainAck, got {other:?}"
            ))),
        }
    }

    /// Closes a session.
    pub fn close_session(&mut self, session: u64) -> Result<(), ProtoError> {
        match self.request(&Message::CloseSession { session })? {
            Message::SessionClosed { .. } => Ok(()),
            other => Err(ProtoError::Malformed(format!(
                "expected SessionClosed, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_fold_matches_the_reference_vector() {
        // FNV-1a of "a" from the classic test vectors.
        assert_eq!(digest_fold(DIGEST_SEED, b"a"), 0xaf63_dc4c_8601_ec8c);
        // Folding in two calls equals folding once — the property the
        // resumable-burst digest relies on.
        let once = digest_fold(DIGEST_SEED, b"starsimd");
        let split = digest_fold(digest_fold(DIGEST_SEED, b"star"), b"simd");
        assert_eq!(once, split);
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn server_config_defaults_are_valid() {
        let config = ServerConfig::default();
        assert!(config.admission.validate().is_ok());
        assert!(config.exposure_s <= config.frame_dt);
    }
}
