//! The adaptive simulator: lookup table in texture memory (paper §III-C).
//!
//! A star simulator is rated for a fixed magnitude range and a fixed ROI,
//! so `g(m)·μ(Δx, Δy)` can be precomputed once into a 3-D table (magnitude
//! bin × ROI row × ROI column, Fig. 8), built on the CPU ("due to the small
//! execution overhead and little data parallelism", §IV-D), uploaded, and
//! bound to texture memory. The kernel then *fetches* each pixel's
//! contribution instead of computing it: arithmetic (the `exp`, the `pow`)
//! leaves the kernel, while non-kernel overhead gains the table build and
//! the texture bind — the trade the paper's inflection-point analysis is
//! about.
//!
//! Texture placement buys 2-D locality (ROI rows/columns map to texture
//! x/y, served by Morton-swizzled cache lines) and cache reuse across
//! blocks whose stars share a magnitude bin.

use std::time::Instant;

use gpusim::memory::global::{GlobalAtomicF32, GlobalBuffer};
use gpusim::{
    AppProfile, BlockCtx, FlopClass, Kernel, KernelBackend, LaunchConfig, Texture, ThreadCtx,
    VirtualGpu,
};
use psf::lut::{LookupTable, LutParams};
use psf::roi::Roi;
use starfield::{Star, StarCatalog};
use starimage::ImageF32;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::report::SimulationReport;
use crate::star_record::{to_device_stars, DeviceStar};
use crate::Simulator;

/// Modeled CPU cost per lookup-table entry (one `g(m)·μ` evaluation —
/// an `exp` plus a handful of multiplies on the paper's 2.8 GHz i7 class
/// host, ≈28 cycles). The build is *modeled* rather than wall-measured so
/// reported times do not depend on this host's CPU or build profile; the
/// table itself is still really built. At the paper's ROI-10 geometry this
/// yields ≈0.13 ms, the same order as Table I's ≈0.71 ms row.
pub const LUT_BUILD_S_PER_ENTRY: f64 = 10e-9;

/// Shared-memory layout: `[lut layer, posX, posY]` — "the content of shared
/// memory ... is also changed by storing star magnitude instead" (§III-C);
/// we stage the resolved table layer, which is the binned magnitude.
pub(crate) const SMEM_WORDS: usize = 3;
const SMEM_LAYER: usize = 0;
const SMEM_POS_X: usize = 1;
const SMEM_POS_Y: usize = 2;

/// The lookup-table kernel.
pub struct AdaptiveKernel<'a> {
    /// Device star array.
    pub stars: &'a GlobalBuffer<DeviceStar>,
    /// Device output image.
    pub image: &'a GlobalAtomicF32,
    /// The bound texture holding the lookup table.
    pub lut_tex: &'a Texture,
    /// Host lookup table (for bin/phase arithmetic — the same index math
    /// the device kernel would run; values come from the texture).
    pub lut: &'a LookupTable,
    /// `starCount` guard.
    pub star_count: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// ROI geometry.
    pub roi: Roi,
}

impl Kernel for AdaptiveKernel<'_> {
    fn phases(&self) -> usize {
        2
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>) {
        let block_id = ctx.block_linear();
        if phase == 0 && !ctx.branch(block_id < self.star_count) {
            ctx.exit();
            return;
        }

        match phase {
            0 => {
                let first = ctx.thread_idx.x == 0 && ctx.thread_idx.y == 0;
                if ctx.branch(first) {
                    let star = ctx.global_read(self.stars, block_id);
                    // Magnitude-bin (and phase-bin) index arithmetic.
                    let layer = self.lut.layer_of(&Star::new(star.x, star.y, star.mag));
                    ctx.flops(FlopClass::Add, 1);
                    ctx.flops(FlopClass::Mul, 1);
                    ctx.shared_write(SMEM_LAYER, layer as f32);
                    ctx.shared_write(SMEM_POS_X, star.x);
                    ctx.shared_write(SMEM_POS_Y, star.y);
                }
            }
            _ => {
                let layer = ctx.shared_read(SMEM_LAYER) as usize;
                let pos_x = ctx.shared_read(SMEM_POS_X);
                let pos_y = ctx.shared_read(SMEM_POS_Y);

                let (x0, y0) = self.roi.origin(pos_x, pos_y);
                let tx = ctx.thread_idx.x as i64;
                let ty = ctx.thread_idx.y as i64;
                let px = x0 + tx;
                let py = y0 + ty;
                ctx.flops(FlopClass::Add, 2);

                let in_image =
                    px >= 0 && py >= 0 && px < self.width as i64 && py < self.height as i64;
                if ctx.branch(in_image) {
                    // The whole intensity computation is one texture fetch:
                    // LUT[layer][ty][tx] = g(m_bin) · μ(Δx, Δy).
                    let gray = ctx.tex_fetch(self.lut_tex, layer, tx, ty);
                    let idx = py as usize * self.width + px as usize;
                    ctx.atomic_add_global(self.image, idx, gray);
                }
            }
        }
    }

    /// Batched fast path (see [`StarCentricKernel::run_block`]'s notes —
    /// same structure, with texture fetches driven through the SM's cache
    /// simulator in the exact lane order of the reference path).
    ///
    /// [`StarCentricKernel::run_block`]: crate::parallel::StarCentricKernel
    fn run_block<'k>(&'k self, ctx: &mut BlockCtx<'k, '_>) -> bool {
        let side = self.roi.side();
        if ctx.block_dim.x as usize != side
            || ctx.block_dim.y as usize != side
            || ctx.block_dim.z != 1
        {
            return false;
        }
        let tpb = side * side;
        let warp = ctx.spec.warp_size as usize;
        let n_warps = tpb.div_ceil(warp) as u64;
        let block_id = ctx.block_linear();

        // Phase 0: starCount guard for every thread.
        ctx.counters.threads += tpb as u64;
        ctx.counters.warps += n_warps;
        ctx.counters.branches += n_warps;
        if block_id >= self.star_count {
            return true;
        }

        // Phase 0, designated thread: star read, layer index arithmetic
        // (an add and a mul — no SFU work, that is the whole point),
        // three staging writes.
        ctx.counters.branches += n_warps;
        if tpb > 1 {
            ctx.counters.divergent_branches += 1;
        }
        let star = self.stars.read(block_id);
        let addr = self.stars.addr_of(block_id);
        let bytes = std::mem::size_of::<DeviceStar>() as u64;
        let seg = ctx.spec.coalesce_segment as u64;
        ctx.counters.global_requests += 1;
        ctx.counters.global_transactions += (addr + bytes - 1) / seg - addr / seg + 1;
        let layer = self.lut.layer_of(&Star::new(star.x, star.y, star.mag));
        ctx.counters.flops_add += 1;
        ctx.counters.flops_mul += 1;
        ctx.counters.arith_issues += 2;
        ctx.counters.shared_requests += 3;
        // The reference kernel stages the layer through a shared-memory
        // f32; replicate the round-trip so any (guarded-against) precision
        // loss is identical.
        let layer = (layer as f32) as usize;

        // Phase 1: barrier, broadcast reads, pixel coordinates.
        ctx.counters.barriers += n_warps;
        ctx.counters.warps += n_warps;
        ctx.counters.shared_requests += 3 * n_warps;
        ctx.counters.flops_add += 2 * tpb as u64;
        ctx.counters.arith_issues += n_warps;
        ctx.counters.branches += n_warps;

        let (x0, y0) = self.roi.origin(star.x, star.y);
        let (w, h) = (self.width as i64, self.height as i64);
        if x0 >= 0 && y0 >= 0 && x0 + side as i64 <= w && y0 + side as i64 <= h {
            // Interior ROI: all lanes fetch, one texture request per warp.
            // The row-major pixel loop visits texels in ascending linear
            // thread order — the same order the reference path feeds the
            // cache simulator, so hit/miss sequences are identical.
            ctx.counters.tex_requests += n_warps;
            ctx.counters.atomic_requests += n_warps;
            // Counter increments hoisted out of the pixel loop (every lane
            // fetches exactly once) and the shadow lookup hoisted to a row
            // accumulator: per pixel, only the fetch, the cache access, and
            // one add remain. Totals are identical to per-pixel accounting.
            ctx.counters.tex_fetches += (side * side) as u64;
            let mut tex_hits = 0u64;
            let acc = ctx.shadow.accumulator(self.image);
            // Simd backend: stage the fetched LUT row in a stack buffer
            // (texture fetches and cache accesses stay scalar, in the
            // reference lane order, so tex_hits is identical), then add the
            // whole row into the accumulator span with the lane helper. One
            // add per slot either way — the backends are bit-identical here.
            // Launch validation caps side at 32 (side² ≤ 1024 threads).
            let mut row_buf = [0.0f32; 32];
            let staged = ctx.backend == KernelBackend::Simd && side <= row_buf.len();
            for j in 0..side {
                let py = y0 + j as i64;
                let row = py as usize * self.width + x0 as usize;
                let row_vals = acc.span_mut(row, row + side);
                if staged {
                    for (i, slot) in row_buf[..side].iter_mut().enumerate() {
                        let (gray, taddr) = self.lut_tex.fetch(layer, i as i64, j as i64);
                        if ctx.cache.access(taddr) {
                            tex_hits += 1;
                        }
                        *slot = gray;
                    }
                    psf::lanes::accumulate(row_vals, &row_buf[..side]);
                } else {
                    for (i, slot) in row_vals.iter_mut().enumerate() {
                        let (gray, taddr) = self.lut_tex.fetch(layer, i as i64, j as i64);
                        if ctx.cache.access(taddr) {
                            tex_hits += 1;
                        }
                        *slot += gray;
                    }
                }
            }
            ctx.counters.tex_hits += tex_hits;
        } else {
            let acc = ctx.shadow.accumulator(self.image);
            let mut t = 0usize;
            while t < tpb {
                let lanes = warp.min(tpb - t);
                let mut n_in = 0u64;
                for lane in 0..lanes {
                    let tt = t + lane;
                    let (tx, ty) = (tt % side, tt / side);
                    let px = x0 + tx as i64;
                    let py = y0 + ty as i64;
                    if px >= 0 && py >= 0 && px < w && py < h {
                        n_in += 1;
                        let (gray, taddr) = self.lut_tex.fetch(layer, tx as i64, ty as i64);
                        ctx.counters.tex_fetches += 1;
                        if ctx.cache.access(taddr) {
                            ctx.counters.tex_hits += 1;
                        }
                        let idx = py as usize * self.width + px as usize;
                        acc.add(idx, gray);
                    }
                }
                if n_in > 0 {
                    if n_in < lanes as u64 {
                        ctx.counters.divergent_branches += 1;
                    }
                    ctx.counters.tex_requests += 1;
                    ctx.counters.atomic_requests += 1;
                }
                t += lanes;
            }
        }
        true
    }
}

/// The adaptive (lookup-table / texture-memory) simulator.
pub struct AdaptiveSimulator {
    gpu: VirtualGpu,
}

impl AdaptiveSimulator {
    /// Simulator on the paper's GTX480.
    pub fn new() -> Self {
        AdaptiveSimulator {
            gpu: VirtualGpu::gtx480(),
        }
    }

    /// Simulator on a caller-provided device.
    pub fn on(gpu: VirtualGpu) -> Self {
        AdaptiveSimulator { gpu }
    }

    /// The underlying device.
    pub fn gpu(&self) -> &VirtualGpu {
        &self.gpu
    }

    /// Builds the lookup table this config implies (exposed so callers can
    /// inspect table size against the device's texture budget).
    pub fn build_lut(&self, config: &SimConfig) -> Result<LookupTable, SimError> {
        let params = LutParams {
            mag_bins: config.lut_mag_bins,
            phases: config.lut_phases,
            mag_range: config.mag_range,
        };
        let lut = LookupTable::build(
            &config.psf_model(),
            config.a_factor,
            Roi::new(config.roi_side),
            params,
            Some(self.gpu.spec().texture_mem_bytes),
        )?;
        // The kernel stages the layer index through a shared-memory f32
        // (the paper's 3-word shared layout); indices above 2^24 would
        // silently lose precision there.
        if lut.layers() >= (1 << 24) {
            return Err(SimError::InvalidConfig(format!(
                "lookup table has {} layers; the shared-memory staging is \
                 exact only below 2^24 — reduce lut_mag_bins or lut_phases",
                lut.layers()
            )));
        }
        Ok(lut)
    }
}

impl Default for AdaptiveSimulator {
    fn default() -> Self {
        AdaptiveSimulator::new()
    }
}

impl Simulator for AdaptiveSimulator {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn simulate(
        &self,
        catalog: &StarCatalog,
        config: &SimConfig,
    ) -> Result<SimulationReport, SimError> {
        config.validate()?;
        // Static pre-launch validation: the ROI must fit the image before
        // any launch is dispatched.
        gpusim::sanitize::validate_roi(config.roi_side, config.width, config.height)?;
        let wall_start = Instant::now();
        let mut profile = AppProfile::new();

        // Lookup table build on the CPU (paper §IV-D builds it host-side).
        // The table is really built; its time charge is modeled per entry
        // so profiles are reproducible across hosts and build profiles.
        let lut = self.build_lut(config)?;
        profile.push_overhead(
            "lookup table build",
            lut.len() as f64 * LUT_BUILD_S_PER_ENTRY,
        );

        // Bind the table into texture memory: modeled upload + bind call.
        let side = config.roi_side;
        let (lut_tex, t_lut_up, t_bind) =
            self.gpu
                .bind_texture(side, side, lut.layers(), lut.data().to_vec())?;
        profile.push_overhead("texture memory binding", t_bind);
        // Static LUT-domain validation: every index the kernel can fetch —
        // magnitude layer, ROI row/column — must lie inside the bound
        // table (clamp addressing would silently mask a shape mismatch).
        gpusim::sanitize::validate_lut_domain(&lut_tex, lut.layers() - 1, side - 1, side - 1)?;

        // Host → device transfers.
        let (stars, t_stars) = self.gpu.upload(to_device_stars(catalog.stars()));
        let image_dev = self.gpu.alloc_atomic_f32(config.pixels());
        let t_img_up = self
            .gpu
            .transfer_model()
            .time(gpusim::MemcpyKind::HostToDevice, config.pixels() * 4);

        let star_count = catalog.len();
        let kernel = AdaptiveKernel {
            stars: &stars,
            image: &image_dev,
            lut_tex: &lut_tex,
            lut: &lut,
            star_count,
            width: config.width,
            height: config.height,
            roi: Roi::new(side),
        };
        let cfg = LaunchConfig::star_centric(star_count.max(1), side, self.gpu.spec())
            .with_shared_mem(SMEM_WORDS * 4)
            .with_backend(config.backend);
        let kp = self
            .gpu
            .launch_mode("adaptive-lut", &kernel, cfg, config.exec_mode)?;
        profile.kernels.push(kp);

        let (host_pixels, t_down) = self.gpu.download(&image_dev);
        profile.push_overhead(
            "CPU-GPU transmission",
            t_stars + t_img_up + t_down + t_lut_up,
        );

        let image = ImageF32::from_data(config.width, config.height, host_pixels);
        let app_time_s = profile.app_time();
        Ok(SimulationReport {
            simulator: self.name(),
            image,
            profile,
            app_time_s,
            wall_time_s: wall_start.elapsed().as_secs_f64(),
            stars: star_count,
            roi_side: side,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSimulator;
    use starfield::{FieldGenerator, PositionModel};
    use starimage::diff::compare;

    fn small_config() -> SimConfig {
        SimConfig::new(64, 64, 10)
    }

    /// Pixel-centred stars with bin-centre magnitudes: the LUT is exact.
    fn exact_catalog(bins: usize, cfg: &SimConfig) -> StarCatalog {
        let lut_width = (cfg.mag_range.1 - cfg.mag_range.0) / bins as f32;
        let mags: Vec<f32> = (0..6)
            .map(|i| cfg.mag_range.0 + (i * 13 % bins) as f32 * lut_width + lut_width / 2.0)
            .collect();
        StarCatalog::from_stars(
            mags.iter()
                .enumerate()
                .map(|(i, &m)| Star::new(10.0 + 9.0 * i as f32, 20.0 + 5.0 * i as f32, m))
                .collect(),
        )
    }

    #[test]
    fn exact_inputs_match_sequential_exactly() {
        let cfg = small_config();
        let cat = exact_catalog(cfg.lut_mag_bins, &cfg);
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let ada = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        let d = compare(&seq.image, &ada.image, 0.0);
        assert!(
            d.max_rel < 1e-5,
            "bin-centred inputs should match to f32 rounding, got {d:?}"
        );
    }

    #[test]
    fn random_field_matches_within_quantization_bound() {
        let cfg = small_config();
        // Pixel-centred positions isolate the magnitude-bin error.
        let cat = FieldGenerator::new(64, 64)
            .positions(PositionModel::UniformPixelCentred)
            .generate(150, 11);
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let ada = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        let lut = AdaptiveSimulator::new().build_lut(&cfg).unwrap();
        let bound = lut.brightness().max_relative_error() * 1.5;
        let d = compare(&seq.image, &ada.image, 0.0);
        assert!(
            d.max_rel <= bound,
            "relative error {} exceeds LUT bound {bound}",
            d.max_rel
        );
    }

    #[test]
    fn kernel_has_no_special_flops() {
        // The whole point: exp/pow left the kernel.
        let cfg = small_config();
        let cat = FieldGenerator::new(64, 64).generate(50, 3);
        let ada = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        let k = &ada.profile.kernels[0];
        assert_eq!(k.counters.flops_special, 0);
        assert!(k.counters.tex_fetches > 0);
        // And the parallel kernel *does* burn SFU ops on the same input.
        let par = crate::parallel::ParallelSimulator::new()
            .simulate(&cat, &cfg)
            .unwrap();
        assert!(par.profile.kernels[0].counters.flops_special > 0);
    }

    #[test]
    fn texture_cache_sees_reuse() {
        // Stars sharing one magnitude bin fetch the same LUT layer: after
        // cold misses the per-SM cache must serve hits.
        let cfg = small_config();
        let cat = StarCatalog::from_stars(
            (0..30)
                .map(|i| Star::new(10.0 + i as f32, 32.0, 5.0))
                .collect(),
        );
        let ada = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        let c = &ada.profile.kernels[0].counters;
        assert!(
            c.tex_hit_rate() > 0.5,
            "expected cache reuse, hit rate {}",
            c.tex_hit_rate()
        );
    }

    #[test]
    fn simd_backend_is_bit_identical() {
        // The adaptive kernel's Simd path only restages the fetched row;
        // values, counters, and cache hit sequences must be bit-equal.
        let cfg = small_config();
        let cat = FieldGenerator::new(64, 64).generate(150, 17);
        let scalar = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        let mut cfg_simd = cfg.clone();
        cfg_simd.backend = gpusim::KernelBackend::Simd;
        let simd = AdaptiveSimulator::new().simulate(&cat, &cfg_simd).unwrap();
        assert_eq!(
            scalar.profile.kernels[0].counters,
            simd.profile.kernels[0].counters
        );
        let a = scalar.image.data();
        let b = simd.image.data();
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "adaptive simd path must be bit-identical"
        );
    }

    #[test]
    fn non_kernel_breakdown_has_the_papers_three_items() {
        let cfg = small_config();
        let cat = FieldGenerator::new(64, 64).generate(10, 1);
        let ada = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        assert!(ada.profile.overhead_named("lookup table build") > 0.0);
        assert!(ada.profile.overhead_named("texture memory binding") > 0.0);
        assert!(ada.profile.overhead_named("CPU-GPU transmission") > 0.0);
        assert_eq!(ada.profile.overheads.len(), 3);
    }

    #[test]
    fn oversized_lut_rejected_like_the_paper() {
        // §IV-D: the table must fit texture memory. Demand an absurd
        // magnitude resolution.
        let mut cfg = small_config();
        cfg.lut_mag_bins = 400_000_000;
        let cat = StarCatalog::new();
        match AdaptiveSimulator::new().simulate(&cat, &cfg) {
            Err(SimError::Psf(psf::PsfError::LutTooLarge { .. })) => {}
            other => panic!("expected LutTooLarge, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn layer_count_beyond_f32_precision_rejected() {
        // The shared-memory f32 staging is exact only below 2^24 layers.
        let mut cfg = SimConfig::new(64, 64, 1);
        cfg.lut_mag_bins = (1 << 24) + 1;
        match AdaptiveSimulator::new().build_lut(&cfg) {
            Err(SimError::InvalidConfig(m)) => assert!(m.contains("2^24")),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn subpixel_phases_reduce_error_end_to_end() {
        let mut cfg = small_config();
        cfg.lut_mag_bins = 4096;
        let cat = FieldGenerator::new(64, 64).generate(80, 9); // sub-pixel positions
        let seq = SequentialSimulator::new().simulate(&cat, &cfg).unwrap();
        let ada1 = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        cfg.lut_phases = 8;
        let ada8 = AdaptiveSimulator::new().simulate(&cat, &cfg).unwrap();
        let e1 = compare(&seq.image, &ada1.image, 0.0).rmse;
        let e8 = compare(&seq.image, &ada8.image, 0.0).rmse;
        assert!(
            e8 < e1 * 0.6,
            "8-phase LUT rmse {e8} should beat 1-phase {e1}"
        );
    }
}
